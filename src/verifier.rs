//! High-level verification facade.
//!
//! [`Verifier`] is the one front door over the two lower-level entry
//! points of [`scv_mc`]: the convenience function
//! [`scv_mc::verify_protocol`] and the reusable product system
//! [`scv_mc::VerifySystem`]. It owns the single construction site where
//! the options (including the requested [`SymmetryMode`]) meet the
//! protocol, and — when telemetry is installed — emits one
//! [`scv_telemetry::RunReport`] per [`Verifier::run`] so every caller
//! gets the same structured record the `scv` CLI writes.
//!
//! ```
//! use sc_verify::prelude::*;
//!
//! let outcome = Verifier::new(MsiProtocol::new(Params::new(2, 1, 2)))
//!     .max_states(3_000)
//!     .threads(1)
//!     .symmetry(SymmetryMode::Full)
//!     .run();
//! assert!(!matches!(outcome, Outcome::Violation { .. }));
//! ```

use scv_mc::{
    Budget, CancelToken, CheckpointError, Outcome, SearchStrategy, SymmetryMode, VerifyOptions,
    VerifySystem,
};
use scv_protocol::Symmetry;
use std::path::PathBuf;
use std::time::Duration;

pub use scv_mc::RejectReason;

/// Canonical short verdict string for an [`Outcome`] — the single
/// spelling shared by the `verify/…` telemetry reports, the CLI summary
/// lines, and the fuzz harness.
pub fn verdict_str(out: &Outcome) -> &'static str {
    match out {
        Outcome::Verified { .. } => "verified",
        Outcome::Violation { .. } => "violation",
        Outcome::Bounded { .. } => "bounded",
        Outcome::Inconclusive { .. } => "inconclusive",
    }
}

/// Builder-style facade over the product construction and search.
///
/// Construction is deferred: option setters only record the request, and
/// [`Verifier::run`] builds the [`VerifySystem`] (which is where the
/// symmetry group is enumerated) and drives the search. This keeps one
/// place where `VerifyOptions::symmetry` and
/// [`VerifySystem::with_symmetry`] are guaranteed to agree.
pub struct Verifier<P: Symmetry> {
    protocol: P,
    options: VerifyOptions,
}

impl<P: Symmetry + Sync> Verifier<P>
where
    P::State: Send + Sync + 'static,
{
    /// Start from the default options (sequential search, 200k-state cap,
    /// no symmetry reduction).
    pub fn new(protocol: P) -> Self {
        Self::with_options(protocol, VerifyOptions::default())
    }

    /// Start from pre-built options (e.g. parsed from a CLI).
    pub fn with_options(protocol: P, options: VerifyOptions) -> Self {
        Verifier { protocol, options }
    }

    /// The options the next [`Verifier::run`] will use.
    pub fn options(&self) -> &VerifyOptions {
        &self.options
    }

    /// Cap the number of explored product states.
    pub fn max_states(mut self, n: usize) -> Self {
        self.options = self.options.max_states(n);
        self
    }

    /// Cap the BFS depth.
    pub fn max_depth(mut self, d: usize) -> Self {
        self.options = self.options.max_depth(d);
        self
    }

    /// Number of worker threads (1 = sequential).
    pub fn threads(mut self, n: usize) -> Self {
        self.options = self.options.threads(n);
        self
    }

    /// Parallel engine used when `threads > 1`.
    pub fn strategy(mut self, s: SearchStrategy) -> Self {
        self.options = self.options.strategy(s);
        self
    }

    /// Work-stealing batch granularity.
    pub fn batch_size(mut self, n: usize) -> Self {
        self.options = self.options.batch_size(n);
        self
    }

    /// Symmetry reduction mode (intersected with what the protocol
    /// declares sound).
    pub fn symmetry(mut self, mode: SymmetryMode) -> Self {
        self.options = self.options.symmetry(mode);
        self
    }

    /// Admission-gated lazy materialization (`true`, the default) or the
    /// eager reference expansion path (`false`).
    pub fn lazy(mut self, on: bool) -> Self {
        self.options = self.options.lazy(on);
        self
    }

    /// Resource budget (wall clock, admitted states, resident memory).
    /// Tripping yields [`Outcome::Inconclusive`] rather than `Bounded`.
    pub fn budget(mut self, b: Budget) -> Self {
        self.options = self.options.budget(b);
        self
    }

    /// Wall-clock deadline, measured from the start of the run.
    pub fn timeout(mut self, d: Duration) -> Self {
        self.options = self.options.timeout(d);
        self
    }

    /// Cooperative cancellation token polled at admission boundaries.
    pub fn cancel_token(mut self, t: CancelToken) -> Self {
        self.options = self.options.cancel_token(t);
        self
    }

    /// Write a checkpoint this often (requires [`Verifier::checkpoint_to`]).
    pub fn checkpoint_every(mut self, d: Duration) -> Self {
        self.options = self.options.checkpoint_every(d);
        self
    }

    /// Where periodic and budget-trip checkpoints are written.
    pub fn checkpoint_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.options = self.options.checkpoint_to(path);
        self
    }

    /// Resume from a checkpoint file instead of starting fresh.
    pub fn resume_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.options = self.options.resume_from(path);
        self
    }

    /// Build the product system and run the search to an [`Outcome`].
    ///
    /// Panics if checkpoint I/O fails or a resume file does not match the
    /// system; [`Verifier::run_controlled`] surfaces those as errors.
    ///
    /// With telemetry installed, one `RunReport` named
    /// `verify/<protocol>` is emitted with the verdict and search stats.
    pub fn run(self) -> Outcome {
        match self.run_controlled() {
            Ok(out) => out,
            Err(e) => panic!("checkpoint error (use run_controlled to handle): {e}"),
        }
    }

    /// Build the product system and run the search, surfacing checkpoint
    /// errors (I/O failures, corrupt or mismatched resume files) instead
    /// of panicking.
    ///
    /// This is the blessed entry point for run-controlled verification:
    /// budgets, cancellation, periodic checkpointing, and resume all pass
    /// through here, and the emitted `RunReport` carries the interrupt
    /// reason and coverage for inconclusive runs.
    pub fn run_controlled(self) -> Result<Outcome, CheckpointError> {
        let name = self.protocol.name().to_string();
        let params = self.protocol.params();
        let system = VerifySystem::with_symmetry(self.protocol, self.options.symmetry)
            .lazy(self.options.lazy);
        let out = system.try_search(&self.options)?;
        if scv_telemetry::enabled() {
            let s = out.stats();
            let verdict = verdict_str(&out);
            let mut report = scv_telemetry::RunReport::new(format!("verify/{name}"))
                .param("protocol", &name)
                .param("p", params.p.to_string())
                .param("b", params.b.to_string())
                .param("v", params.v.to_string())
                .param("threads", self.options.threads.to_string())
                .param("strategy", format!("{:?}", self.options.strategy))
                .param("batch", self.options.batch_size.to_string())
                .param("max_states", self.options.bfs.max_states.to_string())
                .param("symmetry", format!("{:?}", self.options.symmetry))
                .param("symmetry_group", system.symmetry_group_order().to_string())
                .param("expand", if self.options.lazy { "lazy" } else { "eager" })
                .with_verdict(verdict)
                .metric("states", s.states as f64)
                .metric("transitions", s.transitions as f64)
                .metric("depth", s.depth as f64)
                .metric("elapsed_secs", s.elapsed.as_secs_f64())
                .metric("states_per_sec", s.states_per_sec())
                .metric("peak_frontier", s.peak_frontier as f64)
                .metric("steals", s.steals as f64)
                .metric("seen_batches", s.seen_batches as f64);
            // Omitted (not zero) when the platform can't report it.
            if let Some(rss) = scv_telemetry::peak_rss_bytes() {
                report = report.metric("peak_rss_bytes", rss as f64);
            }
            if let Outcome::Inconclusive {
                reason, coverage, ..
            } = &out
            {
                report = report
                    .param("interrupt", reason.to_string())
                    .metric("frontier", coverage.frontier as f64);
            }
            scv_telemetry::emit_report(report);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scv_protocol::MsiProtocol;
    use scv_types::Params;

    #[test]
    fn verdict_strings_are_stable() {
        let bounded = Verifier::new(MsiProtocol::new(Params::new(2, 1, 2)))
            .max_states(100)
            .run();
        assert_eq!(verdict_str(&bounded), "bounded");
        let verified = Verifier::new(MsiProtocol::new(Params::new(1, 1, 1)))
            .max_states(500_000)
            .run();
        assert_eq!(verdict_str(&verified), "verified");
    }

    #[test]
    fn facade_matches_verify_protocol() {
        let opts = VerifyOptions::new().max_states(3_000);
        let via_facade =
            Verifier::with_options(MsiProtocol::new(Params::new(2, 1, 2)), opts.clone()).run();
        let direct = scv_mc::verify_protocol(MsiProtocol::new(Params::new(2, 1, 2)), opts);
        assert_eq!(via_facade.stats().states, direct.stats().states);
        assert!(matches!(via_facade, Outcome::Bounded { .. }));
    }

    #[test]
    fn run_controlled_surfaces_inconclusive_runs() {
        let out = Verifier::new(MsiProtocol::new(Params::new(2, 1, 2)))
            .max_states(100_000)
            .budget(Budget::unlimited().states(500))
            .run_controlled()
            .unwrap();
        assert_eq!(verdict_str(&out), "inconclusive");
        let cov = out.coverage().unwrap();
        assert!(cov.explored >= 500);

        // A bad resume path is an error, not a panic.
        let err = Verifier::new(MsiProtocol::new(Params::new(2, 1, 2)))
            .resume_from("/nonexistent/scv.ckpt")
            .run_controlled()
            .unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)), "{err}");
    }

    #[test]
    fn facade_applies_symmetry() {
        // Depth-limited sweep: both searches cover the same frontier, so
        // the quotient count is strictly smaller (a shared state cap would
        // instead be hit by both and tie).
        let sweep = || {
            Verifier::new(MsiProtocol::new(Params::new(2, 1, 2)))
                .max_states(500_000)
                .max_depth(6)
        };
        let off = sweep().run();
        let on = sweep().symmetry(SymmetryMode::Full).run();
        assert!(
            on.stats().states < off.stats().states,
            "{} vs {}",
            on.stats().states,
            off.stats().states
        );
    }
}
