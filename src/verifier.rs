//! High-level verification facade.
//!
//! [`Verifier`] is the one front door over the two lower-level entry
//! points of [`scv_mc`]: the convenience function
//! [`scv_mc::verify_protocol`] and the reusable product system
//! [`scv_mc::VerifySystem`]. It owns the single construction site where
//! the options (including the requested [`SymmetryMode`]) meet the
//! protocol, and — when telemetry is installed — emits one
//! [`scv_telemetry::RunReport`] per [`Verifier::run`] so every caller
//! gets the same structured record the `scv` CLI writes.
//!
//! ```
//! use sc_verify::prelude::*;
//!
//! let outcome = Verifier::new(MsiProtocol::new(Params::new(2, 1, 2)))
//!     .max_states(3_000)
//!     .threads(1)
//!     .symmetry(SymmetryMode::Full)
//!     .run();
//! assert!(!matches!(outcome, Outcome::Violation { .. }));
//! ```

use scv_mc::{verify_system, Outcome, SearchStrategy, SymmetryMode, VerifyOptions, VerifySystem};
use scv_protocol::Symmetry;

pub use scv_mc::RejectReason;

/// Canonical short verdict string for an [`Outcome`] — the single
/// spelling shared by the `verify/…` telemetry reports, the CLI summary
/// lines, and the fuzz harness.
pub fn verdict_str(out: &Outcome) -> &'static str {
    match out {
        Outcome::Verified { .. } => "verified",
        Outcome::Violation { .. } => "violation",
        Outcome::Bounded { .. } => "bounded",
    }
}

/// Builder-style facade over the product construction and search.
///
/// Construction is deferred: option setters only record the request, and
/// [`Verifier::run`] builds the [`VerifySystem`] (which is where the
/// symmetry group is enumerated) and drives the search. This keeps one
/// place where `VerifyOptions::symmetry` and
/// [`VerifySystem::with_symmetry`] are guaranteed to agree.
pub struct Verifier<P: Symmetry> {
    protocol: P,
    options: VerifyOptions,
}

impl<P: Symmetry + Sync> Verifier<P>
where
    P::State: Send + Sync + 'static,
{
    /// Start from the default options (sequential search, 200k-state cap,
    /// no symmetry reduction).
    pub fn new(protocol: P) -> Self {
        Self::with_options(protocol, VerifyOptions::default())
    }

    /// Start from pre-built options (e.g. parsed from a CLI).
    pub fn with_options(protocol: P, options: VerifyOptions) -> Self {
        Verifier { protocol, options }
    }

    /// The options the next [`Verifier::run`] will use.
    pub fn options(&self) -> &VerifyOptions {
        &self.options
    }

    /// Cap the number of explored product states.
    pub fn max_states(mut self, n: usize) -> Self {
        self.options = self.options.max_states(n);
        self
    }

    /// Cap the BFS depth.
    pub fn max_depth(mut self, d: usize) -> Self {
        self.options = self.options.max_depth(d);
        self
    }

    /// Number of worker threads (1 = sequential).
    pub fn threads(mut self, n: usize) -> Self {
        self.options = self.options.threads(n);
        self
    }

    /// Parallel engine used when `threads > 1`.
    pub fn strategy(mut self, s: SearchStrategy) -> Self {
        self.options = self.options.strategy(s);
        self
    }

    /// Work-stealing batch granularity.
    pub fn batch_size(mut self, n: usize) -> Self {
        self.options = self.options.batch_size(n);
        self
    }

    /// Symmetry reduction mode (intersected with what the protocol
    /// declares sound).
    pub fn symmetry(mut self, mode: SymmetryMode) -> Self {
        self.options = self.options.symmetry(mode);
        self
    }

    /// Admission-gated lazy materialization (`true`, the default) or the
    /// eager reference expansion path (`false`).
    pub fn lazy(mut self, on: bool) -> Self {
        self.options = self.options.lazy(on);
        self
    }

    /// Build the product system and run the search to an [`Outcome`].
    ///
    /// With telemetry installed, one `RunReport` named
    /// `verify/<protocol>` is emitted with the verdict and search stats.
    pub fn run(self) -> Outcome {
        let name = self.protocol.name().to_string();
        let params = self.protocol.params();
        let mut system = VerifySystem::with_symmetry(self.protocol, self.options.symmetry);
        system.set_lazy(self.options.lazy);
        let out = verify_system(&system, self.options);
        if scv_telemetry::enabled() {
            let s = out.stats();
            let verdict = verdict_str(&out);
            let report = scv_telemetry::RunReport::new(format!("verify/{name}"))
                .param("protocol", &name)
                .param("p", params.p.to_string())
                .param("b", params.b.to_string())
                .param("v", params.v.to_string())
                .param("threads", self.options.threads.to_string())
                .param("strategy", format!("{:?}", self.options.strategy))
                .param("symmetry", format!("{:?}", self.options.symmetry))
                .param("symmetry_group", system.symmetry_group_order().to_string())
                .param("expand", if self.options.lazy { "lazy" } else { "eager" })
                .with_verdict(verdict)
                .metric("states", s.states as f64)
                .metric("transitions", s.transitions as f64)
                .metric("depth", s.depth as f64)
                .metric("elapsed_secs", s.elapsed.as_secs_f64())
                .metric("states_per_sec", s.states_per_sec());
            scv_telemetry::emit_report(report);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scv_protocol::MsiProtocol;
    use scv_types::Params;

    #[test]
    fn verdict_strings_are_stable() {
        let bounded = Verifier::new(MsiProtocol::new(Params::new(2, 1, 2)))
            .max_states(100)
            .run();
        assert_eq!(verdict_str(&bounded), "bounded");
        let verified = Verifier::new(MsiProtocol::new(Params::new(1, 1, 1)))
            .max_states(500_000)
            .run();
        assert_eq!(verdict_str(&verified), "verified");
    }

    #[test]
    fn facade_matches_verify_protocol() {
        let opts = VerifyOptions::new().max_states(3_000);
        let via_facade = Verifier::with_options(MsiProtocol::new(Params::new(2, 1, 2)), opts).run();
        let direct = scv_mc::verify_protocol(MsiProtocol::new(Params::new(2, 1, 2)), opts);
        assert_eq!(via_facade.stats().states, direct.stats().states);
        assert!(matches!(via_facade, Outcome::Bounded { .. }));
    }

    #[test]
    fn facade_applies_symmetry() {
        // Depth-limited sweep: both searches cover the same frontier, so
        // the quotient count is strictly smaller (a shared state cap would
        // instead be hit by both and tie).
        let sweep = || {
            Verifier::new(MsiProtocol::new(Params::new(2, 1, 2)))
                .max_states(500_000)
                .max_depth(6)
        };
        let off = sweep().run();
        let on = sweep().symmetry(SymmetryMode::Full).run();
        assert!(
            on.stats().states < off.stats().states,
            "{} vs {}",
            on.stats().states,
            off.stats().states
        );
    }
}
