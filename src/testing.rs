//! Runtime testing of single runs — the paper's §5 extension.
//!
//! > "our method can also be used for testing that a particular run of a
//! > protocol does not violate sequential consistency […] The finite-state
//! > observer and checker could be simulated together with detailed
//! > implementation descriptions that are too complex for formal
//! > verification."
//!
//! [`RunMonitor`] couples an automatically generated observer with the
//! streaming SC checker and consumes protocol steps *online*: feed it each
//! executed step of an implementation (simulator, emulator, RTL testbench
//! shim) as it happens, and it flags the first step whose witness graph
//! stops being an acyclic constraint graph — in memory bounded by the
//! protocol's location count, not by the run length.

use scv_checker::{ScChecker, ScError, ScVerdict};
use scv_descriptor::{Descriptor, Symbol};
use scv_observer::{Observer, ObserverConfig};
use scv_protocol::{Protocol, Step};

/// Online sequential-consistency monitor for a single run.
pub struct RunMonitor {
    observer: Observer,
    checker: ScChecker,
    steps: usize,
    failed: Option<ScError>,
    /// When recording, every symbol fed to the checker (for
    /// [`RunMonitor::explain`]); empty otherwise.
    recorded: Option<Vec<Symbol>>,
}

/// Outcome of feeding one step.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MonitorStep {
    /// The run is still consistent with some serial reordering.
    Consistent,
    /// The witness graph became invalid at this step.
    Violation(ScError),
}

impl RunMonitor {
    /// Build a monitor for the given protocol (uses only its metadata:
    /// parameters, locations, ST order policy).
    pub fn new<P: Protocol>(protocol: &P) -> Self {
        let observer = Observer::new(ObserverConfig::from_protocol(protocol));
        let checker = ScChecker::new(observer.k());
        RunMonitor {
            observer,
            checker,
            steps: 0,
            failed: None,
            recorded: None,
        }
    }

    /// Like [`RunMonitor::new`], but additionally record the descriptor
    /// symbol stream so a violation can be explained afterwards with
    /// [`RunMonitor::explain`]. Memory grows with the run length (one
    /// symbol record per descriptor symbol), unlike the plain monitor.
    pub fn new_recording<P: Protocol>(protocol: &P) -> Self {
        let mut m = Self::new(protocol);
        m.recorded = Some(Vec::new());
        m
    }

    /// The descriptor recorded so far (monitor must have been built with
    /// [`RunMonitor::new_recording`]). The end-of-run flush symbols are
    /// appended only if no mid-stream violation fired, mirroring what
    /// [`RunMonitor::probe`] checks.
    pub fn recorded_descriptor(&self) -> Option<Descriptor> {
        let recorded = self.recorded.as_ref()?;
        let mut d = Descriptor::new(self.observer.k());
        d.symbols = recorded.clone();
        if self.failed.is_none() {
            let mut obs = self.observer.clone();
            let mut trailing = Vec::new();
            obs.finish(&mut trailing);
            d.symbols.extend(trailing);
        }
        Some(d)
    }

    /// Explain the violation the recorded run triggers, if any: decoded
    /// constraint-graph window, highlighted cycle, annotated DOT, and
    /// narration. Returns `None` when not recording or when the recorded
    /// run (including end-of-run checks) passes.
    pub fn explain(&self) -> Option<crate::explain::Explanation> {
        let d = self.recorded_descriptor()?;
        crate::explain::explain_descriptor(&d).ok()
    }

    /// Number of steps consumed.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Has a violation already been flagged?
    pub fn is_violated(&self) -> bool {
        self.failed.is_some()
    }

    /// Record a divergence in the telemetry stream: the step index where
    /// the run stopped matching any serial reordering, the symbol under
    /// examination, and the checker's diagnosis.
    fn report_divergence(steps: usize, symbol: String, error: &ScError) {
        if !scv_telemetry::enabled() {
            return;
        }
        scv_telemetry::add(scv_telemetry::Metric::MonitorDivergences, 1);
        scv_telemetry::event(scv_telemetry::Event::MonitorDivergence {
            step_index: steps.saturating_sub(1) as u64,
            symbol,
            detail: error.to_string(),
        });
    }

    /// Feed one executed protocol step. Once a violation is reported, the
    /// monitor stays in the violated state.
    pub fn feed(&mut self, step: &Step) -> MonitorStep {
        if let Some(e) = &self.failed {
            return MonitorStep::Violation(e.clone());
        }
        let _t = scv_telemetry::timer(scv_telemetry::Phase::Replay);
        self.steps += 1;
        let mut syms = Vec::new();
        self.observer.step(step, &mut syms);
        if let Some(rec) = &mut self.recorded {
            rec.extend(syms.iter().cloned());
        }
        for sym in &syms {
            if let Err(e) = self.checker.step(sym) {
                Self::report_divergence(self.steps, sym.to_string(), &e);
                self.failed = Some(e.clone());
                return MonitorStep::Violation(e);
            }
        }
        MonitorStep::Consistent
    }

    /// Finish the run: emit the observer's trailing symbols (pending store
    /// serializations) and run the checker's end-of-string checks.
    pub fn finish(mut self) -> ScVerdict {
        if let Some(e) = self.failed {
            return Err(e);
        }
        let _t = scv_telemetry::timer(scv_telemetry::Phase::Replay);
        let mut syms = Vec::new();
        self.observer.finish(&mut syms);
        for sym in &syms {
            if let Err(e) = self.checker.step(sym) {
                Self::report_divergence(self.steps, sym.to_string(), &e);
                return Err(e);
            }
        }
        let steps = self.steps;
        let verdict = self.checker.finish();
        if let Err(e) = &verdict {
            Self::report_divergence(steps, "end-of-run".to_string(), e);
        }
        verdict
    }

    /// Probe whether the run *as executed so far* would pass the
    /// end-of-string checks, without consuming the monitor (runs are
    /// prefix-closed, so this is a valid intermediate query).
    pub fn probe(&self) -> ScVerdict {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        let mut obs = self.observer.clone();
        let mut chk = self.checker.clone();
        let mut syms = Vec::new();
        obs.finish(&mut syms);
        for sym in &syms {
            chk.step(sym)?;
        }
        chk.finish()
    }
}

/// Monitor a complete recorded run in one call: feed every step and run
/// the end-of-string checks. Equivalent to a `feed` loop followed by
/// [`RunMonitor::finish`], returning the first violation either way.
pub fn monitor_run<P: Protocol>(protocol: &P, run: &scv_protocol::Run) -> ScVerdict {
    let mut m = RunMonitor::new(protocol);
    for step in &run.steps {
        if let MonitorStep::Violation(e) = m.feed(step) {
            return Err(e);
        }
    }
    m.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn monitor_accepts_msi_runs() {
        let p = MsiProtocol::new(Params::new(2, 2, 2));
        let mut rng = SmallRng::seed_from_u64(71);
        let mut runner = Runner::new(p.clone());
        let mut monitor = RunMonitor::new(&p);
        for _ in 0..200 {
            if !runner.step_random(&mut rng) {
                break;
            }
            let step = runner.run().steps.last().unwrap();
            assert_eq!(monitor.feed(step), MonitorStep::Consistent);
        }
        assert!(monitor.finish().is_ok());
    }

    #[test]
    fn monitor_run_matches_the_fuzz_drive_oracle() {
        // The online monitor and the fuzzer's batch drive are independent
        // paths over the same observer + checker; verdicts must agree on
        // runs of randomly generated protocols, mutated or not.
        let mut rng = SmallRng::seed_from_u64(73);
        for i in 0..12 {
            let cfg = if i % 2 == 0 {
                crate::fuzz::GenConfig::sample(&mut rng)
            } else {
                crate::fuzz::GenConfig::sample_mutated(&mut rng)
            };
            let proto = crate::fuzz::GenProtocol::new(cfg);
            let mut runner = Runner::new(proto.clone());
            runner.run_random(30, 0.5, &mut rng);
            let online = monitor_run(&proto, runner.run());
            let batch = crate::fuzz::drive(&proto, runner.run()).verdict;
            assert_eq!(online, batch, "paths split on {cfg}");
        }
    }

    #[test]
    fn monitor_probe_is_reusable() {
        let p = SerialMemory::new(Params::new(2, 1, 2));
        let mut rng = SmallRng::seed_from_u64(72);
        let mut runner = Runner::new(p.clone());
        let mut monitor = RunMonitor::new(&p);
        for _ in 0..50 {
            runner.step_random(&mut rng);
            monitor.feed(runner.run().steps.last().unwrap());
            assert!(monitor.probe().is_ok(), "every serial-memory prefix passes");
        }
    }

    #[test]
    fn monitor_flags_the_tso_litmus() {
        let p = StoreBufferTso::new(Params::new(2, 2, 1), 2);
        let mut runner = Runner::new(p.clone());
        let mut monitor = RunMonitor::new(&p);
        let mut take = |want: &dyn Fn(&Action) -> bool| {
            let t = runner
                .enabled()
                .into_iter()
                .find(|t| want(&t.action))
                .expect("enabled");
            runner.take(t);
        };
        take(&|a| a.op() == Some(Op::store(ProcId(1), BlockId(1), Value(1))));
        take(&|a| a.op() == Some(Op::store(ProcId(2), BlockId(2), Value(1))));
        take(&|a| a.op() == Some(Op::load(ProcId(1), BlockId(2), Value::BOTTOM)));
        take(&|a| a.op() == Some(Op::load(ProcId(2), BlockId(1), Value::BOTTOM)));
        take(&|a| matches!(a, Action::Internal("Drain", 1)));
        take(&|a| matches!(a, Action::Internal("Drain", 2)));
        let mut violated = false;
        for step in &runner.run().steps {
            if let MonitorStep::Violation(_) = monitor.feed(step) {
                violated = true;
                break;
            }
        }
        // The violation surfaces at latest on the second drain (when the
        // store order cycle closes) or at finish.
        if !violated {
            assert!(monitor.finish().is_err());
        }
    }

    #[test]
    fn violated_monitor_stays_violated() {
        let p = StoreBufferTso::new(Params::new(2, 2, 1), 2);
        let mut runner = Runner::new(p.clone());
        let mut monitor = RunMonitor::new(&p);
        let mut take = |want: &dyn Fn(&Action) -> bool| {
            let t = runner
                .enabled()
                .into_iter()
                .find(|t| want(&t.action))
                .expect("enabled");
            runner.take(t);
        };
        take(&|a| a.op() == Some(Op::store(ProcId(1), BlockId(1), Value(1))));
        take(&|a| a.op() == Some(Op::store(ProcId(2), BlockId(2), Value(1))));
        take(&|a| a.op() == Some(Op::load(ProcId(1), BlockId(2), Value::BOTTOM)));
        take(&|a| a.op() == Some(Op::load(ProcId(2), BlockId(1), Value::BOTTOM)));
        take(&|a| matches!(a, Action::Internal("Drain", 1)));
        take(&|a| matches!(a, Action::Internal("Drain", 2)));
        let steps = runner.run().steps.clone();
        for step in &steps {
            monitor.feed(step);
        }
        let was = monitor.is_violated();
        // Whether it tripped inline or not, probing reports the failure...
        assert!(monitor.probe().is_err());
        // ...and feeding more steps never un-violates.
        if was {
            let extra = steps[0].clone();
            assert!(matches!(monitor.feed(&extra), MonitorStep::Violation(_)));
        }
    }
}
