//! # sc-verify — Automatable Verification of Sequential Consistency
//!
//! A from-scratch Rust reproduction of Condon & Hu, *Automatable
//! Verification of Sequential Consistency* (SPAA 2001): a decidable,
//! fully automatic method for verifying that finite-state memory-system
//! protocols implement Lamport's sequential consistency.
//!
//! ## The method in one paragraph
//!
//! A trace is sequentially consistent iff some **constraint graph** over
//! its operations (program-order, store-order, inheritance, and forced
//! edges — Gibbons & Korach) is acyclic. For realistic protocols those
//! graphs are *node-bandwidth-bounded*, so they can be streamed as
//! **k-graph descriptors** and checked by a **finite-state checker**. An
//! **observer** emitting the descriptor is generated *automatically* from
//! the protocol's storage locations and tracking labels, plus a ST-order
//! generator (trivially real-time for bus/directory protocols; the
//! memory-write order for Lazy Caching). Model checking the protocol ⊗
//! observer ⊗ checker product then decides sequential consistency.
//!
//! ## Quickstart
//!
//! ```
//! use sc_verify::prelude::*;
//!
//! // A 2-processor, 1-block, 2-value MSI snooping protocol: model-check
//! // the protocol (x) observer (x) checker product. Product spaces run to
//! // millions of states even at tiny parameters (see DESIGN.md), so this
//! // doc example caps the search — a correct protocol never produces a
//! // Violation, bounded or not. `symmetry(SymmetryMode::Full)` quotients
//! // the space by the protocol's processor/block/value symmetry group.
//! let outcome = Verifier::new(MsiProtocol::new(Params::new(2, 1, 2)))
//!     .max_states(3_000)
//!     .symmetry(SymmetryMode::Full)
//!     .run();
//! assert!(!matches!(outcome, Outcome::Violation { .. }));
//!
//! // The fault-injected variant loses an invalidation and is caught with
//! // a shortest violating run whose trace genuinely has no serial
//! // reordering:
//! let opts = VerifyOptions::new().max_states(2_000_000);
//! match verify_protocol(MsiProtocol::buggy(Params::new(2, 2, 1)), opts) {
//!     Outcome::Violation { trace, .. } => assert!(!has_serial_reordering(&trace)),
//!     o => panic!("expected a violation, got {:?}", o.stats()),
//! }
//! ```
//!
//! ## Crate map
//!
//! | crate | paper section | contents |
//! |---|---|---|
//! | [`types`] | §2 | operations, traces, serial reorderings |
//! | [`graph`] | §3.1 | constraint graphs, axioms, Lemma 3.1, baselines |
//! | [`descriptor`] | §3.2 | k-graph descriptors, encoder (Lemma 3.2), decoder |
//! | [`checker`] | §3.3–3.4 | streaming cycle checker, full SC checker |
//! | [`protocol`] | §2.1, §4.1 | protocol framework + MSI / directory / lazy caching / TSO / Get-Shared |
//! | [`observer`] | §4 | automatic witness observers, §4.4 size bounds |
//! | [`automata`] | Thm 3.1 | NFA/DFA, language inclusion |
//! | [`mc`] | §3.4 | sequential + parallel explicit-state model checking |
//! | [`fuzz`] | — | randomized-protocol differential fuzzing of the whole pipeline |

pub mod explain;
pub mod testing;
pub mod verifier;

pub use scv_automata as automata;
pub use scv_checker as checker;
pub use scv_descriptor as descriptor;
pub use scv_fuzz as fuzz;
pub use scv_graph as graph;
pub use scv_mc as mc;
pub use scv_observer as observer;
pub use scv_protocol as protocol;
pub use scv_telemetry as telemetry;
pub use scv_types as types;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use crate::explain::{explain_descriptor, explain_violation, ExplainError, Explanation};
    pub use crate::verifier::{verdict_str, Verifier};
    pub use scv_checker::{CycleChecker, ScChecker};
    pub use scv_descriptor::{decode, encode, naive_descriptor, Descriptor, Symbol};
    pub use scv_fuzz::{run_fuzz, FuzzOptions, FuzzReport, GenConfig, GenProtocol, Mutation};
    pub use scv_graph::{
        has_serial_reordering, validate_constraint_graph, ConstraintGraph, EdgeSet,
    };
    pub use scv_mc::{
        verify_protocol, BfsOptions, Budget, CancelToken, Coverage, InterruptReason, McStats,
        Outcome, RejectReason, SearchStrategy, SymmetryMode, VerifyOptions, VerifySystem,
    };
    pub use scv_observer::{observer_size_bound, Observer, ObserverConfig};
    pub use scv_protocol::{
        Action, DirectoryProtocol, Fig4Protocol, LazyCaching, MesiProtocol, MsiProtocol, Protocol,
        Run, Runner, SerialMemory, StoreBufferTso, Symmetry,
    };
    pub use scv_types::{BlockId, Op, Params, ProcId, Reordering, SymDims, SymPerm, Trace, Value};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_pipeline() {
        // Observe a tiny serial-memory run and check it end to end.
        let p = SerialMemory::new(Params::new(1, 1, 1));
        let mut runner = Runner::new(p);
        let t = runner
            .enabled()
            .into_iter()
            .find(|t| matches!(t.action, Action::Mem(op) if op.is_store()))
            .unwrap();
        runner.take(t);
        let run = runner.into_run();
        let proto = SerialMemory::new(Params::new(1, 1, 1));
        let d = Observer::observe_run(&proto, &run);
        assert_eq!(ScChecker::check(&d), Ok(()));
    }
}
