//! Counterexample explanation: turn a rejected run into an annotated
//! constraint graph and a human-readable narration.
//!
//! A [`crate::verifier::Verifier`] violation hands back the offending
//! run's actions and the checker's diagnosis — enough to know *that* SC
//! failed, but not *why*. This module replays the run through a fresh
//! observer, locates the rejecting symbol, decodes the descriptor window
//! up to that symbol into a (possibly partially-labeled) constraint
//! graph, finds the directed cycle the checker saw, and renders both a
//! Graphviz DOT file (§3.1 edge styles, cycle in red) and a step-by-step
//! narration attributing each descriptor symbol to the protocol step
//! that emitted it.

use scv_checker::{ScChecker, ScError, ScErrorKind};
use scv_descriptor::{decode, Descriptor, Symbol};
use scv_graph::{annotated_dot, find_cycle_in};
use scv_observer::{Observer, ObserverConfig};
use scv_protocol::{Action, Protocol, Runner};
use std::fmt;
use std::fmt::Write as _;

/// Everything derived from a rejected run.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// The checker's diagnosis (position is the rejecting symbol index;
    /// `None` means the end-of-string checks failed).
    pub error: ScError,
    /// The full descriptor the observer emitted for the run.
    pub descriptor: Descriptor,
    /// Number of symbols in the decoded window (the prefix up to and
    /// including the rejecting symbol, or the whole string for
    /// end-of-run rejections).
    pub window: usize,
    /// The offending cycle as 0-based node indices into the decoded
    /// window, first node repeated at the end; `None` when the rejection
    /// is not a cycle (e.g. an unsatisfied forced obligation).
    pub cycle: Option<Vec<usize>>,
    /// Graphviz DOT of the decoded window with the cycle highlighted.
    pub dot: String,
    /// Human-readable replay narration.
    pub narration: String,
}

/// Why an explanation could not be produced.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExplainError {
    /// The provided action sequence is not executable from the initial
    /// state (no enabled transition matched at this step).
    ReplayFailed {
        /// Index of the action that failed to replay.
        step: usize,
        /// The action itself.
        action: Action,
    },
    /// The run replays cleanly and the checker accepts it.
    NoViolation,
}

impl fmt::Display for ExplainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExplainError::ReplayFailed { step, action } => {
                write!(f, "action {step} ({action}) is not enabled during replay")
            }
            ExplainError::NoViolation => write!(f, "the run passes the SC checker"),
        }
    }
}

impl std::error::Error for ExplainError {}

/// One sentence per [`ScErrorKind`], phrased against §3.1's constraints.
fn kind_sentence(kind: &ScErrorKind) -> String {
    match kind {
        ScErrorKind::CycleClosed => "the edge closes a directed cycle in the witness graph: \
             no serial reordering of the trace satisfies all ordering constraints (§3.1)"
            .to_string(),
        ScErrorKind::DanglingEdge => {
            "an edge descriptor references an ID no active node holds".to_string()
        }
        ScErrorKind::IdOutOfRange => "a symbol uses an ID outside 1..=k+1".to_string(),
        ScErrorKind::UnlabeledNode => "a node descriptor carries no operation label".to_string(),
        ScErrorKind::UnlabeledEdge => "an edge descriptor carries no annotations".to_string(),
        ScErrorKind::TooManyRetained => {
            "the checker's retained-node sanity cap was exceeded".to_string()
        }
        ScErrorKind::ProgramOrder(d) => format!("program-order constraint violated: {d}"),
        ScErrorKind::StOrder(d) => format!("ST-order constraint violated: {d}"),
        ScErrorKind::Inheritance(d) => format!("inheritance constraint violated: {d}"),
        ScErrorKind::ForcedUnsatisfied => {
            "a load's forced edge never materialized (constraint 5a)".to_string()
        }
        ScErrorKind::BottomUnsatisfied => "a ⊥-load lacks its forced edge to the first ST of \
             its block (constraint 5b)"
            .to_string(),
    }
}

/// Run the streaming checker over a descriptor; `None` means accepted.
fn check_descriptor(d: &Descriptor) -> Option<ScError> {
    let mut c = ScChecker::new(d.k);
    for s in &d.symbols {
        if let Err(e) = c.step(s) {
            return Some(e);
        }
    }
    c.finish().err()
}

/// Decode the window, find the cycle, render DOT, and assemble the
/// core narration. `origins[i]` attributes symbol `i` to a replay step
/// (`None` = emitted by the observer's end-of-run flush).
fn build_explanation(
    descriptor: Descriptor,
    error: ScError,
    origins: Option<&[Option<usize>]>,
    actions: Option<&[Action]>,
) -> Explanation {
    let window = match error.position {
        Some(p) => p + 1,
        None => descriptor.symbols.len(),
    };
    let mut prefix = Descriptor::new(descriptor.k);
    prefix.symbols = descriptor.symbols[..window].to_vec();
    // The rejecting symbol itself can be undecodable (dangling edge, ID
    // out of range); fall back to the prefix before it so the DOT still
    // shows the graph the checker had built.
    let decoded = decode(&prefix).ok().or_else(|| {
        let mut shorter = Descriptor::new(descriptor.k);
        shorter.symbols = descriptor.symbols[..window.saturating_sub(1)].to_vec();
        decode(&shorter).ok()
    });
    let (cycle, dot, node_labels) = match &decoded {
        Some((g, _)) => {
            let cycle = find_cycle_in(g.node_count(), &g.edges);
            let dot = annotated_dot(&g.labels, &g.edges, cycle.as_deref());
            (cycle, dot, g.labels.clone())
        }
        None => (None, String::new(), Vec::new()),
    };

    let mut n = String::new();
    let _ = writeln!(n, "SC violation: {error}");
    let _ = writeln!(n, "  {}", kind_sentence(&error.kind));
    if let Some(actions) = actions {
        let mems = actions.iter().filter(|a| a.op().is_some()).count();
        let _ = writeln!(
            n,
            "run: {} actions ({} memory operations)",
            actions.len(),
            mems
        );
        for (i, a) in actions.iter().enumerate() {
            let _ = writeln!(n, "  step {i}: {a}");
        }
    }
    if let Some(p) = error.position {
        let sym = &descriptor.symbols[p];
        let origin = origins.and_then(|o| o.get(p).copied().flatten());
        match (origin, actions) {
            (Some(s), Some(actions)) => {
                let _ = writeln!(
                    n,
                    "offending symbol {p} of {}: \"{sym}\" — emitted while executing \
                     step {s} ({})",
                    descriptor.symbols.len(),
                    actions[s]
                );
            }
            (Some(s), None) => {
                let _ = writeln!(
                    n,
                    "offending symbol {p} of {}: \"{sym}\" — emitted at step {s}",
                    descriptor.symbols.len()
                );
            }
            _ => {
                let _ = writeln!(
                    n,
                    "offending symbol {p} of {}: \"{sym}\" — emitted by the \
                     end-of-run flush",
                    descriptor.symbols.len()
                );
            }
        }
    } else {
        let _ = writeln!(
            n,
            "the rejection fired at end of run (no single offending symbol)"
        );
    }
    if let Some(c) = &cycle {
        let path = c
            .iter()
            .map(|v| format!("n{}", v + 1))
            .collect::<Vec<_>>()
            .join(" -> ");
        let _ = writeln!(n, "cycle in witness graph: {path}");
        for &v in c.iter().take(c.len().saturating_sub(1)) {
            match node_labels.get(v).copied().flatten() {
                Some(op) => {
                    let _ = writeln!(n, "  n{}: {op}", v + 1);
                }
                None => {
                    let _ = writeln!(n, "  n{}: (label outside window)", v + 1);
                }
            }
        }
    }

    Explanation {
        error,
        descriptor,
        window,
        cycle,
        dot,
        narration: n,
    }
}

/// Explain a rejected descriptor directly (no protocol replay, so the
/// narration cannot attribute symbols to steps).
pub fn explain_descriptor(d: &Descriptor) -> Result<Explanation, ExplainError> {
    let error = check_descriptor(d).ok_or(ExplainError::NoViolation)?;
    Ok(build_explanation(d.clone(), error, None, None))
}

/// Replay a violating run (e.g. [`scv_mc::Outcome::Violation`]'s
/// `run` field) through a fresh observer + checker and explain the
/// rejection. The protocol must be the one the run was found on.
pub fn explain_violation<P: Protocol + Clone>(
    protocol: &P,
    actions: &[Action],
) -> Result<Explanation, ExplainError> {
    let _t = scv_telemetry::timer(scv_telemetry::Phase::Replay);
    let mut runner = Runner::new(protocol.clone());
    let mut observer = Observer::new(ObserverConfig::from_protocol(protocol));
    let mut symbols: Vec<Symbol> = Vec::new();
    let mut origins: Vec<Option<usize>> = Vec::new();
    for (i, a) in actions.iter().enumerate() {
        let t = runner
            .enabled()
            .into_iter()
            .find(|t| t.action == *a)
            .ok_or(ExplainError::ReplayFailed {
                step: i,
                action: *a,
            })?;
        runner.take(t);
        let step = runner.run().steps.last().expect("step just taken");
        let mut syms = Vec::new();
        observer.step(step, &mut syms);
        origins.extend(std::iter::repeat_n(Some(i), syms.len()));
        symbols.extend(syms);
    }
    let mut trailing = Vec::new();
    observer.finish(&mut trailing);
    origins.extend(std::iter::repeat_n(None, trailing.len()));
    symbols.extend(trailing);

    let mut d = Descriptor::new(observer.k());
    d.symbols = symbols;
    let error = check_descriptor(&d).ok_or(ExplainError::NoViolation)?;
    Ok(build_explanation(d, error, Some(&origins), Some(actions)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use scv_graph::EdgeSet;

    /// A hand-built descriptor whose third edge closes a 2-cycle.
    fn cyclic_descriptor() -> Descriptor {
        let mut d = Descriptor::new(3);
        d.symbols = vec![
            Symbol::node(1, Op::store(ProcId(1), BlockId(1), Value(1))),
            Symbol::node(2, Op::load(ProcId(2), BlockId(1), Value(1))),
            Symbol::edge(1, 2, EdgeSet::INH),
            Symbol::edge(2, 1, EdgeSet::PO),
        ];
        d
    }

    #[test]
    fn descriptor_explanation_finds_the_cycle() {
        let ex = explain_descriptor(&cyclic_descriptor()).expect("rejected");
        assert_eq!(ex.error.kind, ScErrorKind::CycleClosed);
        assert_eq!(ex.error.position, Some(3));
        assert_eq!(ex.window, 4);
        let cycle = ex.cycle.as_ref().expect("cycle found");
        assert_eq!(cycle.first(), cycle.last());
        assert!(ex.dot.contains("color=red"));
        assert!(ex.narration.contains("CycleClosed"));
        assert!(ex.narration.contains("cycle in witness graph"));
    }

    #[test]
    fn accepted_descriptor_is_no_violation() {
        let mut d = cyclic_descriptor();
        d.symbols.pop();
        // Still rejected at end-of-run (untotal orders / pending forced
        // edges) or accepted; either way the direct cycle is gone.
        match explain_descriptor(&d) {
            Ok(ex) => assert_eq!(ex.error.position, None),
            Err(e) => assert_eq!(e, ExplainError::NoViolation),
        }
    }

    #[test]
    fn unreplayable_actions_are_reported() {
        let p = MsiProtocol::new(Params::new(2, 1, 2));
        let bogus = [Action::Internal("NoSuchAction", 7)];
        let err = explain_violation(&p, &bogus).expect_err("replay fails");
        assert_eq!(
            err,
            ExplainError::ReplayFailed {
                step: 0,
                action: bogus[0]
            }
        );
    }

    #[test]
    fn violating_run_explanation_matches_checker_rejection() {
        // A known-buggy protocol: find a violation, then explain it and
        // cross-check the explanation against the checker's diagnosis.
        let p = MsiProtocol::buggy(Params::new(2, 2, 1));
        let out = Verifier::new(p.clone()).max_states(2_000_000).run();
        let Outcome::Violation { run, reason, .. } = out else {
            panic!("buggy MSI must produce a violation");
        };
        let ex = explain_violation(&p, &run).expect("violation explains");
        assert_eq!(
            &ex.error,
            reason.error(),
            "explanation rederives the diagnosis"
        );
        if ex.error.kind == ScErrorKind::CycleClosed {
            let cycle = ex.cycle.as_ref().expect("cycle rejection decodes a cycle");
            assert!(cycle.len() >= 2);
            assert!(ex.dot.contains("color=red"));
            // The window minus the rejecting symbol is still acyclic —
            // the highlighted cycle is exactly what the checker tripped on.
            let mut shorter = Descriptor::new(ex.descriptor.k);
            shorter.symbols = ex.descriptor.symbols[..ex.window - 1].to_vec();
            let (g, _) = decode(&shorter).expect("prefix decodes");
            assert!(
                g.is_acyclic(),
                "cycle must close exactly at the rejecting symbol"
            );
        }
        assert!(ex.narration.contains("SC violation"));
    }
}
