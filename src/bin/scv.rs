//! `scv` — command-line front end for the verification pipeline.
//!
//! ```text
//! scv verify <protocol> [-p N] [-b N] [-v N] [--threads N] [--max-states N]
//!                       [--strategy ws|level-sync] [--batch N]
//!                       [--symmetry off|proc|full|full-enum] [--expand lazy|eager]
//!                       [--timeout SECS] [--checkpoint PATH]
//!                       [--checkpoint-every SECS] [--resume PATH]
//!                       # --timeout trips to an Inconclusive verdict (exit 3)
//!                       # with coverage; --checkpoint + --resume make
//!                       # interrupted runs restartable with identical results
//! scv observe <protocol> [--steps N] [--seed N]     # one random run's descriptor
//! scv monitor <protocol> [--steps N] [--seed N]     # §5 runtime testing mode
//! scv trace <protocol> [--out trace.json] [verify flags]
//!                                                   # verify with the flight recorder on,
//!                                                   # exporting a Perfetto/Chrome trace
//! scv explain <protocol> [--dot FILE] [verify flags]
//!                                                   # find a violation and explain it:
//!                                                   # annotated constraint graph + narration
//! scv fuzz [--seed N] [--cases N] [--budget SECS]   # differential fuzzing
//!          [--mc-every N] [--mc-states N] [--runs N] [--run-len N]
//!          [--corpus DIR] [--no-self-test]
//! scv list                                          # available protocols
//! ```
//!
//! `--progress` (verify/trace) prints a live stderr ticker: states/sec,
//! frontier depth, admission rate, seal-cache hit rate, and an ETA bound.
//!
//! Protocols: serial | msi | msi-buggy | mesi | mesi-buggy | directory |
//! lazy | tso | fig4.
//!
//! Telemetry (accepted anywhere on the command line, any command):
//!
//! ```text
//! --telemetry=summary           # phase/counter table on stderr-free stdout
//! --telemetry=jsonl <path>      # structured JSONL event stream to <path>
//! --telemetry=off               # explicit no-op (the default)
//! ```
//!
//! When `--telemetry` is given, the command may be omitted and defaults to
//! `verify`: `scv --telemetry=jsonl run.jsonl msi` verifies MSI and writes
//! the run's telemetry (phase timings, counters, a `run_report` record) to
//! `run.jsonl`.

use sc_verify::prelude::*;
use sc_verify::telemetry;
use sc_verify::testing::{MonitorStep, RunMonitor};
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    p: u8,
    b: u8,
    v: u8,
    threads: usize,
    max_states: usize,
    strategy: SearchStrategy,
    batch: usize,
    symmetry: SymmetryMode,
    lazy: bool,
    steps: usize,
    seed: u64,
    progress: bool,
    out: Option<String>,
    dot: Option<String>,
    timeout: Option<Duration>,
    checkpoint: Option<String>,
    checkpoint_every: Option<Duration>,
    resume: Option<String>,
}

impl Args {
    fn parse(rest: &[String]) -> Result<Args, String> {
        let mut a = Args {
            p: 2,
            b: 1,
            v: 2,
            threads: 1,
            max_states: 2_000_000,
            strategy: SearchStrategy::default(),
            batch: 128,
            symmetry: SymmetryMode::default(),
            lazy: true,
            steps: 100,
            seed: 0,
            progress: false,
            out: None,
            dot: None,
            timeout: None,
            checkpoint: None,
            checkpoint_every: None,
            resume: None,
        };
        let mut it = rest.iter();
        while let Some(flag) = it.next() {
            let mut val = |name: &str| -> Result<u64, String> {
                it.next()
                    .ok_or_else(|| format!("{name} needs a value"))?
                    .parse::<u64>()
                    .map_err(|e| format!("{name}: {e}"))
            };
            match flag.as_str() {
                "-p" => a.p = val("-p")? as u8,
                "-b" => a.b = val("-b")? as u8,
                "-v" => a.v = val("-v")? as u8,
                "--threads" => a.threads = val("--threads")? as usize,
                "--max-states" => a.max_states = val("--max-states")? as usize,
                "--batch" => a.batch = val("--batch")? as usize,
                "--strategy" => {
                    let v = it.next().ok_or("--strategy needs a value".to_string())?;
                    a.strategy = match v.as_str() {
                        "ws" | "work-stealing" => SearchStrategy::WorkStealing,
                        "level-sync" | "levelsync" => SearchStrategy::LevelSync,
                        other => {
                            return Err(format!("unknown strategy `{other}` (ws | level-sync)"))
                        }
                    };
                }
                "--steps" => a.steps = val("--steps")? as usize,
                "--seed" => a.seed = val("--seed")?,
                "--progress" => a.progress = true,
                "--timeout" | "--checkpoint-every" => {
                    // Fractional seconds are accepted: CI smoke runs use
                    // sub-second deadlines to interrupt tiny searches.
                    let name = flag.as_str();
                    let secs = it
                        .next()
                        .ok_or_else(|| format!("{name} needs a value (seconds)"))?
                        .parse::<f64>()
                        .map_err(|e| format!("{name}: {e}"))?;
                    if !secs.is_finite() || secs < 0.0 {
                        return Err(format!("{name}: seconds must be finite and non-negative"));
                    }
                    let d = Duration::from_secs_f64(secs);
                    if name == "--timeout" {
                        a.timeout = Some(d);
                    } else {
                        a.checkpoint_every = Some(d);
                    }
                }
                "--checkpoint" => {
                    a.checkpoint = Some(
                        it.next()
                            .ok_or("--checkpoint needs a path".to_string())?
                            .clone(),
                    );
                }
                "--resume" => {
                    a.resume = Some(
                        it.next()
                            .ok_or("--resume needs a path".to_string())?
                            .clone(),
                    );
                }
                "--out" => {
                    a.out = Some(it.next().ok_or("--out needs a path".to_string())?.clone());
                }
                "--dot" => {
                    a.dot = Some(it.next().ok_or("--dot needs a path".to_string())?.clone());
                }
                "--expand" => {
                    let v = it.next().ok_or("--expand needs a value (lazy | eager)")?;
                    a.lazy = match v.as_str() {
                        "lazy" => true,
                        "eager" => false,
                        other => {
                            return Err(format!("unknown expand mode `{other}` (lazy | eager)"))
                        }
                    };
                }
                other => {
                    if let Some(v) = other.strip_prefix("--expand=") {
                        a.lazy = match v {
                            "lazy" => true,
                            "eager" => false,
                            _ => return Err(format!("unknown expand mode `{v}` (lazy | eager)")),
                        };
                        continue;
                    }
                    let sym = if let Some(v) = other.strip_prefix("--symmetry=") {
                        Some(v.to_string())
                    } else if other == "--symmetry" {
                        Some(
                            it.next()
                                .ok_or("--symmetry needs a value (off | proc | full | full-enum)")?
                                .clone(),
                        )
                    } else {
                        None
                    };
                    match sym.as_deref() {
                        Some("off") => a.symmetry = SymmetryMode::Off,
                        Some("proc") => a.symmetry = SymmetryMode::Proc,
                        Some("full") => a.symmetry = SymmetryMode::Full,
                        Some("full-enum") => a.symmetry = SymmetryMode::FullEnum,
                        Some(v) => {
                            return Err(format!(
                                "unknown symmetry mode `{v}` (off | proc | full | full-enum)"
                            ))
                        }
                        None => return Err(format!("unknown flag {other}")),
                    }
                }
            }
        }
        Ok(a)
    }

    fn params(&self) -> Params {
        Params::new(self.p, self.b, self.v)
    }

    /// Search + run-control options shared by `verify`, `trace`, and
    /// `explain`.
    fn verify_options(&self) -> VerifyOptions {
        let mut o = VerifyOptions::new()
            .max_states(self.max_states)
            .threads(self.threads)
            .strategy(self.strategy)
            .batch_size(self.batch)
            .symmetry(self.symmetry)
            .lazy(self.lazy);
        if let Some(d) = self.timeout {
            o = o.timeout(d);
        }
        if let Some(d) = self.checkpoint_every {
            o = o.checkpoint_every(d);
        }
        if let Some(p) = &self.checkpoint {
            o = o.checkpoint_to(p);
        }
        if let Some(p) = &self.resume {
            o = o.resume_from(p);
        }
        o
    }
}

/// Dispatch over the protocol zoo, monomorphizing `f` per protocol type.
fn with_protocol<R>(name: &str, params: Params, f: &mut dyn FnMut(&str) -> R) -> Result<R, String> {
    // The closure captures the protocol through thread-locals would be
    // overkill; just dispatch explicitly below in each command instead.
    let _ = (params, f);
    Err(format!("unknown protocol {name}"))
}

macro_rules! dispatch {
    ($name:expr, $params:expr, |$p:ident| $body:expr) => {{
        let params = $params;
        match $name {
            "serial" => {
                let $p = SerialMemory::new(params);
                $body
            }
            "msi" => {
                let $p = MsiProtocol::new(params);
                $body
            }
            "msi-buggy" => {
                let $p = MsiProtocol::buggy(params);
                $body
            }
            "mesi" => {
                let $p = MesiProtocol::new(params);
                $body
            }
            "mesi-buggy" => {
                let $p = MesiProtocol::buggy(params);
                $body
            }
            "directory" => {
                let $p = DirectoryProtocol::new(params);
                $body
            }
            "lazy" => {
                let $p = LazyCaching::new(params, 2, 2);
                $body
            }
            "tso" => {
                let $p = StoreBufferTso::new(params, 2);
                $body
            }
            "fig4" => {
                let $p = Fig4Protocol::new(params, 2);
                $body
            }
            other => {
                eprintln!("unknown protocol `{other}` (try `scv list`)");
                return ExitCode::from(2);
            }
        }
    }};
}

/// Telemetry sink selection, parsed out of argv before command dispatch.
enum TelemetryMode {
    Off,
    Summary,
    Jsonl(String),
}

/// Strip every `--telemetry…` flag from `argv` (they are accepted anywhere,
/// before or after the command) and return the requested mode.
fn extract_telemetry(argv: &mut Vec<String>) -> Result<TelemetryMode, String> {
    let mut mode = TelemetryMode::Off;
    let mut i = 0;
    while i < argv.len() {
        let arg = argv[i].clone();
        let value = if let Some(v) = arg.strip_prefix("--telemetry=") {
            argv.remove(i);
            v.to_string()
        } else if arg == "--telemetry" {
            argv.remove(i);
            if i >= argv.len() {
                return Err("--telemetry needs a mode (summary | jsonl <path> | off)".into());
            }
            argv.remove(i)
        } else {
            i += 1;
            continue;
        };
        mode = match value.as_str() {
            "summary" => TelemetryMode::Summary,
            "off" | "none" => TelemetryMode::Off,
            "jsonl" => {
                if i >= argv.len() {
                    return Err("--telemetry=jsonl needs a path".into());
                }
                TelemetryMode::Jsonl(argv.remove(i))
            }
            other => match other.strip_prefix("jsonl=") {
                Some(path) => TelemetryMode::Jsonl(path.to_string()),
                None => {
                    return Err(format!(
                        "unknown telemetry mode `{other}` (summary | jsonl <path> | off)"
                    ))
                }
            },
        };
    }
    Ok(mode)
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let mode = match extract_telemetry(&mut argv) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    // The progress ticker and the flight recorder's counter tracks read
    // the metrics registry, whose counters only advance while telemetry
    // is enabled — so `--progress` and `scv trace` without an explicit
    // sink get a NoopSink (enabled pipeline, no output).
    let needs_counters =
        argv.iter().any(|a| a == "--progress") || argv.first().is_some_and(|c| c == "trace");
    match &mode {
        TelemetryMode::Off => {
            if needs_counters {
                telemetry::install(Box::new(telemetry::NoopSink));
            }
        }
        TelemetryMode::Summary => telemetry::install(Box::new(telemetry::SummarySink::default())),
        TelemetryMode::Jsonl(path) => {
            match telemetry::JsonlSink::create(std::path::Path::new(path)) {
                Ok(sink) => telemetry::install(Box::new(sink)),
                Err(e) => {
                    eprintln!("error: cannot open {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    }
    // With telemetry requested, allow the command to be omitted: the first
    // non-flag argument is then a protocol name and the command is `verify`.
    if !matches!(mode, TelemetryMode::Off) {
        if let Some(first) = argv.first() {
            if !matches!(
                first.as_str(),
                "verify" | "observe" | "monitor" | "trace" | "explain" | "fuzz" | "list"
            ) {
                argv.insert(0, "verify".to_string());
            }
        }
    }
    let code = run(&argv);
    telemetry::shutdown(); // flushes aggregates to the sink
    code
}

/// `scv fuzz`: a seeded, budgeted differential-fuzzing campaign over the
/// generated protocol family, plus the fault-injection self-test.
fn run_fuzz_cmd(rest: &[String]) -> ExitCode {
    use sc_verify::fuzz::{fault_injection_self_test, run_fuzz, FuzzOptions};
    let mut opts = FuzzOptions {
        seed: 42,
        cases: 200,
        ..FuzzOptions::default()
    };
    let mut self_test = true;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{name}: {e}"))
        };
        let parsed = match flag.as_str() {
            "--seed" => val("--seed").map(|v| opts.seed = v),
            "--cases" => val("--cases").map(|v| opts.cases = v as usize),
            "--budget" => {
                val("--budget").map(|v| opts.budget = Some(std::time::Duration::from_secs(v)))
            }
            "--mc-every" => val("--mc-every").map(|v| opts.mc_every = v as usize),
            "--mc-states" => val("--mc-states").map(|v| opts.mc_states = v as usize),
            "--runs" => val("--runs").map(|v| opts.runs_per_case = v as usize),
            "--run-len" => val("--run-len").map(|v| opts.run_len = v as usize),
            "--corpus" => match it.next() {
                Some(dir) => {
                    opts.corpus_dir = Some(std::path::PathBuf::from(dir));
                    Ok(())
                }
                None => Err("--corpus needs a directory".to_string()),
            },
            "--no-self-test" => {
                self_test = false;
                Ok(())
            }
            other => Err(format!("unknown flag {other}")),
        };
        if let Err(e) = parsed {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    }
    println!(
        "fuzzing: seed {}, {} cases{}, {} runs/case, mc every {} case(s)…",
        opts.seed,
        opts.cases,
        opts.budget
            .map(|b| format!(", budget {}s", b.as_secs()))
            .unwrap_or_default(),
        opts.runs_per_case,
        opts.mc_every
    );
    let report = run_fuzz(&opts);
    println!(
        "ran {} cases ({} SC, {} mutated){}: {} runs through the oracle stack, {} mc matrix runs ({} bounded)",
        report.cases,
        report.sc_cases,
        report.mutated_cases,
        if report.budget_exhausted {
            " [budget exhausted]"
        } else {
            ""
        },
        report.runs_checked,
        report.mc_runs,
        report.mc_bounded
    );
    println!(
        "injected bugs flagged: {}/{}",
        report.bugs_flagged, report.mutated_cases
    );
    for d in &report.disagreements {
        println!(
            "DISAGREEMENT (case {}, {}): {}",
            d.case, d.config, d.disagreement
        );
        if let Some(shrunk) = &d.shrunk {
            println!(
                "  shrunk to {} actions as `{}`",
                shrunk.actions.len(),
                shrunk.name
            );
        }
    }
    let mut ok = report.ok();
    if self_test {
        match fault_injection_self_test(opts.seed) {
            Ok(case) => println!(
                "self-test: synthetic disagreement shrunk to {} actions and replayed from the corpus format",
                case.actions.len()
            ),
            Err(e) => {
                println!("SELF-TEST FAILED: {e}");
                ok = false;
            }
        }
    }
    if ok {
        println!("fuzzing clean: all oracles agreed");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run(argv: &[String]) -> ExitCode {
    let Some(cmd) = argv.first() else {
        eprintln!("usage: scv <verify|observe|monitor|trace|explain|fuzz|list> [protocol] [flags]");
        return ExitCode::from(2);
    };
    if cmd == "fuzz" {
        return run_fuzz_cmd(&argv[1..]);
    }
    if cmd == "list" {
        println!("serial       atomic serial memory (SC)");
        println!("msi          snooping MSI, atomic bus (SC)");
        println!("msi-buggy    MSI with a lost invalidation (not SC)");
        println!("mesi         MESI with silent E->M upgrades (SC)");
        println!("mesi-buggy   MESI with a stale snoop (not SC)");
        println!("directory    directory protocol with response buffers (SC)");
        println!("lazy         lazy caching, memory-write ST order (SC)");
        println!("tso          store buffers without fences (not SC)");
        println!("fig4         the paper's Get-Shared cache (not SC / not in Γ)");
        return ExitCode::SUCCESS;
    }
    let Some(proto_name) = argv.get(1).map(|s| s.as_str()) else {
        eprintln!("usage: scv {cmd} <protocol> [flags]");
        return ExitCode::from(2);
    };
    let args = match Args::parse(&argv[2..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if args.checkpoint_every.is_some() && args.checkpoint.is_none() {
        eprintln!("warning: --checkpoint-every has no effect without --checkpoint PATH");
    }
    let _ = with_protocol::<()>; // keep the helper referenced

    match cmd.as_str() {
        "verify" => dispatch!(proto_name, args.params(), |p| {
            println!(
                "verifying {} (p={}, b={}, v={}, L={}) with {} thread(s) [{:?}], cap {} states…",
                p.name(),
                args.p,
                args.b,
                args.v,
                p.locations(),
                args.threads,
                args.strategy,
                args.max_states
            );
            if telemetry::enabled() {
                telemetry::event(telemetry::Event::RunStart {
                    name: format!("verify/{}", p.name()),
                    params: vec![
                        ("p".into(), args.p.to_string()),
                        ("b".into(), args.b.to_string()),
                        ("v".into(), args.v.to_string()),
                        ("threads".into(), args.threads.to_string()),
                        ("strategy".into(), format!("{:?}", args.strategy)),
                        ("max_states".into(), args.max_states.to_string()),
                        ("symmetry".into(), format!("{:?}", args.symmetry)),
                        (
                            "expand".into(),
                            (if args.lazy { "lazy" } else { "eager" }).to_string(),
                        ),
                    ],
                });
            }
            let ticker = args.progress.then(|| {
                telemetry::start_progress(telemetry::ProgressOptions {
                    target_states: Some(args.max_states as u64),
                    ..Default::default()
                })
            });
            // The facade owns the RunReport (params, verdict, metrics), so
            // the CLI only adds the RunStart event and the summary lines.
            let run = Verifier::with_options(p, args.verify_options()).run_controlled();
            if let Some(t) = ticker {
                t.stop();
            }
            let out = match run {
                Ok(out) => out,
                Err(e) => {
                    eprintln!("error: checkpoint: {e}");
                    return ExitCode::from(2);
                }
            };
            let s = out.stats();
            match out {
                Outcome::Verified { .. } => {
                    println!(
                        "VERIFIED: sequentially consistent ({} states, {} transitions, depth {}, {:?})",
                        s.states, s.transitions, s.depth, s.elapsed
                    );
                    ExitCode::SUCCESS
                }
                Outcome::Violation {
                    run, trace, reason, ..
                } => {
                    println!("NOT VERIFIED: {reason}");
                    println!("violating run ({} actions):", run.len());
                    for a in &run {
                        println!("  {a}");
                    }
                    println!("trace: {trace}");
                    println!(
                        "independent SC check of the trace: {}",
                        if has_serial_reordering(&trace) {
                            "has a serial reordering (protocol is outside Γ for this generator)"
                        } else {
                            "NO serial reordering — genuine SC violation"
                        }
                    );
                    ExitCode::FAILURE
                }
                Outcome::Bounded { .. } => {
                    println!(
                        "INCONCLUSIVE: state cap reached ({} states); raise --max-states",
                        s.states
                    );
                    ExitCode::from(3)
                }
                Outcome::Inconclusive {
                    reason, coverage, ..
                } => {
                    println!("INCONCLUSIVE: interrupted by {reason} ({coverage})");
                    match &args.checkpoint {
                        Some(path) => println!(
                            "checkpoint written; resume with: scv verify {proto_name} --resume {path}"
                        ),
                        None => println!(
                            "no checkpoint was requested; pass --checkpoint PATH to make \
                             interrupted runs resumable"
                        ),
                    }
                    ExitCode::from(3)
                }
            }
        }),
        "trace" => dispatch!(proto_name, args.params(), |p| {
            let out_path = args.out.clone().unwrap_or_else(|| "trace.json".to_string());
            println!(
                "tracing {} (p={}, b={}, v={}) with {} thread(s), cap {} states → {out_path}",
                p.name(),
                args.p,
                args.b,
                args.v,
                args.threads,
                args.max_states
            );
            telemetry::recorder::recorder_start(telemetry::DEFAULT_RING_CAPACITY);
            let ticker = args.progress.then(|| {
                telemetry::start_progress(telemetry::ProgressOptions {
                    target_states: Some(args.max_states as u64),
                    ..Default::default()
                })
            });
            let run = Verifier::with_options(p, args.verify_options()).run_controlled();
            if let Some(t) = ticker {
                t.stop();
            }
            let out = match run {
                Ok(out) => out,
                Err(e) => {
                    telemetry::recorder::recorder_stop();
                    eprintln!("error: checkpoint: {e}");
                    return ExitCode::from(2);
                }
            };
            telemetry::recorder::recorder_stop();
            let timelines = telemetry::recorder::drain();
            let s = out.stats();
            match telemetry::write_chrome_trace(std::path::Path::new(&out_path), &timelines) {
                Ok(()) => {
                    let events: usize = timelines.iter().map(|t| t.events.len()).sum();
                    let dropped: u64 = timelines.iter().map(|t| t.dropped).sum();
                    println!(
                        "wrote {out_path}: {} track(s), {events} events ({dropped} dropped); \
                         open at https://ui.perfetto.dev or chrome://tracing",
                        timelines.len()
                    );
                }
                Err(e) => {
                    eprintln!("error: cannot write {out_path}: {e}");
                    return ExitCode::from(2);
                }
            }
            println!(
                "verdict: {} ({} states, {} transitions, depth {}, {:?})",
                verdict_str(&out),
                s.states,
                s.transitions,
                s.depth,
                s.elapsed
            );
            match out {
                // An interrupted search still wrote a useful trace, so an
                // Inconclusive verdict is not a trace-command failure.
                Outcome::Verified { .. }
                | Outcome::Bounded { .. }
                | Outcome::Inconclusive { .. } => ExitCode::SUCCESS,
                Outcome::Violation { .. } => ExitCode::FAILURE,
            }
        }),
        "explain" => dispatch!(proto_name, args.params(), |p| {
            println!(
                "searching {} (p={}, b={}, v={}) for an SC violation, cap {} states…",
                p.name(),
                args.p,
                args.b,
                args.v,
                args.max_states
            );
            let out =
                match Verifier::with_options(p.clone(), args.verify_options()).run_controlled() {
                    Ok(out) => out,
                    Err(e) => {
                        eprintln!("error: checkpoint: {e}");
                        return ExitCode::from(2);
                    }
                };
            match out {
                Outcome::Violation { run, .. } => match explain_violation(&p, &run) {
                    Ok(ex) => {
                        print!("{}", ex.narration);
                        match &args.dot {
                            Some(path) => {
                                if let Err(e) = std::fs::write(path, &ex.dot) {
                                    eprintln!("error: cannot write {path}: {e}");
                                    return ExitCode::from(2);
                                }
                                println!(
                                    "constraint graph written to {path} \
                                     (render with: dot -Tsvg {path})"
                                );
                            }
                            None => println!("\n{}", ex.dot),
                        }
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("error: cannot explain the violating run: {e}");
                        ExitCode::FAILURE
                    }
                },
                Outcome::Verified { stats } => {
                    println!(
                        "nothing to explain: protocol verified ({} states)",
                        stats.states
                    );
                    ExitCode::FAILURE
                }
                Outcome::Bounded { stats } => {
                    println!(
                        "nothing to explain: no violation within {} states; raise --max-states",
                        stats.states
                    );
                    ExitCode::from(3)
                }
                Outcome::Inconclusive {
                    reason, coverage, ..
                } => {
                    println!("nothing to explain: interrupted by {reason} ({coverage})");
                    ExitCode::from(3)
                }
            }
        }),
        "observe" => dispatch!(proto_name, args.params(), |p| {
            use rand::SeedableRng;
            let mut rng = rand::rngs::SmallRng::seed_from_u64(args.seed);
            let mut runner = Runner::new(p.clone());
            runner.run_random(args.steps, 0.5, &mut rng);
            let run = runner.into_run();
            println!(
                "run of {} ({} steps, {} memory ops):",
                p.name(),
                run.len(),
                run.trace().len()
            );
            for s in &run.steps {
                println!("  {}", s.action);
            }
            let d = Observer::observe_run(&p, &run);
            println!("\ndescriptor (k = {}):", d.k);
            println!("{d}");
            println!("\nchecker verdict: {:?}", ScChecker::check(&d));
            ExitCode::SUCCESS
        }),
        "monitor" => dispatch!(proto_name, args.params(), |p| {
            use rand::SeedableRng;
            let mut rng = rand::rngs::SmallRng::seed_from_u64(args.seed);
            let mut runner = Runner::new(p.clone());
            let mut monitor = RunMonitor::new(&p);
            for i in 0..args.steps {
                if !runner.step_random(&mut rng) {
                    break;
                }
                let step = runner.run().steps.last().expect("just stepped");
                if let MonitorStep::Violation(e) = monitor.feed(step) {
                    println!("violation at step {i}: {e}");
                    println!("run so far: {}", runner.run().trace());
                    return ExitCode::FAILURE;
                }
            }
            match monitor.finish() {
                Ok(()) => {
                    println!(
                        "run of {} steps is consistent with sequential consistency",
                        runner.run().len()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    println!("violation at end of run: {e}");
                    ExitCode::FAILURE
                }
            }
        }),
        other => {
            eprintln!("unknown command {other}");
            ExitCode::from(2)
        }
    }
}
