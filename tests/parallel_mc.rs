//! Deterministic-search battery for the parallel model checker.
//!
//! Every protocol in the zoo is verified under every thread count in
//! {1, 2, 4, 8} and under both parallel engines (the default asynchronous
//! work-stealing search and the legacy level-synchronous BFS, kept
//! exactly for this differential test). The checked invariant is
//! *verdict-variant determinism*: whenever the search limits are not the
//! deciding factor, every schedule must produce the same `Outcome`
//! variant —
//!
//! * safe protocols capped far below their product size: always
//!   `Bounded` (never a spurious `Violation`);
//! * protocols with reachable violations and generous caps: always
//!   `Violation` (never a missed bug);
//! * exhaustive searches (the `SCV_STRESS=1`-gated release-mode tests):
//!   always
//!   `Verified`, with the per-engine conservation laws holding exactly
//!   (Σ expanded == states, Σ admitted + 1 == states) and every engine's
//!   reachable-class count within a small tolerance of sequential BFS's.
//!
//! Why a tolerance and not exact equality: product states are deduplicated
//! by canonical encoding, and that equality is deliberately *not a
//! congruence* — two enc-equal concrete states can have successor sets
//! that differ as encodings (the encoding quotients away bookkeeping, such
//! as observer auxiliary-ID choices, that does leak into which successor
//! representatives get admitted). Sequential FIFO BFS always picks the
//! same representatives, so its count is deterministic; any asynchronous
//! schedule may merge classes slightly differently and land within a few
//! percent. The verdict is unaffected — every representative of a
//! violating class still violates.
//!
//! Every counterexample any engine produces is independently validated by
//! replaying it through [`sc_verify::testing::RunMonitor`] — the paper's
//! §5 online monitor, a codepath entirely separate from the model
//! checker's product construction. Work-stealing counterexamples are not
//! necessarily shortest (asynchronous order), but they must still replay
//! to a genuine violation.

use sc_verify::prelude::*;
use sc_verify::testing::{MonitorStep, RunMonitor};

/// The full (threads, strategy) matrix. At `threads == 1` both strategies
/// collapse to the sequential searcher, so it appears once.
fn matrix() -> Vec<(usize, SearchStrategy)> {
    let mut m = vec![(1, SearchStrategy::WorkStealing)];
    for threads in [2usize, 4, 8] {
        m.push((threads, SearchStrategy::WorkStealing));
        m.push((threads, SearchStrategy::LevelSync));
    }
    m
}

fn opts(max_states: usize, threads: usize, strategy: SearchStrategy) -> VerifyOptions {
    // Small batches so even modest searches exercise chunk hand-off
    // and stealing, not just one worker draining one chunk.
    VerifyOptions::new()
        .max_states(max_states)
        .threads(threads)
        .strategy(strategy)
        .batch_size(32)
}

fn verdict(out: &Outcome) -> &'static str {
    match out {
        Outcome::Verified { .. } => "Verified",
        Outcome::Violation { .. } => "Violation",
        Outcome::Bounded { .. } => "Bounded",
        // No budget or cancellation is configured in these tests.
        Outcome::Inconclusive { .. } => "Inconclusive",
    }
}

/// Replay a counterexample through the protocol (resolving each action to
/// an enabled transition) and assert the §5 online monitor flags it.
fn replay_flags_violation<P: Protocol + Clone>(p: &P, run: &[Action]) {
    let mut runner = Runner::new(p.clone());
    for (i, action) in run.iter().enumerate() {
        let t = runner
            .enabled()
            .into_iter()
            .find(|t| t.action == *action)
            .unwrap_or_else(|| panic!("counterexample action {i} ({action:?}) not enabled"));
        runner.take(t);
    }
    let mut monitor = RunMonitor::new(p);
    let mut violated = false;
    for step in &runner.run().steps {
        if let MonitorStep::Violation(_) = monitor.feed(step) {
            violated = true;
            break;
        }
    }
    assert!(
        violated || monitor.finish().is_err(),
        "replayed counterexample must fail the online monitor"
    );
}

/// Run the whole matrix on one protocol and require a single verdict
/// variant throughout; validate every counterexample produced.
fn assert_matrix_verdict<P>(p: P, max_states: usize, expected: &str)
where
    P: Symmetry + Clone + Sync,
    P::State: Send + Sync + 'static,
{
    for (threads, strategy) in matrix() {
        let out = verify_protocol(p.clone(), opts(max_states, threads, strategy));
        assert_eq!(
            verdict(&out),
            expected,
            "threads={threads} strategy={strategy:?}: {:?}",
            out.stats()
        );
        if let Outcome::Violation { run, reason, .. } = &out {
            assert!(
                !run.is_empty(),
                "violating run must be non-trivial: {reason}"
            );
            replay_flags_violation(&p, run);
        }
    }
}

// ---- Safe protocols: capped far below the product size, every engine
// ---- must report Bounded and never a spurious violation.

#[test]
fn serial_memory_bounded_on_all_engines() {
    assert_matrix_verdict(SerialMemory::new(Params::new(2, 2, 2)), 6_000, "Bounded");
}

#[test]
fn msi_bounded_on_all_engines() {
    assert_matrix_verdict(MsiProtocol::new(Params::new(2, 1, 2)), 6_000, "Bounded");
}

#[test]
fn mesi_bounded_on_all_engines() {
    assert_matrix_verdict(MesiProtocol::new(Params::new(2, 1, 2)), 6_000, "Bounded");
}

#[test]
fn directory_bounded_on_all_engines() {
    assert_matrix_verdict(
        DirectoryProtocol::new(Params::new(2, 1, 1)),
        6_000,
        "Bounded",
    );
}

#[test]
fn lazy_caching_bounded_on_all_engines() {
    assert_matrix_verdict(
        LazyCaching::new(Params::new(2, 1, 1), 1, 1),
        6_000,
        "Bounded",
    );
}

// ---- Protocols with reachable violations: every engine must find one
// ---- (asynchronous schedules included), and each counterexample must
// ---- replay to a genuine monitor failure.

#[test]
fn buggy_msi_violates_on_all_engines() {
    assert_matrix_verdict(
        MsiProtocol::buggy(Params::new(2, 2, 1)),
        2_000_000,
        "Violation",
    );
}

#[test]
fn buggy_mesi_violates_on_all_engines() {
    assert_matrix_verdict(
        MesiProtocol::buggy(Params::new(2, 2, 1)),
        2_000_000,
        "Violation",
    );
}

#[test]
fn tso_violates_on_all_engines() {
    assert_matrix_verdict(
        StoreBufferTso::new(Params::new(2, 2, 1), 1),
        2_000_000,
        "Violation",
    );
}

#[test]
fn fig4_rejected_on_all_engines() {
    assert_matrix_verdict(
        Fig4Protocol::new(Params::new(2, 1, 2), 1),
        2_000_000,
        "Violation",
    );
}

// ---- Exhaustive differential test (release-mode; ~120k-state product
// ---- searched 7 times): all engines must agree on Verified, hold their
// ---- internal conservation laws exactly, and land within a small
// ---- tolerance of the sequential reachable-class count (see the module
// ---- docs for why exact equality is not the right spec).

/// Maximum relative drift allowed between an asynchronous engine's
/// reachable-class count and sequential BFS's. Measured drift on the
/// SerialMemory(2,1,1) product is ~1–3%; 5% gives headroom without
/// letting a real admission bug (which perturbs counts wildly or trips
/// the exact conservation laws) hide.
const CLASS_COUNT_TOLERANCE: f64 = 0.05;

fn assert_states_close(got: usize, reference: usize, context: &str) {
    let drift = (got as f64 - reference as f64).abs() / reference as f64;
    assert!(
        drift <= CLASS_COUNT_TOLERANCE,
        "{context}: state count {got} drifted {:.1}% from sequential {reference}",
        drift * 100.0
    );
}

/// Multi-million-state searches only make sense in release mode, so the
/// two stress tests below gate on `SCV_STRESS=1` instead of `#[ignore]`:
/// the nightly CI job (and anyone locally) runs them with
/// `SCV_STRESS=1 cargo test --release`, while a plain `cargo test`
/// reports them as passed-but-skipped without burning minutes in a
/// debug build.
fn stress_enabled() -> bool {
    match std::env::var_os("SCV_STRESS") {
        Some(v) => v == "1",
        None => false,
    }
}

/// Scheduler-statistics invariants under load, checked straight against
/// the work-stealing engine's per-worker counters.
#[test]
fn stress_work_stealing_stats_invariants() {
    if !stress_enabled() {
        eprintln!("skipping multi-million-state stress search; enable with SCV_STRESS=1");
        return;
    }
    use sc_verify::mc::{bfs, ws_search_detailed, BfsOptions, SearchResult, VerifySystem};

    // Part 1 — exhaustive search (no limit is hit), where the strict
    // conservation laws must hold: every admitted state is expanded
    // exactly once, so  Σ expanded == states  and  Σ admitted + 1 (the
    // initial state) == states. The count itself is only required to be
    // close to sequential BFS's — canonical-encoding equality is not a
    // congruence, so asynchronous schedules merge classes slightly
    // differently (module docs).
    let product = || VerifySystem::new(SerialMemory::new(Params::new(2, 1, 1)));
    let unbounded = BfsOptions::new().max_states(10_000_000);
    let seq_states = match bfs(&product(), unbounded) {
        SearchResult::Safe(stats) => stats.states,
        r => panic!("sequential search must be exhaustive, got {:?}", r.stats()),
    };
    assert!(
        seq_states > 50_000,
        "product unexpectedly small: {seq_states}"
    );
    for threads in [2usize, 4] {
        let (result, workers) = ws_search_detailed(&product(), unbounded, threads, 64);
        let stats = match result {
            SearchResult::Safe(stats) => stats,
            r => panic!("threads={threads}: expected Safe, got {:?}", r.stats()),
        };
        assert_states_close(stats.states, seq_states, &format!("threads={threads}"));
        let expanded: usize = workers.iter().map(|w| w.expanded).sum();
        let admitted: usize = workers.iter().map(|w| w.admitted).sum();
        assert_eq!(
            expanded, stats.states,
            "threads={threads}: expanded != seen"
        );
        assert_eq!(
            admitted + 1,
            stats.states,
            "threads={threads}: admitted + init != seen"
        );
        assert!(
            stats.steals > 0,
            "threads={threads}: no steals on a {seq_states}-state search"
        );
        assert!(stats.seen_batches > 0, "batched seen-set path never used");
        assert!(
            stats.peak_frontier > 0 && stats.peak_frontier < stats.states,
            "implausible peak frontier {}",
            stats.peak_frontier
        );
        assert_eq!(stats.workers, threads);
    }

    // Part 2 — a two-million-state sweep of a product too large to
    // exhaust (MSI 2,1,2): the cap must bite, and the scheduler counters
    // must stay coherent under sustained load.
    let big = VerifySystem::new(MsiProtocol::new(Params::new(2, 1, 2)));
    let capped = BfsOptions::new().max_states(2_000_000);
    let (result, workers) = ws_search_detailed(&big, capped, 4, 128);
    let stats = match result {
        SearchResult::Bounded(stats) => stats,
        SearchResult::Safe(stats) => stats, // in case the product fits after all
        r => panic!("MSI must not violate: {:?}", r.stats()),
    };
    assert!(
        stats.states >= 1_000_000,
        "sweep too small: {}",
        stats.states
    );
    let admitted: usize = workers.iter().map(|w| w.admitted).sum();
    assert_eq!(
        admitted + 1,
        stats.states,
        "every counted state was admitted exactly once"
    );
    assert!(stats.steals > 0);
    assert!(
        stats.seen_batches >= stats.states / 128,
        "batching cannot admit more than batch_size states per lock: {} batches for {} states",
        stats.seen_batches,
        stats.states
    );
}

#[test]
fn exhaustive_serial_memory_engines_agree() {
    if !stress_enabled() {
        eprintln!("skipping exhaustive 7-way product search; enable with SCV_STRESS=1");
        return;
    }
    let p = SerialMemory::new(Params::new(2, 1, 1));
    // threads == 1 collapses to the sequential FIFO searcher, whose
    // representative choice — and therefore class count — is
    // deterministic. It anchors the tolerance band for every schedule.
    let reference = verify_protocol(p.clone(), opts(400_000, 1, SearchStrategy::WorkStealing));
    assert!(reference.is_verified(), "{:?}", reference.stats());
    let want = reference.stats().states;
    assert!(want > 50_000, "product unexpectedly small: {want}");
    for (threads, strategy) in matrix() {
        let out = verify_protocol(p.clone(), opts(400_000, threads, strategy));
        assert!(
            out.is_verified(),
            "threads={threads} {strategy:?}: {:?}",
            out.stats()
        );
        assert_states_close(
            out.stats().states,
            want,
            &format!("threads={threads} {strategy:?}"),
        );
    }
}
