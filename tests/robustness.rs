//! Adversarial robustness: the finite-state checkers must never panic on
//! arbitrary (possibly garbage) descriptor streams, and whenever the full
//! SC checker *accepts* a stream, the decoded whole graph must genuinely
//! be an acyclic constraint graph for its trace — streaming acceptance is
//! sound even for inputs no observer would produce.

use proptest::prelude::*;
use sc_verify::descriptor::{DecodeError, IdNum};
use sc_verify::prelude::*;

const K: u32 = 4; // small ID space makes collisions/recycling frequent

fn arb_op() -> impl Strategy<Value = Op> {
    (0u8..2, 1u8..3, 1u8..3, 0u8..3).prop_map(|(kind, p, b, v)| {
        if kind == 0 {
            Op::load(ProcId(p), BlockId(b), Value(v))
        } else {
            Op::store(ProcId(p), BlockId(b), Value(v.max(1)))
        }
    })
}

fn arb_edgeset() -> impl Strategy<Value = EdgeSet> {
    (1u8..16).prop_map(EdgeSet::from_bits)
}

fn arb_symbol() -> impl Strategy<Value = Symbol> {
    let id = || 1..=(K + 1) as IdNum;
    prop_oneof![
        (id(), proptest::option::of(arb_op())).prop_map(|(id, label)| Symbol::Node { id, label }),
        (id(), id(), proptest::option::of(arb_edgeset()))
            .prop_map(|(from, to, label)| Symbol::Edge { from, to, label }),
        (id(), id()).prop_map(|(of, add)| Symbol::AddId { of, add }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Neither checker panics; and acceptance by the SC checker implies
    /// the decoded graph is an acyclic constraint graph for its trace.
    #[test]
    fn checkers_are_total_and_sound(symbols in proptest::collection::vec(arb_symbol(), 0..60)) {
        let mut d = Descriptor::new(K);
        d.symbols = symbols;

        // Totality: no panics, whatever the stream.
        let cycle_verdict = CycleChecker::check(&d);
        let sc_verdict = ScChecker::check(&d);

        // Soundness of the full checker: acceptance implies the decoded
        // graph is acyclic, every topological order of it is a *serial
        // reordering* of its trace (the property Lemma 3.1 needs — the
        // checker is deliberately reachability-loose on constraint 5, like
        // the paper's contraction rule, so it may accept graphs whose
        // forced edges are implied by paths rather than present), and the
        // order-totality and inheritance axioms (constraints 2–4) hold.
        if sc_verdict.is_ok() {
            let (dg, _) = decode(&d).expect("accepted stream decodes");
            let cg = dg.to_constraint_graph().expect("accepted stream is fully labeled");
            prop_assert!(cg.is_acyclic(), "accepted a cyclic stream: {d}");
            let trace: Trace = cg.labels().iter().copied().collect();
            let r = sc_verify::graph::serial_reordering_from_graph(&cg)
                .expect("acyclic graph has a topological order");
            prop_assert!(
                r.preserves_program_order(&trace),
                "accepted order violates program order: {}", d
            );
            prop_assert!(
                r.apply(&trace).is_serial(),
                "accepted order is not serial: {}", d
            );
            // Constraints 2–4 are enforced exactly, so any axiom failure
            // on an accepted stream must be a constraint-5 path-vs-edge
            // looseness, never an order or inheritance defect.
            if let Err(v) = validate_constraint_graph(&cg, &trace) {
                use sc_verify::graph::AxiomViolation as AV;
                prop_assert!(
                    matches!(v, AV::Forced { .. } | AV::ForcedBottom { .. }),
                    "accepted a stream violating constraint 2-4: {v} in {}", d
                );
            }
            // The SC checker subsumes the plain cycle checker.
            prop_assert!(cycle_verdict.is_ok());
        }
    }

    /// The decoder is total: it either returns a graph or a structured
    /// error, never panics, and its stats are within the ID-space bound.
    #[test]
    fn decoder_is_total(symbols in proptest::collection::vec(arb_symbol(), 0..80)) {
        let mut d = Descriptor::new(K);
        d.symbols = symbols;
        match decode(&d) {
            Ok((dg, stats)) => {
                prop_assert!(stats.max_active <= (K + 1) as usize);
                prop_assert_eq!(dg.node_count(), d.node_count());
            }
            Err(DecodeError::DanglingEdge { .. }) | Err(DecodeError::IdOutOfRange { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected decode error {e}"),
        }
    }

    /// Agreement on cycle detection: whenever decode succeeds, the
    /// streaming cycle checker's verdict matches whole-graph acyclicity.
    #[test]
    fn cycle_checker_matches_decode(symbols in proptest::collection::vec(arb_symbol(), 0..60)) {
        let mut d = Descriptor::new(K);
        d.symbols = symbols;
        if let Ok((dg, _)) = decode(&d) {
            let stream = CycleChecker::check(&d).is_ok();
            prop_assert_eq!(stream, dg.is_acyclic(), "stream {}", d);
        }
    }
}
