//! Replay of the committed fuzz regression corpus.
//!
//! Every `.case` file under `tests/corpus/fuzz/` is a shrunk reproducer
//! from a past (or self-test-synthesized) fuzzing disagreement. Each is
//! replayed through the real oracle stack on every `cargo test`, pinning
//! the streaming checker's verdict — a fixed bug stays fixed.
//!
//! Regenerate the reference corpus after intentional changes with:
//!
//! ```text
//! SCV_WRITE_CORPUS=1 cargo test --test fuzz_corpus
//! ```

use sc_verify::fuzz::{load_corpus, reference_corpus, Expectation};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
        .join("fuzz")
}

/// With `SCV_WRITE_CORPUS=1`, (re)write the reference corpus instead of
/// checking it; the committed files are the output of this test.
#[test]
fn committed_corpus_replays_clean() {
    let dir = corpus_dir();
    if std::env::var_os("SCV_WRITE_CORPUS").is_some() {
        for case in reference_corpus() {
            let path = case.save(&dir).expect("write corpus case");
            println!("wrote {}", path.display());
        }
        return;
    }
    let corpus = load_corpus(&dir).expect("corpus parses");
    assert!(
        !corpus.is_empty(),
        "no corpus at {} — regenerate with SCV_WRITE_CORPUS=1",
        dir.display()
    );
    for case in &corpus {
        let v = case
            .replay_check()
            .unwrap_or_else(|e| panic!("corpus regression: {e}"));
        match case.expect {
            Expectation::Reject => assert!(!v.accepted, "{}", case.name),
            Expectation::Accept => assert!(v.accepted && v.sc_trace, "{}", case.name),
        }
    }
}

/// The committed files must stay in sync with the deterministic
/// reference corpus (same names, same verdicts — byte-level equality of
/// the action sequences is also deterministic, so check it too).
#[test]
fn committed_corpus_matches_the_reference() {
    if std::env::var_os("SCV_WRITE_CORPUS").is_some() {
        return;
    }
    let committed = load_corpus(&corpus_dir()).expect("corpus parses");
    let mut reference = reference_corpus();
    reference.sort_by(|a, b| a.name.cmp(&b.name));
    let mut committed = committed;
    committed.sort_by(|a, b| a.name.cmp(&b.name));
    assert_eq!(
        committed, reference,
        "committed corpus drifted from reference_corpus(); \
         regenerate with SCV_WRITE_CORPUS=1 cargo test --test fuzz_corpus"
    );
}

/// Shrunk reproducers must stay small — the whole point of the corpus is
/// that a human can read a case.
#[test]
fn corpus_reject_cases_are_minimal() {
    if std::env::var_os("SCV_WRITE_CORPUS").is_some() {
        return;
    }
    let corpus = load_corpus(&corpus_dir()).expect("corpus parses");
    for case in corpus {
        if case.expect == Expectation::Reject {
            assert!(
                case.actions.len() <= 10,
                "{} has {} actions",
                case.name,
                case.actions.len()
            );
        }
    }
}
