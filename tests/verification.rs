//! End-to-end verification outcomes for the protocol zoo — the headline
//! table of the reproduction (experiment E5 in DESIGN.md).
//!
//! Product state spaces run to 10⁵–10⁶ states even for tiny protocols
//! (DESIGN.md §6, an empirical confirmation of the paper's §4.4
//! feasibility concern), so positive results here assert *bounded safety*
//! (no violation within an explicit state cap; `cargo bench`/the
//! `experiments` binary run the exhaustive versions in release mode),
//! while negative results always produce — and independently validate —
//! a concrete counterexample run.

use sc_verify::prelude::*;

fn opts(max_states: usize) -> VerifyOptions {
    VerifyOptions::new().max_states(max_states)
}

fn safe_within(out: &Outcome) -> bool {
    !matches!(out, Outcome::Violation { .. })
}

#[test]
fn serial_memory_is_safe() {
    let out = verify_protocol(SerialMemory::new(Params::new(2, 2, 2)), opts(40_000));
    assert!(safe_within(&out), "{:?}", out.stats());
}

#[test]
fn msi_is_safe() {
    let out = verify_protocol(MsiProtocol::new(Params::new(2, 1, 2)), opts(40_000));
    assert!(safe_within(&out), "{:?}", out.stats());
}

#[test]
fn mesi_is_safe() {
    let out = verify_protocol(MesiProtocol::new(Params::new(2, 1, 2)), opts(40_000));
    assert!(safe_within(&out), "{:?}", out.stats());
}

#[test]
fn directory_is_safe() {
    let out = verify_protocol(DirectoryProtocol::new(Params::new(2, 1, 1)), opts(40_000));
    assert!(safe_within(&out), "{:?}", out.stats());
}

#[test]
fn lazy_caching_is_safe() {
    let out = verify_protocol(LazyCaching::new(Params::new(2, 1, 1), 1, 1), opts(40_000));
    assert!(safe_within(&out), "{:?}", out.stats());
}

#[test]
fn buggy_msi_yields_genuine_counterexample() {
    match verify_protocol(MsiProtocol::buggy(Params::new(2, 2, 1)), opts(2_000_000)) {
        Outcome::Violation { trace, run, .. } => {
            assert!(
                !has_serial_reordering(&trace),
                "counterexample must be non-SC"
            );
            assert!(!run.is_empty());
        }
        o => panic!("expected Violation, got {:?}", o.stats()),
    }
}

#[test]
fn buggy_mesi_yields_genuine_counterexample() {
    match verify_protocol(MesiProtocol::buggy(Params::new(2, 2, 1)), opts(2_000_000)) {
        Outcome::Violation { trace, .. } => {
            assert!(
                !has_serial_reordering(&trace),
                "counterexample must be non-SC: {trace}"
            );
        }
        o => panic!("expected Violation, got {:?}", o.stats()),
    }
}

#[test]
fn tso_yields_genuine_counterexample() {
    match verify_protocol(
        StoreBufferTso::new(Params::new(2, 2, 1), 1),
        opts(2_000_000),
    ) {
        Outcome::Violation { trace, .. } => {
            assert!(!has_serial_reordering(&trace));
        }
        o => panic!("expected Violation, got {:?}", o.stats()),
    }
}

#[test]
fn fig4_is_rejected() {
    // Fig4 lies outside Γ for the real-time ST order generator; the
    // shortest rejected run may itself be SC (rejection = "no witness
    // under this generator"), but the protocol also has genuinely non-SC
    // traces: exhibit one by hand and confirm it.
    let out = verify_protocol(Fig4Protocol::new(Params::new(2, 1, 2), 1), opts(2_000_000));
    assert!(
        matches!(out, Outcome::Violation { .. }),
        "got {:?}",
        out.stats()
    );

    // Hand-driven genuine violation: P1 stores 1, P2 snapshots it, P1
    // stores 2, P1 re-fetches the stale snapshot and reads 1 after having
    // stored 2 — non-SC within P1's own program order.
    let proto = Fig4Protocol::new(Params::new(2, 1, 2), 1);
    let mut r = Runner::new(proto);
    type T = sc_verify::protocol::Transition<Vec<Option<(u8, Value)>>>;
    let take = |r: &mut Runner<Fig4Protocol>, want: &dyn Fn(&T) -> bool| {
        let t = r.enabled().into_iter().find(|t| want(t)).expect("enabled");
        r.take(t);
    };
    take(&mut r, &|t| {
        t.action.op() == Some(Op::store(ProcId(1), BlockId(1), Value(1)))
    });
    take(
        &mut r,
        &|t| matches!(t.action, Action::Internal("Get-Shared", pb) if (pb >> 8) == 2),
    );
    take(&mut r, &|t| {
        t.action.op() == Some(Op::store(ProcId(1), BlockId(1), Value(2)))
    });
    take(
        &mut r,
        &|t| matches!(t.action, Action::Internal("Get-Shared", pb) if (pb >> 8) == 1),
    );
    take(&mut r, &|t| {
        t.action.op() == Some(Op::load(ProcId(1), BlockId(1), Value(1)))
    });
    let trace = r.run().trace();
    assert!(
        !has_serial_reordering(&trace),
        "stale self-read must violate SC: {trace}"
    );
}

#[test]
fn counterexamples_are_shortest() {
    // BFS guarantees minimal counterexamples: the TSO violation needs the
    // two buffered stores, the two stale loads, and the two serializing
    // drains — nothing more.
    match verify_protocol(
        StoreBufferTso::new(Params::new(2, 2, 1), 1),
        opts(2_000_000),
    ) {
        Outcome::Violation { run, .. } => {
            assert!(run.len() <= 6, "counterexample unexpectedly long: {run:?}");
        }
        o => panic!("expected Violation, got {:?}", o.stats()),
    }
}

#[test]
fn parallel_and_sequential_verification_agree() {
    let seq = verify_protocol(MsiProtocol::buggy(Params::new(2, 2, 1)), opts(2_000_000));
    let par = verify_protocol(
        MsiProtocol::buggy(Params::new(2, 2, 1)),
        opts(2_000_000).threads(4),
    );
    assert!(matches!(seq, Outcome::Violation { .. }));
    assert!(matches!(par, Outcome::Violation { .. }));
}
