//! Integration of the automata substrate with the protocol framework:
//! the trace language of a protocol checked against a hand-built
//! specification DFA — the language-theoretic view that Theorem 3.1's
//! reduction to language inclusion rests on.

use sc_verify::automata::{equivalent, includes, Dfa, Nfa};
use sc_verify::prelude::*;
use std::collections::HashMap;

/// Build the trace-language NFA of a protocol: states are reachable
/// protocol states, transitions are memory operations, and internal
/// actions are collapsed by ε-closure (every state reachable via internal
/// actions shares its op-transitions). All states accept (trace languages
/// are prefix-closed).
fn trace_language<P: Protocol>(p: &P) -> Nfa {
    let params = p.params();
    let alphabet = Op::alphabet_size(&params);
    // Enumerate reachable states.
    let mut index: HashMap<P::State, u32> = HashMap::new();
    let mut states = vec![p.initial()];
    index.insert(p.initial(), 0);
    let mut qi = 0;
    while qi < states.len() {
        let s = states[qi].clone();
        qi += 1;
        for t in p.transitions(&s) {
            if !index.contains_key(&t.next) {
                index.insert(t.next.clone(), states.len() as u32);
                states.push(t.next);
            }
        }
    }
    // ε-closure over internal actions.
    let n = states.len();
    let mut closure: Vec<Vec<u32>> = vec![Vec::new(); n];
    for i in 0..n {
        let mut seen = vec![false; n];
        let mut stack = vec![i as u32];
        seen[i] = true;
        while let Some(x) = stack.pop() {
            closure[i].push(x);
            for t in p.transitions(&states[x as usize]) {
                if matches!(t.action, Action::Internal(..)) {
                    let j = index[&t.next];
                    if !seen[j as usize] {
                        seen[j as usize] = true;
                        stack.push(j);
                    }
                }
            }
        }
    }
    let mut nfa = Nfa::new(alphabet, n);
    nfa.initial = vec![0];
    for a in &mut nfa.accepting {
        *a = true;
    }
    for (i, cl) in closure.iter().enumerate() {
        for &x in cl {
            for t in p.transitions(&states[x as usize]) {
                if let Action::Mem(op) = t.action {
                    // Target includes its own closure implicitly: point at
                    // the concrete successor; closure at the next step is
                    // handled because every state's closure is expanded.
                    let j = index[&t.next];
                    nfa.add_transition(i as u32, op.encode(&params), j);
                }
            }
        }
    }
    nfa
}

/// The specification DFA for serial memory: every `LD(P,B,V)` returns the
/// value of the most recent `ST(*,B,*)` (or ⊥). States = memory contents.
fn serial_spec(params: &Params) -> Dfa {
    let alphabet = Op::alphabet_size(params);
    let n_mem = (params.v as usize + 1).pow(params.b as u32);
    // State encoding: base-(v+1) digits per block; plus one dead state.
    let dead = n_mem as u32;
    let mut d = Dfa::new(alphabet, n_mem + 1);
    for m in 0..n_mem {
        d.accepting[m] = true;
        let digit = |m: usize, b: usize| -> u8 {
            ((m / (params.v as usize + 1).pow(b as u32)) % (params.v as usize + 1)) as u8
        };
        for code in 0..alphabet {
            let op = Op::decode(code, params);
            let b = op.block.idx();
            let next = if op.is_store() {
                if op.value.is_bottom() {
                    dead // no ST stores ⊥
                } else {
                    let old = digit(m, b) as usize;
                    (m - old * (params.v as usize + 1).pow(b as u32)
                        + op.value.0 as usize * (params.v as usize + 1).pow(b as u32))
                        as u32
                }
            } else if op.value.0 == digit(m, b) {
                m as u32
            } else {
                dead
            };
            d.set_transition(m as u32, code, next);
        }
    }
    for code in 0..alphabet {
        d.set_transition(dead, code, dead);
    }
    d
}

#[test]
fn serial_memory_trace_language_equals_spec() {
    let params = Params::new(2, 2, 2);
    let proto = SerialMemory::new(params);
    let lang = trace_language(&proto).determinize().minimize();
    let spec = serial_spec(&params).minimize();
    assert_eq!(
        equivalent(&lang, &spec),
        Ok(()),
        "serial memory = serial spec"
    );
}

#[test]
fn msi_traces_are_not_serial_but_are_included_in_sc() {
    // MSI's trace language is NOT the serial language (stale values can be
    // read while another processor holds M... actually: with an atomic
    // bus, loads always return the coherent value — MSI's trace language
    // IS serial). Verify inclusion in the serial spec and equality.
    let params = Params::new(2, 1, 2);
    let proto = MsiProtocol::new(params);
    let lang = trace_language(&proto).determinize().minimize();
    let spec = serial_spec(&params).minimize();
    assert_eq!(
        includes(&lang, &spec),
        Ok(()),
        "MSI traces are serial traces"
    );
}

#[test]
fn tso_traces_exceed_the_serial_language() {
    let params = Params::new(2, 2, 1);
    let proto = StoreBufferTso::new(params, 1);
    let lang = trace_language(&proto).determinize().minimize();
    let spec = serial_spec(&params).minimize();
    // TSO produces non-serial traces: inclusion must FAIL, and the
    // counterexample is a genuine TSO anomaly in real-time order.
    let ce = includes(&lang, &spec).unwrap_err();
    let ops: Vec<Op> = ce.iter().map(|&c| Op::decode(c, &params)).collect();
    let t = Trace::from_ops(ops);
    assert!(!t.is_serial(), "counterexample must be non-serial: {t}");
}

#[test]
fn buggy_msi_trace_language_differs_from_correct_msi() {
    let params = Params::new(2, 1, 1);
    let good = trace_language(&MsiProtocol::new(params))
        .determinize()
        .minimize();
    let bad = trace_language(&MsiProtocol::buggy(params))
        .determinize()
        .minimize();
    // The buggy protocol emits traces the correct one cannot.
    assert_eq!(includes(&good, &bad), Ok(()), "bug only adds behaviours");
    let ce = includes(&bad, &good).unwrap_err();
    let ops: Vec<Op> = ce.iter().map(|&c| Op::decode(c, &params)).collect();
    // The separating trace exercises the stale read.
    assert!(!ops.is_empty());
}
