//! Cross-crate integration: the full observe → describe → check pipeline
//! against whole-graph references, over random workloads and random
//! protocol runs — including property-based tests.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sc_verify::graph::random::{random_witnessed_trace, WorkloadConfig};
use sc_verify::graph::{baseline::BaselineChecker, baseline::BaselineVerdict, saturated_graph};
use sc_verify::prelude::*;

/// Every witnessed random trace flows through: saturated graph → encode at
/// exact bandwidth → streaming checkers agree with the references.
#[test]
fn witnessed_traces_verify_at_exact_bandwidth() {
    let mut rng = SmallRng::seed_from_u64(7);
    let cfg = WorkloadConfig::new(Params::new(3, 2, 3), 60);
    for _ in 0..20 {
        let wt = random_witnessed_trace(&cfg, 6, &mut rng);
        let g = saturated_graph(&wt.trace, &wt.witness);
        assert_eq!(validate_constraint_graph(&g, &wt.trace), Ok(()));
        assert!(g.is_acyclic());
        let k = g.bandwidth().max(1) as u32;
        let d = encode(&g, k).unwrap();
        assert_eq!(CycleChecker::check(&d), Ok(()));
        assert_eq!(ScChecker::check(&d), Ok(()));
        assert!(matches!(
            BaselineChecker::check(&wt.trace, &wt.witness),
            BaselineVerdict::Consistent(_)
        ));
    }
}

/// Protocol runs through the observer: decoded graphs satisfy the axioms,
/// and the streaming verdict matches the whole-graph verdict.
fn pipeline_matches_reference<P: Protocol + Clone>(
    p: P,
    steps: usize,
    seeds: std::ops::Range<u64>,
) {
    for seed in seeds {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut runner = Runner::new(p.clone());
        runner.run_random(steps, 0.5, &mut rng);
        let run = runner.into_run();
        let d = Observer::observe_run(&p, &run);
        let streaming = ScChecker::check(&d).is_ok();
        let whole = match decode(&d) {
            Err(_) => false,
            Ok((dg, _)) => match dg.to_constraint_graph() {
                Err(_) => false,
                Ok(cg) => cg.is_acyclic() && validate_constraint_graph(&cg, &run.trace()).is_ok(),
            },
        };
        assert_eq!(
            streaming,
            whole,
            "{}: streaming vs whole-graph disagree on seed {seed}: {}",
            p.name(),
            run.trace()
        );
        // Soundness: acceptance implies the trace is SC (checked with the
        // direct search on short traces).
        if streaming && run.trace().len() <= 14 {
            assert!(
                has_serial_reordering(&run.trace()),
                "{}: unsound accept on seed {seed}",
                p.name()
            );
        }
    }
}

#[test]
fn msi_pipeline_matches_reference() {
    pipeline_matches_reference(MsiProtocol::new(Params::new(2, 2, 2)), 50, 0..10);
    pipeline_matches_reference(MsiProtocol::buggy(Params::new(2, 2, 2)), 30, 0..10);
}

#[test]
fn directory_pipeline_matches_reference() {
    pipeline_matches_reference(DirectoryProtocol::new(Params::new(2, 2, 2)), 60, 0..10);
}

#[test]
fn lazy_pipeline_matches_reference() {
    pipeline_matches_reference(LazyCaching::new(Params::new(2, 2, 2), 2, 2), 60, 0..10);
}

#[test]
fn tso_pipeline_matches_reference() {
    pipeline_matches_reference(StoreBufferTso::new(Params::new(2, 2, 2), 2), 24, 0..15);
}

#[test]
fn fig4_pipeline_matches_reference() {
    pipeline_matches_reference(Fig4Protocol::new(Params::new(2, 2, 2), 2), 30, 0..15);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Property: encode/decode is the identity on saturated witness graphs
    /// at any bandwidth at or above the graph's.
    #[test]
    fn prop_encode_decode_roundtrip(seed in 0u64..10_000, len in 4usize..50, slack in 0u32..4) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let cfg = WorkloadConfig::new(Params::new(3, 2, 3), len);
        let wt = random_witnessed_trace(&cfg, 5, &mut rng);
        let g = saturated_graph(&wt.trace, &wt.witness);
        let k = g.bandwidth().max(1) as u32 + slack;
        let d = encode(&g, k).unwrap();
        let (dg, stats) = decode(&d).unwrap();
        prop_assert_eq!(dg.to_constraint_graph().unwrap(), g);
        prop_assert!(stats.max_active <= (k + 1) as usize);
    }

    /// Property: the streaming cycle checker agrees with whole-graph
    /// acyclicity on arbitrary (possibly cyclic) annotated graphs.
    #[test]
    fn prop_cycle_checker_agrees(seed in 0u64..10_000, len in 4usize..40, extra in 0usize..4) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let cfg = WorkloadConfig::new(Params::new(3, 2, 3), len);
        let wt = random_witnessed_trace(&cfg, 5, &mut rng);
        let mut g = saturated_graph(&wt.trace, &wt.witness);
        // Inject extra random edges; some create cycles.
        use rand::Rng;
        for _ in 0..extra {
            let u = rng.gen_range(0..g.node_count());
            let v = rng.gen_range(0..g.node_count());
            g.add_edge(u, v, EdgeSet::FORCED);
        }
        let d = naive_descriptor(&g);
        prop_assert_eq!(CycleChecker::check(&d).is_ok(), g.is_acyclic());
    }

    /// Property: a corrupted witness (one load's inheritance redirected)
    /// never makes the baseline checker and the axioms disagree.
    #[test]
    fn prop_baseline_and_axioms_agree(seed in 0u64..10_000, len in 6usize..40) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let cfg = WorkloadConfig::new(Params::new(2, 2, 2), len);
        let wt = random_witnessed_trace(&cfg, 4, &mut rng);
        let g = saturated_graph(&wt.trace, &wt.witness);
        let baseline_ok = matches!(
            BaselineChecker::check(&wt.trace, &wt.witness),
            BaselineVerdict::Consistent(_)
        );
        let axioms_ok =
            validate_constraint_graph(&g, &wt.trace).is_ok() && g.is_acyclic();
        prop_assert_eq!(baseline_ok, axioms_ok);
    }
}
