//! Telemetry must observe the pipeline without perturbing it.
//!
//! * `verify_protocol` returns the same verdict and (exhaustive) state
//!   count with telemetry enabled and disabled, sequentially and with 4
//!   workers — instrumentation is read-only with respect to the search.
//! * The JSONL sink emits schema-versioned, parseable records covering
//!   every pipeline phase (search, observer step, descriptor encode,
//!   checker step).
//! * The §5 runtime monitor reports a structured `MonitorDivergence`
//!   event (step index, symbol, diagnosis) when a run stops being SC.
//!
//! Telemetry state is process-global, so every test serializes on
//! `telemetry::test_mutex` (directly or through `TestSession`).

use sc_verify::prelude::*;
use sc_verify::telemetry;
use sc_verify::testing::{MonitorStep, RunMonitor};

/// The reference product: small enough to exhaust in milliseconds, large
/// enough to exercise every phase. 522 product states.
fn small_serial() -> SerialMemory {
    SerialMemory::new(Params::new(1, 1, 2))
}

fn opts(threads: usize) -> VerifyOptions {
    VerifyOptions::new().max_states(2_000_000).threads(threads)
}

#[test]
fn same_verdict_and_state_count_with_telemetry_on_and_off() {
    for threads in [1usize, 4] {
        let off = {
            let _session = telemetry::TestSession::start_disabled();
            verify_protocol(small_serial(), opts(threads))
        };
        let (on, admitted) = {
            let session = telemetry::TestSession::start();
            let out = verify_protocol(small_serial(), opts(threads));
            let admitted = telemetry::registry().get(telemetry::Metric::McStatesAdmitted);
            drop(session);
            (out, admitted)
        };
        assert!(off.is_verified(), "threads={threads}: baseline must verify");
        assert!(
            on.is_verified(),
            "threads={threads}: telemetry run must verify"
        );
        assert_eq!(
            off.stats().states,
            on.stats().states,
            "threads={threads}: exhaustive state count must not depend on telemetry"
        );
        // The registry counter mirrors the search (the work-stealing
        // engine live-counts admissions excluding the initial state; the
        // sequential engine publishes the full total at the end).
        let states = on.stats().states as u64;
        assert!(
            admitted == states || admitted == states - 1,
            "threads={threads}: mc.states_admitted={admitted} vs states={states}"
        );
    }
}

#[test]
fn violation_verdict_unchanged_by_telemetry() {
    let off = {
        let _session = telemetry::TestSession::start_disabled();
        verify_protocol(StoreBufferTso::new(Params::new(2, 2, 1), 1), opts(1))
    };
    let on = {
        let _session = telemetry::TestSession::start();
        verify_protocol(StoreBufferTso::new(Params::new(2, 2, 1), 1), opts(1))
    };
    match (&off, &on) {
        (Outcome::Violation { stats: s_off, .. }, Outcome::Violation { stats: s_on, .. }) => {
            // Sequential BFS is deterministic up to hash order; the
            // violation depth (shortest run) must agree exactly.
            assert_eq!(s_off.depth, s_on.depth, "shortest-violation depth");
        }
        _ => panic!("TSO must violate with and without telemetry"),
    }
}

#[test]
fn jsonl_stream_is_schema_valid_and_covers_pipeline_phases() {
    let _guard = telemetry::test_mutex()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let path = std::env::temp_dir().join(format!(
        "scv_telemetry_integration_{}.jsonl",
        std::process::id()
    ));
    telemetry::install(Box::new(
        telemetry::JsonlSink::create(&path).expect("temp jsonl"),
    ));
    let out = verify_protocol(small_serial(), opts(1));
    telemetry::emit_report(
        telemetry::RunReport::new("verify/serial-memory")
            .param("threads", 1)
            .with_verdict("verified")
            .metric("states", out.stats().states as f64),
    );
    telemetry::shutdown();

    let text = std::fs::read_to_string(&path).expect("jsonl written");
    std::fs::remove_file(&path).ok();
    let mut phases = std::collections::BTreeSet::new();
    let mut types = std::collections::BTreeSet::new();
    for (i, line) in text.lines().enumerate() {
        let j = telemetry::Json::parse(line)
            .unwrap_or_else(|e| panic!("line {} is not valid JSON: {e:?}", i + 1));
        assert_eq!(
            j.get("schema").and_then(|s| s.as_num()),
            Some(telemetry::SCHEMA_VERSION as f64),
            "line {} must carry the schema version",
            i + 1
        );
        let ty = j
            .get("type")
            .and_then(|t| t.as_str())
            .unwrap_or_else(|| panic!("line {} has no type", i + 1))
            .to_string();
        if ty == "phase" {
            phases.insert(
                j.get("phase")
                    .and_then(|p| p.as_str())
                    .expect("phase name")
                    .to_string(),
            );
        }
        types.insert(ty);
    }
    for required in [
        "search",
        "observer.step",
        "descriptor.encode",
        "checker.step",
    ] {
        assert!(
            phases.contains(required),
            "pipeline phase {required} missing from JSONL; saw {phases:?}"
        );
    }
    assert!(types.contains("run_report"), "saw {types:?}");
    assert!(types.contains("counters"), "saw {types:?}");

    // The report round-trips through the typed parser.
    let reports = telemetry::parse_reports(&text).expect("reports parse");
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].name, "verify/serial-memory");
    assert_eq!(reports[0].verdict, "verified");
    assert_eq!(
        reports[0].get_metric("states"),
        Some(out.stats().states as f64)
    );
}

#[test]
fn monitor_divergence_emits_structured_event() {
    let session = telemetry::TestSession::start();

    // The classic TSO litmus: both stores buffered, both loads read 0,
    // then the buffers drain — no serial reordering explains it.
    let p = StoreBufferTso::new(Params::new(2, 2, 1), 2);
    let mut runner = Runner::new(p.clone());
    let mut monitor = RunMonitor::new(&p);
    let mut take = |want: &dyn Fn(&Action) -> bool| {
        let t = runner
            .enabled()
            .into_iter()
            .find(|t| want(&t.action))
            .expect("transition enabled");
        runner.take(t);
    };
    take(&|a| a.op() == Some(Op::store(ProcId(1), BlockId(1), Value(1))));
    take(&|a| a.op() == Some(Op::store(ProcId(2), BlockId(2), Value(1))));
    take(&|a| a.op() == Some(Op::load(ProcId(1), BlockId(2), Value::BOTTOM)));
    take(&|a| a.op() == Some(Op::load(ProcId(2), BlockId(1), Value::BOTTOM)));
    take(&|a| matches!(a, Action::Internal("Drain", 1)));
    take(&|a| matches!(a, Action::Internal("Drain", 2)));

    let mut tripped_inline = false;
    for step in &runner.run().steps.clone() {
        if let MonitorStep::Violation(_) = monitor.feed(step) {
            tripped_inline = true;
            break;
        }
    }
    if !tripped_inline {
        assert!(monitor.finish().is_err(), "litmus must be rejected");
    }

    let events = session.events();
    let divergences: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            telemetry::Event::MonitorDivergence {
                step_index,
                symbol,
                detail,
            } => Some((*step_index, symbol.clone(), detail.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(divergences.len(), 1, "exactly one divergence: {events:?}");
    let (step_index, symbol, detail) = &divergences[0];
    assert!(*step_index < 6, "divergence within the 6-step litmus");
    assert!(!symbol.is_empty(), "offending symbol is named");
    assert!(!detail.is_empty(), "diagnosis is present");
    assert_eq!(
        telemetry::registry().get(telemetry::Metric::MonitorDivergences),
        1
    );
}
