//! Differential battery for the symmetry-quotient search.
//!
//! The quotient search canonicalizes every product state to the
//! orbit-minimum encoding under the protocol's declared symmetry group
//! before the seen-set admits its fingerprint (DESIGN.md, "Symmetry
//! quotient"). Soundness says the reduced search must be *observationally
//! identical* to the full one:
//!
//! * same verdict variant on every engine and thread count — never a
//!   missed violation, never a spurious one;
//! * strictly fewer (or equal) explored states, since each orbit is
//!   visited once;
//! * every counterexample it produces is still a genuine run of the
//!   *unreduced* system (stored states are the genuinely reached orbit
//!   members, not representatives), so its trace independently fails the
//!   direct serial-reordering search.

use sc_verify::prelude::*;
use sc_verify::testing::{MonitorStep, RunMonitor};

/// Engine/thread configurations exercised by every differential check:
/// sequential, asynchronous work-stealing, and level-synchronous BFS.
fn engines() -> [(usize, SearchStrategy); 3] {
    [
        (1, SearchStrategy::WorkStealing),
        (4, SearchStrategy::WorkStealing),
        (4, SearchStrategy::LevelSync),
    ]
}

fn opts(
    max_states: usize,
    threads: usize,
    strategy: SearchStrategy,
    sym: SymmetryMode,
) -> VerifyOptions {
    VerifyOptions::new()
        .max_states(max_states)
        .threads(threads)
        .strategy(strategy)
        .symmetry(sym)
}

fn verdict(out: &Outcome) -> &'static str {
    match out {
        Outcome::Verified { .. } => "Verified",
        Outcome::Violation { .. } => "Violation",
        Outcome::Bounded { .. } => "Bounded",
        // No budget or cancellation is configured in these tests.
        Outcome::Inconclusive { .. } => "Inconclusive",
    }
}

/// Exhaustive search of a product small enough to finish in debug mode:
/// both searches must prove SC, and the quotient must be smaller. With
/// p = 1 the processor dimension is trivial, so the reduction measured
/// here comes entirely from value symmetry.
#[test]
fn exhaustive_parity_on_every_engine() {
    for (threads, strategy) in engines() {
        let off = verify_protocol(
            SerialMemory::new(Params::new(1, 1, 2)),
            opts(2_000_000, threads, strategy, SymmetryMode::Off),
        );
        let on = verify_protocol(
            SerialMemory::new(Params::new(1, 1, 2)),
            opts(2_000_000, threads, strategy, SymmetryMode::Full),
        );
        assert!(
            off.is_verified() && on.is_verified(),
            "threads={threads} {strategy:?}: off={:?} on={:?}",
            off.stats(),
            on.stats()
        );
        assert!(
            on.stats().states < off.stats().states,
            "threads={threads} {strategy:?}: quotient must shrink the space \
             ({} vs {})",
            on.stats().states,
            off.stats().states
        );
    }
}

/// The headline reduction claim on MSI (2,1,2): a depth-limited sweep
/// (identical frontier either way) explores at least 2x fewer states
/// under the full symmetry group, with the same verdict.
#[test]
fn msi_reduction_is_at_least_two_fold() {
    let base = |sym| {
        VerifyOptions::new()
            .max_states(500_000)
            .max_depth(8)
            .symmetry(sym)
    };
    let off = verify_protocol(
        MsiProtocol::new(Params::new(2, 1, 2)),
        base(SymmetryMode::Off),
    );
    let on = verify_protocol(
        MsiProtocol::new(Params::new(2, 1, 2)),
        base(SymmetryMode::Full),
    );
    assert_eq!(verdict(&off), verdict(&on));
    assert!(
        on.stats().states * 2 <= off.stats().states,
        "expected >=2x reduction: {} vs {}",
        on.stats().states,
        off.stats().states
    );
}

/// Safe protocols under a tight cap: the reduced search must stay
/// Bounded on every engine — no spurious violation can be introduced by
/// orbit merging.
#[test]
fn safe_protocols_stay_safe_under_symmetry() {
    for (threads, strategy) in engines() {
        for sym in [SymmetryMode::Proc, SymmetryMode::Full] {
            let out = verify_protocol(
                MsiProtocol::new(Params::new(2, 1, 2)),
                opts(6_000, threads, strategy, sym),
            );
            assert_eq!(
                verdict(&out),
                "Bounded",
                "threads={threads} {strategy:?} {sym:?}"
            );
            let out = verify_protocol(
                LazyCaching::new(Params::new(2, 1, 1), 1, 1),
                opts(6_000, threads, strategy, sym),
            );
            assert_eq!(
                verdict(&out),
                "Bounded",
                "lazy threads={threads} {strategy:?} {sym:?}"
            );
        }
    }
}

/// Replay a counterexample through the protocol (resolving each action to
/// an enabled transition) and assert the §5 online monitor flags it —
/// this both proves the run is a genuine run of the *unreduced* protocol
/// (every action must be enabled in sequence) and re-derives the
/// rejection through a codepath separate from the model checker.
fn replay_flags_violation<P: Protocol + Clone>(p: &P, run: &[Action]) {
    let mut runner = Runner::new(p.clone());
    for (i, action) in run.iter().enumerate() {
        let t = runner
            .enabled()
            .into_iter()
            .find(|t| t.action == *action)
            .unwrap_or_else(|| panic!("counterexample action {i} ({action:?}) not enabled"));
        runner.take(t);
    }
    let mut monitor = RunMonitor::new(p);
    let mut violated = false;
    for step in &runner.run().steps {
        if let MonitorStep::Violation(_) = monitor.feed(step) {
            violated = true;
            break;
        }
    }
    assert!(
        violated || monitor.finish().is_err(),
        "replayed counterexample must fail the online monitor"
    );
}

/// Violating protocols: the quotient search must still catch the bug on
/// every engine, and each counterexample must be a genuine run of the
/// unreduced system that independently fails the §5 online monitor.
/// The sequential engine's counterexample is additionally shortest
/// (deterministic BFS), and for these protocols its trace genuinely has
/// no serial reordering; asynchronous schedules may surface a different
/// rejected run whose trace is itself SC (rejection = "no witness under
/// this ST-order generator"), which the monitor replay still validates.
fn assert_violation_matrix<P>(p: P, sym: SymmetryMode)
where
    P: Symmetry + Clone + Sync,
    P::State: Send + Sync + 'static,
{
    for (threads, strategy) in engines() {
        let out = verify_protocol(p.clone(), opts(2_000_000, threads, strategy, sym));
        let Outcome::Violation { run, trace, .. } = &out else {
            panic!(
                "threads={threads} {strategy:?} {sym:?}: expected Violation, got {:?}",
                out.stats()
            );
        };
        assert!(!run.is_empty(), "violating run must be non-trivial");
        replay_flags_violation(&p, run);
        if threads == 1 {
            assert!(
                !has_serial_reordering(trace),
                "{sym:?}: sequential reduced-search counterexample must be \
                 non-SC: {trace}"
            );
        }
    }
}

#[test]
fn buggy_msi_caught_under_full_symmetry() {
    // The buggy variant opts out of processor symmetry (the fault picks
    // on the highest-numbered sharer); Full therefore quotients by
    // blocks and values only — and must still find the lost
    // invalidation.
    assert_violation_matrix(MsiProtocol::buggy(Params::new(2, 2, 1)), SymmetryMode::Full);
}

#[test]
fn tso_caught_under_full_symmetry() {
    assert_violation_matrix(
        StoreBufferTso::new(Params::new(2, 2, 1), 1),
        SymmetryMode::Full,
    );
}

#[test]
fn buggy_mesi_caught_under_proc_mode() {
    // Proc mode requests processor permutations only; buggy MESI declares
    // none sound, so the effective group is trivial and the search must
    // behave exactly like the unreduced one.
    assert_violation_matrix(
        MesiProtocol::buggy(Params::new(2, 2, 1)),
        SymmetryMode::Proc,
    );
}

/// Sequential state counts are deterministic, so the 1-thread reduced
/// count must agree between the facade and the free function — one
/// construction site for the quotient, not two behaviours.
#[test]
fn facade_and_free_function_agree_under_symmetry() {
    let o = VerifyOptions::new()
        .max_states(6_000)
        .symmetry(SymmetryMode::Full);
    let direct = verify_protocol(MsiProtocol::new(Params::new(2, 1, 2)), o.clone());
    let facade = Verifier::with_options(MsiProtocol::new(Params::new(2, 1, 2)), o).run();
    assert_eq!(verdict(&direct), verdict(&facade));
    assert_eq!(direct.stats().states, facade.stats().states);
}
