//! Integration test: paper Figure 4 — tracking labels and ST indexes —
//! reproduced through the public API, plus the Lemma 4.1 inheritance-graph
//! generation for the same run.

use sc_verify::prelude::*;
use sc_verify::protocol::{CopySrc, StIndexTracker, Step, Tracking};

type Fig4Transition = sc_verify::protocol::Transition<<Fig4Protocol as Protocol>::State>;
type Pick = Box<dyn Fn(&Fig4Transition) -> bool>;

/// Drive the exact run of Figure 4(a) and return the steps.
fn figure4_run() -> (Fig4Protocol, Run) {
    let proto = Fig4Protocol::paper();
    let mut runner = Runner::new(proto.clone());
    let picks: Vec<Pick> = vec![
        Box::new(|t| {
            t.action.op() == Some(Op::store(ProcId(1), BlockId(1), Value(1)))
                && t.tracking.loc == Some(1)
        }),
        Box::new(|t| {
            t.action.op() == Some(Op::store(ProcId(2), BlockId(2), Value(2)))
                && t.tracking.loc == Some(4)
        }),
        Box::new(|t| {
            matches!(t.action, Action::Internal("Get-Shared", pb) if pb == (2 << 8) | 1)
                && t.tracking.copies == vec![(3, CopySrc::Loc(1))]
        }),
        Box::new(|t| {
            t.action.op() == Some(Op::store(ProcId(1), BlockId(3), Value(3)))
                && t.tracking.loc == Some(1)
        }),
    ];
    for pick in picks {
        let t = runner
            .enabled()
            .into_iter()
            .find(|t| pick(t))
            .expect("figure 4 transition enabled");
        runner.take(t);
    }
    (proto, runner.into_run())
}

#[test]
fn st_index_table_matches_figure_4c() {
    let (proto, run) = figure4_run();
    let mut tracker = StIndexTracker::new(proto.locations());
    for s in &run.steps {
        tracker.step(s);
    }
    // Figure 4(c): ST-index(R,1)=3, (R,2)=0, (R,3)=1, (R,4)=2.
    assert_eq!(tracker.all(), &[3, 0, 1, 2]);
}

#[test]
fn tracking_labels_match_figure_4b() {
    let (_, run) = figure4_run();
    assert_eq!(run.steps[0].tracking, Tracking::mem(1));
    assert_eq!(run.steps[1].tracking, Tracking::mem(4));
    // The Get-Shared has c_3 = 1 and c_i = i elsewhere (unchanged
    // locations are simply not listed).
    assert_eq!(
        run.steps[2].tracking,
        Tracking::copies(vec![(3, CopySrc::Loc(1))])
    );
    assert_eq!(run.steps[3].tracking, Tracking::mem(1));
}

#[test]
fn trace_is_the_three_stores() {
    let (_, run) = figure4_run();
    let t = run.trace();
    assert_eq!(t.len(), 3);
    assert_eq!(t[0], Op::store(ProcId(1), BlockId(1), Value(1)));
    assert_eq!(t[1], Op::store(ProcId(2), BlockId(2), Value(2)));
    assert_eq!(t[2], Op::store(ProcId(1), BlockId(3), Value(3)));
}

#[test]
fn observer_mirrors_the_copies_with_add_id() {
    // Lemma 4.1: the generator outputs `add-ID(c_l(t), l)` for each copy —
    // for the Get-Shared step, add-ID(1,3).
    let (proto, run) = figure4_run();
    let d = Observer::observe_run(&proto, &run);
    assert!(
        d.symbols.contains(&Symbol::AddId { of: 1, add: 3 }),
        "expected add-ID(1,3) in {d}"
    );
    // The run is stores-only and verifies trivially.
    assert_eq!(ScChecker::check(&d), Ok(()));
    // Decoding yields a graph whose three nodes are the three stores with
    // no inheritance edges (no loads happened).
    let (dg, _) = decode(&d).unwrap();
    assert_eq!(dg.node_count(), 3);
    assert!(dg.edges.iter().all(|&(_, _, a)| !a.contains(EdgeSet::INH)));
}

#[test]
fn loads_after_the_run_inherit_per_st_index() {
    // Extend the run: P2 loads B1 from location 3 — by the ST-index table
    // it must inherit from trace operation 1 (the first store).
    let (proto, run) = figure4_run();
    let mut steps = run.steps.clone();
    steps.push(Step {
        action: Action::Mem(Op::load(ProcId(2), BlockId(1), Value(1))),
        tracking: Tracking::mem(3),
    });
    let run = Run { steps };
    let d = Observer::observe_run(&proto, &run);
    let (dg, _) = decode(&d).unwrap();
    // Node numbering: stores are nodes 0..2, the load is node 3.
    assert!(
        dg.edges
            .iter()
            .any(|&(u, v, a)| (u, v) == (0, 3) && a.contains(EdgeSet::INH)),
        "load must inherit from the first store: {:?}",
        dg.edges
    );
    assert_eq!(ScChecker::check(&d), Ok(()));
}
