//! Property-based tests for the foundational invariants: operation
//! encodings, serial traces, reorderings, witnesses, and the Lemma 3.1
//! roundtrip.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sc_verify::graph::baseline::Witness;
use sc_verify::graph::random::{
    mutate_one_load, random_serial_trace, random_witnessed_trace, shuffle_preserving_po,
    WorkloadConfig,
};
use sc_verify::graph::serial_search::{count_serial_reorderings, find_serial_reordering};
use sc_verify::graph::{graph_from_serial_reordering, serial_reordering_from_graph};
use sc_verify::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Op::encode is a bijection onto 0..alphabet_size.
    #[test]
    fn op_encoding_bijective(p in 1u8..6, b in 1u8..5, v in 1u8..5) {
        let params = Params::new(p, b, v);
        let n = Op::alphabet_size(&params);
        let mut seen = std::collections::HashSet::new();
        for code in 0..n {
            let op = Op::decode(code, &params);
            prop_assert_eq!(op.encode(&params), code);
            prop_assert!(seen.insert(op));
        }
        prop_assert_eq!(seen.len() as u32, n);
    }

    /// Random serial traces are serial; any program-order-preserving
    /// shuffle of one has a serial reordering mapping it back.
    #[test]
    fn shuffles_always_have_witnesses(seed in 0u64..50_000, len in 1usize..60, window in 0usize..12) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let cfg = WorkloadConfig::new(Params::new(3, 3, 3), len);
        let serial = random_serial_trace(&cfg, &mut rng);
        prop_assert!(serial.is_serial());
        let (t, r) = shuffle_preserving_po(&serial, window, &mut rng);
        prop_assert!(r.is_serial_reordering(&t));
        prop_assert_eq!(r.apply(&t), serial);
    }

    /// The direct search agrees with the shuffle ground truth, and its
    /// witness is always checked.
    #[test]
    fn search_finds_witness_on_sc_traces(seed in 0u64..50_000, len in 1usize..12) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let wt = random_witnessed_trace(&WorkloadConfig::new(Params::new(2, 2, 2), len), 4, &mut rng);
        let r = find_serial_reordering(&wt.trace);
        prop_assert!(r.is_some(), "shuffled serial trace must be SC");
        prop_assert!(r.unwrap().is_serial_reordering(&wt.trace));
        // And the count is at least one.
        prop_assert!(count_serial_reorderings(&wt.trace) >= 1);
    }

    /// Lemma 3.1 roundtrip: serial reordering → constraint graph →
    /// (topological order) → serial reordering.
    #[test]
    fn lemma31_roundtrip(seed in 0u64..50_000, len in 1usize..40) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let wt = random_witnessed_trace(&WorkloadConfig::new(Params::new(3, 2, 3), len), 5, &mut rng);
        let g = graph_from_serial_reordering(&wt.trace, &wt.reordering);
        prop_assert!(g.is_acyclic());
        prop_assert_eq!(validate_constraint_graph(&g, &wt.trace), Ok(()));
        let r2 = serial_reordering_from_graph(&g).expect("acyclic");
        prop_assert!(r2.is_serial_reordering(&wt.trace));
    }

    /// Witness validation accepts derived witnesses and rejects an
    /// inheritance redirected to a non-matching store.
    #[test]
    fn witness_validation(seed in 0u64..50_000, len in 4usize..40) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let wt = random_witnessed_trace(&WorkloadConfig::new(Params::new(3, 2, 3), len), 5, &mut rng);
        prop_assert_eq!(wt.witness.validate(&wt.trace), Ok(()));
        // Redirect one load's inheritance to a store of the wrong value,
        // if one exists.
        let mut w: Witness = wt.witness.clone();
        let victim = (0..wt.trace.len()).find(|&j| {
            w.inh[j].is_some()
                && (0..wt.trace.len()).any(|i| {
                    wt.trace[i].is_store()
                        && wt.trace[i].block == wt.trace[j].block
                        && wt.trace[i].value != wt.trace[j].value
                })
        });
        if let Some(j) = victim {
            let bad = (0..wt.trace.len())
                .find(|&i| {
                    wt.trace[i].is_store()
                        && wt.trace[i].block == wt.trace[j].block
                        && wt.trace[i].value != wt.trace[j].value
                })
                .unwrap();
            w.inh[j] = Some(bad);
            prop_assert!(w.validate(&wt.trace).is_err());
        }
    }

    /// Mutating one load usually breaks seriality of the underlying
    /// serial trace — and never panics anything downstream.
    #[test]
    fn mutations_are_handled(seed in 0u64..50_000, len in 4usize..30) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let params = Params::new(2, 2, 3);
        let wt = random_witnessed_trace(&WorkloadConfig::new(params, len), 4, &mut rng);
        if let Some((mutated, _)) = mutate_one_load(&wt.trace, &params, &mut rng) {
            // The direct search must terminate with a definite verdict.
            let verdict = find_serial_reordering(&mutated);
            if let Some(r) = verdict {
                prop_assert!(r.is_serial_reordering(&mutated));
            }
        }
    }

    /// Reordering inverse is an involution and apply/inverse agree.
    #[test]
    fn reordering_inverse_involution(seed in 0u64..50_000, len in 1usize..30) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let cfg = WorkloadConfig::new(Params::new(3, 2, 2), len);
        let serial = random_serial_trace(&cfg, &mut rng);
        let (t, r) = shuffle_preserving_po(&serial, 6, &mut rng);
        let inv = r.inverse();
        for (j, &i) in r.as_slice().iter().enumerate() {
            prop_assert_eq!(inv[i], j);
        }
        prop_assert_eq!(r.apply(&t).len(), t.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Symmetry soundness core: permuting a reachable protocol state by
    /// any element of its symmetry group leaves the orbit-minimum
    /// canonical encoding unchanged — canonicalization commutes with the
    /// group action, so every member of an orbit lands on one seen-set
    /// fingerprint.
    #[test]
    fn canonical_encoding_commutes_with_permutation(seed in 0u64..50_000, steps in 1usize..40) {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        use sc_verify::protocol::canonical_state_encoding;
        let proto = MsiProtocol::new(Params::new(2, 2, 2));
        let group = SymPerm::group(proto.params(), proto.symmetry_dims(), 1024);
        prop_assert!(group.len() > 1, "MSI (2,2,2) must have a non-trivial group");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut runner = Runner::new(proto.clone());
        runner.run_random(steps, 0.5, &mut rng);
        let s = runner.state().clone();
        let canon = canonical_state_encoding(&proto, &s, &group);
        for g in &group {
            let gs = proto.permute_state(&s, g);
            prop_assert_eq!(
                canonical_state_encoding(&proto, &gs, &group),
                canon.clone(),
                "encoding must be orbit-invariant under {:?}", g
            );
        }
    }

    /// The same invariance for a protocol with a *restricted* declared
    /// group (buggy MSI keeps blocks and values but not processors): the
    /// quotient only ever uses what the protocol declares sound.
    #[test]
    fn restricted_group_is_still_invariant(seed in 0u64..50_000, steps in 1usize..30) {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        use sc_verify::protocol::canonical_state_encoding;
        let proto = MsiProtocol::buggy(Params::new(2, 2, 2));
        let dims = proto.symmetry_dims();
        prop_assert!(!dims.procs, "buggy MSI must not declare processor symmetry");
        let group = SymPerm::group(proto.params(), dims, 1024);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut runner = Runner::new(proto.clone());
        runner.run_random(steps, 0.5, &mut rng);
        let s = runner.state().clone();
        let canon = canonical_state_encoding(&proto, &s, &group);
        for g in &group {
            let gs = proto.permute_state(&s, g);
            prop_assert_eq!(canonical_state_encoding(&proto, &gs, &group), canon.clone());
        }
    }
}
