//! Flight recorder must observe the search without perturbing it.
//!
//! * `verify_protocol` returns the same verdict and (exhaustive) state
//!   count with the recorder (and the `--progress` sampler) on and off,
//!   sequentially and with 4 workers.
//! * A recorded MSI run exports a Chrome/Perfetto trace with at least
//!   one named track per worker and at least two counter tracks, and the
//!   exported JSON round-trips through the validator.
//! * A recording [`RunMonitor`] explains its own violation with a DOT
//!   whose highlighted cycle matches the checker rejection.
//!
//! Recorder and telemetry state are process-global, so every test
//! serializes on `telemetry::test_mutex` through `TestSession`.

use sc_verify::prelude::*;
use sc_verify::telemetry;
use sc_verify::telemetry::recorder;
use sc_verify::testing::{MonitorStep, RunMonitor};

/// Exhaustible in milliseconds; the state count is search-order
/// independent because the sweep completes. 522 product states.
fn small_serial() -> SerialMemory {
    SerialMemory::new(Params::new(1, 1, 2))
}

fn opts(threads: usize) -> VerifyOptions {
    VerifyOptions::new().max_states(2_000_000).threads(threads)
}

#[test]
fn recorder_on_and_off_agree_on_verdict_and_state_count() {
    for threads in [1usize, 4] {
        let off = {
            let _session = telemetry::TestSession::start_disabled();
            verify_protocol(small_serial(), opts(threads))
        };
        let on = {
            let _session = telemetry::TestSession::start();
            recorder::recorder_start(telemetry::DEFAULT_RING_CAPACITY);
            let out = verify_protocol(small_serial(), opts(threads));
            recorder::recorder_stop();
            let timelines = recorder::drain();
            assert!(
                !timelines.is_empty(),
                "recorder collected no timelines at {threads} threads"
            );
            out
        };
        assert_eq!(
            verdict_str(&off),
            verdict_str(&on),
            "verdict parity at {threads} threads"
        );
        assert_eq!(
            off.stats().states,
            on.stats().states,
            "state-count parity at {threads} threads"
        );
        assert!(off.is_verified(), "the sweep must be exhaustive");
    }
}

#[test]
fn progress_ticker_does_not_change_the_search() {
    for threads in [1usize, 4] {
        let off = {
            let _session = telemetry::TestSession::start_disabled();
            verify_protocol(small_serial(), opts(threads))
        };
        let on = {
            let _session = telemetry::TestSession::start();
            recorder::recorder_start(telemetry::DEFAULT_RING_CAPACITY);
            let ticker = telemetry::start_progress(telemetry::ProgressOptions {
                period: std::time::Duration::from_millis(20),
                target_states: Some(2_000_000),
            });
            let out = verify_protocol(small_serial(), opts(threads));
            ticker.stop();
            recorder::recorder_stop();
            let _ = recorder::drain();
            out
        };
        assert_eq!(verdict_str(&off), verdict_str(&on));
        assert_eq!(off.stats().states, on.stats().states);
    }
}

#[test]
fn msi_trace_exports_worker_and_counter_tracks() {
    let _session = telemetry::TestSession::start();
    recorder::recorder_start(telemetry::DEFAULT_RING_CAPACITY);
    let threads = 4;
    let out = verify_protocol(
        MsiProtocol::new(Params::new(2, 1, 2)),
        VerifyOptions::new().max_states(20_000).threads(threads),
    );
    recorder::recorder_stop();
    let timelines = recorder::drain();
    assert!(!matches!(out, Outcome::Violation { .. }));

    let doc = telemetry::chrome_trace_json(&timelines);
    let stats = telemetry::validate_chrome_trace(&doc).expect("exported trace validates");
    assert!(
        stats.worker_tracks >= threads,
        "expected >= {threads} worker tracks, got {}",
        stats.worker_tracks
    );
    assert!(
        stats.counter_tracks >= 2,
        "expected >= 2 counter tracks (frontier depth, seen states), got {}",
        stats.counter_tracks
    );
    assert!(stats.events > 0);

    // The writer's on-disk form parses back and validates identically.
    let dir = std::env::temp_dir().join(format!("scv-trace-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("trace.json");
    telemetry::write_chrome_trace(&path, &timelines).expect("write trace");
    let text = std::fs::read_to_string(&path).expect("read back");
    let parsed = telemetry::Json::parse(&text).expect("trace file is valid JSON");
    let reparsed = telemetry::validate_chrome_trace(&parsed).expect("file validates");
    assert_eq!(reparsed.events, stats.events);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recording_monitor_explains_its_own_violation() {
    let _session = telemetry::TestSession::start_disabled();
    // Drive the buggy MSI to a violation via the model checker, then
    // replay the violating run through a recording monitor.
    let p = MsiProtocol::buggy(Params::new(2, 2, 1));
    let out = verify_protocol(p.clone(), VerifyOptions::new().max_states(2_000_000));
    let Outcome::Violation { run, reason, .. } = out else {
        panic!("buggy MSI must produce a violation");
    };

    let mut runner = Runner::new(p.clone());
    let mut monitor = RunMonitor::new_recording(&p);
    let mut tripped = false;
    for a in &run {
        let t = runner
            .enabled()
            .into_iter()
            .find(|t| t.action == *a)
            .expect("violating run replays");
        runner.take(t);
        let step = runner.run().steps.last().unwrap();
        if let MonitorStep::Violation(_) = monitor.feed(step) {
            tripped = true;
            break;
        }
    }
    if !tripped {
        assert!(monitor.probe().is_err(), "monitor must reject the run");
    }
    let ex = monitor.explain().expect("recording monitor explains");
    assert_eq!(&ex.error, reason.error(), "diagnosis matches the checker's");
    if let Some(cycle) = &ex.cycle {
        assert_eq!(cycle.first(), cycle.last());
        assert!(ex.dot.contains("color=red"), "cycle highlighted in DOT");
    }
    assert!(ex.narration.contains("SC violation"));
}
