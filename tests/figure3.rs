//! Integration test: paper Figure 3 and the §3.2 descriptor strings,
//! reproduced through the public API.

use sc_verify::prelude::*;

fn figure3_trace() -> Trace {
    Trace::from_ops([
        Op::store(ProcId(1), BlockId(1), Value(1)),
        Op::load(ProcId(2), BlockId(1), Value(1)),
        Op::store(ProcId(1), BlockId(1), Value(2)),
        Op::load(ProcId(2), BlockId(1), Value(1)),
        Op::load(ProcId(2), BlockId(1), Value(2)),
    ])
}

fn figure3_graph() -> ConstraintGraph {
    let mut g = ConstraintGraph::with_nodes(figure3_trace().iter().copied());
    g.add_edge(0, 1, EdgeSet::INH);
    g.add_edge(0, 2, EdgeSet::PO_STO);
    g.add_edge(0, 3, EdgeSet::INH);
    g.add_edge(1, 3, EdgeSet::PO);
    g.add_edge(3, 2, EdgeSet::FORCED);
    g.add_edge(2, 4, EdgeSet::INH);
    g.add_edge(3, 4, EdgeSet::PO);
    g
}

#[test]
fn figure3_is_a_valid_acyclic_constraint_graph() {
    let g = figure3_graph();
    assert!(g.is_acyclic());
    assert_eq!(validate_constraint_graph(&g, &figure3_trace()), Ok(()));
    assert_eq!(
        g.bandwidth(),
        3,
        "the paper notes 3-node-bandwidth boundedness"
    );
}

#[test]
fn naive_descriptor_string_matches_paper() {
    assert_eq!(
        naive_descriptor(&figure3_graph()).to_string(),
        "1, ST(P1,B1,1), 2, LD(P2,B1,1), (1,2), inh, 3, ST(P1,B1,2), (1,3), po-STo, \
         4, LD(P2,B1,1), (1,4), inh, (2,4), po, (4,3), forced, \
         5, LD(P2,B1,2), (3,5), inh, (4,5), po"
    );
}

#[test]
fn recycled_descriptor_string_matches_paper() {
    assert_eq!(
        encode(&figure3_graph(), 3).unwrap().to_string(),
        "1, ST(P1,B1,1), 2, LD(P2,B1,1), (1,2), inh, 3, ST(P1,B1,2), (1,3), po-STo, \
         4, LD(P2,B1,1), (1,4), inh, (2,4), po, (4,3), forced, \
         1, LD(P2,B1,2), (3,1), inh, (4,1), po"
    );
}

#[test]
fn descriptors_roundtrip_and_verify() {
    let g = figure3_graph();
    for d in [
        naive_descriptor(&g),
        encode(&g, 3).unwrap(),
        encode(&g, 10).unwrap(),
    ] {
        let (dg, _) = decode(&d).unwrap();
        assert_eq!(dg.to_constraint_graph().unwrap(), g);
        assert_eq!(CycleChecker::check(&d), Ok(()));
        assert_eq!(ScChecker::check(&d), Ok(()));
    }
}

#[test]
fn trace_has_the_serial_reordering_the_graph_implies() {
    let t = figure3_trace();
    assert!(!t.is_serial(), "node 4 reads stale data in trace order");
    assert!(has_serial_reordering(&t));
    // The graph's topological order is a serial reordering (Lemma 3.1).
    let r = sc_verify::graph::serial_reordering_from_graph(&figure3_graph()).unwrap();
    assert!(r.is_serial_reordering(&t));
}

#[test]
fn forced_edge_is_load_bearing() {
    // Swapping the direction of the forced edge (3 -> 4 in paper
    // numbering, i.e. allowing the stale read after the newer store)
    // would order node 4's read after ST(B,2) — the graph without the
    // forced edge accepts trace orders that are not SC-serializable with
    // this inheritance. Removing it must make the checker reject.
    let g = figure3_graph();
    let mut d = encode(&g, 3).unwrap();
    d.symbols
        .retain(|s| !matches!(s, Symbol::Edge { from: 4, to: 3, .. }));
    assert!(ScChecker::check(&d).is_err());
}
