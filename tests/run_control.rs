//! Interrupt/checkpoint/resume must be invisible to the verification
//! result.
//!
//! Each property kills a run at a random admission point (a state-budget
//! trip lands at a batch-admission boundary — the only place the engines
//! poll their [`Budget`]), checkpoints, resumes from the file, and
//! demands the resumed search agree with an uninterrupted run of the same
//! configuration:
//!
//!  * the verdict is identical;
//!  * for exhaustive (`Verified`) searches the state count is identical
//!    on every engine — the reachable quotient does not depend on the
//!    schedule;
//!  * for sequential searches the state count is identical even when the
//!    search stops early (BFS order is deterministic, and the checkpoint
//!    preserves the frontier order);
//!  * a `Violation` counterexample from a resumed run still replays
//!    action-by-action through the raw protocol and its trace genuinely
//!    has no serial reordering — resume cannot fabricate or corrupt a
//!    counterexample.
//!
//! The matrix spans {1, 4} threads × {level-sync, work-stealing} ×
//! {off, full} symmetry, as drawn by the (deterministic, vendored)
//! proptest runner.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use sc_verify::prelude::*;
use std::path::PathBuf;

/// A per-case checkpoint path that cannot collide across test binaries
/// or proptest cases.
fn ckpt_path(tag: &str, case: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "scv-run-control-{}-{tag}-{case}.ckpt",
        std::process::id()
    ))
}

fn base_opts(threads: usize, strategy: SearchStrategy, sym: SymmetryMode) -> VerifyOptions {
    VerifyOptions::new()
        .max_states(2_000_000)
        .threads(threads)
        .strategy(strategy)
        .symmetry(sym)
        .batch_size(16)
}

/// Replay a counterexample through the raw protocol: every action must be
/// enabled in sequence from the initial state.
fn replays<P: Protocol>(proto: &P, run: &[Action]) -> bool {
    let mut state = proto.initial();
    for a in run {
        let Some(t) = proto
            .transitions(&state)
            .into_iter()
            .find(|t| t.action == *a)
        else {
            return false;
        };
        state = t.next;
    }
    true
}

/// Validate a counterexample. Every engine must return a run that
/// replays; only the sequential engine's shortest counterexample is
/// additionally guaranteed to have a genuinely non-SC trace (a parallel
/// schedule may surface a longer path whose witness order fails even
/// though the trace admits some other serial reordering — the same
/// caveat the CLI prints for its independent cross-check).
fn check_violation<P: Protocol>(
    proto: &P,
    out: &Outcome,
    require_genuine: bool,
    what: &str,
) -> Result<(), TestCaseError> {
    let Outcome::Violation { run, trace, .. } = out else {
        return Err(TestCaseError::fail(format!("{what}: expected Violation")));
    };
    prop_assert!(replays(proto, run), "{}: counterexample must replay", what);
    if require_genuine {
        prop_assert!(
            !has_serial_reordering(trace),
            "{}: sequential counterexample trace must be a genuine SC violation",
            what
        );
    }
    Ok(())
}

/// Kill → checkpoint → resume one configuration and compare against the
/// uninterrupted run. `mk` builds the protocol fresh for each search.
#[allow(clippy::too_many_arguments)]
fn kill_resume_case<P, F>(
    mk: F,
    tag: &str,
    case: u64,
    kill_at: usize,
    threads: usize,
    strategy: SearchStrategy,
    sym: SymmetryMode,
    expect_violation: bool,
) -> Result<(), TestCaseError>
where
    P: Symmetry + Sync,
    P::State: Send + Sync + 'static,
    F: Fn() -> P,
{
    let path = ckpt_path(tag, case);
    let _ = std::fs::remove_file(&path);

    let clean = Verifier::with_options(mk(), base_opts(threads, strategy, sym)).run();

    let killed = Verifier::with_options(mk(), base_opts(threads, strategy, sym))
        .budget(Budget::unlimited().states(kill_at))
        .checkpoint_to(&path)
        .run_controlled()
        .map_err(|e| TestCaseError::fail(format!("kill run: {e}")))?;

    let final_out = match &killed {
        // The budget tripped mid-search: a checkpoint must exist and the
        // resumed run finishes the job.
        Outcome::Inconclusive { coverage, .. } => {
            prop_assert!(
                coverage.explored >= kill_at,
                "coverage.explored={} must reach the tripped budget {}",
                coverage.explored,
                kill_at
            );
            prop_assert!(path.is_file(), "budget trip must write the checkpoint");
            Verifier::with_options(mk(), base_opts(threads, strategy, sym))
                .resume_from(&path)
                .run_controlled()
                .map_err(|e| TestCaseError::fail(format!("resume run: {e}")))?
        }
        // The search finished inside the budget (small quotient or an
        // early counterexample): there is nothing to resume, and the
        // outcome must already agree with the clean run.
        other => other.clone(),
    };
    let _ = std::fs::remove_file(&path);

    prop_assert_eq!(
        verdict_str(&final_out),
        verdict_str(&clean),
        "verdict parity ({}, kill_at {})",
        tag,
        kill_at
    );
    match &clean {
        // Exhaustive proof: the state count is the size of the reachable
        // quotient, identical on every engine and unchanged by resume.
        Outcome::Verified { stats } => {
            prop_assert_eq!(
                final_out.stats().states,
                stats.states,
                "exhaustive state count parity ({})",
                tag
            );
        }
        // Early-stop verdicts are only schedule-deterministic
        // sequentially; there resume must reproduce the exact count.
        _ if threads == 1 => {
            prop_assert_eq!(
                final_out.stats().states,
                stats_of(&clean),
                "sequential state count parity ({})",
                tag
            );
        }
        _ => {}
    }
    if expect_violation {
        let proto = mk();
        let genuine = threads == 1;
        check_violation(&proto, &clean, genuine, "clean")?;
        check_violation(&proto, &final_out, genuine, "resumed")?;
        if threads == 1 {
            // Sequential BFS is deterministic and the checkpoint keeps
            // the frontier order, so resume reproduces the exact shortest
            // counterexample.
            let (Outcome::Violation { run: r1, .. }, Outcome::Violation { run: r2, .. }) =
                (&clean, &final_out)
            else {
                unreachable!("both checked as Violation above");
            };
            prop_assert_eq!(r1, r2, "sequential counterexample parity ({})", tag);
        }
    }
    Ok(())
}

fn stats_of(out: &Outcome) -> usize {
    out.stats().states
}

fn matrix(pick: u8) -> (usize, SearchStrategy, SymmetryMode) {
    let threads = if pick & 1 == 0 { 1 } else { 4 };
    let strategy = if pick & 2 == 0 {
        SearchStrategy::LevelSync
    } else {
        SearchStrategy::WorkStealing
    };
    let sym = if pick & 4 == 0 {
        SymmetryMode::Off
    } else {
        SymmetryMode::Full
    };
    (threads, strategy, sym)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Exhaustively verified product (serial memory 1,1,2 — 522 raw
    /// states): killing anywhere and resuming must land on the same
    /// proof with the same state count, on every engine combination.
    #[test]
    fn kill_resume_parity_on_a_verified_product(
        case in 0u64..1_000_000,
        kill_at in 30usize..450,
        pick in 0u8..8,
    ) {
        let (threads, strategy, sym) = matrix(pick);
        kill_resume_case(
            || SerialMemory::new(Params::new(1, 1, 2)),
            "serial",
            case,
            kill_at,
            threads,
            strategy,
            sym,
            false,
        )?;
    }

    /// Violating product (MSI with a lost invalidation): the resumed
    /// search must still catch the bug, and its counterexample must
    /// replay and be a genuine violation.
    #[test]
    fn kill_resume_parity_on_a_violating_product(
        case in 0u64..1_000_000,
        kill_at in 30usize..800,
        pick in 0u8..8,
    ) {
        let (threads, strategy, sym) = matrix(pick);
        // Value symmetry is trivial here (v = 1); Full still exercises
        // the symmetry-aware checkpoint round-trip.
        kill_resume_case(
            || MsiProtocol::buggy(Params::new(2, 2, 1)),
            "msi-buggy",
            case,
            kill_at,
            threads,
            strategy,
            sym,
            true,
        )?;
    }
}

/// Cross-engine resume: a run killed under the 4-thread work-stealing
/// engine resumes sequentially (and vice versa) to the same exhaustive
/// proof — the checkpoint format is engine-neutral.
#[test]
fn checkpoint_is_engine_neutral() {
    let clean = Verifier::new(SerialMemory::new(Params::new(1, 1, 2)))
        .max_states(2_000_000)
        .run();
    let Outcome::Verified { stats } = &clean else {
        panic!("serial memory (1,1,2) must verify exhaustively");
    };

    for (kill_threads, resume_threads) in [(4usize, 1usize), (1, 4)] {
        let path = ckpt_path("engine-neutral", kill_threads as u64);
        let _ = std::fs::remove_file(&path);
        let killed = Verifier::new(SerialMemory::new(Params::new(1, 1, 2)))
            .max_states(2_000_000)
            .threads(kill_threads)
            .budget(Budget::unlimited().states(100))
            .checkpoint_to(&path)
            .run_controlled()
            .unwrap();
        assert!(killed.is_inconclusive(), "100-state budget must trip");
        let resumed = Verifier::new(SerialMemory::new(Params::new(1, 1, 2)))
            .max_states(2_000_000)
            .threads(resume_threads)
            .resume_from(&path)
            .run_controlled()
            .unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(resumed.is_verified(), "{kill_threads}->{resume_threads}");
        assert_eq!(
            resumed.stats().states,
            stats.states,
            "{kill_threads}->{resume_threads}: exhaustive count must match"
        );
    }
}

/// A cancel token trips mid-search from another thread and the drained
/// checkpoint resumes to the full proof.
#[test]
fn cancelled_run_checkpoints_and_resumes() {
    let path = ckpt_path("cancel", 0);
    let _ = std::fs::remove_file(&path);
    let token = CancelToken::new();
    token.cancel(); // polled at the first admission boundary
    let out = Verifier::new(SerialMemory::new(Params::new(1, 1, 2)))
        .max_states(2_000_000)
        .cancel_token(token)
        .checkpoint_to(&path)
        .run_controlled()
        .unwrap();
    let Outcome::Inconclusive { reason, .. } = &out else {
        panic!("cancelled run must be inconclusive, got {:?}", out.stats());
    };
    assert_eq!(reason.to_string(), "cancelled");
    assert!(path.is_file(), "cancellation must write the checkpoint");

    let resumed = Verifier::new(SerialMemory::new(Params::new(1, 1, 2)))
        .max_states(2_000_000)
        .resume_from(&path)
        .run_controlled()
        .unwrap();
    let _ = std::fs::remove_file(&path);
    assert!(resumed.is_verified());
    assert_eq!(resumed.stats().states, 522);
}
