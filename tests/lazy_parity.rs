//! Differential battery for admission-gated lazy materialization.
//!
//! The lazy expansion path fingerprints successor candidates *before*
//! materializing them and only clones/allocates the ones the seen-set
//! admits (DESIGN.md, "State-store memory layout & admission gating").
//! The eager path materializes every successor first and is kept as the
//! reference implementation. The two must be *observationally
//! identical* — the gate is a memory/throughput optimization, never a
//! semantic one:
//!
//! * same verdict variant on every engine, thread count, and symmetry
//!   mode — never a missed violation, never a spurious one;
//! * identical explored-state and transition counts whenever the search
//!   is deterministic (sequential, or exhaustive on any engine);
//! * every lazy-mode counterexample is a genuine run of the unreduced
//!   protocol that independently fails the §5 online monitor, and the
//!   sequential engines produce the *same* counterexample either way.

use sc_verify::prelude::*;
use sc_verify::testing::{MonitorStep, RunMonitor};

/// Engine/thread configurations: sequential (threads = 1 routes every
/// strategy to the in-process BFS), asynchronous work-stealing, and
/// level-synchronous BFS.
fn engines() -> [(usize, SearchStrategy); 3] {
    [
        (1, SearchStrategy::WorkStealing),
        (4, SearchStrategy::WorkStealing),
        (4, SearchStrategy::LevelSync),
    ]
}

const SYMS: [SymmetryMode; 3] = [SymmetryMode::Off, SymmetryMode::Proc, SymmetryMode::Full];

fn opts(
    max_states: usize,
    threads: usize,
    strategy: SearchStrategy,
    sym: SymmetryMode,
    lazy: bool,
) -> VerifyOptions {
    VerifyOptions::new()
        .max_states(max_states)
        .threads(threads)
        .strategy(strategy)
        .symmetry(sym)
        .lazy(lazy)
}

fn verdict(out: &Outcome) -> &'static str {
    match out {
        Outcome::Verified { .. } => "Verified",
        Outcome::Violation { .. } => "Violation",
        Outcome::Bounded { .. } => "Bounded",
        // No budget or cancellation is configured in these tests.
        Outcome::Inconclusive { .. } => "Inconclusive",
    }
}

/// Run the same search through both expansion paths.
fn both<P>(
    p: &P,
    max_states: usize,
    threads: usize,
    strategy: SearchStrategy,
    sym: SymmetryMode,
) -> (Outcome, Outcome)
where
    P: Symmetry + Clone + Sync,
    P::State: Send + Sync + 'static,
{
    let eager = verify_protocol(p.clone(), opts(max_states, threads, strategy, sym, false));
    let lazy = verify_protocol(p.clone(), opts(max_states, threads, strategy, sym, true));
    (eager, lazy)
}

/// Exhaustive searches terminate with the full (quotient) space explored:
/// both modes must prove SC on every engine, and on the deterministic
/// sequential engine states *and* transitions must match exactly — any
/// admission-gate fingerprint that disagreed with the materialized
/// state's identity would show up as a count divergence here.
#[test]
fn exhaustive_parity_every_engine_and_symmetry() {
    fn check<P>(name: &str, p: &P, syms: &[SymmetryMode])
    where
        P: Symmetry + Clone + Sync,
        P::State: Send + Sync + 'static,
    {
        for &sym in syms {
            for (threads, strategy) in engines() {
                let (eager, lazy) = both(p, 500_000, threads, strategy, sym);
                let tag = format!("{name} threads={threads} {strategy:?} {sym:?}");
                assert_eq!(
                    verdict(&eager),
                    "Verified",
                    "{tag}: eager {:?}",
                    eager.stats()
                );
                assert_eq!(verdict(&lazy), "Verified", "{tag}: lazy {:?}", lazy.stats());
                if threads == 1 {
                    // The sequential engine is deterministic: the counts
                    // are the quotient space, exactly.
                    assert_eq!(
                        (eager.stats().states, eager.stats().transitions),
                        (lazy.stats().states, lazy.stats().transitions),
                        "{tag}: lazy/eager count divergence"
                    );
                } else {
                    // Both parallel engines' expansion accounting is
                    // schedule-dependent (a state claimed by two racing
                    // batches is counted by both), in either mode. The
                    // drift grows when the machine is oversubscribed —
                    // e.g. the whole workspace test suite running in
                    // parallel — so the bound is looser than the ~5% the
                    // differential fuzzer (which runs alone) allows.
                    let (e, l) = (eager.stats().states as f64, lazy.stats().states as f64);
                    assert!(
                        (e - l).abs() / e.max(1.0) <= 0.10,
                        "{tag}: lazy/eager drifted beyond 10%: {e} vs {l}"
                    );
                }
            }
        }
    }
    // Small enough to finish exhaustively in debug mode: the full
    // serial-memory product (522 states) on every symmetry mode, and MSI
    // with a single processor (10 524 states) on the two quotient
    // extremes.
    check("serial", &SerialMemory::new(Params::new(1, 1, 2)), &SYMS);
    check(
        "msi",
        &MsiProtocol::new(Params::new(1, 1, 1)),
        &[SymmetryMode::Off, SymmetryMode::Full],
    );
}

/// Bounded sequential searches are deterministic, so hitting the state
/// cap must cut the frontier at exactly the same point either way.
#[test]
fn bounded_sequential_count_parity() {
    fn check<P>(name: &str, p: &P)
    where
        P: Symmetry + Clone + Sync,
        P::State: Send + Sync + 'static,
    {
        for sym in SYMS {
            let (eager, lazy) = both(p, 4_000, 1, SearchStrategy::WorkStealing, sym);
            assert_eq!(verdict(&eager), "Bounded", "{name} {sym:?}");
            assert_eq!(verdict(&lazy), "Bounded", "{name} {sym:?}");
            assert_eq!(
                (eager.stats().states, eager.stats().transitions),
                (lazy.stats().states, lazy.stats().transitions),
                "{name} {sym:?}: bounded lazy/eager count divergence"
            );
        }
    }
    check("mesi", &MesiProtocol::new(Params::new(2, 2, 2)));
    check("directory", &DirectoryProtocol::new(Params::new(2, 1, 1)));
    check(
        "lazy-caching",
        &LazyCaching::new(Params::new(2, 1, 1), 1, 1),
    );
}

/// Replay a counterexample through the protocol (resolving each action to
/// an enabled transition) and assert the §5 online monitor flags it —
/// proving the run is a genuine run of the unreduced protocol and
/// re-deriving the rejection through a codepath separate from the model
/// checker.
fn replay_flags_violation<P: Protocol + Clone>(p: &P, run: &[Action]) {
    let mut runner = Runner::new(p.clone());
    for (i, action) in run.iter().enumerate() {
        let t = runner
            .enabled()
            .into_iter()
            .find(|t| t.action == *action)
            .unwrap_or_else(|| panic!("counterexample action {i} ({action:?}) not enabled"));
        runner.take(t);
    }
    let mut monitor = RunMonitor::new(p);
    let mut violated = false;
    for step in &runner.run().steps {
        if let MonitorStep::Violation(_) = monitor.feed(step) {
            violated = true;
            break;
        }
    }
    assert!(
        violated || monitor.finish().is_err(),
        "replayed counterexample must fail the online monitor"
    );
}

/// Violating protocols: the gate must never eat the violation. Every
/// engine finds it in both modes, the lazy counterexample replays
/// through the online monitor, and the deterministic sequential engine
/// produces the *identical* run either way.
#[test]
fn violation_parity_and_counterexample_replay() {
    let buggy = MsiProtocol::buggy(Params::new(2, 2, 1));
    // The buggy variant opts out of processor symmetry; Off and Full are
    // the meaningful quotient modes for it.
    for sym in [SymmetryMode::Off, SymmetryMode::Full] {
        for (threads, strategy) in engines() {
            let (eager, lazy) = both(&buggy, 2_000_000, threads, strategy, sym);
            let tag = format!("threads={threads} {strategy:?} {sym:?}");
            let Outcome::Violation { run: lazy_run, .. } = &lazy else {
                panic!("{tag}: lazy expected Violation, got {:?}", lazy.stats());
            };
            let Outcome::Violation { run: eager_run, .. } = &eager else {
                panic!("{tag}: eager expected Violation, got {:?}", eager.stats());
            };
            assert!(!lazy_run.is_empty(), "{tag}: trivial counterexample");
            replay_flags_violation(&buggy, lazy_run);
            if threads == 1 {
                assert_eq!(
                    lazy_run, eager_run,
                    "{tag}: sequential BFS must find the same counterexample"
                );
                assert_eq!(
                    (eager.stats().states, eager.stats().transitions),
                    (lazy.stats().states, lazy.stats().transitions),
                    "{tag}: sequential lazy/eager count divergence"
                );
            }
        }
    }
}
