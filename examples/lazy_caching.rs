//! Lazy Caching (Afek, Brown & Merritt) under the non-trivial ST order
//! generator of §4.2.
//!
//! Lazy Caching is the paper's example of a sequentially consistent
//! protocol whose stores serialize in *memory-write* order rather than
//! real-time order. This example:
//!
//!  1. drives the protocol through a run where the serialization order is
//!     the reverse of the issue order, printing the observer's descriptor
//!     stream (note the ST-order edge against trace order);
//!  2. model-checks a small configuration (bounded; see DESIGN.md §6 on
//!     product state-space sizes);
//!  3. shows that the *real-time* ST order generator would wrongly reject
//!     the same run — the §4.2 generator is necessary, not cosmetic.
//!
//! ```text
//! cargo run --release --example lazy_caching
//! ```

use sc_verify::observer::ObserverConfig;
use sc_verify::prelude::*;
use sc_verify::protocol::StOrderPolicy;

fn main() {
    let params = Params::new(2, 1, 2);
    let proto = LazyCaching::new(params, 2, 2);

    println!("=== 1. A run where stores serialize against trace order ===\n");
    let mut r = Runner::new(proto.clone());
    let take = |r: &mut Runner<LazyCaching>, want: &dyn Fn(&Action) -> bool, what: &str| {
        let t = r
            .enabled()
            .into_iter()
            .find(|t| want(&t.action))
            .unwrap_or_else(|| panic!("{what} not enabled"));
        println!("  {:<14} {}", t.action.to_string(), what);
        r.take(t);
    };
    take(
        &mut r,
        &|a| a.op() == Some(Op::store(ProcId(1), BlockId(1), Value(1))),
        "P1 queues ST x=1",
    );
    take(
        &mut r,
        &|a| a.op() == Some(Op::store(ProcId(2), BlockId(1), Value(2))),
        "P2 queues ST x=2",
    );
    take(
        &mut r,
        &|a| matches!(a, Action::Internal("MW", 2)),
        "P2's store hits memory FIRST",
    );
    take(
        &mut r,
        &|a| matches!(a, Action::Internal("MW", 1)),
        "P1's store hits memory second",
    );
    take(
        &mut r,
        &|a| matches!(a, Action::Internal("CU", 2)),
        "P2 applies update (x=2)",
    );
    take(
        &mut r,
        &|a| matches!(a, Action::Internal("CU", 2)),
        "P2 applies update (x=1)",
    );
    take(
        &mut r,
        &|a| a.op() == Some(Op::load(ProcId(2), BlockId(1), Value(1))),
        "P2 reads x=1 — P1's store is LAST in ST order",
    );
    let run = r.into_run();

    println!(
        "\nobserver output ({} locations, memory word is the serialization location):",
        proto.locations()
    );
    let d = Observer::observe_run(&proto, &run);
    for sym in &d.symbols {
        println!("  {sym}");
    }
    println!("\nstreaming SC checker: {:?}", ScChecker::check(&d));
    assert_eq!(ScChecker::check(&d), Ok(()));

    println!("\n=== 2. The same run under a (wrong) real-time ST order ===\n");
    // Force the real-time policy: the generator serializes STs in trace
    // order, so the witness claims ST x=1 precedes ST x=2 — but P2 read 1
    // *after* its own store of 2, closing a cycle. The checker rejects,
    // demonstrating why Lazy Caching needs the §4.2 generator.
    let mut cfg = ObserverConfig::from_protocol(&proto);
    cfg.policy = StOrderPolicy::RealTime;
    let mut obs = Observer::new(cfg);
    let mut syms = Vec::new();
    for s in &run.steps {
        obs.step(s, &mut syms);
    }
    obs.finish(&mut syms);
    let mut chk = ScChecker::new(obs.k());
    let mut verdict = Ok(());
    for sym in &syms {
        verdict = chk.step(sym);
        if verdict.is_err() {
            break;
        }
    }
    let verdict = match verdict {
        Ok(()) => chk.finish(),
        e => e,
    };
    println!("real-time-order checker verdict: {verdict:?}");
    assert!(verdict.is_err(), "real-time order must be rejected here");

    println!("\n=== 3. Model checking (bounded) ===\n");
    let small = LazyCaching::new(Params::new(2, 1, 1), 1, 1);
    let outcome = Verifier::new(small).max_states(150_000).run();
    let s = outcome.stats();
    let verdict = match &outcome {
        Outcome::Verified { .. } => "VERIFIED (exhaustive)",
        Outcome::Bounded { .. } => "SAFE within the state cap",
        Outcome::Violation { .. } => "VIOLATION",
        // Unreachable here: no budget or cancellation is configured.
        Outcome::Inconclusive { .. } => "INTERRUPTED",
    };
    println!(
        "lazy-caching (2,1,1) qo=1 qi=1: {verdict} — {} states, {} transitions, {:?}",
        s.states, s.transitions, s.elapsed
    );
    assert!(!matches!(outcome, Outcome::Violation { .. }));
    println!("\nLazy Caching is sequentially consistent, and the method checks it");
    println!("with the memory-write ST order generator — exactly as §4.2 argues.");
}
