//! Quickstart: verify a cache-coherence protocol end to end.
//!
//! Runs the complete §3.4 method — generate the observer from the
//! protocol's tracking labels, compose it with the finite-state checker,
//! and model-check the product — on a small MSI snooping protocol, its
//! fault-injected variant, and a TSO store buffer.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sc_verify::prelude::*;

fn report(name: &str, outcome: &Outcome) {
    let s = outcome.stats();
    match outcome {
        Outcome::Verified { .. } => println!(
            "  {name:<22} VERIFIED          {:>8} states, {:>9} transitions, depth {:>3}, {:?}",
            s.states, s.transitions, s.depth, s.elapsed
        ),
        Outcome::Violation { trace, reason, .. } => {
            println!(
                "  {name:<22} NOT SC            {:>8} states, {:>9} transitions, depth {:>3}, {:?}",
                s.states, s.transitions, s.depth, s.elapsed
            );
            println!("      diagnosis : {reason}");
            println!("      trace     : {trace}");
            println!(
                "      cross-check: has_serial_reordering = {}",
                has_serial_reordering(trace)
            );
        }
        Outcome::Bounded { .. } => println!(
            "  {name:<22} BOUNDED (limit)   {:>8} states explored",
            s.states
        ),
        Outcome::Inconclusive {
            reason, coverage, ..
        } => println!("  {name:<22} INTERRUPTED ({reason}) {coverage}"),
    }
}

fn main() {
    println!("sc-verify quickstart — Condon & Hu, SPAA 2001");
    println!();
    println!("Verifying protocols (p = processors, b = blocks, v = values):");
    println!();

    // The smallest serial memory: exhaustively VERIFIED (the product
    // space converges at roughly 120k states).
    let outcome = Verifier::new(SerialMemory::new(Params::new(2, 1, 1)))
        .max_states(400_000)
        .run();
    report("serial-memory (2,1,1)", &outcome);
    assert!(outcome.is_verified());

    // A correct MSI protocol: larger products (millions of states — see
    // DESIGN.md) are explored up to a cap; a correct protocol never
    // produces a violation, bounded or not.
    let outcome = Verifier::new(MsiProtocol::new(Params::new(2, 1, 2)))
        .max_states(150_000)
        .run();
    report("msi (2,1,2)", &outcome);
    assert!(!matches!(outcome, Outcome::Violation { .. }));

    // MESI with silent E->M upgrades: likewise safe within the cap.
    let outcome = Verifier::new(MesiProtocol::new(Params::new(2, 1, 2)))
        .max_states(150_000)
        .run();
    report("mesi (2,1,2)", &outcome);
    assert!(!matches!(outcome, Outcome::Violation { .. }));

    // MSI with a lost invalidation: NOT SC — the model checker returns a
    // shortest violating run whose trace genuinely has no serial
    // reordering.
    let outcome = Verifier::new(MsiProtocol::buggy(Params::new(2, 2, 1)))
        .max_states(2_000_000)
        .run();
    report("msi-buggy (2,2,1)", &outcome);
    assert!(!outcome.is_verified());

    // A TSO store buffer: the store-buffering litmus violates SC.
    let outcome = Verifier::new(StoreBufferTso::new(Params::new(2, 2, 1), 1))
        .max_states(2_000_000)
        .run();
    report("store-buffer (2,2,1)", &outcome);
    assert!(!outcome.is_verified());

    // Run control: a wall-clock deadline turns an over-budget search into
    // an INCONCLUSIVE verdict with coverage, instead of an open-ended
    // wait. Pair it with a checkpoint path and the run is resumable (see
    // `scv verify --timeout --checkpoint --resume`).
    let outcome = Verifier::new(MsiProtocol::new(Params::new(2, 1, 2)))
        .max_states(50_000_000)
        .timeout(std::time::Duration::from_millis(50))
        .run();
    report("msi (50ms deadline)", &outcome);
    assert!(outcome.is_inconclusive());

    println!();
    println!("Done. A VERIFIED protocol has a finite-state witness observer,");
    println!("which by Theorem 3.1 proves it sequentially consistent; BOUNDED");
    println!("means no violation within the state cap (raise it for a proof).");
}
