//! Bug hunting: find, explain, and cross-validate a coherence bug.
//!
//! The fault-injected MSI protocol drops one invalidation on every bus
//! upgrade. This example model-checks the protocol ⊗ observer ⊗ checker
//! product, prints the shortest violating run, decodes the witness graph,
//! exhibits the cycle in the constraint graph, and finally confirms with
//! the direct (exponential) serial-reordering search that the trace truly
//! violates sequential consistency.
//!
//! ```text
//! cargo run --release --example bug_hunt
//! ```

use sc_verify::graph::serial_search::find_serial_reordering;
use sc_verify::prelude::*;
use sc_verify::protocol::Step;

fn main() {
    println!("Hunting the lost-invalidation bug in MSI (p=2, b=2, v=1)…\n");
    let proto = MsiProtocol::buggy(Params::new(2, 2, 1));
    let outcome = Verifier::new(proto.clone()).run();

    let Outcome::Violation {
        run,
        trace,
        reason,
        stats,
    } = outcome
    else {
        panic!("the buggy protocol must be caught");
    };
    println!(
        "violation found after {} states / {} transitions in {:?}",
        stats.states, stats.transitions, stats.elapsed
    );
    println!("checker diagnosis: {reason}\n");

    println!("shortest violating run ({} actions):", run.len());
    for a in &run {
        println!("  {a}");
    }
    println!("\ntrace: {trace}");

    // Rebuild the witness descriptor for the violating run by replaying
    // the protocol along the counterexample actions.
    let mut state = proto.initial();
    let mut steps = Vec::new();
    for a in &run {
        let t = proto
            .transitions(&state)
            .into_iter()
            .find(|t| t.action == *a)
            .expect("counterexample replays");
        state = t.next.clone();
        steps.push(Step {
            action: t.action,
            tracking: t.tracking,
        });
    }
    let run_obj = sc_verify::protocol::Run { steps };
    let d = Observer::observe_run(&proto, &run_obj);
    println!("\nwitness descriptor ({} symbols):", d.symbols.len());
    for sym in &d.symbols {
        println!("  {sym}");
    }

    // Decode and show the cycle (if the rejection was a cycle) or the
    // violated axiom.
    match decode(&d) {
        Ok((dg, _)) => match dg.to_constraint_graph() {
            Ok(cg) => {
                println!(
                    "\ndecoded witness graph: {} nodes, {} edges",
                    cg.node_count(),
                    cg.edge_count()
                );
                match cg.find_cycle() {
                    Some(cycle) => {
                        println!("constraint-graph cycle (1-based trace positions):");
                        for w in cycle.windows(2) {
                            let ann = cg.edge(w[0], w[1]).expect("cycle edge");
                            println!(
                                "  {} --{}--> {}",
                                format_node(&trace, w[0]),
                                ann,
                                format_node(&trace, w[1])
                            );
                        }
                    }
                    None => println!("graph is acyclic; an edge-annotation axiom failed instead"),
                }
            }
            Err(e) => println!("\nwitness graph is malformed: {e}"),
        },
        Err(e) => println!("\ndescriptor decode failed: {e}"),
    }

    // Independent confirmation: the direct search finds no serial
    // reordering.
    println!();
    match find_serial_reordering(&trace) {
        None => println!("independent check: NO serial reordering exists — the bug is real."),
        Some(r) => panic!("trace unexpectedly SC via {r:?}"),
    }
}

fn format_node(trace: &Trace, i: usize) -> String {
    if i < trace.len() {
        format!("[{}] {}", i + 1, trace[i])
    } else {
        format!("[{}]", i + 1)
    }
}
