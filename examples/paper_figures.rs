//! Regenerate the paper's figures 3 and 4 and the §4.4 size-bound table.
//!
//! * **Figure 3** — the five-operation constraint graph, printed as the
//!   naive descriptor and as the 3-bandwidth-bounded descriptor with ID
//!   recycling, matching the strings in §3.2 of the paper character for
//!   character.
//! * **Figure 4** — the tracking-label example: the four-action run of the
//!   two-cache Get-Shared protocol, the per-step tracking labels and
//!   states, and the final ST-index table.
//! * **§4.4** — the observer size bound `(L+pb)(lg p+lg b+lg v+1)+L lg L`
//!   across a parameter sweep, against the measured observer high-water
//!   marks.
//!
//! ```text
//! cargo run --release --example paper_figures
//! ```

use sc_verify::observer::ObserverStats;
use sc_verify::prelude::*;
use sc_verify::protocol::StIndexTracker;

fn figure3() {
    println!("=== Figure 3: a constraint graph and its descriptors ===\n");
    let t = Trace::from_ops([
        Op::store(ProcId(1), BlockId(1), Value(1)),
        Op::load(ProcId(2), BlockId(1), Value(1)),
        Op::store(ProcId(1), BlockId(1), Value(2)),
        Op::load(ProcId(2), BlockId(1), Value(1)),
        Op::load(ProcId(2), BlockId(1), Value(2)),
    ]);
    let mut g = ConstraintGraph::with_nodes(t.iter().copied());
    g.add_edge(0, 1, EdgeSet::INH);
    g.add_edge(0, 2, EdgeSet::PO_STO);
    g.add_edge(0, 3, EdgeSet::INH);
    g.add_edge(1, 3, EdgeSet::PO);
    g.add_edge(3, 2, EdgeSet::FORCED);
    g.add_edge(2, 4, EdgeSet::INH);
    g.add_edge(3, 4, EdgeSet::PO);

    println!("trace          : {t}");
    println!("acyclic        : {}", g.is_acyclic());
    println!("axioms         : {:?}", validate_constraint_graph(&g, &t));
    println!("node bandwidth : {}", g.bandwidth());
    println!();
    println!("naive descriptor:\n  {}", naive_descriptor(&g));
    println!();
    let d3 = encode(&g, 3).expect("figure 3 is 3-bandwidth bounded");
    println!("3-bandwidth descriptor (ID 1 recycled for node 5):\n  {d3}");
    println!();
    println!(
        "streaming SC checker on the 3-bandwidth descriptor: {:?}",
        ScChecker::check(&d3)
    );
    println!();
}

type Fig4Pick =
    Box<dyn Fn(&sc_verify::protocol::Transition<<Fig4Protocol as Protocol>::State>) -> bool>;

fn figure4() {
    println!("=== Figure 4: tracking labels and ST indexes ===\n");
    let proto = Fig4Protocol::paper();
    let mut runner = Runner::new(proto);
    let mut tracker = StIndexTracker::new(runner.protocol().locations());

    // The exact run of the figure.
    let script: Vec<Fig4Pick> = vec![
        Box::new(|t| {
            t.action.op() == Some(Op::store(ProcId(1), BlockId(1), Value(1)))
                && t.tracking.loc == Some(1)
        }),
        Box::new(|t| {
            t.action.op() == Some(Op::store(ProcId(2), BlockId(2), Value(2)))
                && t.tracking.loc == Some(4)
        }),
        Box::new(|t| {
            matches!(t.action, Action::Internal("Get-Shared", pb) if pb == (2 << 8) | 1)
                && t.tracking
                    .copies
                    .iter()
                    .any(|&(dst, src)| dst == 3 && src == sc_verify::protocol::CopySrc::Loc(1))
        }),
        Box::new(|t| {
            t.action.op() == Some(Op::store(ProcId(1), BlockId(3), Value(3)))
                && t.tracking.loc == Some(1)
        }),
    ];
    println!("run R:");
    for pick in script {
        let t = runner
            .enabled()
            .into_iter()
            .find(|t| pick(t))
            .expect("scripted transition enabled");
        println!(
            "  {:<18} tracking {:?}",
            t.action.to_string(),
            if let Some(loc) = t.tracking.loc {
                format!("f = location {loc}")
            } else {
                format!("copies {:?}", t.tracking.copies)
            }
        );
        runner.take(t);
        tracker.step(runner.run().steps.last().unwrap());
    }
    println!();
    println!("final protocol state (slot -> contents):");
    for (i, slot) in runner.state().iter().enumerate() {
        let desc = match slot {
            None => "⊥".to_string(),
            Some((b, v)) => format!("B{b}:{v}"),
        };
        println!("  location {} : {desc}", i + 1);
    }
    println!();
    println!("ST-index table (paper Figure 4(c)):");
    for l in 1..=4u32 {
        println!("  ST-index(R,{l}) = {}", tracker.st_index(l));
    }
    assert_eq!(tracker.all(), &[3, 0, 1, 2]);
    println!();
}

fn size_bounds() {
    println!("=== §4.4: observer size bound vs. measured observer ===\n");
    println!(
        "  {:<16} {:>3} {:>3} {:>3} {:>4} | {:>9} {:>10} | {:>9} {:>8}",
        "protocol", "p", "b", "v", "L", "bound bw", "bound bits", "meas. bw", "aux used"
    );
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(99);
    let row = |name: &str, params: Params, locations: u32, stats: ObserverStats| {
        let bound = observer_size_bound(&params, locations);
        println!(
            "  {:<16} {:>3} {:>3} {:>3} {:>4} | {:>9} {:>10} | {:>9} {:>8}",
            name,
            params.p,
            params.b,
            params.v,
            locations,
            bound.bandwidth,
            bound.total_bits,
            stats.max_live_nodes,
            stats.max_aux_in_use,
        );
    };
    macro_rules! measure {
        ($name:expr, $proto:expr, $steps:expr) => {{
            let proto = $proto;
            let mut runner = Runner::new(proto.clone());
            runner.run_random($steps, 0.5, &mut rng);
            let run = runner.into_run();
            let mut obs = Observer::new(ObserverConfig::from_protocol(&proto));
            let mut syms = Vec::new();
            for s in &run.steps {
                obs.step(s, &mut syms);
            }
            obs.finish(&mut syms);
            row($name, proto.params(), proto.locations(), obs.stats());
        }};
    }
    for (p, b, v) in [(2, 2, 2), (3, 2, 2), (2, 4, 2), (4, 2, 4)] {
        let params = Params::new(p, b, v);
        measure!("serial-memory", SerialMemory::new(params), 400);
        measure!("msi", MsiProtocol::new(params), 400);
        measure!("directory", DirectoryProtocol::new(params), 400);
        measure!("lazy-caching", LazyCaching::new(params, 2, 2), 400);
        println!();
    }
    println!("The measured live-node count tracks the paper's L+pb bandwidth");
    println!("bound (it may exceed it by up to b: this implementation pins each");
    println!("block's first store forever to discharge late ⊥-loads — see");
    println!("DESIGN.md), and the bound grows as predicted in each parameter.");
}

fn main() {
    figure3();
    figure4();
    size_bounds();
}
