//! Figure 1 of the paper: which outcomes do different memory models allow?
//!
//! Processor 1 executes `ST r1,x` then `ST r2,y`; processor 2 executes
//! `LD r2,y` then `LD r1,x` (the message-passing litmus). The paper's
//! caption: a serial memory allows only `(r1,r2) = (1,2)`; sequential
//! consistency also allows `(0,0)` and `(1,0)` but **not** `(0,2)`; a
//! relaxed model that reorders the two loads allows `(0,2)`.
//!
//! This example enumerates every outcome three ways:
//!   * *serial* — is the real-time trace itself serial?
//!   * *SC* — does the trace have a serial reordering (direct search)?
//!   * *TSO* — is the outcome reachable on the store-buffer machine?
//!
//! ```text
//! cargo run --release --example litmus
//! ```

use sc_verify::graph::serial_search::find_serial_reordering;
use sc_verify::prelude::*;

/// Build the Figure 1 trace for a given outcome (`None` = the load saw ⊥).
fn outcome_trace(r1: Option<u8>, r2: Option<u8>) -> Trace {
    let x = BlockId(1);
    let y = BlockId(2);
    let p1 = ProcId(1);
    let p2 = ProcId(2);
    let val = |o: Option<u8>| o.map(Value).unwrap_or(Value::BOTTOM);
    Trace::from_ops([
        Op::store(p1, x, Value(1)),
        Op::store(p1, y, Value(2)),
        Op::load(p2, y, val(r2)),
        Op::load(p2, x, val(r1)),
    ])
}

/// Is the outcome reachable on the TSO store-buffer machine? (The general
/// engine lives in `sc_verify::protocol::litmus`.)
fn tso_reachable(target: &Trace) -> bool {
    let proto = StoreBufferTso::new(Params::new(2, 2, 2), 2);
    sc_verify::protocol::litmus::realizable(&proto, target, 6)
}

fn main() {
    println!("Figure 1 — outcomes of the message-passing litmus");
    println!();
    println!("  P1: ST x=1; ST y=2        P2: LD y -> r2; LD x -> r1");
    println!();
    println!("  r1  r2   serial?  SC?   TSO-reachable?");
    println!("  ---------------------------------------");
    let values = [None, Some(1u8)];
    let values2 = [None, Some(2u8)];
    for r1 in values {
        for r2 in values2 {
            let t = outcome_trace(r1, r2);
            let serial = t.is_serial();
            let sc = has_serial_reordering(&t);
            let tso = tso_reachable(&t);
            let show = |o: Option<u8>| o.map_or("0".to_string(), |v| v.to_string());
            println!(
                "   {}   {}    {:<7} {:<5} {}",
                show(r1),
                show(r2),
                serial,
                sc,
                tso
            );
        }
    }
    println!();

    // The paper's specific claims, asserted.
    assert!(has_serial_reordering(&outcome_trace(Some(1), Some(2))));
    assert!(has_serial_reordering(&outcome_trace(None, None)));
    assert!(has_serial_reordering(&outcome_trace(Some(1), None)));
    assert!(!has_serial_reordering(&outcome_trace(None, Some(2))));
    // Under TSO, (0,2) is NOT reachable either — TSO preserves the order
    // of same-processor stores and of same-processor loads; reordering the
    // two *loads* (paper's "more relaxed models") would be needed.
    println!("SC forbids (r1,r2) = (0,2); a reordering witness exists for (1,0):");
    let t = outcome_trace(Some(1), None);
    let r = find_serial_reordering(&t).expect("SC outcome");
    println!("  trace    : {t}");
    println!("  reordered: {}", r.apply(&t));
    println!();
    println!("All Figure 1 claims hold.");
}
