//! `scv-telemetry` — the unified tracing/metrics layer of the
//! verification pipeline.
//!
//! Every pipeline crate (model checker, observer, checker, descriptor
//! codec, CLI, bench harness) reports through this facade:
//!
//! * **Phase spans** ([`timer`]) — RAII guards with monotonic timing for
//!   each pipeline phase (search, successor expansion, observer step,
//!   descriptor encode/decode, cycle/SC check, replay), recorded into
//!   per-phase log₂ histograms with nesting-depth tracking.
//! * **Metrics registry** ([`add`], [`record`], [`set_gauge`]) — a closed
//!   set of atomic counters and histograms indexed by enum (no name
//!   lookup on hot paths) plus dynamic named gauges for cold end-of-run
//!   values (stripe loads, peak RSS, states/sec).
//! * **Pluggable sinks** ([`install`]) — a no-op sink, a human
//!   `--telemetry=summary` table, and a `--telemetry=jsonl` stream of
//!   schema-versioned events; [`RunReport`]s give each run a durable,
//!   diffable record (see the `report_diff` tool in `scv-bench`).
//!
//! ## The overhead contract
//!
//! Telemetry is **off by default**. Every recording site is guarded by
//! [`enabled`] — a single relaxed atomic load — so the disabled cost is
//! one predictable branch per callsite and *zero* allocation, locking, or
//! clock reads. When enabled, hot paths pay only atomic adds; spans cost
//! two monotonic clock reads, and per-transition spans are sampled
//! ([`timer_sampled`], 1 in [`SAMPLE_PERIOD`] weighted by the period) so
//! the common case is a thread-local counter bump. Sink I/O happens
//! exclusively at [`flush`] time from aggregated data. The
//! `telemetry_overhead` bench in `scv-bench` enforces ≤5% end-to-end
//! overhead on `verify_protocol` with telemetry enabled, and CI runs it
//! in quick mode.

pub mod json;
pub mod metrics;
pub mod perfetto;
pub mod progress;
pub mod recorder;
pub mod report;
pub mod sink;
pub mod span;

pub use json::Json;
pub use metrics::{
    bucket_bound, bucket_of, Hist, HistSnapshot, Metric, Registry, ALL_HISTS, ALL_METRICS,
};
pub use perfetto::{chrome_trace_json, validate_chrome_trace, write_chrome_trace, TraceStats};
pub use progress::{start_progress, ProgressHandle, ProgressOptions};
pub use recorder::{recorder_enabled, WorkerTimeline, DEFAULT_RING_CAPACITY};
pub use report::{diff_reports, parse_reports, Direction, MetricDelta, RunReport, SCHEMA_VERSION};
pub use sink::{Event, JsonlSink, MemorySink, NoopSink, Sink, SummarySink};
pub use span::{current_depth, Phase, PhaseTable, SpanGuard, ALL_PHASES, SAMPLE_PERIOD};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Box<dyn Sink>>> = Mutex::new(None);

fn registry_cell() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// The global phase-span table (always present; recorded into only while
/// enabled).
pub fn phase_table() -> &'static PhaseTable {
    static PHASES: OnceLock<PhaseTable> = OnceLock::new();
    PHASES.get_or_init(PhaseTable::default)
}

/// The global metrics registry.
pub fn registry() -> &'static Registry {
    registry_cell()
}

/// Is telemetry collection on? One relaxed load — the per-callsite guard
/// every hot path uses.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn sink_slot() -> MutexGuard<'static, Option<Box<dyn Sink>>> {
    SINK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Install a sink, reset all counters/histograms/spans, and enable
/// collection. Replaces (and drops) any previous sink.
pub fn install(sink: Box<dyn Sink>) {
    let mut slot = sink_slot();
    registry().reset();
    phase_table().reset();
    *slot = Some(sink);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Stop collecting (the registry keeps its data; the sink stays
/// installed until [`shutdown`]).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Start a span for `phase`; `None` when telemetry is disabled. Bind the
/// guard (`let _t = timer(...)`) — the span records on drop.
#[inline]
pub fn timer(phase: Phase) -> Option<SpanGuard> {
    if enabled() {
        Some(SpanGuard::begin(phase))
    } else {
        None
    }
}

/// Start a *sampled* span: one call in [`SAMPLE_PERIOD`] is timed, its
/// duration weighted by the period so the phase aggregate still estimates
/// the full population; the other calls cost one thread-local counter
/// bump. Use at per-transition/per-symbol callsites where even two clock
/// reads per call would breach the overhead budget; use [`timer`] for
/// coarse phases where exact totals matter.
#[inline]
pub fn timer_sampled(phase: Phase) -> Option<SpanGuard> {
    if enabled() && span::sample(phase) {
        Some(SpanGuard::begin_weighted(phase, span::SAMPLE_PERIOD))
    } else {
        None
    }
}

/// Add to a counter (no-op when disabled).
#[inline]
pub fn add(metric: Metric, n: u64) {
    if enabled() {
        registry().add(metric, n);
    }
}

/// Record a histogram value (no-op when disabled).
#[inline]
pub fn record(metric: Hist, value: u64) {
    if enabled() {
        registry().record(metric, value);
    }
}

/// Set a named gauge (no-op when disabled; cold path — takes a lock).
pub fn set_gauge(name: &str, value: f64) {
    if enabled() {
        registry().set_gauge(name, value);
    }
}

/// Send one event to the installed sink (no-op when disabled).
pub fn event(e: Event) {
    if !enabled() {
        return;
    }
    if let Some(sink) = sink_slot().as_mut() {
        sink.record(&e);
    }
}

/// Emit a run report to the sink.
pub fn emit_report(report: RunReport) {
    event(Event::Report(report));
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`). **Linux-only**: on every other platform this is
/// a documented `None` — there is no portable equivalent without a
/// dependency, so callers and sinks must *omit* the value rather than
/// report a fake zero (see [`flush`], which only sets the
/// `process.peak_rss_bytes` gauge when a reading exists).
#[cfg(target_os = "linux")]
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Peak resident set size: always `None` off Linux (no `/proc`). Sinks
/// and reports omit the gauge entirely rather than emitting zero.
#[cfg(not(target_os = "linux"))]
pub fn peak_rss_bytes() -> Option<u64> {
    None
}

/// Aggregate everything recorded so far into events (phase summaries,
/// counter/gauge snapshots, histogram summaries), push them to the sink,
/// and flush it. Safe to call repeatedly; each call snapshots the current
/// totals.
pub fn flush() {
    if !enabled() {
        return;
    }
    if let Some(rss) = peak_rss_bytes() {
        registry().set_gauge("process.peak_rss_bytes", rss as f64);
    }
    let mut slot = sink_slot();
    let Some(sink) = slot.as_mut() else {
        return;
    };
    let phases = phase_table();
    for &phase in &ALL_PHASES {
        let snap = phases.durations(phase);
        if snap.count == 0 {
            continue;
        }
        sink.record(&Event::PhaseSummary {
            phase: phase.name(),
            count: snap.count,
            total_ns: snap.sum,
            mean_ns: snap.mean(),
            p99_ns: snap.quantile_bound(0.99),
            max_ns: snap.max,
            max_depth: phases.max_depth(phase),
        });
    }
    let counters = registry().counter_snapshot();
    if !counters.is_empty() {
        sink.record(&Event::Counters { items: counters });
    }
    for &h in &ALL_HISTS {
        let snap = registry().hist(h);
        if snap.count == 0 {
            continue;
        }
        sink.record(&Event::HistSummary {
            name: h.name(),
            count: snap.count,
            mean: snap.mean(),
            p50: snap.quantile(0.50),
            p95: snap.quantile(0.95),
            p99: snap.quantile(0.99),
            max: snap.max,
        });
    }
    let gauges = registry().gauges();
    if !gauges.is_empty() {
        sink.record(&Event::Gauges { items: gauges });
    }
    sink.flush();
}

/// [`flush`], then disable collection and drop the sink.
pub fn shutdown() {
    flush();
    ENABLED.store(false, Ordering::SeqCst);
    *sink_slot() = None;
}

/// Serializes tests that touch the global telemetry state (the enabled
/// flag, registry, and sink are process-wide). Used by this crate's unit
/// tests and by integration tests in dependent crates.
pub fn test_mutex() -> &'static Mutex<()> {
    static TEST_MUTEX: OnceLock<Mutex<()>> = OnceLock::new();
    TEST_MUTEX.get_or_init(|| Mutex::new(()))
}

/// An exclusive telemetry session for tests: takes the global test lock,
/// installs a [`MemorySink`], and enables collection. Dropping it shuts
/// telemetry down. Read collected events via [`TestSession::events`].
pub struct TestSession {
    events: Arc<Mutex<Vec<Event>>>,
    _lock: MutexGuard<'static, ()>,
}

impl TestSession {
    /// Lock, install a memory sink, enable.
    pub fn start() -> TestSession {
        let lock = test_mutex().lock().unwrap_or_else(PoisonError::into_inner);
        let (sink, events) = MemorySink::new();
        install(Box::new(sink));
        TestSession {
            events,
            _lock: lock,
        }
    }

    /// Lock and force telemetry off (for disabled-path assertions).
    pub fn start_disabled() -> TestSession {
        let lock = test_mutex().lock().unwrap_or_else(PoisonError::into_inner);
        shutdown();
        let (_, events) = MemorySink::new();
        TestSession {
            events,
            _lock: lock,
        }
    }

    /// Everything the sink has received so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().clone()
    }
}

impl Drop for TestSession {
    fn drop(&mut self) {
        shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recording_is_inert() {
        let _s = TestSession::start_disabled();
        assert!(!enabled());
        add(Metric::McTransitions, 10);
        record(Hist::SeenProbeLen, 3);
        set_gauge("x", 1.0);
        assert!(timer(Phase::Search).is_none());
        assert_eq!(registry().get(Metric::McTransitions), 0);
        assert_eq!(registry().hist(Hist::SeenProbeLen).count, 0);
    }

    #[test]
    fn install_resets_and_flush_aggregates() {
        let s = TestSession::start();
        assert!(enabled());
        add(Metric::ObserverSymbols, 3);
        record(Hist::SeenProbeLen, 2);
        set_gauge("mc.peak_frontier", 17.0);
        {
            let _t = timer(Phase::Search);
        }
        flush();
        let events = s.events();
        assert!(events.iter().any(
            |e| matches!(e, Event::PhaseSummary { phase, count: 1, .. } if *phase == "search")
        ));
        assert!(events.iter().any(|e| matches!(
            e,
            Event::Counters { items } if items.contains(&("observer.symbols", 3))
        )));
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::HistSummary { name, .. } if *name == "seen.probe_len")));
        assert!(events.iter().any(|e| matches!(
            e,
            Event::Gauges { items } if items.iter().any(|(k, v)| k == "mc.peak_frontier" && *v == 17.0)
        )));
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_is_some_and_plausible_on_linux() {
        let rss = peak_rss_bytes().expect("Linux always exposes VmHWM");
        assert!(rss > 1024, "peak RSS should exceed a kilobyte: {rss}");
    }

    #[test]
    #[cfg(not(target_os = "linux"))]
    fn peak_rss_is_none_off_linux() {
        assert_eq!(peak_rss_bytes(), None);
    }

    #[test]
    fn flush_omits_rss_gauge_when_unavailable() {
        // On any platform: the gauge is present iff a reading exists —
        // never a fake zero.
        let s = TestSession::start();
        flush();
        let has_reading = peak_rss_bytes().is_some();
        let gauge = s.events().iter().find_map(|e| match e {
            Event::Gauges { items } => items
                .iter()
                .find(|(k, _)| k == "process.peak_rss_bytes")
                .map(|(_, v)| *v),
            _ => None,
        });
        match gauge {
            Some(v) => {
                assert!(has_reading, "gauge emitted without a reading");
                assert!(v > 0.0, "gauge must never be a fake zero");
            }
            None => assert!(!has_reading, "reading available but gauge omitted"),
        }
    }
}
