//! Schema-versioned run reports and the regression-diff logic.
//!
//! A [`RunReport`] is the machine-readable record of one pipeline run
//! (one `scv verify`, one bench-harness experiment): a name, static
//! parameters, a verdict, and a flat metric map. Reports are emitted as
//! JSONL (`{"type":"run_report","schema":1,...}` — one per line), so a
//! file of successive runs is an append-only perf trajectory that
//! [`diff_reports`] (and the `report_diff` binary in `scv-bench`) can
//! compare across commits.

use crate::json::{Json, JsonError};

/// Version of every JSONL record this crate emits. Bump on any
/// backwards-incompatible field change; `report_diff` refuses to compare
/// across versions.
pub const SCHEMA_VERSION: u32 = 1;

/// The machine-readable record of one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Report name (protocol, experiment id, …) — the diff join key.
    pub name: String,
    /// Static parameters (`threads`, `strategy`, protocol sizes, …).
    pub params: Vec<(String, String)>,
    /// Outcome label (`verified`, `violation`, `bounded`, `ok`, …).
    pub verdict: String,
    /// Flat metric map; keys are dotted names (`mc.states_admitted`,
    /// `search.total_ns`, …).
    pub metrics: Vec<(String, f64)>,
}

impl RunReport {
    /// Start a report.
    pub fn new(name: impl Into<String>) -> Self {
        RunReport {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Add a static parameter.
    pub fn param(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.params.push((key.into(), value.to_string()));
        self
    }

    /// Add a metric.
    pub fn metric(mut self, key: impl Into<String>, value: f64) -> Self {
        self.metrics.push((key.into(), value));
        self
    }

    /// Set the verdict.
    pub fn with_verdict(mut self, verdict: impl Into<String>) -> Self {
        self.verdict = verdict.into();
        self
    }

    /// Look up a metric by name.
    pub fn get_metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// The JSONL object form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("type".to_string(), Json::Str("run_report".to_string())),
            ("schema".to_string(), Json::Num(SCHEMA_VERSION as f64)),
            ("name".to_string(), Json::Str(self.name.clone())),
            ("verdict".to_string(), Json::Str(self.verdict.clone())),
            (
                "params".to_string(),
                Json::obj(
                    self.params
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone()))),
                ),
            ),
            (
                "metrics".to_string(),
                Json::obj(self.metrics.iter().map(|(k, v)| (k.clone(), Json::Num(*v)))),
            ),
        ])
    }

    /// Parse one report back from its JSON object form.
    pub fn from_json(j: &Json) -> Result<RunReport, String> {
        if j.get("type").and_then(Json::as_str) != Some("run_report") {
            return Err("not a run_report record".to_string());
        }
        let schema = j
            .get("schema")
            .and_then(Json::as_num)
            .ok_or("missing schema field")? as u32;
        if schema != SCHEMA_VERSION {
            return Err(format!(
                "schema version {schema} != supported {SCHEMA_VERSION}"
            ));
        }
        let name = j
            .get("name")
            .and_then(Json::as_str)
            .ok_or("missing name")?
            .to_string();
        let verdict = j
            .get("verdict")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let mut params = Vec::new();
        if let Some(m) = j.get("params").and_then(Json::as_obj) {
            for (k, v) in m {
                params.push((k.clone(), v.as_str().unwrap_or_default().to_string()));
            }
        }
        let mut metrics = Vec::new();
        if let Some(m) = j.get("metrics").and_then(Json::as_obj) {
            for (k, v) in m {
                metrics.push((k.clone(), v.as_num().ok_or("non-numeric metric")?));
            }
        }
        Ok(RunReport {
            name,
            params,
            verdict,
            metrics,
        })
    }
}

/// Parse every `run_report` record out of JSONL text, skipping other
/// event types; any malformed line is an error.
pub fn parse_reports(jsonl: &str) -> Result<Vec<RunReport>, String> {
    let mut out = Vec::new();
    for (lineno, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let j = Json::parse(line).map_err(|e: JsonError| format!("line {}: {e}", lineno + 1))?;
        if j.get("type").and_then(Json::as_str) == Some("run_report") {
            out.push(RunReport::from_json(&j).map_err(|e| format!("line {}: {e}", lineno + 1))?);
        }
    }
    Ok(out)
}

/// How a metric's change should be judged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Growth beyond the threshold is a regression (times, probe
    /// lengths, idle spins).
    LowerIsBetter,
    /// Shrinkage beyond the threshold is a regression (throughput).
    HigherIsBetter,
    /// Informational only — never flags (state counts, depths).
    Neutral,
}

/// The judging direction for a metric name. Times (`*_ns`, `*_secs`,
/// `*.elapsed*`) and waste counters regress when they grow; `*per_sec*`
/// throughput regresses when it shrinks; everything else is
/// informational.
pub fn direction_of(name: &str) -> Direction {
    if name.contains("per_sec") {
        return Direction::HigherIsBetter;
    }
    if name.ends_with("_ns")
        || name.ends_with("_secs")
        || name.contains("elapsed")
        || name.ends_with("probe_len")
        || name.ends_with("idle_spins")
        || name.ends_with("peak_rss_bytes")
    {
        return Direction::LowerIsBetter;
    }
    Direction::Neutral
}

/// One metric compared across two reports.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricDelta {
    /// Metric name.
    pub name: String,
    /// Value in the old report.
    pub old: f64,
    /// Value in the new report.
    pub new: f64,
    /// Percent change relative to old (`None` when old == 0).
    pub pct: Option<f64>,
    /// Judging direction applied.
    pub direction: Direction,
    /// Did this metric regress beyond the threshold?
    pub regression: bool,
}

/// Compare two same-named reports metric by metric. `threshold_pct` is
/// the tolerated adverse change (e.g. `10.0` = 10%); only metrics present
/// in both reports are compared.
pub fn diff_reports(old: &RunReport, new: &RunReport, threshold_pct: f64) -> Vec<MetricDelta> {
    let mut out = Vec::new();
    for (name, old_v) in &old.metrics {
        let Some(new_v) = new.get_metric(name) else {
            continue;
        };
        let pct = (*old_v != 0.0).then(|| (new_v - old_v) / old_v.abs() * 100.0);
        let direction = direction_of(name);
        let regression = match (direction, pct) {
            (Direction::LowerIsBetter, Some(p)) => p > threshold_pct,
            (Direction::HigherIsBetter, Some(p)) => p < -threshold_pct,
            _ => false,
        };
        out.push(MetricDelta {
            name: name.clone(),
            old: *old_v,
            new: new_v,
            pct,
            direction,
            regression,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport::new("msi")
            .param("threads", 4)
            .param("strategy", "ws")
            .with_verdict("bounded")
            .metric("mc.states_admitted", 60_000.0)
            .metric("search.total_ns", 1.25e9)
            .metric("mc.states_per_sec", 48_000.0)
    }

    #[test]
    fn report_roundtrips_through_jsonl() {
        let r = sample();
        let line = r.to_json().to_string_compact();
        assert!(line.contains("\"type\":\"run_report\""));
        assert!(line.contains("\"schema\":1"));
        let back = parse_reports(&line).unwrap();
        assert_eq!(back.len(), 1);
        let b = &back[0];
        assert_eq!(b.name, "msi");
        assert_eq!(b.verdict, "bounded");
        assert_eq!(b.get_metric("search.total_ns"), Some(1.25e9));
        assert_eq!(
            b.params
                .iter()
                .find(|(k, _)| k == "threads")
                .map(|(_, v)| v.as_str()),
            Some("4")
        );
    }

    #[test]
    fn parse_skips_non_report_events_but_rejects_bad_schema() {
        let mixed = format!(
            "{}\n{}\n",
            "{\"type\":\"phase\",\"schema\":1,\"phase\":\"search\"}",
            sample().to_json().to_string_compact()
        );
        assert_eq!(parse_reports(&mixed).unwrap().len(), 1);
        let future = "{\"type\":\"run_report\",\"schema\":999,\"name\":\"x\"}";
        assert!(parse_reports(future).is_err());
        assert!(parse_reports("not json").is_err());
    }

    #[test]
    fn diff_flags_only_adverse_moves_beyond_threshold() {
        let old = sample();
        let new = RunReport::new("msi")
            .metric("mc.states_admitted", 90_000.0) // neutral: no flag
            .metric("search.total_ns", 1.5e9) // +20% time: regression at 10%
            .metric("mc.states_per_sec", 50_000.0); // improved: no flag
        let deltas = diff_reports(&old, &new, 10.0);
        let by_name = |n: &str| deltas.iter().find(|d| d.name == n).unwrap();
        assert!(!by_name("mc.states_admitted").regression);
        assert!(by_name("search.total_ns").regression);
        assert!(!by_name("mc.states_per_sec").regression);
        // Same threshold, smaller growth: tolerated.
        let ok = RunReport::new("msi").metric("search.total_ns", 1.3e9); // +4%
        assert!(diff_reports(&old, &ok, 10.0).iter().all(|d| !d.regression));
        // Throughput collapse is flagged.
        let slow = RunReport::new("msi").metric("mc.states_per_sec", 10_000.0);
        assert!(diff_reports(&old, &slow, 10.0).iter().any(|d| d.regression));
    }

    #[test]
    fn directions_follow_naming_convention() {
        assert_eq!(direction_of("search.total_ns"), Direction::LowerIsBetter);
        assert_eq!(direction_of("mc.states_per_sec"), Direction::HigherIsBetter);
        assert_eq!(direction_of("mc.states_admitted"), Direction::Neutral);
        assert_eq!(direction_of("seen.probe_len"), Direction::LowerIsBetter);
    }
}
