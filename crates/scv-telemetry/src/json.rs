//! A minimal JSON value type with a writer and a parser.
//!
//! The build environment is offline (no `serde`), and the telemetry layer
//! needs exactly two things: emit one JSON object per line (JSONL sinks,
//! run reports) and read them back (schema tests, the `report_diff`
//! tool). This module implements that subset: objects, arrays, strings
//! with standard escapes, f64 numbers, booleans, and null. Numbers are
//! always parsed as `f64` — every metric the pipeline emits fits.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed or to-be-written JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always held as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` so output key order is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (String, Json)>) -> Json {
        Json::Obj(pairs.into_iter().collect())
    }

    /// Borrow an object field.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an object map, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Serialize to a compact single-line string.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 9e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse one JSON document (rejects trailing garbage).
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

/// A parse failure, with the byte offset where it happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are replaced; the writer never
                            // emits them.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_value() {
        let v = Json::obj([
            (
                "name".to_string(),
                Json::Str("msi \"quoted\"\n".to_string()),
            ),
            ("states".to_string(), Json::Num(123456.0)),
            ("ratio".to_string(), Json::Num(0.25)),
            ("neg".to_string(), Json::Num(-3.5)),
            ("ok".to_string(), Json::Bool(true)),
            ("none".to_string(), Json::Null),
            (
                "arr".to_string(),
                Json::Arr(vec![Json::Num(1.0), Json::Str("x".to_string())]),
            ),
        ]);
        let s = v.to_string_compact();
        assert_eq!(Json::parse(&s).unwrap(), v);
    }

    #[test]
    fn integers_print_without_exponent_or_dot() {
        assert_eq!(Json::Num(2_000_000.0).to_string_compact(), "2000000");
        assert_eq!(Json::Num(1.5).to_string_compact(), "1.5");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2,]").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = Json::parse(" { \"k\" : [ 1 , \"\\u00e9π\" ] } ").unwrap();
        assert_eq!(
            v.get("k"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Str("éπ".to_string())
            ]))
        );
    }
}
