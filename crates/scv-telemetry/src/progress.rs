//! Live `--progress` ticker: a sampling thread over the metrics
//! registry and the recorder's live gauges.
//!
//! While a verify runs, the ticker prints one stderr status line per
//! period — cumulative states, states/sec over the last window, current
//! frontier depth, admission rate (states admitted / transitions
//! probed), symmetry seal-cache hit rate, and an ETA heuristic when a
//! `--max-states` target is known (`remaining / rate`, a ceiling: runs
//! that exhaust their true state space finish earlier). On a TTY the
//! line redraws in place; otherwise each sample is its own line so CI
//! logs stay readable.
//!
//! The sampler only *reads* — relaxed atomic counter loads and the
//! [`crate::recorder::live`] gauges — so it perturbs the run by nothing
//! measurable. When the flight recorder is enabled the same samples are
//! also recorded as counter-track events (states/sec, admission rate,
//! seal hit rate) on a dedicated `sampler` track, complementing the
//! frontier-depth / seen-states counters the engines emit inline.

use crate::metrics::Metric;
use crate::recorder::{self, CounterTrack, LiveGauge};
use std::io::{IsTerminal, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration for [`start_progress`].
#[derive(Clone, Debug)]
pub struct ProgressOptions {
    /// Sampling period (default 500 ms).
    pub period: Duration,
    /// State budget for the ETA heuristic (e.g. `--max-states`).
    pub target_states: Option<u64>,
}

impl Default for ProgressOptions {
    fn default() -> Self {
        ProgressOptions {
            period: Duration::from_millis(500),
            target_states: None,
        }
    }
}

/// Handle to a running ticker; stop (or drop) it before draining the
/// recorder so the sampler's own track is collected.
pub struct ProgressHandle {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl ProgressHandle {
    /// Signal the sampler and wait for it to exit (prints a final
    /// newline on a TTY so the next output starts clean).
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for ProgressHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

fn fmt_count(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.1}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

fn fmt_eta(secs: f64) -> String {
    if !secs.is_finite() || secs > 86_400.0 {
        return "--".to_string();
    }
    let s = secs.round() as u64;
    if s >= 3600 {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    } else if s >= 60 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{s}s")
    }
}

/// One sampled snapshot and the derived line. Split out so tests can
/// exercise the formatting without a thread.
fn status_line(
    admitted: u64,
    rate: f64,
    frontier: u64,
    admission_rate: Option<f64>,
    seal_hit_rate: Option<f64>,
    target: Option<u64>,
) -> String {
    let mut line = format!(
        "[scv] states {} ({}/s) frontier {}",
        fmt_count(admitted),
        fmt_count(rate.max(0.0) as u64),
        fmt_count(frontier),
    );
    if let Some(a) = admission_rate {
        line.push_str(&format!(" admit {:.0}%", a * 100.0));
    }
    if let Some(h) = seal_hit_rate {
        line.push_str(&format!(" seal-hit {:.0}%", h * 100.0));
    }
    if let Some(t) = target {
        let remaining = t.saturating_sub(admitted);
        let eta = if rate > 1.0 {
            remaining as f64 / rate
        } else {
            f64::INFINITY
        };
        line.push_str(&format!(" eta≤{}", fmt_eta(eta)));
    }
    line
}

/// Spawn the sampling thread. Requires telemetry to be enabled (the
/// counters it reads only advance then); the caller installs a
/// [`crate::NoopSink`] when no other sink is wanted.
pub fn start_progress(opts: ProgressOptions) -> ProgressHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name("scv-progress".to_string())
        .spawn(move || {
            recorder::set_worker("sampler");
            let tty = std::io::stderr().is_terminal();
            let reg = crate::registry();
            let t0 = Instant::now();
            let mut last = t0;
            let mut last_admitted = reg.get(Metric::McStatesAdmitted);
            let mut last_transitions = reg.get(Metric::McTransitions);
            let mut printed = false;
            loop {
                // Poll the stop flag at a finer grain than the period so
                // short runs don't block their caller for a full tick.
                let tick_end = Instant::now() + opts.period;
                while Instant::now() < tick_end {
                    if stop2.load(Ordering::SeqCst) {
                        if printed && tty {
                            eprintln!();
                        }
                        recorder::flush_worker();
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
                let now = Instant::now();
                let dt = now.duration_since(last).as_secs_f64().max(1e-9);
                last = now;
                let admitted = reg.get(Metric::McStatesAdmitted);
                let transitions = reg.get(Metric::McTransitions);
                let rate = (admitted - last_admitted) as f64 / dt;
                let d_trans = transitions.saturating_sub(last_transitions);
                let admission_rate = if d_trans > 0 {
                    Some((admitted - last_admitted) as f64 / d_trans as f64)
                } else {
                    None
                };
                last_admitted = admitted;
                last_transitions = transitions;
                let hits = reg.get(Metric::SealCacheHits);
                let misses = reg.get(Metric::SealCacheMisses);
                let seal_hit_rate = if hits + misses > 0 {
                    Some(hits as f64 / (hits + misses) as f64)
                } else {
                    None
                };
                let frontier = recorder::live(LiveGauge::FrontierDepth);
                if recorder::recorder_enabled() {
                    recorder::counter(CounterTrack::StatesPerSec, rate);
                    if let Some(a) = admission_rate {
                        recorder::counter(CounterTrack::AdmissionRate, a);
                    }
                    if let Some(h) = seal_hit_rate {
                        recorder::counter(CounterTrack::SealHitRate, h);
                    }
                }
                let line = status_line(
                    admitted,
                    rate,
                    frontier,
                    admission_rate,
                    seal_hit_rate,
                    opts.target_states,
                );
                let mut err = std::io::stderr().lock();
                if tty {
                    let _ = write!(err, "\r\x1b[2K{line}");
                } else {
                    let _ = writeln!(err, "{line}");
                }
                let _ = err.flush();
                printed = true;
            }
        })
        .expect("spawn progress sampler");
    ProgressHandle {
        stop,
        join: Some(join),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_line_formats_all_fields() {
        let line = status_line(123_456, 9_876.0, 42, Some(0.25), Some(0.381), Some(200_000));
        assert_eq!(
            line,
            "[scv] states 123.5k (9876/s) frontier 42 admit 25% seal-hit 38% eta≤8s"
        );
    }

    #[test]
    fn status_line_omits_unknown_rates_and_caps_eta() {
        let line = status_line(10, 0.0, 0, None, None, Some(1_000_000));
        assert_eq!(line, "[scv] states 10 (0/s) frontier 0 eta≤--");
        let bare = status_line(5, 2.0, 1, None, None, None);
        assert_eq!(bare, "[scv] states 5 (2/s) frontier 1");
    }

    #[test]
    fn ticker_starts_samples_and_stops() {
        let _s = crate::TestSession::start();
        crate::recorder::recorder_start(1024);
        crate::add(Metric::McStatesAdmitted, 100);
        crate::add(Metric::McTransitions, 400);
        let h = start_progress(ProgressOptions {
            period: Duration::from_millis(30),
            target_states: Some(1_000),
        });
        std::thread::sleep(Duration::from_millis(120));
        h.stop();
        crate::recorder::recorder_stop();
        let timelines = crate::recorder::drain();
        let sampler = timelines
            .iter()
            .find(|t| t.label == "sampler")
            .expect("sampler track collected after stop");
        assert!(sampler.events.iter().any(|e| matches!(
            e.event,
            crate::recorder::TraceEvent::Counter {
                track: CounterTrack::StatesPerSec,
                ..
            }
        )));
    }
}
