//! Flight recorder: per-worker ring buffers of sequence-stamped events.
//!
//! The aggregate layer ([`crate::metrics`], [`crate::span`]) answers *how
//! much* — total steals, mean expand time. The flight recorder answers
//! *when* and *on which worker*: each thread that records owns a private
//! bounded ring of [`TraceEvent`]s (span begin/end piggybacked on the
//! existing [`Phase`] guards, plus instants for steals, idle parking,
//! admission batches and seal-cache probes, plus counter samples for
//! frontier depth / seen-set load / states-per-sec). Rings drop their
//! **oldest** entries under overflow — the interesting part of a stall or
//! a steal storm is its tail — and every event carries a per-worker
//! monotone sequence number so dropped prefixes are detectable.
//!
//! ## Cost model
//!
//! The recorder is off by default and gated separately from the metrics
//! layer: [`recorder_enabled`] is one relaxed atomic load, so plain
//! `--telemetry=summary` runs pay exactly one predictable branch per
//! already-instrumented callsite and nothing else. When enabled, a record
//! is a thread-local ring write — no locks, no allocation after the ring
//! reaches capacity, no clock read beyond the one the span guard already
//! made. The global mutex is touched only when a thread exits (its ring
//! is moved into the collected list) and at [`drain`] time.
//!
//! ## Lifecycle
//!
//! ```text
//! recorder_start(cap)            // new session: clears collected rings
//!   set_worker("ws-3")           // label the calling thread's track
//!   instant(..) / counter(..)    // hot-path records
//! drain()                        // collected rings + calling thread's
//! ```
//!
//! Worker threads flush their rings into the collected list when they
//! exit (the search engines join their workers before returning), so a
//! [`drain`] from the coordinating thread sees every finished track plus
//! its own. Threads still alive at drain time (other than the caller)
//! keep their rings until they exit or the next [`drain`].

use crate::span::Phase;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Default per-worker ring capacity (events). At ~32 bytes per stamped
/// event this bounds each worker to ~2 MiB.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Kinds of point-in-time events on a worker's track.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstantKind {
    /// Stole a chunk from another worker's deque (`arg` = chunk length).
    Steal,
    /// Went idle: no local work and nothing stealable (`arg` = spin
    /// count so far).
    Idle,
    /// Flushed an admission batch into the seen set (`arg` = states
    /// admitted out of the batch).
    AdmissionBatch,
    /// Symmetry seal-cache hit (identity fingerprint already sealed).
    SealCacheHit,
    /// Symmetry seal-cache miss (full orbit minimization paid).
    SealCacheMiss,
    /// The SC checker rejected (`arg` = symbol position).
    CheckerReject,
    /// Wrote an on-disk search checkpoint (`arg` = snapshot bytes).
    Checkpoint,
}

/// All instant kinds, in declaration order.
pub const ALL_INSTANT_KINDS: [InstantKind; 7] = [
    InstantKind::Steal,
    InstantKind::Idle,
    InstantKind::AdmissionBatch,
    InstantKind::SealCacheHit,
    InstantKind::SealCacheMiss,
    InstantKind::CheckerReject,
    InstantKind::Checkpoint,
];

impl InstantKind {
    /// Stable dotted name used in trace output.
    pub fn name(self) -> &'static str {
        match self {
            InstantKind::Steal => "mc.steal",
            InstantKind::Idle => "mc.idle",
            InstantKind::AdmissionBatch => "mc.admission_batch",
            InstantKind::SealCacheHit => "symmetry.seal_cache_hit",
            InstantKind::SealCacheMiss => "symmetry.seal_cache_miss",
            InstantKind::CheckerReject => "checker.reject",
            InstantKind::Checkpoint => "mc.checkpoint",
        }
    }
}

/// Counter tracks sampled into the timeline (rendered as Perfetto
/// counter tracks, one line chart each).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CounterTrack {
    /// Items queued across all worker deques.
    FrontierDepth,
    /// States admitted into the seen set so far.
    SeenStates,
    /// Admission throughput sampled by the progress ticker.
    StatesPerSec,
    /// Fraction of probed successors admitted (per sample window).
    AdmissionRate,
    /// Cumulative symmetry seal-cache hit rate.
    SealHitRate,
}

/// All counter tracks, in declaration order.
pub const ALL_COUNTER_TRACKS: [CounterTrack; 5] = [
    CounterTrack::FrontierDepth,
    CounterTrack::SeenStates,
    CounterTrack::StatesPerSec,
    CounterTrack::AdmissionRate,
    CounterTrack::SealHitRate,
];

impl CounterTrack {
    /// Stable dotted name used in trace output.
    pub fn name(self) -> &'static str {
        match self {
            CounterTrack::FrontierDepth => "mc.frontier_depth",
            CounterTrack::SeenStates => "seen.states",
            CounterTrack::StatesPerSec => "mc.states_per_sec",
            CounterTrack::AdmissionRate => "mc.admission_rate",
            CounterTrack::SealHitRate => "symmetry.seal_hit_rate",
        }
    }
}

/// One recorded event. Timestamps are nanoseconds since
/// [`recorder_start`] for the current session.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// A phase span opened.
    SpanBegin { ts_ns: u64, phase: Phase },
    /// The matching span closed.
    SpanEnd { ts_ns: u64, phase: Phase },
    /// A point event with one payload argument.
    Instant {
        ts_ns: u64,
        kind: InstantKind,
        arg: u64,
    },
    /// A counter-track sample.
    Counter {
        ts_ns: u64,
        track: CounterTrack,
        value: f64,
    },
}

impl TraceEvent {
    /// The event's timestamp (ns since session start).
    pub fn ts_ns(&self) -> u64 {
        match *self {
            TraceEvent::SpanBegin { ts_ns, .. }
            | TraceEvent::SpanEnd { ts_ns, .. }
            | TraceEvent::Instant { ts_ns, .. }
            | TraceEvent::Counter { ts_ns, .. } => ts_ns,
        }
    }
}

/// A [`TraceEvent`] with its per-worker sequence number. Sequence numbers
/// are dense per worker, so `events[0].seq > 0` reveals a dropped prefix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stamped {
    pub seq: u64,
    pub event: TraceEvent,
}

/// One worker's drained timeline: label, events oldest-first, and how
/// many events the ring dropped under overflow.
#[derive(Clone, Debug)]
pub struct WorkerTimeline {
    pub label: String,
    pub events: Vec<Stamped>,
    pub dropped: u64,
}

static RECORDER_ON: AtomicBool = AtomicBool::new(false);
/// Bumped by [`recorder_start`]; thread-local rings from a previous
/// session are discarded lazily when their thread next records.
static SESSION: AtomicU64 = AtomicU64::new(0);
static SESSION_START_NS: AtomicU64 = AtomicU64::new(0);
static RING_CAP: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);
static THREAD_SEQ: AtomicU64 = AtomicU64::new(0);
static COLLECTED: Mutex<Vec<WorkerTimeline>> = Mutex::new(Vec::new());

/// Monotonic base for all trace timestamps (set once per process).
fn base() -> Instant {
    static BASE: OnceLock<Instant> = OnceLock::new();
    *BASE.get_or_init(Instant::now)
}

fn ns_from_base(at: Instant) -> u64 {
    at.saturating_duration_since(base()).as_nanos() as u64
}

/// Convert an already-taken `Instant` (e.g. a span guard's start) into a
/// session-relative timestamp without another clock read.
pub(crate) fn ts_of(at: Instant) -> u64 {
    ns_from_base(at).saturating_sub(SESSION_START_NS.load(Ordering::Relaxed))
}

fn now_ns() -> u64 {
    ts_of(Instant::now())
}

/// Is the flight recorder on? One relaxed load — the per-callsite guard.
#[inline(always)]
pub fn recorder_enabled() -> bool {
    RECORDER_ON.load(Ordering::Relaxed)
}

fn collected_slot() -> MutexGuard<'static, Vec<WorkerTimeline>> {
    COLLECTED.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Start a recording session with the given per-worker ring capacity
/// (min 16). Clears timelines collected by any previous session and
/// resets the session clock to zero.
pub fn recorder_start(capacity: usize) {
    let mut collected = collected_slot();
    collected.clear();
    RING_CAP.store(capacity.max(16), Ordering::Relaxed);
    SESSION_START_NS.store(ns_from_base(Instant::now()), Ordering::Relaxed);
    SESSION.fetch_add(1, Ordering::Relaxed);
    RECORDER_ON.store(true, Ordering::SeqCst);
}

/// Stop recording. Already-collected timelines stay available to
/// [`drain`]; live threads stop appending immediately.
pub fn recorder_stop() {
    RECORDER_ON.store(false, Ordering::SeqCst);
}

struct LocalRing {
    session: u64,
    label: String,
    buf: Vec<Stamped>,
    /// Write cursor once `buf` is at capacity (index of the oldest).
    next: usize,
    seq: u64,
    dropped: u64,
    cap: usize,
}

impl LocalRing {
    fn new(session: u64) -> LocalRing {
        let n = THREAD_SEQ.fetch_add(1, Ordering::Relaxed);
        LocalRing {
            session,
            label: format!("thread-{n}"),
            buf: Vec::new(),
            next: 0,
            seq: 0,
            dropped: 0,
            cap: RING_CAP.load(Ordering::Relaxed),
        }
    }

    fn push(&mut self, event: TraceEvent) {
        let st = Stamped {
            seq: self.seq,
            event,
        };
        self.seq += 1;
        if self.buf.len() < self.cap {
            self.buf.push(st);
        } else {
            // Drop-oldest: overwrite the oldest slot and advance.
            self.buf[self.next] = st;
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }

    fn into_timeline(mut self) -> WorkerTimeline {
        // Rotate so events come out oldest-first when the ring wrapped.
        self.buf.rotate_left(self.next);
        WorkerTimeline {
            label: self.label,
            events: self.buf,
            dropped: self.dropped,
        }
    }
}

/// Wrapper whose drop flushes the thread's ring into the collected list,
/// so worker timelines survive their threads.
struct RingCell(RefCell<Option<LocalRing>>);

impl Drop for RingCell {
    fn drop(&mut self) {
        if let Some(ring) = self.0.borrow_mut().take() {
            flush_ring(ring);
        }
    }
}

fn flush_ring(ring: LocalRing) {
    if ring.session != SESSION.load(Ordering::Relaxed) {
        return; // stale session: its collected list was already cleared
    }
    if ring.buf.is_empty() {
        return;
    }
    collected_slot().push(ring.into_timeline());
}

thread_local! {
    static RING: RingCell = const { RingCell(RefCell::new(None)) };
}

fn with_ring(f: impl FnOnce(&mut LocalRing)) {
    let session = SESSION.load(Ordering::Relaxed);
    RING.with(|cell| {
        let mut slot = cell.0.borrow_mut();
        match slot.as_mut() {
            Some(ring) if ring.session == session => f(ring),
            _ => {
                let mut ring = LocalRing::new(session);
                f(&mut ring);
                *slot = Some(ring);
            }
        }
    });
}

/// Move the calling thread's ring into the collected list now. Worker
/// loops call this as their last act: the TLS-destructor backstop also
/// flushes, but thread-local destructors are only guaranteed to have
/// run *after* a join observes the thread — `std::thread::scope` can
/// return while a worker's destructors are still in flight, which would
/// race a [`drain`] on the coordinating thread. An explicit flush
/// before the worker returns sequences the hand-off deterministically.
pub fn flush_worker() {
    if let Some(ring) = RING.with(|cell| cell.0.borrow_mut().take()) {
        flush_ring(ring);
    }
}

/// Label the calling thread's track (e.g. `ws-3`, `main`, `sampler`).
/// No-op while the recorder is off.
pub fn set_worker(label: &str) {
    if !recorder_enabled() {
        return;
    }
    with_ring(|ring| ring.label = label.to_string());
}

/// Record a point event. No-op while the recorder is off.
#[inline]
pub fn instant(kind: InstantKind, arg: u64) {
    if !recorder_enabled() {
        return;
    }
    let ev = TraceEvent::Instant {
        ts_ns: now_ns(),
        kind,
        arg,
    };
    with_ring(|ring| ring.push(ev));
}

/// Record a counter-track sample. No-op while the recorder is off.
#[inline]
pub fn counter(track: CounterTrack, value: f64) {
    if !recorder_enabled() {
        return;
    }
    let ev = TraceEvent::Counter {
        ts_ns: now_ns(),
        track,
        value,
    };
    with_ring(|ring| ring.push(ev));
}

/// Record a span opening, reusing the span guard's existing clock read.
pub(crate) fn span_begin(phase: Phase, start: Instant) {
    let ev = TraceEvent::SpanBegin {
        ts_ns: ts_of(start),
        phase,
    };
    with_ring(|ring| ring.push(ev));
}

/// Record a span closing.
pub(crate) fn span_end(phase: Phase) {
    let ev = TraceEvent::SpanEnd {
        ts_ns: now_ns(),
        phase,
    };
    with_ring(|ring| ring.push(ev));
}

/// Take every collected timeline plus the calling thread's own ring.
/// Timelines come out in collection order (worker exit order, caller
/// last). Leaves the recorder enabled; call [`recorder_stop`] first if
/// no more events should land after the drain.
pub fn drain() -> Vec<WorkerTimeline> {
    let own = RING.with(|cell| cell.0.borrow_mut().take());
    let mut out = std::mem::take(&mut *collected_slot());
    if let Some(ring) = own {
        if ring.session == SESSION.load(Ordering::Relaxed) && !ring.buf.is_empty() {
            out.push(ring.into_timeline());
        }
    }
    out
}

/// Render one drained timeline as schema-versioned JSONL sink events
/// (`type: "trace"`, one per record) for `--telemetry=jsonl` runs.
pub fn timeline_events(t: &WorkerTimeline) -> Vec<crate::sink::Event> {
    t.events
        .iter()
        .map(|s| {
            let (ts_ns, kind, name, value) = match s.event {
                TraceEvent::SpanBegin { ts_ns, phase } => (ts_ns, "begin", phase.name(), 0.0),
                TraceEvent::SpanEnd { ts_ns, phase } => (ts_ns, "end", phase.name(), 0.0),
                TraceEvent::Instant { ts_ns, kind, arg } => {
                    (ts_ns, "instant", kind.name(), arg as f64)
                }
                TraceEvent::Counter {
                    ts_ns,
                    track,
                    value,
                } => (ts_ns, "counter", track.name(), value),
            };
            crate::sink::Event::Trace {
                worker: t.label.clone(),
                seq: s.seq,
                ts_ns,
                kind: kind.to_string(),
                name: name.to_string(),
                value,
            }
        })
        .collect()
}

/// Live values shared between the engine hot paths and the progress
/// sampler (plain relaxed atomics; no registry lock).
#[derive(Clone, Copy, Debug)]
#[repr(usize)]
pub enum LiveGauge {
    /// Items queued across worker deques right now.
    FrontierDepth,
    /// States admitted into the seen set so far.
    SeenStates,
}

static LIVE: [AtomicU64; 2] = [AtomicU64::new(0), AtomicU64::new(0)];

/// Publish a live gauge (one relaxed store). Callers guard with
/// [`crate::enabled`] or [`recorder_enabled`] as appropriate.
#[inline]
pub fn set_live(gauge: LiveGauge, value: u64) {
    LIVE[gauge as usize].store(value, Ordering::Relaxed);
}

/// Read a live gauge.
#[inline]
pub fn live(gauge: LiveGauge) -> u64 {
    LIVE[gauge as usize].load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recording_is_inert() {
        let _lock = crate::test_mutex()
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        recorder_stop();
        instant(InstantKind::Steal, 1);
        counter(CounterTrack::FrontierDepth, 2.0);
        set_worker("ghost");
        assert!(drain().is_empty());
    }

    #[test]
    fn ring_drops_oldest_under_overflow() {
        let _lock = crate::test_mutex()
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        recorder_start(16);
        set_worker("overflow");
        for i in 0..40u64 {
            instant(InstantKind::Steal, i);
        }
        recorder_stop();
        let mut timelines = drain();
        assert_eq!(timelines.len(), 1);
        let t = timelines.pop().unwrap();
        assert_eq!(t.label, "overflow");
        assert_eq!(t.events.len(), 16, "ring stays at capacity");
        assert_eq!(t.dropped, 40 - 16);
        // Oldest-first, contiguous sequence numbers, newest survives.
        let seqs: Vec<u64> = t.events.iter().map(|e| e.seq).collect();
        let args: Vec<u64> = t
            .events
            .iter()
            .map(|e| match e.event {
                TraceEvent::Instant { arg, .. } => arg,
                _ => panic!("unexpected event"),
            })
            .collect();
        // set_worker does not consume a sequence number; the 40 instants
        // are seq 0..40, and the ring keeps the last 16.
        assert_eq!(seqs, (24..40).collect::<Vec<u64>>());
        assert_eq!(args, (24..40).collect::<Vec<u64>>());
    }

    #[test]
    fn worker_threads_flush_on_exit_and_sessions_reset() {
        let _lock = crate::test_mutex()
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        recorder_start(64);
        std::thread::scope(|s| {
            for id in 0..2 {
                s.spawn(move || {
                    set_worker(&format!("ws-{id}"));
                    instant(InstantKind::Idle, id);
                    flush_worker();
                });
            }
        });
        counter(CounterTrack::SeenStates, 5.0);
        recorder_stop();
        let timelines = drain();
        let labels: Vec<&str> = timelines.iter().map(|t| t.label.as_str()).collect();
        assert!(labels.contains(&"ws-0") && labels.contains(&"ws-1"));
        assert_eq!(timelines.len(), 3, "two workers plus the caller");
        // A new session discards anything not yet recorded into it.
        recorder_start(64);
        recorder_stop();
        assert!(drain().is_empty());
    }

    #[test]
    fn timestamps_are_session_relative_and_monotone() {
        let _lock = crate::test_mutex()
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        recorder_start(64);
        instant(InstantKind::Steal, 0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        instant(InstantKind::Steal, 1);
        recorder_stop();
        let timelines = drain();
        let evs = &timelines[0].events;
        let (a, b) = (evs[0].event.ts_ns(), evs[1].event.ts_ns());
        assert!(b > a, "timestamps advance: {a} !< {b}");
        assert!(b - a >= 1_000_000, "sleep visible in trace clock");
    }
}
