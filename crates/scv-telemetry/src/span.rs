//! Lightweight phase spans with monotonic timing.
//!
//! A span is an RAII guard from [`crate::timer`]: it notes
//! `Instant::now()` on entry and on drop records the elapsed nanoseconds
//! into the phase's duration histogram. Spans nest — a thread-local depth
//! counter tracks the current nesting level, and each phase remembers the
//! deepest level it ever ran at, so a summary can show which phases run
//! inside others (observer/checker steps inside the search span).
//!
//! There is deliberately **no** per-span sink event: pipeline phases such
//! as observer steps fire millions of times per verify run, so spans
//! record into atomic histograms and the sink sees one aggregated
//! [`crate::sink::Event::PhaseSummary`] per phase at flush time.
//!
//! Per-transition phases are additionally *sampled* (see
//! [`crate::timer_sampled`]): only one call in [`SAMPLE_PERIOD`] pays for
//! the two clock reads, and the recorded duration is weighted by the
//! period so the aggregate still estimates the full population. The
//! non-sampled path costs one thread-local counter bump — that is what
//! keeps enabled-telemetry overhead inside the ≤5% budget the
//! `telemetry_overhead` bench enforces.

use crate::metrics::{HistSnapshot, Histogram};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Pipeline phases. Closed enum indexing a static table, like
/// [`crate::Metric`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// A whole reachability search (sequential, level-sync, or
    /// work-stealing).
    Search,
    /// One successor-expansion call on a product state.
    Expand,
    /// One observer step (protocol step → descriptor symbols).
    ObserverStep,
    /// Canonical-encoding work sealing a product state (descriptor-layer
    /// ID canonicalization).
    DescriptorEncode,
    /// One whole-descriptor decode call.
    DescriptorDecode,
    /// Checker symbol consumption for one transition (SC checker).
    CheckerStep,
    /// One streaming cycle-checker pass.
    CheckerCycle,
    /// End-of-string SC check on a product state.
    CheckerEnd,
    /// Orbit-minimum canonicalization of a product state under the
    /// protocol's symmetry group (quotient search).
    Canonicalize,
    /// Replaying a counterexample/run through the online monitor.
    Replay,
}

/// All phases, in declaration order (keep in sync with [`Phase`]).
pub const ALL_PHASES: [Phase; 10] = [
    Phase::Search,
    Phase::Expand,
    Phase::ObserverStep,
    Phase::DescriptorEncode,
    Phase::DescriptorDecode,
    Phase::CheckerStep,
    Phase::CheckerCycle,
    Phase::CheckerEnd,
    Phase::Canonicalize,
    Phase::Replay,
];

impl Phase {
    /// Stable dotted name used in reports and JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Search => "search",
            Phase::Expand => "search.expand",
            Phase::ObserverStep => "observer.step",
            Phase::DescriptorEncode => "descriptor.encode",
            Phase::DescriptorDecode => "descriptor.decode",
            Phase::CheckerStep => "checker.step",
            Phase::CheckerCycle => "checker.cycle",
            Phase::CheckerEnd => "checker.end",
            Phase::Canonicalize => "symmetry.canonicalize",
            Phase::Replay => "replay",
        }
    }
}

/// Per-phase timing store: a duration histogram (nanoseconds) plus the
/// deepest nesting level the phase ran at.
#[derive(Default)]
pub struct PhaseStats {
    durations: Histogram,
    max_depth: AtomicU64,
}

/// The static table of per-phase stats.
#[derive(Default)]
pub struct PhaseTable {
    phases: [PhaseStats; ALL_PHASES.len()],
}

/// One call in `SAMPLE_PERIOD` to [`crate::timer_sampled`] is timed; the
/// very first call always samples, so even tiny runs record each phase.
pub const SAMPLE_PERIOD: u64 = 64;

thread_local! {
    static SPAN_DEPTH: Cell<u64> = const { Cell::new(0) };
    static SAMPLE_TICK: [Cell<u64>; ALL_PHASES.len()] =
        const { [const { Cell::new(0) }; ALL_PHASES.len()] };
}

/// Advance the calling thread's sampling tick for `phase`; true when this
/// call is the one in [`SAMPLE_PERIOD`] that should be timed.
pub(crate) fn sample(phase: Phase) -> bool {
    SAMPLE_TICK.with(|ticks| {
        let t = &ticks[phase as usize];
        let v = t.get();
        t.set(v.wrapping_add(1));
        v % SAMPLE_PERIOD == 0
    })
}

/// The current thread's span nesting depth (0 = no open span).
pub fn current_depth() -> u64 {
    SPAN_DEPTH.with(|d| d.get())
}

impl PhaseTable {
    /// Record a finished span (weight > 1 for sampled spans).
    fn record(&self, phase: Phase, ns: u64, weight: u64, depth: u64) {
        let st = &self.phases[phase as usize];
        st.durations.record_weighted(ns, weight);
        st.max_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Snapshot one phase's durations (nanoseconds).
    pub fn durations(&self, phase: Phase) -> HistSnapshot {
        self.phases[phase as usize].durations.snapshot()
    }

    /// Deepest nesting level a phase ran at.
    pub fn max_depth(&self, phase: Phase) -> u64 {
        self.phases[phase as usize]
            .max_depth
            .load(Ordering::Relaxed)
    }

    /// Zero every phase.
    pub fn reset(&self) {
        for st in &self.phases {
            st.durations.reset();
            st.max_depth.store(0, Ordering::Relaxed);
        }
    }
}

/// RAII timing guard for one phase span. Construct via [`crate::timer`];
/// records into the global phase table on drop.
pub struct SpanGuard {
    phase: Phase,
    start: Instant,
    weight: u64,
    depth: u64,
}

impl SpanGuard {
    pub(crate) fn begin(phase: Phase) -> SpanGuard {
        Self::begin_weighted(phase, 1)
    }

    pub(crate) fn begin_weighted(phase: Phase, weight: u64) -> SpanGuard {
        let depth = SPAN_DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        let start = Instant::now();
        // Flight-recorder piggyback: reuse the clock read the guard
        // already made; one relaxed load when the recorder is off.
        if crate::recorder::recorder_enabled() {
            crate::recorder::span_begin(phase, start);
        }
        SpanGuard {
            phase,
            start,
            weight,
            depth,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos() as u64;
        SPAN_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        crate::phase_table().record(self.phase, ns, self.weight, self.depth);
        if crate::recorder::recorder_enabled() {
            crate::recorder::span_end(self.phase);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_unwind() {
        let _s = crate::TestSession::start();
        assert_eq!(current_depth(), 0);
        {
            let _outer = crate::timer(Phase::Search).expect("enabled");
            assert_eq!(current_depth(), 1);
            {
                let _inner = crate::timer(Phase::ObserverStep).expect("enabled");
                assert_eq!(current_depth(), 2);
            }
            assert_eq!(current_depth(), 1);
        }
        assert_eq!(current_depth(), 0);
        let t = crate::phase_table();
        assert_eq!(t.durations(Phase::Search).count, 1);
        assert_eq!(t.durations(Phase::ObserverStep).count, 1);
        // The outer span ran at depth 0, the inner at depth 1.
        assert_eq!(t.max_depth(Phase::Search), 0);
        assert_eq!(t.max_depth(Phase::ObserverStep), 1);
        // The outer span's duration includes the inner span's.
        assert!(t.durations(Phase::Search).sum >= t.durations(Phase::ObserverStep).sum);
    }

    #[test]
    fn sampled_spans_estimate_the_population() {
        let _s = crate::TestSession::start();
        // Each test thread starts with fresh sampling ticks, so exactly
        // the 1st and 65th call are timed.
        let mut timed = 0usize;
        for _ in 0..2 * SAMPLE_PERIOD {
            if crate::timer_sampled(Phase::CheckerStep).is_some() {
                timed += 1;
            }
        }
        assert_eq!(timed, 2);
        let snap = crate::phase_table().durations(Phase::CheckerStep);
        assert_eq!(snap.count, 2 * SAMPLE_PERIOD, "weight-scaled count");
    }

    #[test]
    fn timer_is_none_when_disabled() {
        let _s = crate::TestSession::start_disabled();
        assert!(crate::timer(Phase::Expand).is_none());
        assert_eq!(current_depth(), 0);
    }
}
