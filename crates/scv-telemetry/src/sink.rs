//! Pluggable telemetry sinks.
//!
//! A sink consumes [`Event`]s — aggregated phase summaries, counter and
//! gauge snapshots, run reports, monitor divergences. Hot paths never
//! construct events; they record into the atomic registry and the
//! aggregates are turned into events once, at [`crate::flush`] time. The
//! three sinks:
//!
//! * [`NoopSink`] — discards everything. Combined with the per-callsite
//!   [`crate::enabled`] guard this is the "compiled to nothing" default:
//!   disabled telemetry costs one relaxed load per callsite.
//! * [`SummarySink`] — buffers events and renders one human-readable
//!   table (the `--telemetry=summary` CLI mode and the probe binaries).
//! * [`JsonlSink`] — one schema-versioned JSON object per line, written
//!   as events arrive (the `--telemetry=jsonl <path>` CLI mode and the
//!   bench harness's run reports).

use crate::json::Json;
use crate::report::{RunReport, SCHEMA_VERSION};
use std::io::{BufWriter, Write};
use std::sync::{Arc, Mutex};

/// One telemetry event. Cold-path only — constructed at flush/report
/// time, never per state or per symbol.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A run is starting (name + static parameters).
    RunStart {
        /// Run label (e.g. protocol name).
        name: String,
        /// Static key/value parameters.
        params: Vec<(String, String)>,
    },
    /// Aggregated timings for one pipeline phase.
    PhaseSummary {
        /// Phase name (see [`crate::Phase::name`]).
        phase: &'static str,
        /// Spans recorded.
        count: u64,
        /// Total nanoseconds across spans.
        total_ns: u64,
        /// Mean span nanoseconds.
        mean_ns: f64,
        /// Bucket-resolution p99 span nanoseconds.
        p99_ns: u64,
        /// Largest single span in nanoseconds.
        max_ns: u64,
        /// Deepest nesting level the phase ran at.
        max_depth: u64,
    },
    /// A counter snapshot (name → value).
    Counters {
        /// `(name, value)` pairs, declaration order, zeros omitted.
        items: Vec<(&'static str, u64)>,
    },
    /// A gauge snapshot (name → value).
    Gauges {
        /// `(name, value)` pairs in insertion order.
        items: Vec<(String, f64)>,
    },
    /// Aggregated view of one value histogram. Quantiles are linearly
    /// interpolated within their log₂ bucket
    /// (see [`crate::HistSnapshot::quantile`]).
    HistSummary {
        /// Histogram name (see [`crate::Hist::name`]).
        name: &'static str,
        /// Values recorded.
        count: u64,
        /// Mean value.
        mean: f64,
        /// Interpolated median.
        p50: f64,
        /// Interpolated p95 value.
        p95: f64,
        /// Interpolated p99 value.
        p99: f64,
        /// Largest recorded value.
        max: u64,
    },
    /// One flight-recorder record (see [`crate::recorder`]) — a span
    /// begin/end, an instant, or a counter sample — exported when a
    /// drained timeline is streamed through the JSONL sink.
    Trace {
        /// Worker track label (e.g. `ws-3`, `main`, `sampler`).
        worker: String,
        /// Per-worker monotone sequence number.
        seq: u64,
        /// Nanoseconds since the recording session started.
        ts_ns: u64,
        /// `begin`, `end`, `instant`, or `counter`.
        kind: String,
        /// Phase / instant-kind / counter-track dotted name.
        name: String,
        /// Instant argument or counter value (0 for span records).
        value: f64,
    },
    /// Free-form scoped key/value numbers (probe binaries).
    Kv {
        /// Dotted scope, e.g. `probe_diag.depth.3`.
        scope: String,
        /// `(name, value)` pairs.
        items: Vec<(String, f64)>,
    },
    /// The online monitor diverged from / rejected the fed run.
    MonitorDivergence {
        /// Zero-based index of the offending step in the run.
        step_index: u64,
        /// The action/symbol being processed when the checker rejected.
        symbol: String,
        /// The checker's diagnosis (expected vs. observed).
        detail: String,
    },
    /// A complete, schema-versioned run report.
    Report(RunReport),
}

impl Event {
    /// The JSONL encoding of this event: a single-line, schema-versioned
    /// JSON object with a `type` discriminator.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> =
            vec![("schema".to_string(), Json::Num(SCHEMA_VERSION as f64))];
        let typ = |t: &str| ("type".to_string(), Json::Str(t.to_string()));
        match self {
            Event::RunStart { name, params } => {
                pairs.push(typ("run_start"));
                pairs.push(("name".to_string(), Json::Str(name.clone())));
                pairs.push((
                    "params".to_string(),
                    Json::obj(
                        params
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::Str(v.clone()))),
                    ),
                ));
            }
            Event::PhaseSummary {
                phase,
                count,
                total_ns,
                mean_ns,
                p99_ns,
                max_ns,
                max_depth,
            } => {
                pairs.push(typ("phase"));
                pairs.push(("phase".to_string(), Json::Str(phase.to_string())));
                pairs.push(("count".to_string(), Json::Num(*count as f64)));
                pairs.push(("total_ns".to_string(), Json::Num(*total_ns as f64)));
                pairs.push(("mean_ns".to_string(), Json::Num(*mean_ns)));
                pairs.push(("p99_ns".to_string(), Json::Num(*p99_ns as f64)));
                pairs.push(("max_ns".to_string(), Json::Num(*max_ns as f64)));
                pairs.push(("max_depth".to_string(), Json::Num(*max_depth as f64)));
            }
            Event::Counters { items } => {
                pairs.push(typ("counters"));
                pairs.push((
                    "counters".to_string(),
                    Json::obj(
                        items
                            .iter()
                            .map(|&(k, v)| (k.to_string(), Json::Num(v as f64))),
                    ),
                ));
            }
            Event::Gauges { items } => {
                pairs.push(typ("gauges"));
                pairs.push((
                    "gauges".to_string(),
                    Json::obj(items.iter().map(|(k, v)| (k.clone(), Json::Num(*v)))),
                ));
            }
            Event::HistSummary {
                name,
                count,
                mean,
                p50,
                p95,
                p99,
                max,
            } => {
                pairs.push(typ("hist"));
                pairs.push(("name".to_string(), Json::Str(name.to_string())));
                pairs.push(("count".to_string(), Json::Num(*count as f64)));
                pairs.push(("mean".to_string(), Json::Num(*mean)));
                pairs.push(("p50".to_string(), Json::Num(*p50)));
                pairs.push(("p95".to_string(), Json::Num(*p95)));
                pairs.push(("p99".to_string(), Json::Num(*p99)));
                pairs.push(("max".to_string(), Json::Num(*max as f64)));
            }
            Event::Trace {
                worker,
                seq,
                ts_ns,
                kind,
                name,
                value,
            } => {
                pairs.push(typ("trace"));
                pairs.push(("worker".to_string(), Json::Str(worker.clone())));
                pairs.push(("seq".to_string(), Json::Num(*seq as f64)));
                pairs.push(("ts_ns".to_string(), Json::Num(*ts_ns as f64)));
                pairs.push(("kind".to_string(), Json::Str(kind.clone())));
                pairs.push(("name".to_string(), Json::Str(name.clone())));
                pairs.push(("value".to_string(), Json::Num(*value)));
            }
            Event::Kv { scope, items } => {
                pairs.push(typ("kv"));
                pairs.push(("scope".to_string(), Json::Str(scope.clone())));
                pairs.push((
                    "values".to_string(),
                    Json::obj(items.iter().map(|(k, v)| (k.clone(), Json::Num(*v)))),
                ));
            }
            Event::MonitorDivergence {
                step_index,
                symbol,
                detail,
            } => {
                pairs.push(typ("monitor_divergence"));
                pairs.push(("step_index".to_string(), Json::Num(*step_index as f64)));
                pairs.push(("symbol".to_string(), Json::Str(symbol.clone())));
                pairs.push(("detail".to_string(), Json::Str(detail.clone())));
            }
            Event::Report(r) => return r.to_json(),
        }
        Json::obj(pairs)
    }
}

/// A telemetry event consumer.
pub trait Sink: Send {
    /// Consume one event.
    fn record(&mut self, event: &Event);

    /// Make buffered output durable / render it.
    fn flush(&mut self) {}
}

/// Discards everything.
#[derive(Default)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn record(&mut self, _event: &Event) {}
}

/// Buffers events and renders one aligned human-readable summary on
/// flush. Writes to stdout by default; tests can inject any writer.
pub struct SummarySink {
    events: Vec<Event>,
    out: Box<dyn Write + Send>,
}

impl Default for SummarySink {
    fn default() -> Self {
        SummarySink::new(Box::new(std::io::stdout()))
    }
}

impl SummarySink {
    /// Render into an arbitrary writer.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        SummarySink {
            events: Vec::new(),
            out,
        }
    }

    fn render(&mut self) -> std::io::Result<()> {
        let out = &mut self.out;
        let fmt_ns = |ns: f64| -> String {
            if ns < 1e3 {
                format!("{ns:.0}ns")
            } else if ns < 1e6 {
                format!("{:.2}µs", ns / 1e3)
            } else if ns < 1e9 {
                format!("{:.2}ms", ns / 1e6)
            } else {
                format!("{:.3}s", ns / 1e9)
            }
        };
        writeln!(
            out,
            "── telemetry summary ─────────────────────────────────────────"
        )?;
        for e in &self.events {
            if let Event::RunStart { name, params } = e {
                let ps: Vec<String> = params.iter().map(|(k, v)| format!("{k}={v}")).collect();
                writeln!(out, "run: {name}  {}", ps.join(" "))?;
            }
        }
        let phases: Vec<&Event> = self
            .events
            .iter()
            .filter(|e| matches!(e, Event::PhaseSummary { .. }))
            .collect();
        if !phases.is_empty() {
            writeln!(
                out,
                "{:<20} {:>12} {:>12} {:>12} {:>12} {:>6}",
                "phase", "count", "total", "mean", "p99", "depth"
            )?;
            for e in phases {
                if let Event::PhaseSummary {
                    phase,
                    count,
                    total_ns,
                    mean_ns,
                    p99_ns,
                    max_depth,
                    ..
                } = e
                {
                    writeln!(
                        out,
                        "{:<20} {:>12} {:>12} {:>12} {:>12} {:>6}",
                        phase,
                        count,
                        fmt_ns(*total_ns as f64),
                        fmt_ns(*mean_ns),
                        fmt_ns(*p99_ns as f64),
                        max_depth
                    )?;
                }
            }
        }
        for e in &self.events {
            match e {
                Event::Counters { items } if !items.is_empty() => {
                    writeln!(out, "{:<32} {:>16}", "counter", "value")?;
                    for (k, v) in items {
                        writeln!(out, "{k:<32} {v:>16}")?;
                    }
                }
                Event::Gauges { items } if !items.is_empty() => {
                    writeln!(out, "{:<32} {:>16}", "gauge", "value")?;
                    for (k, v) in items {
                        if *v == v.trunc() && v.abs() < 9e15 {
                            writeln!(out, "{:<32} {:>16}", k, *v as i64)?;
                        } else {
                            writeln!(out, "{k:<32} {v:>16.2}")?;
                        }
                    }
                }
                Event::HistSummary {
                    name,
                    count,
                    mean,
                    p50,
                    p95,
                    p99,
                    max,
                } => {
                    writeln!(
                        out,
                        "{name:<32} n={count} mean={mean:.2} p50={p50:.1} p95={p95:.1} p99={p99:.1} max={max}"
                    )?;
                }
                Event::Kv { scope, items } => {
                    let vs: Vec<String> = items
                        .iter()
                        .map(|(k, v)| {
                            if *v == v.trunc() && v.abs() < 9e15 {
                                format!("{k}={}", *v as i64)
                            } else {
                                format!("{k}={v:.3}")
                            }
                        })
                        .collect();
                    writeln!(out, "{scope}: {}", vs.join("  "))?;
                }
                Event::MonitorDivergence {
                    step_index,
                    symbol,
                    detail,
                } => {
                    writeln!(
                        out,
                        "monitor divergence at step {step_index}: {symbol} — {detail}"
                    )?;
                }
                Event::Report(r) => {
                    writeln!(out, "report: {} verdict={}", r.name, r.verdict)?;
                    for (k, v) in &r.metrics {
                        writeln!(out, "  {k:<30} {v:>16.2}")?;
                    }
                }
                _ => {}
            }
        }
        writeln!(
            out,
            "──────────────────────────────────────────────────────────────"
        )?;
        out.flush()
    }
}

impl Sink for SummarySink {
    fn record(&mut self, event: &Event) {
        self.events.push(event.clone());
    }

    fn flush(&mut self) {
        self.events
            .sort_by_key(|e| !matches!(e, Event::RunStart { .. }));
        if let Err(e) = self.render() {
            eprintln!("telemetry: summary sink write failed: {e}");
        }
        self.events.clear();
    }
}

/// One JSON object per line, written as events arrive.
pub struct JsonlSink {
    out: BufWriter<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// Stream into an arbitrary writer.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: BufWriter::new(out),
        }
    }

    /// Create (truncate) a JSONL file at `path`.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(JsonlSink::new(Box::new(f)))
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, event: &Event) {
        let line = event.to_json().to_string_compact();
        if writeln!(self.out, "{line}").is_err() {
            eprintln!("telemetry: jsonl sink write failed");
        }
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Collects events in memory behind a shared handle — the test sink.
pub struct MemorySink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl MemorySink {
    /// A sink plus the handle used to read what it collected.
    pub fn new() -> (Self, Arc<Mutex<Vec<Event>>>) {
        let events = Arc::new(Mutex::new(Vec::new()));
        (
            MemorySink {
                events: events.clone(),
            },
            events,
        )
    }
}

impl Sink for MemorySink {
    fn record(&mut self, event: &Event) {
        self.events.lock().unwrap().push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize_with_schema_and_type() {
        let e = Event::MonitorDivergence {
            step_index: 7,
            symbol: "LD(P1,B1,⊥)".to_string(),
            detail: "expected node, observed edge".to_string(),
        };
        let j = e.to_json();
        assert_eq!(j.get("schema").and_then(Json::as_num), Some(1.0));
        assert_eq!(
            j.get("type").and_then(Json::as_str),
            Some("monitor_divergence")
        );
        assert_eq!(j.get("step_index").and_then(Json::as_num), Some(7.0));
        // The line parses back.
        let line = j.to_string_compact();
        assert_eq!(Json::parse(&line).unwrap(), j);
    }

    #[test]
    fn trace_records_round_trip_through_jsonl() {
        // One record per flight-recorder kind: begin/end/instant/counter.
        let records = vec![
            Event::Trace {
                worker: "ws-0".to_string(),
                seq: 0,
                ts_ns: 1_000,
                kind: "begin".to_string(),
                name: "search.expand".to_string(),
                value: 0.0,
            },
            Event::Trace {
                worker: "ws-0".to_string(),
                seq: 1,
                ts_ns: 2_000,
                kind: "end".to_string(),
                name: "search.expand".to_string(),
                value: 0.0,
            },
            Event::Trace {
                worker: "ws-1".to_string(),
                seq: 0,
                ts_ns: 1_500,
                kind: "instant".to_string(),
                name: "mc.steal".to_string(),
                value: 7.0,
            },
            Event::Trace {
                worker: "sampler".to_string(),
                seq: 0,
                ts_ns: 3_000,
                kind: "counter".to_string(),
                name: "mc.states_per_sec".to_string(),
                value: 1234.5,
            },
        ];
        for e in &records {
            let line = e.to_json().to_string_compact();
            let j = Json::parse(&line).expect("each trace line parses");
            assert_eq!(j.get("schema").and_then(Json::as_num), Some(1.0));
            assert_eq!(j.get("type").and_then(Json::as_str), Some("trace"));
            let Event::Trace {
                worker,
                seq,
                ts_ns,
                kind,
                name,
                value,
            } = e
            else {
                unreachable!()
            };
            assert_eq!(
                j.get("worker").and_then(Json::as_str),
                Some(worker.as_str())
            );
            assert_eq!(j.get("seq").and_then(Json::as_num), Some(*seq as f64));
            assert_eq!(j.get("ts_ns").and_then(Json::as_num), Some(*ts_ns as f64));
            assert_eq!(j.get("kind").and_then(Json::as_str), Some(kind.as_str()));
            assert_eq!(j.get("name").and_then(Json::as_str), Some(name.as_str()));
            assert_eq!(j.get("value").and_then(Json::as_num), Some(*value));
        }
    }

    #[test]
    fn hist_summary_serializes_interpolated_quantiles() {
        let e = Event::HistSummary {
            name: "seen.probe_len",
            count: 100,
            mean: 50.5,
            p50: 50.40625,
            p95: 95.1,
            p99: 99.0,
            max: 100,
        };
        let j = e.to_json();
        assert_eq!(j.get("p50").and_then(Json::as_num), Some(50.40625));
        assert_eq!(j.get("p95").and_then(Json::as_num), Some(95.1));
        assert_eq!(j.get("p99").and_then(Json::as_num), Some(99.0));
        let line = j.to_string_compact();
        assert_eq!(Json::parse(&line).unwrap(), j);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Arc::new(Mutex::new(Vec::new()));
        let mut sink = JsonlSink::new(Box::new(Shared(buf.clone())));
        sink.record(&Event::Kv {
            scope: "a".to_string(),
            items: vec![("x".to_string(), 1.0)],
        });
        sink.record(&Event::Gauges {
            items: vec![("g".to_string(), 2.5)],
        });
        Sink::flush(&mut sink);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            Json::parse(line).expect("each line is standalone JSON");
        }
    }

    #[test]
    fn summary_sink_renders_without_panicking() {
        struct Devnull;
        impl Write for Devnull {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = SummarySink::new(Box::new(Devnull));
        sink.record(&Event::PhaseSummary {
            phase: "search",
            count: 1,
            total_ns: 1_500_000,
            mean_ns: 1_500_000.0,
            p99_ns: 1_500_000,
            max_ns: 1_500_000,
            max_depth: 0,
        });
        sink.record(&Event::Counters {
            items: vec![("mc.transitions", 42)],
        });
        Sink::flush(&mut sink);
    }
}
