//! The metrics registry: a fixed set of atomic counters and histograms
//! for hot paths (array-indexed by enum — no name lookup, no allocation)
//! plus dynamic named gauges for cold end-of-run values.
//!
//! Hot-path discipline: every recording site first checks
//! [`crate::enabled`] (one relaxed atomic load); when telemetry is off the
//! registry is never touched, so the disabled cost is a single predictable
//! branch. When on, counters are relaxed `fetch_add`s and histogram
//! records are one relaxed `fetch_add` into a log₂ bucket.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Pipeline counters. The set is closed on purpose: hot paths index a
/// static array with `Metric as usize`, which the optimizer folds to a
/// single addressed atomic op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Metric {
    /// States admitted into the seen-set (all search engines).
    McStatesAdmitted,
    /// Transitions explored (successor edges generated).
    McTransitions,
    /// States expanded (successor generation calls).
    McStatesExpanded,
    /// Successful chunk steals (work-stealing engine).
    McSteals,
    /// Seen-set lock acquisitions, i.e. batch inserts.
    McSeenBatches,
    /// Idle sweeps that found no local or stealable work.
    McIdleSpins,
    /// Fingerprints inserted into the seen-set (new or duplicate).
    SeenInserts,
    /// Linear-probing slots inspected across all seen-set inserts.
    SeenProbes,
    /// Observer steps consumed.
    ObserverSteps,
    /// Descriptor symbols emitted by observers.
    ObserverSymbols,
    /// Symbols consumed by the SC checker.
    CheckerSymbols,
    /// Edge symbols applied by the SC checker.
    CheckerEdges,
    /// Symbols consumed by the streaming cycle checker.
    CycleSymbols,
    /// Edge symbols applied by the streaming cycle checker.
    CycleEdges,
    /// Symbols written by the descriptor encoder.
    DescriptorSymbolsEncoded,
    /// Symbols consumed by the descriptor decoder.
    DescriptorSymbolsDecoded,
    /// Monitor/replay divergences observed (see `Event::MonitorDivergence`).
    MonitorDivergences,
    /// Product states canonicalized under a non-trivial symmetry group.
    SymCanonicalized,
    /// Canonicalizations where a non-identity renaming strictly beat the
    /// identity — states whose orbit representative differs from the state
    /// actually reached.
    SymCanonHits,
    /// Successor candidates rejected by the admission gate *before*
    /// materialization — each one is a state clone (observer + checker +
    /// encoding buffer) the lazy expansion path never paid for.
    McClonesAvoided,
    /// Orbit-seal cache hits: canonicalizations answered from the
    /// per-worker fingerprint-keyed cache, skipping the symmetry-group
    /// enumeration entirely.
    SealCacheHits,
    /// Orbit-seal cache misses: canonicalizations that had to enumerate
    /// the symmetry group and then populated the cache.
    SealCacheMisses,
    /// Bytes frozen into per-worker encoding arenas (admitted states'
    /// interned canonical encodings).
    McArenaAllocBytes,
    /// Bytes written to on-disk search checkpoints (cumulative across
    /// snapshots).
    McCheckpointBytes,
    /// Runs interrupted by a tripped [`Budget`] or cancel token — each one
    /// ended in an `Inconclusive` outcome instead of a verdict.
    ///
    /// [`Budget`]: https://docs.rs/scv-mc (run-control module)
    McBudgetTrips,
    /// Canonicalizations fully resolved by the sort-based refinement fast
    /// path: the per-element signature sort was discriminating enough
    /// that exactly one orbit candidate survived per outer coset.
    SymRefineExact,
    /// Canonicalizations that had to enumerate a non-trivial residual
    /// subgroup (tied refinement cells) after the sort-based fast path.
    SymResidualEnum,
    /// Shared striped seal-cache (L2) hits: canonicalizations answered
    /// from a peer worker's earlier seal.
    SealCacheL2Hits,
    /// Shared striped seal-cache (L2) misses (the state then paid for a
    /// canonicalization and populated the cache for all workers).
    SealCacheL2Misses,
}

/// All metrics, in declaration order (keep in sync with [`Metric`]).
pub const ALL_METRICS: [Metric; 29] = [
    Metric::McStatesAdmitted,
    Metric::McTransitions,
    Metric::McStatesExpanded,
    Metric::McSteals,
    Metric::McSeenBatches,
    Metric::McIdleSpins,
    Metric::SeenInserts,
    Metric::SeenProbes,
    Metric::ObserverSteps,
    Metric::ObserverSymbols,
    Metric::CheckerSymbols,
    Metric::CheckerEdges,
    Metric::CycleSymbols,
    Metric::CycleEdges,
    Metric::DescriptorSymbolsEncoded,
    Metric::DescriptorSymbolsDecoded,
    Metric::MonitorDivergences,
    Metric::SymCanonicalized,
    Metric::SymCanonHits,
    Metric::McClonesAvoided,
    Metric::SealCacheHits,
    Metric::SealCacheMisses,
    Metric::McArenaAllocBytes,
    Metric::McCheckpointBytes,
    Metric::McBudgetTrips,
    Metric::SymRefineExact,
    Metric::SymResidualEnum,
    Metric::SealCacheL2Hits,
    Metric::SealCacheL2Misses,
];

impl Metric {
    /// Stable dotted name used in reports and JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            Metric::McStatesAdmitted => "mc.states_admitted",
            Metric::McTransitions => "mc.transitions",
            Metric::McStatesExpanded => "mc.states_expanded",
            Metric::McSteals => "mc.steals",
            Metric::McSeenBatches => "mc.seen_batches",
            Metric::McIdleSpins => "mc.idle_spins",
            Metric::SeenInserts => "seen.inserts",
            Metric::SeenProbes => "seen.probes",
            Metric::ObserverSteps => "observer.steps",
            Metric::ObserverSymbols => "observer.symbols",
            Metric::CheckerSymbols => "checker.symbols",
            Metric::CheckerEdges => "checker.edges",
            Metric::CycleSymbols => "checker.cycle_symbols",
            Metric::CycleEdges => "checker.cycle_edges",
            Metric::DescriptorSymbolsEncoded => "descriptor.symbols_encoded",
            Metric::DescriptorSymbolsDecoded => "descriptor.symbols_decoded",
            Metric::MonitorDivergences => "monitor.divergences",
            Metric::SymCanonicalized => "symmetry.canonicalized",
            Metric::SymCanonHits => "symmetry.canon_hits",
            Metric::McClonesAvoided => "mc.clones_avoided",
            Metric::SealCacheHits => "symmetry.seal_cache_hits",
            Metric::SealCacheMisses => "symmetry.seal_cache_misses",
            Metric::McArenaAllocBytes => "mc.arena_alloc_bytes",
            Metric::McCheckpointBytes => "mc.checkpoint_bytes",
            Metric::McBudgetTrips => "mc.budget_trips",
            Metric::SymRefineExact => "symmetry.refine_exact",
            Metric::SymResidualEnum => "symmetry.residual_enum",
            Metric::SealCacheL2Hits => "symmetry.seal_cache_l2_hits",
            Metric::SealCacheL2Misses => "symmetry.seal_cache_l2_misses",
        }
    }
}

/// Value histograms with fixed log₂ bucketing. Like [`Metric`], a closed
/// enum indexing a static table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Linear-probe chain length per seen-set insert (slots inspected).
    SeenProbeLen,
    /// New states admitted per seen-set batch insert.
    SeenBatchYield,
    /// Queued states at each work-stealing chunk enqueue (queue depth).
    McQueueDepth,
    /// Orbit size (group order / stabilizer order) per canonicalized
    /// product state — how much each state's orbit collapses.
    SymOrbitSize,
    /// Residual-coset size enumerated per canonicalized state after
    /// sort-based refinement — 1 means the sort alone was discriminating.
    SymResidualGroupSize,
}

/// All histograms, in declaration order (keep in sync with [`Hist`]).
pub const ALL_HISTS: [Hist; 5] = [
    Hist::SeenProbeLen,
    Hist::SeenBatchYield,
    Hist::McQueueDepth,
    Hist::SymOrbitSize,
    Hist::SymResidualGroupSize,
];

impl Hist {
    /// Stable dotted name used in reports and JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            Hist::SeenProbeLen => "seen.probe_len",
            Hist::SeenBatchYield => "seen.batch_yield",
            Hist::McQueueDepth => "mc.queue_depth",
            Hist::SymOrbitSize => "symmetry.orbit_size",
            Hist::SymResidualGroupSize => "symmetry.residual_group_size",
        }
    }
}

/// Number of log₂ buckets: bucket `i` holds values with
/// `bit_width == i`, i.e. `[2^(i-1), 2^i)` for `i >= 1` and `{0}` for
/// bucket 0; the last bucket absorbs everything wider.
pub const HIST_BUCKETS: usize = 32;

/// A lock-free histogram over `u64` values with log₂ buckets plus exact
/// count/sum/max. Concurrent `record`s are safe; snapshots taken while
/// writers run are approximate in the usual torn-read sense (each field
/// individually consistent).
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// The index of the log₂ bucket for a value.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    ((64 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// The inclusive upper bound of values mapped to a bucket.
pub fn bucket_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 63 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    /// Record one value.
    #[inline]
    pub fn record(&self, value: u64) {
        self.record_weighted(value, 1);
    }

    /// Record one sampled observation standing in for `weight` real ones:
    /// count, sum, and the value's bucket all advance by `weight`, so
    /// sampled statistics estimate the unsampled population.
    #[inline]
    pub fn record_weighted(&self, value: u64, weight: u64) {
        self.buckets[bucket_of(value)].fetch_add(weight, Ordering::Relaxed);
        self.count.fetch_add(weight, Ordering::Relaxed);
        self.sum
            .fetch_add(value.saturating_mul(weight), Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Reset all buckets and tallies to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (i, b) in self.buckets.iter().enumerate() {
            buckets[i] = b.load(Ordering::Relaxed);
        }
        HistSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a [`Histogram`]'s state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts (see [`bucket_of`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total values recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl HistSnapshot {
    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the q-quantile (q in [0,1]);
    /// 0 when empty. Bucket-resolution, which is all log₂ buckets give.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// The q-quantile linearly interpolated *within* its log₂ bucket
    /// (q in [0,1]; 0 when empty). Where [`quantile_bound`] answers
    /// "p99 ≤ 63", this assumes values spread uniformly across the
    /// bucket's range and places the quantile proportionally to the
    /// target rank's position inside the bucket — still an estimate
    /// (the buckets are lossy), but one that moves smoothly as the
    /// distribution shifts instead of jumping between powers of two.
    ///
    /// [`quantile_bound`]: HistSnapshot::quantile_bound
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut before = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (before + c) as f64 >= target {
                // Bucket i spans [bound(i-1)+1, bound(i)] (just {0} for
                // i == 0); the true max tightens the last bucket.
                let lo = if i == 0 { 0 } else { bucket_bound(i - 1) + 1 };
                let hi = bucket_bound(i).min(self.max).max(lo);
                let frac = (target - before as f64) / c as f64;
                return lo as f64 + frac * (hi - lo) as f64;
            }
            before += c;
        }
        self.max as f64
    }
}

/// The process-wide registry backing every [`Metric`] and [`Hist`], plus
/// dynamic named gauges for cold, end-of-run values (stripe loads, peak
/// RSS, states/sec) that don't warrant a hot-path slot.
#[derive(Default)]
pub struct Registry {
    counters: [AtomicU64; ALL_METRICS.len()],
    hists: [Histogram; ALL_HISTS.len()],
    gauges: Mutex<Vec<(String, f64)>>,
}

impl Registry {
    /// Add to a counter.
    #[inline]
    pub fn add(&self, m: Metric, n: u64) {
        self.counters[m as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Current counter value.
    pub fn get(&self, m: Metric) -> u64 {
        self.counters[m as usize].load(Ordering::Relaxed)
    }

    /// Record a histogram value.
    #[inline]
    pub fn record(&self, h: Hist, value: u64) {
        self.hists[h as usize].record(value);
    }

    /// Snapshot a histogram.
    pub fn hist(&self, h: Hist) -> HistSnapshot {
        self.hists[h as usize].snapshot()
    }

    /// Set (or overwrite) a named gauge. Cold path only: takes a lock.
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut gauges = self.gauges.lock().unwrap();
        if let Some(slot) = gauges.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value;
        } else {
            gauges.push((name.to_string(), value));
        }
    }

    /// All gauges, in insertion order.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        self.gauges.lock().unwrap().clone()
    }

    /// Zero every counter, histogram, and gauge (a fresh run).
    pub fn reset(&self) {
        for c in &self.counters {
            c.store(0, Ordering::Relaxed);
        }
        for h in &self.hists {
            h.reset();
        }
        self.gauges.lock().unwrap().clear();
    }

    /// Every non-zero counter as `(name, value)`, in declaration order.
    pub fn counter_snapshot(&self) -> Vec<(&'static str, u64)> {
        ALL_METRICS
            .iter()
            .map(|&m| (m.name(), self.get(m)))
            .filter(|&(_, v)| v != 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        for v in [0u64, 1, 2, 3, 5, 100, 4096, 1 << 20] {
            let b = bucket_of(v);
            assert!(v <= bucket_bound(b), "{v} <= bound({b})");
            if b > 0 {
                assert!(v > bucket_bound(b - 1), "{v} > bound({})", b - 1);
            }
        }
    }

    #[test]
    fn histogram_tallies_and_quantiles() {
        let h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.max, 100);
        assert!((s.mean() - 50.5).abs() < 1e-9);
        // Median of 1..=100 lives in the bucket for 33..=64.
        let med = s.quantile_bound(0.5);
        assert!((33..=64).contains(&med), "median bound {med}");
        // p100 is clamped to the true max, not the bucket's bound.
        assert_eq!(s.quantile_bound(1.0), 100);
        assert_eq!(HistSnapshot::default().quantile_bound(0.5), 0);
    }

    #[test]
    fn interpolated_quantiles_are_pinned() {
        let h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // Buckets for 1..=100: {1}:1, {2,3}:2, {4..7}:4, {8..15}:8,
        // {16..31}:16, {32..63}:32, {64..100}:37 (max tightens 64..127).
        // p50 → rank 50 in the 32..63 bucket, 31 values before it:
        //   32 + (50-31)/32 · (63-32) = 50.40625
        assert!((s.quantile(0.50) - 50.40625).abs() < 1e-9);
        // p95 → rank 95 in the 64..100 bucket, 63 before:
        //   64 + (95-63)/37 · (100-64) = 95.135135…
        assert!((s.quantile(0.95) - (64.0 + 32.0 / 37.0 * 36.0)).abs() < 1e-9);
        // p99 → 64 + (99-63)/37 · 36 = 99.027027…
        assert!((s.quantile(0.99) - (64.0 + 36.0 / 37.0 * 36.0)).abs() < 1e-9);
        // Interpolation stays inside the value range and beats the
        // bucket bound's power-of-two jump.
        assert!(s.quantile(1.0) <= 100.0);
        assert_eq!(HistSnapshot::default().quantile(0.99), 0.0);
        // A single-bucket histogram degenerates to that bucket's range.
        let one = Histogram::default();
        one.record(5);
        let q = one.snapshot().quantile(0.5);
        assert!(
            (4.0..=5.0).contains(&q),
            "within 4..=5 (max-tightened): {q}"
        );
    }

    #[test]
    fn registry_counters_and_gauges() {
        let r = Registry::default();
        r.add(Metric::McTransitions, 5);
        r.add(Metric::McTransitions, 2);
        assert_eq!(r.get(Metric::McTransitions), 7);
        r.set_gauge("x", 1.0);
        r.set_gauge("x", 2.0);
        r.set_gauge("y", 3.0);
        assert_eq!(
            r.gauges(),
            vec![("x".to_string(), 2.0), ("y".to_string(), 3.0)]
        );
        assert_eq!(r.counter_snapshot(), vec![("mc.transitions", 7)]);
        r.reset();
        assert_eq!(r.get(Metric::McTransitions), 0);
        assert!(r.gauges().is_empty());
    }
}
