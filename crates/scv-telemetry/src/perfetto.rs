//! Chrome/Perfetto trace export for drained flight-recorder timelines.
//!
//! Emits the Chrome Trace Event Format (`{"traceEvents": [...]}`), which
//! both `chrome://tracing` and <https://ui.perfetto.dev> open directly:
//!
//! * one **thread track per worker** — a `thread_name` metadata record
//!   per label, then `"B"`/`"E"` duration events for phase spans and
//!   `"i"` instant events for steals / idle parks / admission batches /
//!   seal-cache probes;
//! * **counter tracks** (`"C"` events) for frontier depth, seen-set
//!   load, states-per-sec and the other [`CounterTrack`]s, rendered by
//!   Perfetto as line charts above the thread tracks.
//!
//! Timestamps are microseconds since session start (the format's native
//! unit). Timelines sharing a label (e.g. level-sync workers respawned
//! per level) are merged onto one track. Because rings drop their oldest
//! events, a wrapped ring can expose `"E"` events whose `"B"` was
//! dropped; those orphans are filtered per track so viewers never see an
//! unbalanced stack.

use crate::json::Json;
use crate::recorder::{TraceEvent, WorkerTimeline};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

fn js(pairs: Vec<(&str, Json)>) -> Json {
    Json::obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)))
}

fn us(ts_ns: u64) -> Json {
    Json::Num(ts_ns as f64 / 1_000.0)
}

/// Build the Chrome Trace Event JSON document for a set of drained
/// timelines.
pub fn chrome_trace_json(timelines: &[WorkerTimeline]) -> Json {
    // Merge timelines by label onto one track each; tids are assigned in
    // first-appearance order so `ws-0` keeps a stable slot run to run.
    let mut order: Vec<&str> = Vec::new();
    let mut tracks: BTreeMap<&str, Vec<&TraceEvent>> = BTreeMap::new();
    let mut dropped_total = 0u64;
    for t in timelines {
        if !tracks.contains_key(t.label.as_str()) {
            order.push(&t.label);
        }
        tracks
            .entry(&t.label)
            .or_default()
            .extend(t.events.iter().map(|s| &s.event));
        dropped_total += t.dropped;
    }

    let mut events: Vec<Json> = Vec::new();
    for (tid0, label) in order.iter().enumerate() {
        let tid = Json::Num((tid0 + 1) as f64);
        events.push(js(vec![
            ("ph", Json::Str("M".into())),
            ("name", Json::Str("thread_name".into())),
            ("pid", Json::Num(1.0)),
            ("tid", tid.clone()),
            ("args", js(vec![("name", Json::Str((*label).to_string()))])),
        ]));
        let mut evs = tracks.remove(*label).unwrap_or_default();
        evs.sort_by_key(|e| e.ts_ns());
        // Span-stack depth per track: drop "E" events whose "B" fell out
        // of the ring so the viewer's stack stays balanced.
        let mut depth: u64 = 0;
        for ev in evs {
            match *ev {
                TraceEvent::SpanBegin { ts_ns, phase } => {
                    depth += 1;
                    events.push(js(vec![
                        ("ph", Json::Str("B".into())),
                        ("name", Json::Str(phase.name().into())),
                        ("cat", Json::Str("phase".into())),
                        ("pid", Json::Num(1.0)),
                        ("tid", tid.clone()),
                        ("ts", us(ts_ns)),
                    ]));
                }
                TraceEvent::SpanEnd { ts_ns, phase } => {
                    if depth == 0 {
                        continue; // orphaned by drop-oldest
                    }
                    depth -= 1;
                    events.push(js(vec![
                        ("ph", Json::Str("E".into())),
                        ("name", Json::Str(phase.name().into())),
                        ("cat", Json::Str("phase".into())),
                        ("pid", Json::Num(1.0)),
                        ("tid", tid.clone()),
                        ("ts", us(ts_ns)),
                    ]));
                }
                TraceEvent::Instant { ts_ns, kind, arg } => {
                    events.push(js(vec![
                        ("ph", Json::Str("i".into())),
                        ("name", Json::Str(kind.name().into())),
                        ("cat", Json::Str("event".into())),
                        ("s", Json::Str("t".into())),
                        ("pid", Json::Num(1.0)),
                        ("tid", tid.clone()),
                        ("ts", us(ts_ns)),
                        ("args", js(vec![("arg", Json::Num(arg as f64))])),
                    ]));
                }
                TraceEvent::Counter {
                    ts_ns,
                    track,
                    value,
                } => {
                    // Counter tracks are process-scoped: same name from
                    // any worker lands on one chart.
                    events.push(js(vec![
                        ("ph", Json::Str("C".into())),
                        ("name", Json::Str(track.name().into())),
                        ("pid", Json::Num(1.0)),
                        ("ts", us(ts_ns)),
                        ("args", js(vec![("value", Json::Num(value))])),
                    ]));
                }
            }
        }
    }

    js(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".into())),
        (
            "otherData",
            js(vec![
                ("producer", Json::Str("scv flight recorder".into())),
                ("dropped_events", Json::Num(dropped_total as f64)),
            ]),
        ),
    ])
}

/// Shape summary of an exported trace, used by validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceStats {
    /// Number of named thread tracks (`thread_name` metadata records).
    pub worker_tracks: usize,
    /// Number of distinct counter tracks (`"C"` event names).
    pub counter_tracks: usize,
    /// Total trace events of every phase type.
    pub events: usize,
}

/// Validate a Chrome Trace document: it must carry a `traceEvents`
/// array with at least one named thread track. Returns shape stats so
/// callers can assert stronger floors (CI requires ≥2 counter tracks).
pub fn validate_chrome_trace(doc: &Json) -> Result<TraceStats, String> {
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(evs)) => evs,
        _ => return Err("missing traceEvents array".into()),
    };
    let mut worker_tracks = 0;
    let mut counters = std::collections::BTreeSet::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or("");
        let name = ev.get("name").and_then(Json::as_str).unwrap_or("");
        match ph {
            "M" if name == "thread_name" => worker_tracks += 1,
            "C" => {
                counters.insert(name.to_string());
            }
            "B" | "E" | "i" if ev.get("ts").and_then(Json::as_num).is_none() => {
                return Err(format!("event `{name}` has no numeric ts"));
            }
            _ => {}
        }
    }
    if worker_tracks == 0 {
        return Err("no thread_name metadata tracks".into());
    }
    Ok(TraceStats {
        worker_tracks,
        counter_tracks: counters.len(),
        events: events.len(),
    })
}

/// Serialize timelines and write the trace file (single compact line —
/// Perfetto does not need pretty printing).
pub fn write_chrome_trace(path: &Path, timelines: &[WorkerTimeline]) -> std::io::Result<()> {
    let doc = chrome_trace_json(timelines);
    let mut f = std::fs::File::create(path)?;
    f.write_all(doc.to_string_compact().as_bytes())?;
    f.write_all(b"\n")?;
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{CounterTrack, InstantKind, Stamped, TraceEvent};
    use crate::span::Phase;

    fn timeline(label: &str, events: Vec<TraceEvent>) -> WorkerTimeline {
        WorkerTimeline {
            label: label.to_string(),
            events: events
                .into_iter()
                .enumerate()
                .map(|(i, event)| Stamped {
                    seq: i as u64,
                    event,
                })
                .collect(),
            dropped: 0,
        }
    }

    #[test]
    fn export_has_tracks_spans_instants_and_counters() {
        let tl = vec![
            timeline(
                "ws-0",
                vec![
                    TraceEvent::SpanBegin {
                        ts_ns: 1_000,
                        phase: Phase::Expand,
                    },
                    TraceEvent::Instant {
                        ts_ns: 1_500,
                        kind: InstantKind::Steal,
                        arg: 7,
                    },
                    TraceEvent::SpanEnd {
                        ts_ns: 2_000,
                        phase: Phase::Expand,
                    },
                    TraceEvent::Counter {
                        ts_ns: 2_500,
                        track: CounterTrack::FrontierDepth,
                        value: 42.0,
                    },
                ],
            ),
            timeline(
                "ws-1",
                vec![TraceEvent::Counter {
                    ts_ns: 3_000,
                    track: CounterTrack::SeenStates,
                    value: 9.0,
                }],
            ),
        ];
        let doc = chrome_trace_json(&tl);
        let stats = validate_chrome_trace(&doc).expect("valid trace");
        assert_eq!(stats.worker_tracks, 2);
        assert_eq!(stats.counter_tracks, 2);
        // Round-trips through the JSON parser (what Perfetto will do).
        let reparsed = Json::parse(&doc.to_string_compact()).expect("parses");
        assert_eq!(validate_chrome_trace(&reparsed), Ok(stats));
        // ts is microseconds.
        let evs = match reparsed.get("traceEvents") {
            Some(Json::Arr(evs)) => evs.clone(),
            _ => unreachable!(),
        };
        let b = evs
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("B"))
            .unwrap();
        assert_eq!(b.get("ts").and_then(Json::as_num), Some(1.0));
    }

    #[test]
    fn orphaned_span_ends_are_filtered() {
        // A wrapped ring lost the Begin; the End must not be exported.
        let tl = vec![timeline(
            "ws-0",
            vec![
                TraceEvent::SpanEnd {
                    ts_ns: 10,
                    phase: Phase::Search,
                },
                TraceEvent::SpanBegin {
                    ts_ns: 20,
                    phase: Phase::Expand,
                },
                TraceEvent::SpanEnd {
                    ts_ns: 30,
                    phase: Phase::Expand,
                },
            ],
        )];
        let doc = chrome_trace_json(&tl);
        let evs = match doc.get("traceEvents") {
            Some(Json::Arr(evs)) => evs.clone(),
            _ => unreachable!(),
        };
        let ends: Vec<_> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("E"))
            .collect();
        assert_eq!(ends.len(), 1);
        assert_eq!(
            ends[0].get("name").and_then(Json::as_str),
            Some("search.expand")
        );
    }

    #[test]
    fn same_label_timelines_merge_onto_one_track() {
        let tl = vec![
            timeline(
                "level",
                vec![TraceEvent::Instant {
                    ts_ns: 5,
                    kind: InstantKind::AdmissionBatch,
                    arg: 1,
                }],
            ),
            timeline(
                "level",
                vec![TraceEvent::Instant {
                    ts_ns: 9,
                    kind: InstantKind::AdmissionBatch,
                    arg: 2,
                }],
            ),
        ];
        let stats = validate_chrome_trace(&chrome_trace_json(&tl)).unwrap();
        assert_eq!(stats.worker_tracks, 1);
    }
}
