//! Experiments E5/E9: full verification cost (model checking the
//! protocol ⊗ observer ⊗ checker product) and parallel speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scv_mc::{verify_protocol, Outcome as sc_outcome, SearchStrategy, VerifyOptions};
use scv_protocol::{MsiProtocol, SerialMemory, StoreBufferTso};
use scv_types::Params;

fn opts(threads: usize) -> VerifyOptions {
    VerifyOptions::new().max_states(2_000_000).threads(threads)
}

/// Positive benchmarks cap the search (product spaces exceed millions of
/// states; see DESIGN.md §6) — a correct protocol must never yield a
/// violation within the cap.
fn capped(threads: usize, max_states: usize) -> VerifyOptions {
    VerifyOptions::new().max_states(max_states).threads(threads)
}

fn bench_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("tab_verification");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.warm_up_time(std::time::Duration::from_millis(500));

    group.bench_function(BenchmarkId::new("serial_memory_60k", "2_1_2"), |b| {
        b.iter(|| {
            let out = verify_protocol(SerialMemory::new(Params::new(2, 1, 2)), capped(1, 60_000));
            assert!(!matches!(out, sc_outcome::Violation { .. }));
        })
    });
    group.bench_function(BenchmarkId::new("msi_60k", "2_1_2"), |b| {
        b.iter(|| {
            let out = verify_protocol(MsiProtocol::new(Params::new(2, 1, 2)), capped(1, 60_000));
            assert!(!matches!(out, sc_outcome::Violation { .. }));
        })
    });
    group.bench_function(BenchmarkId::new("msi_buggy_finds_cex", "2_2_1"), |b| {
        b.iter(|| {
            assert!(
                !verify_protocol(MsiProtocol::buggy(Params::new(2, 2, 1)), opts(1)).is_verified()
            )
        })
    });
    group.bench_function(BenchmarkId::new("tso_finds_cex", "2_2_1"), |b| {
        b.iter(|| {
            assert!(
                !verify_protocol(StoreBufferTso::new(Params::new(2, 2, 1), 1), opts(1))
                    .is_verified()
            )
        })
    });
    group.finish();

    // E9: parallel speedup on a bounded sweep of MSI's product space,
    // for both parallel engines (work-stealing vs level-synchronous).
    let mut group = c.benchmark_group("fig_par_mc");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (name, strategy) in [
        ("ws", SearchStrategy::WorkStealing),
        ("level-sync", SearchStrategy::LevelSync),
    ] {
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("msi_2_1_2_150k_{name}"), threads),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        let out = verify_protocol(
                            MsiProtocol::new(Params::new(2, 1, 2)),
                            capped(threads, 150_000).strategy(strategy),
                        );
                        assert!(!matches!(out, sc_outcome::Violation { .. }));
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_verify);
criterion_main!(benches);
