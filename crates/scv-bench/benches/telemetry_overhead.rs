//! Telemetry overhead A/B: the same `verify_protocol` workload as the
//! `mc_verify` bench, run with telemetry disabled and with telemetry
//! enabled behind a [`scv_telemetry::NoopSink`] (counters, histograms and
//! span timers all record; only sink I/O is elided, and sink I/O happens
//! exclusively at flush time anyway — so this measures the full hot-path
//! recording cost).
//!
//! Two modes:
//!
//! * `cargo bench -p scv-bench --bench telemetry_overhead` — criterion
//!   groups printing per-configuration timings for eyeballing.
//! * `TELEMETRY_OVERHEAD_CHECK=1 cargo bench ...` — self-measuring gate:
//!   interleaves disabled/enabled runs, compares medians, and exits
//!   nonzero if the enabled median exceeds the disabled median by more
//!   than `TELEMETRY_OVERHEAD_LIMIT_PCT` percent (default 5). CI runs
//!   this quick mode on every push.
//!
//! The gate also has a flight-recorder arm: telemetry *and* recorder on
//! versus telemetry on alone. The recorder rings buffer per-worker trace
//! events entirely in thread-local memory, so its budget is separate and
//! looser — `RECORDER_OVERHEAD_LIMIT_PCT` (default 10) against the
//! telemetry-enabled baseline. The disabled-path limit is unchanged.

use criterion::{criterion_group, BenchmarkId, Criterion};
use scv_mc::{verify_protocol, Outcome, VerifyOptions};
use scv_protocol::MsiProtocol;
use scv_types::Params;
use std::time::{Duration, Instant};

/// The `mc_verify` positive workload, shrunk for quick mode: a bounded
/// sweep of MSI(2,1,2)'s product space, sequential for determinism.
fn workload() {
    let out = verify_protocol(
        MsiProtocol::new(Params::new(2, 1, 2)),
        VerifyOptions::new().max_states(20_000),
    );
    assert!(!matches!(out, Outcome::Violation { .. }));
}

fn with_telemetry_off(f: impl FnOnce()) {
    scv_telemetry::disable();
    f();
}

fn with_telemetry_on(f: impl FnOnce()) {
    scv_telemetry::install(Box::new(scv_telemetry::NoopSink));
    f();
    scv_telemetry::shutdown();
}

fn with_recorder_on(f: impl FnOnce()) {
    scv_telemetry::install(Box::new(scv_telemetry::NoopSink));
    scv_telemetry::recorder::recorder_start(scv_telemetry::DEFAULT_RING_CAPACITY);
    f();
    scv_telemetry::recorder::recorder_stop();
    // Drop the buffered timelines so rounds don't accumulate memory.
    let _ = scv_telemetry::recorder::drain();
    scv_telemetry::shutdown();
}

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function(BenchmarkId::new("mc_verify_msi_20k", "disabled"), |b| {
        b.iter(|| with_telemetry_off(workload))
    });
    group.bench_function(BenchmarkId::new("mc_verify_msi_20k", "enabled"), |b| {
        b.iter(|| with_telemetry_on(workload))
    });
    group.bench_function(BenchmarkId::new("mc_verify_msi_20k", "recorder"), |b| {
        b.iter(|| with_recorder_on(workload))
    });
    group.finish();
}

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

/// Self-measuring gate for CI: alternate disabled/enabled runs so clock
/// drift and cache warmth hit both sides equally, then compare medians.
fn overhead_check() -> i32 {
    let limit_pct: f64 = std::env::var("TELEMETRY_OVERHEAD_LIMIT_PCT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5.0);
    let rec_limit_pct: f64 = std::env::var("RECORDER_OVERHEAD_LIMIT_PCT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10.0);
    const ROUNDS: usize = 11;
    // Warm every path before timing anything.
    with_telemetry_off(workload);
    with_telemetry_on(workload);
    with_recorder_on(workload);
    let mut off = Vec::with_capacity(ROUNDS);
    let mut on = Vec::with_capacity(ROUNDS);
    let mut rec = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        // Alternate which side goes first within the round.
        let measure_off = || {
            let t0 = Instant::now();
            with_telemetry_off(workload);
            t0.elapsed()
        };
        let measure_on = || {
            let t0 = Instant::now();
            with_telemetry_on(workload);
            t0.elapsed()
        };
        let measure_rec = || {
            let t0 = Instant::now();
            with_recorder_on(workload);
            t0.elapsed()
        };
        if round % 2 == 0 {
            off.push(measure_off());
            on.push(measure_on());
            rec.push(measure_rec());
        } else {
            rec.push(measure_rec());
            on.push(measure_on());
            off.push(measure_off());
        }
    }
    let (m_off, m_on, m_rec) = (median(off), median(on), median(rec));
    let overhead_pct = (m_on.as_secs_f64() / m_off.as_secs_f64() - 1.0) * 100.0;
    println!(
        "telemetry overhead check: disabled median {:?}, enabled median {:?}, \
         overhead {overhead_pct:+.2}% (limit {limit_pct}%)",
        m_off, m_on
    );
    // Recorder budget is measured against the telemetry-enabled baseline:
    // the ring pushes are the only delta between the two configurations.
    let rec_pct = (m_rec.as_secs_f64() / m_on.as_secs_f64() - 1.0) * 100.0;
    println!(
        "recorder overhead check: enabled median {:?}, recorder median {:?}, \
         overhead {rec_pct:+.2}% (limit {rec_limit_pct}%)",
        m_on, m_rec
    );
    let mut code = 0;
    if overhead_pct > limit_pct {
        eprintln!("FAIL: enabled-telemetry overhead exceeds {limit_pct}%");
        code = 1;
    }
    if rec_pct > rec_limit_pct {
        eprintln!("FAIL: flight-recorder overhead exceeds {rec_limit_pct}%");
        code = 1;
    }
    if code == 0 {
        println!("OK");
    }
    code
}

criterion_group!(benches, bench_overhead);

fn main() {
    if std::env::var("TELEMETRY_OVERHEAD_CHECK").is_ok_and(|v| v != "0" && !v.is_empty()) {
        std::process::exit(overhead_check());
    }
    benches();
}
