//! Experiment E8: the Lazy Caching ST order generator (§4.2) as queue
//! depth grows — observation cost and the observer's pin pressure scale
//! with how many stores can be simultaneously pending serialization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scv_bench::protocol_run;
use scv_checker::ScChecker;
use scv_observer::Observer;
use scv_protocol::LazyCaching;
use scv_types::Params;

const STEPS: usize = 1_500;

fn bench_lazy(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_lazy_storder");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(STEPS as u64));
    for depth in [1u8, 2, 4] {
        let p = LazyCaching::new(Params::new(2, 2, 2), depth, depth);
        let (run, d) = protocol_run(&p, STEPS, 13);
        group.bench_with_input(BenchmarkId::new("observe", depth), &run, |b, run| {
            b.iter(|| Observer::observe_run(&p, run))
        });
        group.bench_with_input(BenchmarkId::new("check", depth), &d, |b, d| {
            b.iter(|| ScChecker::check(d).expect("lazy caching verifies"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lazy);
criterion_main!(benches);
