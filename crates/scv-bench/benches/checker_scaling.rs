//! Experiment E6: cost of the finite-state streaming checkers vs the
//! whole-trace Gibbons–Korach baseline.
//!
//! The streaming checkers run in memory bounded by the bandwidth `k`,
//! independent of trace length; the baseline materializes the whole
//! constraint graph (`O(n)` memory). The series reported here are checker
//! wall-time vs trace length (1k / 4k / 16k operations) at small and large
//! reordering windows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scv_bench::sc_workload;
use scv_checker::{CycleChecker, ScChecker};
use scv_graph::baseline::{BaselineChecker, BaselineVerdict};

fn bench_checkers(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_checker_scaling");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &len in &[1_000usize, 4_000, 16_000] {
        for &window in &[4usize, 64] {
            let w = sc_workload(len, window, 42);
            group.throughput(Throughput::Elements(len as u64));
            let id = format!("n{len}_w{window}_k{}", w.bandwidth);

            if w.bandwidth < 64 {
                // The word-packed Lemma 3.3 checker supports k+1 <= 64.
                group.bench_with_input(BenchmarkId::new("stream_cycle", &id), &w, |b, w| {
                    b.iter(|| {
                        CycleChecker::check(&w.descriptor).expect("acyclic");
                    })
                });
            }
            group.bench_with_input(BenchmarkId::new("stream_sc", &id), &w, |b, w| {
                b.iter(|| {
                    ScChecker::check(&w.descriptor).expect("constraint graph");
                })
            });
            group.bench_with_input(BenchmarkId::new("baseline_whole_graph", &id), &w, |b, w| {
                b.iter(|| {
                    assert!(matches!(
                        BaselineChecker::check(&w.trace, &w.witness),
                        BaselineVerdict::Consistent(_)
                    ));
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_checkers);
criterion_main!(benches);
