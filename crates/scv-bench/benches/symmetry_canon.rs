//! Experiment E13 (symmetry quotient): canonicalization microbenchmark —
//! the sort-based fast path ([`SymmetryMode::Full`]) against the
//! brute-force group enumeration reference ([`SymmetryMode::FullEnum`]),
//! resealing the same reachable states through
//! [`VerifySystem::canonical_encoding_of`] (which bypasses every seal
//! cache, so this measures pure canonicalization cost).
//!
//! Both paths produce byte-identical encodings — asserted here on every
//! state, so the bench doubles as a parity smoke test. The interesting
//! number is the ratio: it isolates the refinement, residual-enumeration,
//! and key-extension win from the cache effects the end-to-end `perf`
//! binary folds in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scv_mc::{SymmetryMode, TransitionSystem, VerifySystem};
use scv_protocol::{MesiProtocol, MsiProtocol, SerialMemory, Symmetry};
use scv_types::Params;

/// A deterministic BFS prefix of reachable product states to reseal.
fn sample_states<P>(
    sys: &VerifySystem<P>,
    n: usize,
) -> Vec<<VerifySystem<P> as TransitionSystem>::State>
where
    P: Symmetry,
    P::State: Clone + Send + 'static,
{
    let mut frontier = std::collections::VecDeque::from([sys.initial()]);
    let mut out = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::new();
    while let Some(s) = frontier.pop_front() {
        if out.len() >= n {
            break;
        }
        if !seen.insert(sys.canonical_encoding_of(&s)) {
            continue;
        }
        for (_, next) in sys.successors(&s) {
            frontier.push_back(next);
        }
        out.push(s);
    }
    out
}

fn bench_symmetry_canon(c: &mut Criterion) {
    let mut group = c.benchmark_group("symmetry_canon");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.warm_up_time(std::time::Duration::from_millis(500));

    // p = 4 keeps the uncapped group (4!·2!·2! = 96) affordable for the
    // FullEnum reference while exercising procs ⋉ blocks ⋉ values.
    let params = Params::new(4, 2, 2);
    macro_rules! case {
        ($name:literal, $mk:expr) => {{
            let fast = VerifySystem::with_symmetry($mk, SymmetryMode::Full);
            let reference = VerifySystem::with_symmetry($mk, SymmetryMode::FullEnum);
            let states = sample_states(&fast, 64);
            // Parity: the bench measures two implementations of the same
            // function, or it measures nothing.
            for s in &states {
                assert_eq!(
                    fast.canonical_encoding_of(s),
                    reference.canonical_encoding_of(s),
                    "fast/reference canonical encodings diverged on {}",
                    $name
                );
            }
            group.bench_function(BenchmarkId::new("full", $name), |b| {
                b.iter(|| {
                    for s in &states {
                        std::hint::black_box(fast.canonical_encoding_of(s));
                    }
                })
            });
            group.bench_function(BenchmarkId::new("full-enum", $name), |b| {
                b.iter(|| {
                    for s in &states {
                        std::hint::black_box(reference.canonical_encoding_of(s));
                    }
                })
            });
        }};
    }
    case!("serial", SerialMemory::new(params));
    case!("msi", MsiProtocol::new(params));
    case!("mesi", MesiProtocol::new(params));

    group.finish();
}

criterion_group!(benches, bench_symmetry_canon);
criterion_main!(benches);
