//! Observer overhead (supports §4.4's practicality discussion): cost of a
//! protocol random walk alone vs the same walk with the witness observer
//! attached, per protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use scv_observer::{Observer, ObserverConfig};
use scv_protocol::{DirectoryProtocol, LazyCaching, MsiProtocol, Protocol, Runner, SerialMemory};
use scv_types::Params;

const STEPS: usize = 2_000;

fn walk<P: Protocol + Clone>(p: &P, observe: bool) -> usize {
    let mut rng = SmallRng::seed_from_u64(11);
    let mut runner = Runner::new(p.clone());
    runner.run_random(STEPS, 0.5, &mut rng);
    let run = runner.into_run();
    if observe {
        let mut obs = Observer::new(ObserverConfig::from_protocol(p));
        let mut syms = Vec::new();
        for s in &run.steps {
            obs.step(s, &mut syms);
        }
        obs.finish(&mut syms);
        syms.len()
    } else {
        run.len()
    }
}

fn bench_overhead(c: &mut Criterion) {
    let params = Params::new(2, 2, 2);
    let mut group = c.benchmark_group("observer_overhead");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(STEPS as u64));
    macro_rules! pair {
        ($name:expr, $proto:expr) => {{
            let p = $proto;
            group.bench_with_input(BenchmarkId::new("protocol_only", $name), &p, |b, p| {
                b.iter(|| walk(p, false))
            });
            group.bench_with_input(BenchmarkId::new("with_observer", $name), &p, |b, p| {
                b.iter(|| walk(p, true))
            });
        }};
    }
    pair!("serial", SerialMemory::new(params));
    pair!("msi", MsiProtocol::new(params));
    pair!("directory", DirectoryProtocol::new(params));
    pair!("lazy", LazyCaching::new(params, 2, 2));
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
