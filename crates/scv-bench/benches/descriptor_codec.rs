//! Descriptor codec throughput: Lemma 3.2 encoding and §3.2 decoding of
//! bandwidth-bounded constraint graphs (supports experiment E6's cost
//! decomposition).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scv_bench::sc_workload;
use scv_descriptor::{decode, encode, naive_descriptor};
use scv_graph::saturated_graph;

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("descriptor_codec");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &len in &[1_000usize, 8_000] {
        let w = sc_workload(len, 16, 7);
        let g = saturated_graph(&w.trace, &w.witness);
        let k = w.bandwidth.max(1) as u32;
        group.throughput(Throughput::Elements(len as u64));

        group.bench_with_input(BenchmarkId::new("encode_minimal_k", len), &g, |b, g| {
            b.iter(|| encode(g, k).expect("fits"))
        });
        group.bench_with_input(BenchmarkId::new("encode_naive", len), &g, |b, g| {
            b.iter(|| naive_descriptor(g))
        });
        group.bench_with_input(BenchmarkId::new("decode", len), &w.descriptor, |b, d| {
            b.iter(|| decode(d).expect("well-formed"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
