//! Measure product state-space sizes for test calibration.
use scv_mc::{verify_protocol, Outcome, VerifyOptions};
use scv_protocol::*;
use scv_types::Params;
use std::time::Instant;

fn probe<P: Symmetry + Sync + Clone>(name: &str, p: P)
where
    P::State: Send + Sync + 'static,
{
    let t0 = Instant::now();
    let out = verify_protocol(p, VerifyOptions::new().max_states(3_000_000).threads(4));
    let s = out.stats();
    let v = match out {
        Outcome::Verified { .. } => "VERIFIED",
        Outcome::Violation { .. } => "VIOLATION",
        Outcome::Bounded { .. } => "BOUNDED",
        Outcome::Inconclusive { .. } => "INCONCLUSIVE",
    };
    println!(
        "{name:<28} {v:<10} states={:<9} trans={:<10} depth={} time={:?}",
        s.states,
        s.transitions,
        s.depth,
        t0.elapsed()
    );
}

fn main() {
    probe("serial (2,1,1)", SerialMemory::new(Params::new(2, 1, 1)));
    probe("serial (2,1,2)", SerialMemory::new(Params::new(2, 1, 2)));
    probe("serial (2,2,2)", SerialMemory::new(Params::new(2, 2, 2)));
    probe("msi (2,1,1)", MsiProtocol::new(Params::new(2, 1, 1)));
    probe("msi (2,1,2)", MsiProtocol::new(Params::new(2, 1, 2)));
    probe("msi (2,2,1)", MsiProtocol::new(Params::new(2, 2, 1)));
    probe("mesi (2,1,1)", MesiProtocol::new(Params::new(2, 1, 1)));
    probe("mesi (2,1,2)", MesiProtocol::new(Params::new(2, 1, 2)));
    probe(
        "directory (2,1,1)",
        DirectoryProtocol::new(Params::new(2, 1, 1)),
    );
    probe(
        "directory (2,1,2)",
        DirectoryProtocol::new(Params::new(2, 1, 2)),
    );
    probe(
        "lazy (2,1,1) q=1",
        LazyCaching::new(Params::new(2, 1, 1), 1, 1),
    );
    probe(
        "msi-buggy (2,2,1)",
        MsiProtocol::buggy(Params::new(2, 2, 1)),
    );
    probe(
        "mesi-buggy (2,2,1)",
        MesiProtocol::buggy(Params::new(2, 2, 1)),
    );
    probe(
        "tso (2,2,1) d=1",
        StoreBufferTso::new(Params::new(2, 2, 1), 1),
    );
    probe(
        "fig4 (2,1,2) s=1",
        Fig4Protocol::new(Params::new(2, 1, 2), 1),
    );
}
