//! Compare two RunReport JSONL files for performance regressions.
//!
//! ```text
//! cargo run --release -p scv-bench --bin report_diff -- \
//!     old.jsonl new.jsonl [--threshold PCT]
//! ```
//!
//! Reports are matched by `name` (e.g. `experiments/e9`, `verify/msi`);
//! every metric present in both sides of a matched pair is compared under
//! the [`scv_telemetry::direction_of`] heuristic: times and waste counters
//! regress when they grow past the threshold (default 10%), throughput
//! regresses when it shrinks, everything else is informational. Exit code
//! 1 iff any regression was flagged. Verdict changes are printed for
//! information but never flagged — correctness is the test suite's job,
//! this tool watches performance trends.

use scv_telemetry::{parse_reports, Direction, RunReport};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: report_diff <old.jsonl> <new.jsonl> [--threshold PCT]");
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Vec<RunReport>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_reports(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = 10.0f64;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                let Some(v) = it.next() else {
                    return usage();
                };
                match v.parse::<f64>() {
                    Ok(t) if t >= 0.0 => threshold = t,
                    _ => {
                        eprintln!("error: --threshold must be a non-negative percentage");
                        return ExitCode::from(2);
                    }
                }
            }
            _ => paths.push(a.clone()),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        return usage();
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let mut regressions = 0usize;
    let mut compared = 0usize;
    for o in &old {
        // Last record wins when a name repeats (reruns append).
        let Some(n) = new.iter().rev().find(|n| n.name == o.name) else {
            println!("~ {}: missing from {new_path}", o.name);
            continue;
        };
        compared += 1;
        println!("== {} (threshold {threshold}%)", o.name);
        if o.verdict != n.verdict {
            println!("   verdict: {} -> {}", o.verdict, n.verdict);
        }
        for d in scv_telemetry::diff_reports(o, n, threshold) {
            let dir = match d.direction {
                Direction::LowerIsBetter => "↓better",
                Direction::HigherIsBetter => "↑better",
                Direction::Neutral => "info",
            };
            let pct = d
                .pct
                .map(|p| format!("{p:+.1}%"))
                .unwrap_or_else(|| "n/a".to_string());
            let flag = if d.regression { "  REGRESSION" } else { "" };
            println!(
                "   {:<28} {:>14.2} -> {:>14.2}  {:>8} [{dir}]{flag}",
                d.name, d.old, d.new, pct
            );
            regressions += d.regression as usize;
        }
    }
    for n in &new {
        if !old.iter().any(|o| o.name == n.name) {
            println!("+ {}: new in {new_path}", n.name);
        }
    }
    if compared == 0 {
        eprintln!("error: no report names in common");
        return ExitCode::from(2);
    }
    if regressions > 0 {
        println!("\n{regressions} regression(s) beyond {threshold}%");
        ExitCode::FAILURE
    } else {
        println!("\nno regressions beyond {threshold}%");
        ExitCode::SUCCESS
    }
}
