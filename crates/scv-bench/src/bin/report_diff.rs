//! Compare two RunReport JSONL files for performance regressions.
//!
//! ```text
//! cargo run --release -p scv-bench --bin report_diff -- \
//!     old.jsonl new.jsonl [--threshold PCT] [--json]
//! ```
//!
//! Reports are matched by `name` (e.g. `experiments/e9`, `verify/msi`);
//! every metric present in both sides of a matched pair is compared under
//! the [`scv_telemetry::direction_of`] heuristic: times and waste counters
//! regress when they grow past the threshold (default 10%), throughput
//! regresses when it shrinks, everything else is informational. Exit code
//! 1 iff any regression was flagged. Verdict changes are printed for
//! information but never flagged — correctness is the test suite's job,
//! this tool watches performance trends.
//!
//! `--json` replaces the human-readable table with one machine-readable
//! JSON document on stdout (same comparison, same exit codes).
//!
//! `--improve SUBSTR=PCT` (repeatable) sets an *improvement floor*: every
//! matched report whose name contains `SUBSTR` must show `states_per_sec`
//! at least `PCT`% above the old value, or it is flagged as a regression
//! regardless of the symmetric threshold. `PCT` may be negative to mean
//! "tolerate at most that much drop" — e.g. `--improve sym=full=-5` holds
//! the full-symmetry rows to a 5% drop where the default threshold would
//! allow 10%.

use scv_telemetry::{parse_reports, Direction, Json, RunReport};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: report_diff <old.jsonl> <new.jsonl> [--threshold PCT] \
         [--improve SUBSTR=PCT]... [--json]"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Vec<RunReport>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_reports(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = 10.0f64;
    let mut json_out = false;
    let mut improves: Vec<(String, f64)> = Vec::new();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json_out = true,
            "--threshold" => {
                let Some(v) = it.next() else {
                    return usage();
                };
                match v.parse::<f64>() {
                    Ok(t) if t >= 0.0 => threshold = t,
                    _ => {
                        eprintln!("error: --threshold must be a non-negative percentage");
                        return ExitCode::from(2);
                    }
                }
            }
            "--improve" => {
                let Some(v) = it.next() else {
                    return usage();
                };
                // Split on the *last* '=' so SUBSTR may itself contain
                // '=' (report names like `sym=full/t=1` do).
                match v.rsplit_once('=').map(|(p, t)| (p, t.parse::<f64>())) {
                    Some((pat, Ok(pct))) if !pat.is_empty() => {
                        improves.push((pat.to_string(), pct));
                    }
                    _ => {
                        eprintln!("error: --improve expects SUBSTR=PCT");
                        return ExitCode::from(2);
                    }
                }
            }
            _ => paths.push(a.clone()),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        return usage();
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let mut regressions = 0usize;
    let mut compared = 0usize;
    let mut report_docs: Vec<Json> = Vec::new();
    let mut missing: Vec<Json> = Vec::new();
    for o in &old {
        // Last record wins when a name repeats (reruns append).
        let Some(n) = new.iter().rev().find(|n| n.name == o.name) else {
            if json_out {
                missing.push(Json::Str(o.name.clone()));
            } else {
                println!("~ {}: missing from {new_path}", o.name);
            }
            continue;
        };
        compared += 1;
        if !json_out {
            println!("== {} (threshold {threshold}%)", o.name);
            if o.verdict != n.verdict {
                println!("   verdict: {} -> {}", o.verdict, n.verdict);
            }
        }
        let mut metric_docs: Vec<Json> = Vec::new();
        for d in scv_telemetry::diff_reports(o, n, threshold) {
            let dir = match d.direction {
                Direction::LowerIsBetter => "↓better",
                Direction::HigherIsBetter => "↑better",
                Direction::Neutral => "info",
            };
            regressions += d.regression as usize;
            if json_out {
                metric_docs.push(Json::obj([
                    ("name".to_string(), Json::Str(d.name.clone())),
                    ("old".to_string(), Json::Num(d.old)),
                    ("new".to_string(), Json::Num(d.new)),
                    (
                        "pct".to_string(),
                        d.pct.map(Json::Num).unwrap_or(Json::Null),
                    ),
                    (
                        "direction".to_string(),
                        Json::Str(
                            match d.direction {
                                Direction::LowerIsBetter => "lower_is_better",
                                Direction::HigherIsBetter => "higher_is_better",
                                Direction::Neutral => "neutral",
                            }
                            .to_string(),
                        ),
                    ),
                    ("regression".to_string(), Json::Bool(d.regression)),
                ]));
            } else {
                let pct = d
                    .pct
                    .map(|p| format!("{p:+.1}%"))
                    .unwrap_or_else(|| "n/a".to_string());
                let flag = if d.regression { "  REGRESSION" } else { "" };
                println!(
                    "   {:<28} {:>14.2} -> {:>14.2}  {:>8} [{dir}]{flag}",
                    d.name, d.old, d.new, pct
                );
            }
        }
        // Improvement floors: throughput on matching rows must clear the
        // configured margin over the old baseline, not merely avoid the
        // symmetric regression threshold.
        let mut floor_docs: Vec<Json> = Vec::new();
        for (pat, min_pct) in &improves {
            if !o.name.contains(pat.as_str()) {
                continue;
            }
            let rate = |r: &RunReport| {
                r.metrics
                    .iter()
                    .find(|(k, _)| k == "states_per_sec")
                    .map(|&(_, v)| v)
            };
            let (Some(ov), Some(nv)) = (rate(o), rate(n)) else {
                continue;
            };
            if ov <= 0.0 {
                continue;
            }
            let pct = (nv - ov) / ov * 100.0;
            let ok = pct >= *min_pct;
            regressions += !ok as usize;
            if json_out {
                floor_docs.push(Json::obj([
                    ("pattern".to_string(), Json::Str(pat.clone())),
                    ("min_pct".to_string(), Json::Num(*min_pct)),
                    ("pct".to_string(), Json::Num(pct)),
                    ("ok".to_string(), Json::Bool(ok)),
                ]));
            } else {
                let flag = if ok { "" } else { "  BELOW FLOOR" };
                println!(
                    "   floor[{pat}] states_per_sec {pct:+.1}% (need >= {min_pct:+.1}%){flag}"
                );
            }
        }
        if json_out {
            report_docs.push(Json::obj([
                ("name".to_string(), Json::Str(o.name.clone())),
                ("old_verdict".to_string(), Json::Str(o.verdict.clone())),
                ("new_verdict".to_string(), Json::Str(n.verdict.clone())),
                ("metrics".to_string(), Json::Arr(metric_docs)),
                ("floors".to_string(), Json::Arr(floor_docs)),
            ]));
        }
    }
    let mut added: Vec<Json> = Vec::new();
    for n in &new {
        if !old.iter().any(|o| o.name == n.name) {
            if json_out {
                added.push(Json::Str(n.name.clone()));
            } else {
                println!("+ {}: new in {new_path}", n.name);
            }
        }
    }
    if compared == 0 {
        eprintln!("error: no report names in common");
        return ExitCode::from(2);
    }
    if json_out {
        let doc = Json::obj([
            ("schema".to_string(), Json::Num(1.0)),
            ("threshold_pct".to_string(), Json::Num(threshold)),
            ("compared".to_string(), Json::Num(compared as f64)),
            ("regressions".to_string(), Json::Num(regressions as f64)),
            ("reports".to_string(), Json::Arr(report_docs)),
            ("missing".to_string(), Json::Arr(missing)),
            ("added".to_string(), Json::Arr(added)),
        ]);
        println!("{}", doc.to_string_compact());
    } else if regressions > 0 {
        println!("\n{regressions} regression(s) beyond {threshold}%");
    } else {
        println!("\nno regressions beyond {threshold}%");
    }
    if regressions > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
