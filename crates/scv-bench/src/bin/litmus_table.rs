//! E10 — litmus battery vs the protocol zoo (appended to EXPERIMENTS.md).

use scv_protocol::litmus::{all, realizable};
use scv_protocol::{MesiProtocol, MsiProtocol, Protocol, SerialMemory, StoreBufferTso};

fn main() {
    println!("## E10 — litmus battery (directed execution search)\n");
    println!("`yes` = the protocol can realize the outcome. A protocol realizing a");
    println!("`forbidden` outcome is not sequentially consistent — the empirical");
    println!("cross-check of the E5 verdicts.\n");
    let battery = all();
    print!("| protocol |");
    for l in &battery {
        print!(
            " {} ({}) |",
            l.name,
            if l.sc_allows { "allowed" } else { "forbidden" }
        );
    }
    println!();
    print!("|---|");
    for _ in &battery {
        print!("---|");
    }
    println!();
    macro_rules! row {
        ($name:expr, $mk:expr, $budget:expr) => {{
            print!("| {} |", $name);
            for l in &battery {
                let hit = {
                    let p = $mk(l.min_params());
                    realizable(&p, &l.trace, $budget)
                };
                print!(" {} |", if hit { "yes" } else { "no" });
            }
            println!();
        }};
    }
    row!("serial-memory", SerialMemory::new, 2);
    row!("msi", MsiProtocol::new, 4);
    row!("mesi", MesiProtocol::new, 4);
    row!("msi-buggy", MsiProtocol::buggy, 6);
    row!("mesi-buggy", MesiProtocol::buggy, 6);
    row!("tso (d=2)", |p| StoreBufferTso::new(p, 2), 4);
    let _ = <SerialMemory as Protocol>::name;
    println!();
}
