//! End-to-end throughput benchmark over the protocol zoo — the perf
//! regression gate behind `BENCH_7.json`.
//!
//! ```text
//! cargo run --release -p scv-bench --bin perf [--out <path>] \
//!     [--max-states N] [--reps N] [--filter SUBSTR]
//! ```
//!
//! Runs a *pinned* matrix — protocols {serial, msi, mesi, directory,
//! lazy} × symmetry {off, full} × threads {1, 4} — once through
//! the admission-gated lazy expansion path and once through the eager
//! reference path, and appends one schema-versioned
//! [`scv_telemetry::RunReport`] JSONL record per run plus a `perf/summary`
//! record (total wall clock, process peak RSS). The matrix and the report
//! names are deliberately stable: CI regenerates the file and feeds it to
//! `report_diff` against the committed `BENCH_7.json` baseline, failing
//! on a >10% `states_per_sec` (or peak-RSS) regression.
//!
//! Both modes run the *same* search to the same state cap, so the
//! lazy-mode reports carry a `speedup_vs_eager` metric (ratio of
//! states/sec) that makes the admission-gating win auditable per cell.
//!
//! Each (case, mode) runs `--reps` times (default 3) and the *best*
//! states/sec is reported: best-of-k discards interference from a shared
//! or single-core host, which otherwise swings short runs by ±20%.

use scv_mc::{verify_protocol, Outcome, SymmetryMode, VerifyOptions};
use scv_protocol::{
    DirectoryProtocol, LazyCaching, MesiProtocol, MsiProtocol, SerialMemory, StoreBufferTso,
    Symmetry,
};
use scv_types::Params;
use std::time::Instant;

const DEFAULT_OUT: &str = "BENCH_7.json";
const DEFAULT_MAX_STATES: usize = 20_000;
const DEFAULT_REPS: usize = 3;

/// The pinned protocol list. Params are chosen so every cell either
/// saturates the state cap or covers its full (small) reachable space.
const PROTOCOLS: [&str; 5] = ["serial", "msi", "mesi", "directory", "lazy"];
/// The two quotient extremes from the acceptance criterion. `proc` sits
/// between them in both cost and reduction and is covered by the parity
/// battery (`tests/lazy_parity.rs`); at the pinned p = 6 its group is as
/// large as `full`'s, so benchmarking it would double the matrix wall
/// clock without adding information.
const SYMS: [SymmetryMode; 2] = [SymmetryMode::Off, SymmetryMode::Full];
const THREADS: [usize; 2] = [1, 4];

struct CaseResult {
    verdict: &'static str,
    states: usize,
    transitions: usize,
    elapsed_secs: f64,
    states_per_sec: f64,
}

/// A counter snapshot taken around one rep.
type Counters = Vec<(&'static str, u64)>;

fn sym_tag(m: SymmetryMode) -> &'static str {
    match m {
        SymmetryMode::Off => "off",
        SymmetryMode::Proc => "proc",
        SymmetryMode::Full => "full",
        SymmetryMode::FullEnum => "full-enum",
    }
}

fn run_generic<P>(proto: P, sym: SymmetryMode, threads: usize, lazy: bool, cap: usize) -> CaseResult
where
    P: Symmetry + Sync,
    P::State: Send + Sync + 'static,
{
    let opts = VerifyOptions::new()
        .max_states(cap)
        .threads(threads)
        .symmetry(sym)
        .lazy(lazy);
    let t0 = Instant::now();
    let out = verify_protocol(proto, opts);
    let elapsed = t0.elapsed().as_secs_f64();
    let s = out.stats();
    CaseResult {
        verdict: match out {
            Outcome::Verified { .. } => "verified",
            Outcome::Violation { .. } => "violation",
            Outcome::Bounded { .. } => "bounded",
            // No budget is configured for perf cases.
            Outcome::Inconclusive { .. } => "inconclusive",
        },
        states: s.states,
        transitions: s.transitions,
        elapsed_secs: elapsed,
        states_per_sec: if elapsed > 0.0 {
            s.states as f64 / elapsed
        } else {
            0.0
        },
    }
}

fn run_case(proto: &str, sym: SymmetryMode, threads: usize, lazy: bool, cap: usize) -> CaseResult {
    let p = Params::new(6, 2, 2);
    match proto {
        "serial" => run_generic(SerialMemory::new(p), sym, threads, lazy, cap),
        "msi" => run_generic(MsiProtocol::new(p), sym, threads, lazy, cap),
        "mesi" => run_generic(MesiProtocol::new(p), sym, threads, lazy, cap),
        "directory" => run_generic(DirectoryProtocol::new(p), sym, threads, lazy, cap),
        "lazy" => run_generic(LazyCaching::new(p, 2, 2), sym, threads, lazy, cap),
        "tso" => run_generic(StoreBufferTso::new(p, 2), sym, threads, lazy, cap),
        other => panic!("unknown protocol {other}"),
    }
}

fn main() {
    let mut out_path = DEFAULT_OUT.to_string();
    let mut max_states = DEFAULT_MAX_STATES;
    let mut reps = DEFAULT_REPS;
    let mut filter = String::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let need = |args: &mut dyn Iterator<Item = String>| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {a} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--out" => out_path = need(&mut args),
            "--max-states" => {
                max_states = need(&mut args).parse().unwrap_or_else(|e| {
                    eprintln!("error: bad --max-states: {e}");
                    std::process::exit(2);
                })
            }
            "--reps" => {
                reps = need(&mut args).parse().unwrap_or_else(|e| {
                    eprintln!("error: bad --reps: {e}");
                    std::process::exit(2);
                });
                reps = reps.max(1);
            }
            "--filter" => filter = need(&mut args),
            _ => {
                eprintln!(
                    "usage: perf [--out <path>] [--max-states N] [--reps N] [--filter SUBSTR]\n\
                     unknown argument: {a}"
                );
                std::process::exit(2);
            }
        }
    }

    match scv_telemetry::JsonlSink::create(std::path::Path::new(&out_path)) {
        Ok(sink) => scv_telemetry::install(Box::new(sink)),
        Err(e) => {
            eprintln!("error: cannot open {out_path}: {e}");
            std::process::exit(2);
        }
    }

    println!("# perf matrix → {out_path} (max_states {max_states})\n");
    println!("| case | mode | verdict | states | states/sec | speedup |");
    println!("|---|---|---|---|---|---|");
    let t_all = Instant::now();
    let mut cases = 0usize;
    for proto in PROTOCOLS {
        for sym in SYMS {
            for threads in THREADS {
                let case = format!("perf/{proto}/sym={}/t={threads}", sym_tag(sym));
                if !filter.is_empty() && !case.contains(&filter) {
                    continue;
                }
                cases += 1;
                let mut per_mode: Vec<(&str, CaseResult)> = Vec::new();
                for lazy in [false, true] {
                    // Best-of-reps: keep the fastest rep (and its counter
                    // movement — the counters are deterministic per run).
                    let mut best: Option<(CaseResult, Counters, Counters)> = None;
                    for _ in 0..reps {
                        let before = scv_telemetry::registry().counter_snapshot();
                        let r = run_case(proto, sym, threads, lazy, max_states);
                        let after = scv_telemetry::registry().counter_snapshot();
                        if best
                            .as_ref()
                            .is_none_or(|(b, _, _)| r.states_per_sec > b.states_per_sec)
                        {
                            best = Some((r, before, after));
                        }
                    }
                    let (r, before, after) = best.expect("reps >= 1");
                    let mode = if lazy { "lazy" } else { "eager" };
                    let mut report = scv_telemetry::RunReport::new(format!("{case}/{mode}"))
                        .param("protocol", proto)
                        .param("symmetry", sym_tag(sym))
                        .param("threads", threads.to_string())
                        .param("expand", mode)
                        .param("max_states", max_states.to_string())
                        .param("reps", reps.to_string())
                        .with_verdict(r.verdict)
                        .metric("states", r.states as f64)
                        .metric("transitions", r.transitions as f64)
                        .metric("elapsed_secs", r.elapsed_secs)
                        .metric("states_per_sec", r.states_per_sec);
                    if lazy {
                        let eager = &per_mode[0].1;
                        if eager.states_per_sec > 0.0 {
                            report = report.metric(
                                "speedup_vs_eager",
                                r.states_per_sec / eager.states_per_sec,
                            );
                        }
                        // Counter movement attributable to the lazy run:
                        // clones avoided, seal-cache traffic, arena bytes,
                        // and the canonicalizer's fast-path/fallback split.
                        for key in [
                            "mc.clones_avoided",
                            "mc.arena_alloc_bytes",
                            "symmetry.seal_cache_hits",
                            "symmetry.seal_cache_misses",
                            "symmetry.seal_cache_l2_hits",
                            "symmetry.seal_cache_l2_misses",
                            "symmetry.refine_exact",
                            "symmetry.residual_enum",
                        ] {
                            let old = before
                                .iter()
                                .find(|(k, _)| *k == key)
                                .map(|(_, v)| *v)
                                .unwrap_or(0);
                            let new = after
                                .iter()
                                .find(|(k, _)| *k == key)
                                .map(|(_, v)| *v)
                                .unwrap_or(0);
                            report = report.metric(key, new.saturating_sub(old) as f64);
                        }
                    }
                    scv_telemetry::emit_report(report);
                    per_mode.push((mode, r));
                }
                let eager = &per_mode[0].1;
                let lazy = &per_mode[1].1;
                let speedup = if eager.states_per_sec > 0.0 {
                    lazy.states_per_sec / eager.states_per_sec
                } else {
                    0.0
                };
                for (mode, r) in &per_mode {
                    println!(
                        "| {case} | {mode} | {} | {} | {:.0} | {} |",
                        r.verdict,
                        r.states,
                        r.states_per_sec,
                        if *mode == "lazy" {
                            format!("{speedup:.2}x")
                        } else {
                            "—".to_string()
                        }
                    );
                }
                // Cross-check: both modes are the same search. Sequential
                // runs must agree exactly; parallel bounded runs race the
                // state cap, so allow the same ~5% drift the differential
                // tests do.
                assert_eq!(eager.verdict, lazy.verdict, "verdict diverged on {case}");
                if threads == 1 {
                    assert_eq!(
                        (eager.states, eager.transitions),
                        (lazy.states, lazy.transitions),
                        "lazy/eager count divergence on {case}"
                    );
                } else if eager.verdict != "violation" {
                    // Parallel bounded runs race the state cap: allow the
                    // same ~5% drift the differential tests do. Parallel
                    // *violation* runs race the counterexample instead —
                    // states-explored-until-found is not comparable.
                    let drift = (eager.states as f64 - lazy.states as f64).abs()
                        / eager.states.max(1) as f64;
                    assert!(drift <= 0.05, "lazy/eager drifted {drift:.3} on {case}");
                }
            }
        }
    }
    let total = t_all.elapsed().as_secs_f64();
    let mut summary = scv_telemetry::RunReport::new("perf/summary")
        .param("max_states", max_states.to_string())
        .param("cases", cases.to_string())
        .with_verdict("completed")
        .metric("total_elapsed_secs", total);
    // Omitted (not zero) when the platform can't report it.
    if let Some(rss) = scv_telemetry::peak_rss_bytes() {
        summary = summary.metric("peak_rss_bytes", rss as f64);
    }
    scv_telemetry::emit_report(summary);
    scv_telemetry::shutdown();
    println!("\n{cases} cases in {total:.1}s → {out_path}");
}
