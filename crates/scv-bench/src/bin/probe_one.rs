//! One-shot verification probe for a named product, reporting through the
//! telemetry summary sink (verdict + search metrics as a `RunReport`,
//! pipeline phase timings and counters from the instrumented crates).

use scv_mc::{verify_protocol, Outcome, VerifyOptions};
use scv_protocol::*;
use scv_types::Params;
use std::time::Instant;

fn run<P: Symmetry + Sync + Clone>(name: &str, p: P, cap: usize, threads: usize)
where
    P::State: Send + Sync + 'static,
{
    scv_telemetry::event(scv_telemetry::Event::RunStart {
        name: format!("probe_one/{name}"),
        params: vec![
            ("cap".to_string(), cap.to_string()),
            ("threads".to_string(), threads.to_string()),
        ],
    });
    let t0 = Instant::now();
    let out = verify_protocol(p, VerifyOptions::new().max_states(cap).threads(threads));
    let s = out.stats();
    let verdict = match out {
        Outcome::Verified { .. } => "verified",
        Outcome::Violation { .. } => "violation",
        Outcome::Bounded { .. } => "bounded",
        Outcome::Inconclusive { .. } => "inconclusive",
    };
    scv_telemetry::emit_report(
        scv_telemetry::RunReport::new(format!("probe_one/{name}"))
            .param("threads", threads)
            .param("cap", cap)
            .with_verdict(verdict)
            .metric("states", s.states as f64)
            .metric("depth", s.depth as f64)
            .metric("elapsed_secs", t0.elapsed().as_secs_f64())
            .metric("states_per_sec", s.states_per_sec()),
    );
}

fn main() {
    scv_telemetry::install(Box::new(scv_telemetry::SummarySink::default()));
    let which = std::env::args().nth(1).unwrap_or_default();
    match which.as_str() {
        "s211" => run(
            "serial(2,1,1)",
            SerialMemory::new(Params::new(2, 1, 1)),
            3_000_000,
            4,
        ),
        "s212" => run(
            "serial(2,1,2)",
            SerialMemory::new(Params::new(2, 1, 2)),
            3_000_000,
            4,
        ),
        "m211" => run(
            "msi(2,1,1)",
            MsiProtocol::new(Params::new(2, 1, 1)),
            3_000_000,
            4,
        ),
        "e211" => run(
            "mesi(2,1,1)",
            MesiProtocol::new(Params::new(2, 1, 1)),
            3_000_000,
            4,
        ),
        "d211" => run(
            "directory(2,1,1)",
            DirectoryProtocol::new(Params::new(2, 1, 1)),
            3_000_000,
            4,
        ),
        "l211" => run(
            "lazy(2,1,1)q1",
            LazyCaching::new(Params::new(2, 1, 1), 1, 1),
            3_000_000,
            4,
        ),
        "bug" => run(
            "msi-buggy(2,2,1)",
            MsiProtocol::buggy(Params::new(2, 2, 1)),
            3_000_000,
            1,
        ),
        "tso" => run(
            "tso(2,2,1)d1",
            StoreBufferTso::new(Params::new(2, 2, 1), 1),
            3_000_000,
            1,
        ),
        _ => eprintln!("usage: probe_one <s211|s212|m211|e211|d211|l211|bug|tso>"),
    }
    scv_telemetry::shutdown();
}
