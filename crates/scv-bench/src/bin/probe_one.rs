use scv_mc::{verify_protocol, BfsOptions, Outcome, VerifyOptions};
use scv_protocol::*;
use scv_types::Params;
use std::time::Instant;
fn run<P: Protocol + Sync + Clone>(name: &str, p: P, cap: usize, threads: usize)
where
    P::State: Send + Sync,
{
    let t0 = Instant::now();
    let out = verify_protocol(
        p,
        VerifyOptions {
            bfs: BfsOptions {
                max_states: cap,
                max_depth: usize::MAX,
            },
            threads,
            ..Default::default()
        },
    );
    let s = out.stats();
    let v = match out {
        Outcome::Verified { .. } => "VERIFIED",
        Outcome::Violation { .. } => "VIOLATION",
        Outcome::Bounded { .. } => "BOUNDED",
    };
    println!(
        "{name:<22} {v:<10} states={:<9} depth={} t={:?}",
        s.states,
        s.depth,
        t0.elapsed()
    );
}
fn main() {
    let which = std::env::args().nth(1).unwrap_or_default();
    match which.as_str() {
        "s211" => run(
            "serial(2,1,1)",
            SerialMemory::new(Params::new(2, 1, 1)),
            3_000_000,
            4,
        ),
        "s212" => run(
            "serial(2,1,2)",
            SerialMemory::new(Params::new(2, 1, 2)),
            3_000_000,
            4,
        ),
        "m211" => run(
            "msi(2,1,1)",
            MsiProtocol::new(Params::new(2, 1, 1)),
            3_000_000,
            4,
        ),
        "e211" => run(
            "mesi(2,1,1)",
            MesiProtocol::new(Params::new(2, 1, 1)),
            3_000_000,
            4,
        ),
        "d211" => run(
            "directory(2,1,1)",
            DirectoryProtocol::new(Params::new(2, 1, 1)),
            3_000_000,
            4,
        ),
        "l211" => run(
            "lazy(2,1,1)q1",
            LazyCaching::new(Params::new(2, 1, 1), 1, 1),
            3_000_000,
            4,
        ),
        "bug" => run(
            "msi-buggy(2,2,1)",
            MsiProtocol::buggy(Params::new(2, 2, 1)),
            3_000_000,
            1,
        ),
        "tso" => run(
            "tso(2,2,1)d1",
            StoreBufferTso::new(Params::new(2, 2, 1), 1),
            3_000_000,
            1,
        ),
        _ => eprintln!("usage: probe_one <s211|s212|m211|e211|d211|l211|bug|tso>"),
    }
}
