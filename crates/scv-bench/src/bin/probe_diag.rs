//! Product state-space shape probe: states per BFS level plus a few
//! deep states' component sizes, reported through the telemetry summary
//! sink (one `Kv` event per depth, pipeline phase timings at the end).

use scv_mc::{TransitionSystem, VerifySystem};
use scv_protocol::*;
use scv_types::Params;
use std::collections::HashMap;

fn main() {
    scv_telemetry::install(Box::new(scv_telemetry::SummarySink::default()));
    let sys = VerifySystem::new(SerialMemory::new(Params::new(2, 1, 1)));
    // BFS a few levels, count states per depth.
    let mut seen: HashMap<_, usize> = HashMap::new();
    let init = sys.initial();
    seen.insert(init.clone(), 0);
    let mut frontier = vec![init];
    for depth in 1..=8 {
        let mut next = Vec::new();
        for s in &frontier {
            for (_, t) in sys.successors(s) {
                if !seen.contains_key(&t) {
                    seen.insert(t.clone(), depth);
                    next.push(t);
                }
            }
        }
        scv_telemetry::event(scv_telemetry::Event::Kv {
            scope: format!("probe_diag.depth.{depth}"),
            items: vec![
                ("new_states".to_string(), next.len() as f64),
                ("total_states".to_string(), seen.len() as f64),
            ],
        });
        frontier = next;
    }
    // Pick a few states at depth 6 and dump their checker/observer sizes.
    let mut count = 0;
    for (s, d) in &seen {
        if *d == 6 && count < 4 {
            let mut ids = scv_descriptor::IdCanon::new(s.obs.location_count());
            let mut e = Vec::new();
            s.obs.canonical_encoding(&mut e, &mut ids);
            let obs_len = e.len();
            s.chk.canonical_encoding(&mut e, &mut ids);
            scv_telemetry::event(scv_telemetry::Event::Kv {
                scope: format!("probe_diag.state{count}.depth{d}"),
                items: vec![
                    ("chk_retained".to_string(), s.chk.retained_count() as f64),
                    ("enc_obs_words".to_string(), obs_len as f64),
                    ("enc_chk_words".to_string(), (e.len() - obs_len) as f64),
                ],
            });
            count += 1;
        }
    }
    scv_telemetry::shutdown();
}
