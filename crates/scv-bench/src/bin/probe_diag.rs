use scv_mc::{TransitionSystem, VerifySystem};
use scv_protocol::*;
use scv_types::Params;
use std::collections::HashMap;

fn main() {
    let sys = VerifySystem::new(SerialMemory::new(Params::new(2, 1, 1)));
    // BFS a few levels, count states per depth.
    let mut seen: HashMap<_, usize> = HashMap::new();
    let init = sys.initial();
    seen.insert(init.clone(), 0);
    let mut frontier = vec![init];
    for depth in 1..=8 {
        let mut next = Vec::new();
        for s in &frontier {
            for (_, t) in sys.successors(s) {
                if !seen.contains_key(&t) {
                    seen.insert(t.clone(), depth);
                    next.push(t);
                }
            }
        }
        println!(
            "depth {depth}: +{} states (total {})",
            next.len(),
            seen.len()
        );
        frontier = next;
    }
    // Pick a few states at depth 6 and dump their checker/observer state sizes.
    let mut count = 0;
    for (s, d) in &seen {
        if *d == 6 && count < 4 {
            println!(
                "--- state at depth {d}: chk retained={} enc_len={}",
                s.chk.retained_count(),
                {
                    let mut ids = scv_descriptor::IdCanon::new(s.obs.location_count());
                    let mut e = Vec::new();
                    s.obs.canonical_encoding(&mut e, &mut ids);
                    let ol = e.len();
                    s.chk.canonical_encoding(&mut e, &mut ids);
                    format!("obs={} chk={}", ol, e.len() - ol)
                }
            );
            println!("chk: {:?}", s.chk);
            count += 1;
        }
    }
}
