//! Regenerate every table of EXPERIMENTS.md in one run.
//!
//! ```text
//! cargo run --release -p scv-bench --bin experiments [--report <path>] [e1 e5 …]
//! ```
//!
//! Timing *figures* (series with error bars) are produced by the Criterion
//! benches (`cargo bench`); this binary prints the outcome/size/shape
//! tables and quick single-shot timings for the crossover figure.
//!
//! With `--report <path>`, one schema-versioned [`scv_telemetry::RunReport`]
//! JSONL record is appended per experiment: wall-clock time, peak RSS, and
//! the pipeline counter deltas (states admitted, observer/checker symbols,
//! …) attributable to that experiment. `report_diff` compares two such
//! files for regressions.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use scv_bench::{protocol_run, sc_workload};
use scv_checker::{CycleChecker, ScChecker};
use scv_descriptor::decode;
use scv_graph::baseline::{BaselineChecker, BaselineVerdict};
use scv_graph::serial_search::has_serial_reordering;
use scv_mc::{verify_protocol, Outcome, SearchStrategy, SymmetryMode, VerifyOptions};
use scv_observer::{observer_size_bound, Observer, ObserverConfig};
use scv_protocol::{
    DirectoryProtocol, Fig4Protocol, LazyCaching, MsiProtocol, Protocol, Runner, SerialMemory,
    StoreBufferTso,
};
use scv_types::{BlockId, Op, Params, ProcId, Trace, Value};
use std::time::Instant;

fn e1_figure1() {
    println!("## E1 — Figure 1: litmus outcomes\n");
    println!("| r1 | r2 | serial | SC |");
    println!("|----|----|--------|----|");
    let outcome = |r1: Option<u8>, r2: Option<u8>| {
        let val = |o: Option<u8>| o.map(Value).unwrap_or(Value::BOTTOM);
        Trace::from_ops([
            Op::store(ProcId(1), BlockId(1), Value(1)),
            Op::store(ProcId(1), BlockId(2), Value(2)),
            Op::load(ProcId(2), BlockId(2), val(r2)),
            Op::load(ProcId(2), BlockId(1), val(r1)),
        ])
    };
    for (r1, r2) in [
        (Some(1), Some(2)),
        (None, None),
        (Some(1), None),
        (None, Some(2)),
    ] {
        let t = outcome(r1, r2);
        let show = |o: Option<u8>| o.map_or("0".into(), |v: u8| v.to_string());
        println!(
            "| {} | {} | {} | {} |",
            show(r1),
            show(r2),
            t.is_serial(),
            has_serial_reordering(&t)
        );
    }
    println!();
}

fn e4_size_bounds() {
    println!("## E4 — §4.4 observer size bounds vs measurements\n");
    println!("| protocol | p | b | v | L | bound bw (L+pb) | bound bits | measured live nodes | measured aux IDs |");
    println!("|---|---|---|---|---|---|---|---|---|");
    let mut rng = SmallRng::seed_from_u64(99);
    macro_rules! measure {
        ($name:expr, $proto:expr) => {{
            let proto = $proto;
            let mut runner = Runner::new(proto.clone());
            runner.run_random(600, 0.5, &mut rng);
            let run = runner.into_run();
            let mut obs = Observer::new(ObserverConfig::from_protocol(&proto));
            let mut syms = Vec::new();
            for s in &run.steps {
                obs.step(s, &mut syms);
            }
            obs.finish(&mut syms);
            let params = proto.params();
            let l = proto.locations();
            let bound = observer_size_bound(&params, l);
            let st = obs.stats();
            println!(
                "| {} | {} | {} | {} | {} | {} | {} | {} | {} |",
                $name,
                params.p,
                params.b,
                params.v,
                l,
                bound.bandwidth,
                bound.total_bits,
                st.max_live_nodes,
                st.max_aux_in_use
            );
        }};
    }
    for (p, b, v) in [(2, 2, 2), (3, 2, 2), (2, 4, 2), (4, 2, 4), (4, 4, 4)] {
        let params = Params::new(p, b, v);
        measure!("serial-memory", SerialMemory::new(params));
        measure!("msi", MsiProtocol::new(params));
        measure!("directory", DirectoryProtocol::new(params));
        measure!("lazy-caching", LazyCaching::new(params, 2, 2));
    }
    println!();
}

fn e5_verification() {
    println!("## E5 — verification outcomes (model checking the product)\n");
    println!("Positive rows cap the search at 1.5M states: `no violation (bounded)`");
    println!("means the cap was reached with every explored run verifying;");
    println!("`VERIFIED` means the whole product space was exhausted (a proof).\n");
    println!("| protocol | (p,b,v) | expected | outcome | states | transitions | depth | time |");
    println!("|---|---|---|---|---|---|---|---|");
    let opts = VerifyOptions::new().max_states(1_500_000).threads(4);
    macro_rules! row {
        ($name:expr, $ps:expr, $expected:expr, $proto:expr) => {{
            let out = verify_protocol($proto, opts.clone());
            let s = out.stats();
            let verdict = match &out {
                Outcome::Verified { .. } => "VERIFIED (exhaustive)",
                Outcome::Violation { .. } => "NOT SC / no witness",
                Outcome::Bounded { .. } => "no violation (bounded)",
                Outcome::Inconclusive { .. } => "no violation (interrupted)",
            };
            println!(
                "| {} | {} | {} | {} | {} | {} | {} | {:?} |",
                $name, $ps, $expected, verdict, s.states, s.transitions, s.depth, s.elapsed
            );
            out
        }};
    }
    row!(
        "serial-memory",
        "(2,1,1)",
        "SC",
        SerialMemory::new(Params::new(2, 1, 1))
    );
    row!(
        "msi",
        "(2,1,2)",
        "SC",
        MsiProtocol::new(Params::new(2, 1, 2))
    );
    row!(
        "mesi",
        "(2,1,2)",
        "SC",
        scv_protocol::MesiProtocol::new(Params::new(2, 1, 2))
    );
    row!(
        "directory",
        "(2,1,1)",
        "SC",
        DirectoryProtocol::new(Params::new(2, 1, 1))
    );
    row!(
        "lazy-caching qo=qi=1",
        "(2,1,1)",
        "SC",
        LazyCaching::new(Params::new(2, 1, 1), 1, 1)
    );
    let mut notes: Vec<String> = Vec::new();
    let out = row!(
        "msi-buggy",
        "(2,2,1)",
        "not SC",
        MsiProtocol::buggy(Params::new(2, 2, 1))
    );
    if let Outcome::Violation { trace, reason, .. } = &out {
        notes.push(format!(
            "msi-buggy counterexample trace: `{trace}` — {reason} (independent check, has serial reordering: {})",
            has_serial_reordering(trace)
        ));
    }
    row!(
        "mesi-buggy",
        "(2,2,1)",
        "not SC",
        scv_protocol::MesiProtocol::buggy(Params::new(2, 2, 1))
    );
    let out = row!(
        "store-buffer (TSO)",
        "(2,2,1) d=1",
        "not SC",
        StoreBufferTso::new(Params::new(2, 2, 1), 1)
    );
    if let Outcome::Violation { trace, .. } = &out {
        notes.push(format!(
            "TSO counterexample trace: `{trace}` (independent check, has serial reordering: {})",
            has_serial_reordering(trace)
        ));
    }
    row!(
        "fig4 (Get-Shared)",
        "(2,1,2) s=1",
        "not in Γ",
        Fig4Protocol::new(Params::new(2, 1, 2), 1)
    );
    println!();
    for n in notes {
        println!("{n}");
        println!();
    }
}

fn e6_crossover() {
    println!("## E6 — streaming checker vs whole-graph baseline (single-shot timings)\n");
    println!("| n ops | window | bandwidth k | stream cycle | stream SC | baseline whole-graph | decode+axioms |");
    println!("|---|---|---|---|---|---|---|");
    for len in [1_000usize, 4_000, 16_000, 64_000] {
        for window in [4usize, 64] {
            let w = sc_workload(len, window, 42);
            // The word-packed cycle checker supports k+1 <= 64; wider
            // workloads are checked by the slab-based SC checker only.
            let cyc = if w.bandwidth < 64 {
                let t0 = Instant::now();
                CycleChecker::check(&w.descriptor).expect("acyclic");
                format!("{:?}", t0.elapsed())
            } else {
                "— (k+1 > 64)".to_string()
            };
            let t0 = Instant::now();
            ScChecker::check(&w.descriptor).expect("valid");
            let sc = t0.elapsed();
            let t0 = Instant::now();
            assert!(matches!(
                BaselineChecker::check(&w.trace, &w.witness),
                BaselineVerdict::Consistent(_)
            ));
            let base = t0.elapsed();
            let t0 = Instant::now();
            let (dg, _) = decode(&w.descriptor).expect("decodes");
            let cg = dg.to_constraint_graph().expect("labeled");
            assert!(scv_graph::validate_constraint_graph(&cg, &w.trace).is_ok());
            let dec = t0.elapsed();
            println!(
                "| {len} | {window} | {} | {cyc} | {sc:?} | {base:?} | {dec:?} |",
                w.bandwidth
            );
        }
    }
    println!();
}

fn e7_bandwidth() {
    println!("## E7 — observed witness-graph bandwidth vs L+pb bound\n");
    println!("| protocol | (p,b,v) | L | L+pb | observed bandwidth | observed max active IDs |");
    println!("|---|---|---|---|---|---|");
    macro_rules! row {
        ($name:expr, $proto:expr) => {{
            let p = $proto;
            let (_, d) = protocol_run(&p, 2_000, 21);
            let (dg, stats) = decode(&d).expect("decodes");
            let cg = dg.to_constraint_graph().expect("labeled");
            let params = p.params();
            let l = p.locations();
            println!(
                "| {} | ({},{},{}) | {} | {} | {} | {} |",
                $name,
                params.p,
                params.b,
                params.v,
                l,
                l as u64 + params.p as u64 * params.b as u64,
                cg.bandwidth(),
                stats.max_active
            );
        }};
    }
    let params = Params::new(2, 2, 2);
    row!("serial-memory", SerialMemory::new(params));
    row!("msi", MsiProtocol::new(params));
    row!("directory", DirectoryProtocol::new(params));
    row!("lazy-caching", LazyCaching::new(params, 2, 2));
    row!(
        "tso (accepting prefix)",
        StoreBufferTso::new(Params::new(2, 2, 2), 2)
    );
    println!();
}

fn e8_lazy_depth() {
    println!("## E8 — lazy caching: queue depth vs observation cost\n");
    println!("| queue depth | run steps | descriptor symbols | max live nodes | observe time | check time |");
    println!("|---|---|---|---|---|---|");
    for depth in [1u8, 2, 4, 8] {
        let p = LazyCaching::new(Params::new(2, 2, 2), depth, depth);
        let (run, _) = protocol_run(&p, 3_000, 13);
        let t0 = Instant::now();
        let mut obs = Observer::new(ObserverConfig::from_protocol(&p));
        let mut syms = Vec::new();
        for s in &run.steps {
            obs.step(s, &mut syms);
        }
        obs.finish(&mut syms);
        let t_obs = t0.elapsed();
        let t0 = Instant::now();
        let mut chk = ScChecker::new(obs.k());
        for s in &syms {
            chk.step(s).expect("verifies");
        }
        chk.finish().expect("verifies");
        let t_chk = t0.elapsed();
        println!(
            "| {depth} | {} | {} | {} | {t_obs:?} | {t_chk:?} |",
            run.len(),
            syms.len(),
            obs.stats().max_live_nodes
        );
    }
    println!();
}

fn e9_parallel() {
    println!("## E9 — parallel model checking (MSI 2,1,2; 500k-state bounded sweep)\n");
    println!("| engine | threads | states | time | states/s | speedup | steals | seen batches | peak frontier |");
    println!("|---|---|---|---|---|---|---|---|---|");
    let sweep = VerifyOptions::new().max_states(500_000);
    let mut t1 = None;
    let mut row = |label: &str, opts: VerifyOptions| {
        let threads = opts.threads;
        let t0 = Instant::now();
        let out = verify_protocol(MsiProtocol::new(Params::new(2, 1, 2)), opts);
        let dt = t0.elapsed();
        assert!(!matches!(out, Outcome::Violation { .. }));
        let s = out.stats();
        let base = *t1.get_or_insert(dt);
        println!(
            "| {label} | {} | {} | {dt:?} | {:.0} | {:.2}x | {} | {} | {} |",
            threads,
            s.states,
            s.states_per_sec(),
            base.as_secs_f64() / dt.as_secs_f64(),
            s.steals,
            s.seen_batches,
            s.peak_frontier,
        );
    };
    row("sequential", sweep.clone().threads(1));
    for threads in [2usize, 4, 8] {
        row(
            "work-stealing",
            sweep
                .clone()
                .threads(threads)
                .strategy(SearchStrategy::WorkStealing),
        );
    }
    for threads in [2usize, 4, 8] {
        row(
            "level-sync",
            sweep
                .clone()
                .threads(threads)
                .strategy(SearchStrategy::LevelSync),
        );
    }
    println!();

    // Time-to-counterexample on the violating products: the asynchronous
    // engine explores in a schedule-dependent order, so the interesting
    // guarantees are (a) every engine still finds a violation and (b) how
    // much of the product each visits before doing so.
    println!("### E9b — time to counterexample (violating products)\n");
    println!("| product | engine | threads | states to violation | run length | time |");
    println!("|---|---|---|---|---|---|");
    macro_rules! cex_rows {
        ($name:expr, $mk:expr) => {
            for (engine, threads, strategy) in [
                ("sequential", 1usize, SearchStrategy::WorkStealing),
                ("work-stealing", 4, SearchStrategy::WorkStealing),
                ("level-sync", 4, SearchStrategy::LevelSync),
            ] {
                let t0 = Instant::now();
                let out = verify_protocol($mk, sweep.clone().threads(threads).strategy(strategy));
                let dt = t0.elapsed();
                let Outcome::Violation { run, ref stats, .. } = out else {
                    panic!("{} must violate", $name);
                };
                println!(
                    "| {} | {engine} | {threads} | {} | {} | {dt:?} |",
                    $name,
                    stats.states,
                    run.len()
                );
            }
        };
    }
    cex_rows!(
        "msi-buggy (2,2,1)",
        MsiProtocol::buggy(Params::new(2, 2, 1))
    );
    cex_rows!(
        "fig4 (2,1,2) s=1",
        Fig4Protocol::new(Params::new(2, 1, 2), 1)
    );
    println!();
}

fn e11_symmetry() {
    println!("## E11 — symmetry-quotient search: reduced vs full product space\n");
    println!("Each product is searched twice with identical limits — once over the");
    println!("raw space and once quotiented by the protocol's declared symmetry");
    println!("group (orbit-minimum canonicalization before seen-set admission).");
    println!("Limits are chosen so the search frontier is comparable either way:");
    println!("small products run exhaustively, large ones are depth-limited (a");
    println!("shared state cap would hide the reduction — both searches would");
    println!("stop at the cap). Verdicts must agree; `reduction` is raw states /");
    println!("reduced states.\n");
    println!("| protocol | (p,b,v) | limit | |G| | verdict | states off | states on | reduction | time off | time on |");
    println!("|---|---|---|---|---|---|---|---|---|---|");
    macro_rules! row {
        ($name:expr, $ps:expr, $limit:expr, $base:expr, $mk:expr) => {{
            let order =
                scv_mc::VerifySystem::with_symmetry($mk, SymmetryMode::Full).symmetry_group_order();
            let t0 = Instant::now();
            let off = verify_protocol($mk, $base.clone());
            let t_off = t0.elapsed();
            let t0 = Instant::now();
            let on = verify_protocol($mk, $base.clone().symmetry(SymmetryMode::Full));
            let t_on = t0.elapsed();
            let verdict = |o: &Outcome| match o {
                Outcome::Verified { .. } => "VERIFIED",
                Outcome::Violation { .. } => "violation",
                Outcome::Bounded { .. } => "bounded",
                Outcome::Inconclusive { .. } => "inconclusive",
            };
            assert_eq!(
                verdict(&off),
                verdict(&on),
                "{}: symmetry changed verdict",
                $name
            );
            let (s_off, s_on) = (off.stats().states, on.stats().states);
            println!(
                "| {} | {} | {} | {} | {} | {} | {} | {:.2}x | {:?} | {:?} |",
                $name,
                $ps,
                $limit,
                order,
                verdict(&off),
                s_off,
                s_on,
                s_off as f64 / s_on.max(1) as f64,
                t_off,
                t_on
            );
        }};
    }
    // Exhaustive rows: the whole quotient is a proof either way.
    let exhaustive = VerifyOptions::new().max_states(2_000_000);
    row!(
        "serial-memory",
        "(2,1,1)",
        "exhaustive",
        exhaustive,
        SerialMemory::new(Params::new(2, 1, 1))
    );
    row!(
        "serial-memory",
        "(1,1,2)",
        "exhaustive",
        exhaustive,
        SerialMemory::new(Params::new(1, 1, 2))
    );
    // Depth-limited sweeps: identical frontier depth, so the state counts
    // measure the orbit merging directly.
    let sweep = VerifyOptions::new().max_states(1_500_000).max_depth(8);
    row!(
        "msi",
        "(2,1,2)",
        "depth 8",
        sweep,
        MsiProtocol::new(Params::new(2, 1, 2))
    );
    row!(
        "mesi",
        "(2,1,2)",
        "depth 8",
        sweep,
        scv_protocol::MesiProtocol::new(Params::new(2, 1, 2))
    );
    row!(
        "directory",
        "(2,2,1)",
        "depth 8",
        sweep,
        DirectoryProtocol::new(Params::new(2, 2, 1))
    );
    // A violating product: the quotient must still catch the bug (with a
    // shortest counterexample — sequential BFS), just sooner.
    let hunt = VerifyOptions::new().max_states(2_000_000);
    row!(
        "msi-buggy",
        "(2,2,1)",
        "to violation",
        hunt,
        MsiProtocol::buggy(Params::new(2, 2, 1))
    );
    println!();
}

fn main() {
    // With no arguments every table is regenerated; passing experiment
    // names (`experiments e9 e5`) reruns just those. `--report <path>`
    // additionally writes one RunReport JSONL record per experiment.
    let mut only: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = only.iter().position(|a| a == "--report") {
        only.remove(i);
        if i >= only.len() {
            eprintln!("error: --report needs a path");
            std::process::exit(2);
        }
        let path = only.remove(i);
        match scv_telemetry::JsonlSink::create(std::path::Path::new(&path)) {
            Ok(sink) => scv_telemetry::install(Box::new(sink)),
            Err(e) => {
                eprintln!("error: cannot open {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    let run = |name: &str| only.is_empty() || only.iter().any(|a| a == name);
    println!("# sc-verify experiment tables (generated)\n");
    let experiments: [(&str, fn()); 8] = [
        ("e1", e1_figure1),
        ("e4", e4_size_bounds),
        ("e5", e5_verification),
        ("e6", e6_crossover),
        ("e7", e7_bandwidth),
        ("e8", e8_lazy_depth),
        ("e9", e9_parallel),
        ("e11", e11_symmetry),
    ];
    for (name, f) in experiments {
        if !run(name) {
            continue;
        }
        let before = scv_telemetry::registry().counter_snapshot();
        let t0 = Instant::now();
        f();
        let elapsed = t0.elapsed();
        if scv_telemetry::enabled() {
            // Attribute the pipeline counter movement to this experiment.
            let after = scv_telemetry::registry().counter_snapshot();
            let mut report = scv_telemetry::RunReport::new(format!("experiments/{name}"))
                .with_verdict("completed")
                .metric("elapsed_secs", elapsed.as_secs_f64());
            // Omitted (not zero) when the platform can't report it.
            if let Some(rss) = scv_telemetry::peak_rss_bytes() {
                report = report.metric("peak_rss_bytes", rss as f64);
            }
            for (key, new) in &after {
                let old = before
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| *v)
                    .unwrap_or(0);
                if new > &old {
                    report = report.metric(*key, (new - old) as f64);
                }
            }
            scv_telemetry::emit_report(report);
        }
    }
    scv_telemetry::shutdown();
    println!("done.");
}
