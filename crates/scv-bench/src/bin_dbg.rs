// temporary debug: find the offending LD in directory seed 0
use rand::rngs::SmallRng;
use rand::SeedableRng;
use scv_observer::Observer;
use scv_protocol::*;
use scv_types::Params;
use scv_descriptor::decode;
use scv_graph::validate_constraint_graph;

fn main() {
    let p = DirectoryProtocol::new(Params::new(2, 2, 2));
    let mut rng = SmallRng::seed_from_u64(0);
    let mut r = Runner::new(p.clone());
    r.run_random(80, 0.5, &mut rng);
    let run = r.into_run();
    for (i, s) in run.steps.iter().enumerate() {
        println!("{i:3} {} {:?}", s.action, s.tracking);
    }
    let d = Observer::observe_run(&p, &run);
    let (dg, _) = decode(&d).unwrap();
    let cg = dg.to_constraint_graph().unwrap();
    println!("{:?}", validate_constraint_graph(&cg, &run.trace()));
    println!("trace: {}", run.trace());
}
