//! Shared workload builders for the benchmark and experiment harness.
//!
//! Every table and figure of the reproduction (see `EXPERIMENTS.md`) is
//! regenerated either by a Criterion bench in `benches/` or by the
//! `experiments` binary in `src/bin/`, both of which build their inputs
//! here so that measurements and tables use identical workloads.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use scv_descriptor::{encode, Descriptor};
use scv_graph::baseline::Witness;
use scv_graph::random::{random_witnessed_trace, WorkloadConfig};
use scv_graph::saturated_graph;
use scv_observer::Observer;
use scv_protocol::{Protocol, Run, Runner};
use scv_types::{Params, Trace};

/// A random SC workload: trace, ground-truth witness, and its saturated
/// constraint graph encoded at (bandwidth + slack).
pub struct ScWorkload {
    /// The trace.
    pub trace: Trace,
    /// The ground-truth witness.
    pub witness: Witness,
    /// The encoded descriptor.
    pub descriptor: Descriptor,
    /// The graph's exact node bandwidth.
    pub bandwidth: usize,
}

/// Build a deterministic random SC workload.
///
/// `window` controls how far operations drift from their serial positions
/// (larger windows → larger constraint-graph bandwidth).
pub fn sc_workload(len: usize, window: usize, seed: u64) -> ScWorkload {
    let mut rng = SmallRng::seed_from_u64(seed);
    let cfg = WorkloadConfig::new(Params::new(4, 4, 4), len);
    let wt = random_witnessed_trace(&cfg, window, &mut rng);
    let g = saturated_graph(&wt.trace, &wt.witness);
    let bandwidth = g.bandwidth();
    let descriptor = encode(&g, bandwidth.max(1) as u32).expect("exact bandwidth");
    ScWorkload {
        trace: wt.trace,
        witness: wt.witness,
        descriptor,
        bandwidth,
    }
}

/// Produce a deterministic random run of a protocol plus its observer
/// descriptor.
pub fn protocol_run<P: Protocol + Clone>(p: &P, steps: usize, seed: u64) -> (Run, Descriptor) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut runner = Runner::new(p.clone());
    runner.run_random(steps, 0.5, &mut rng);
    let run = runner.into_run();
    let d = Observer::observe_run(p, &run);
    (run, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scv_checker::ScChecker;
    use scv_protocol::MsiProtocol;

    #[test]
    fn workloads_are_deterministic_and_verify() {
        let w1 = sc_workload(200, 8, 1);
        let w2 = sc_workload(200, 8, 1);
        assert_eq!(w1.trace, w2.trace);
        assert_eq!(w1.descriptor, w2.descriptor);
        assert_eq!(ScChecker::check(&w1.descriptor), Ok(()));
    }

    #[test]
    fn bandwidth_grows_with_window() {
        let narrow = sc_workload(400, 2, 3);
        let wide = sc_workload(400, 32, 3);
        assert!(wide.bandwidth >= narrow.bandwidth);
    }

    #[test]
    fn protocol_runs_verify() {
        let p = MsiProtocol::new(Params::new(2, 2, 2));
        let (run, d) = protocol_run(&p, 80, 5);
        assert!(!run.is_empty());
        assert_eq!(ScChecker::check(&d), Ok(()));
    }
}
