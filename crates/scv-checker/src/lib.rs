//! Finite-state checkers for *k*-graph descriptors (§3.3–3.4 of Condon &
//! Hu, SPAA 2001).
//!
//! * [`CycleChecker`] — the streaming cycle checker of Lemma 3.3: reads a
//!   descriptor symbol by symbol, maintains an *active graph* of at most
//!   `k+1` nodes (contracting edges through nodes whose IDs are recycled),
//!   and rejects the moment an edge closes a directed cycle. Accepts a
//!   descriptor iff the whole graph it describes is acyclic.
//!
//! * [`ScChecker`] — the full sequential-consistency checker of
//!   Theorem 3.1: the cycle check plus streaming enforcement of all five
//!   edge-annotation constraints of §3.1 (program-order and ST-order
//!   totality bits, inheritance bits, the `forced-edge-on-path-to`
//!   variables with deferred node removal, and the `LD(P,B,⊥)` rule).
//!   Accepts a run of an observer iff the run describes an acyclic
//!   constraint graph for its trace — which, over all runs, is exactly the
//!   witness condition that implies sequential consistency.
//!
//! Both checkers are *differentially tested* against the whole-graph
//! reference implementations in `scv-graph`: on any descriptor, the
//! streaming verdict must equal "decode, then check globally".

pub mod cycle;
pub mod sc;

pub use cycle::{CycleChecker, CycleError};
pub use sc::{ScChecker, ScError, ScErrorKind, ScVerdict};
