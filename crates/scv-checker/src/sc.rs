//! The full sequential-consistency checker of Theorem 3.1.
//!
//! [`ScChecker`] reads an observer's descriptor stream and accepts iff the
//! stream describes an acyclic constraint graph (§3.1) for its trace — so
//! that, by Lemma 3.1, any topological order of the graph is a serial
//! reordering. It combines, in streaming form:
//!
//! * the cycle check of Lemma 3.3 — here via an incrementally maintained
//!   *reachability closure* over the retained nodes (edge contraction
//!   preserves exactly reachability, so the closure is the canonical form
//!   of the contracted active graph);
//! * constraint 2 — per-processor program order totality, via
//!   `program-edge-in/out` bits plus end-of-string source/sink counting;
//! * constraint 3 — per-block ST order totality, likewise;
//! * constraint 4 — `inheritance-edge-in` bits with label matching;
//! * constraint 5(a) — the `forced-edge-on-path-to` variable: a LD node's
//!   removal is *deferred* until its forced edge to the ST-order successor
//!   of its inheritance source is seen, a later LD of the same processor
//!   inheriting from the same ST supersedes it (the program-order-path
//!   proviso), or — the paper's contraction rule — the forced edge is
//!   inherited through a same-processor node it reaches;
//! * constraint 5(b) — each `LD(P,B,⊥)` needs a forced edge on a
//!   program-order path to the first ST in `B`'s ST order; per
//!   (processor, block) only the most recent `⊥` load is retained.
//!
//! Like the paper's checker, the forced-edge rules are enforced up to
//! *reachability*: every discharged obligation corresponds to a path from
//! the load to the store that must follow it, which is exactly what the
//! serial-reordering extraction needs. The number of retained nodes is
//! bounded by the active-ID space plus the deferred nodes (`p` per pending
//! store plus `p·b` bottom loads), so the checker is finite-state for any
//! fixed protocol parameters.

use scv_descriptor::{Descriptor, IdNum, Symbol};
use scv_graph::EdgeSet;
use scv_types::{Op, OpKind};
use std::collections::BTreeMap;
use std::fmt;

/// A generational handle to a (possibly already finalized) node record.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Handle {
    slot: u32,
    gen: u32,
}

/// Why the checker rejected.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScError {
    /// Symbol index at which the rejection fired; `None` for end-of-string
    /// rejections.
    pub position: Option<usize>,
    /// The violated rule.
    pub kind: ScErrorKind,
}

/// The rule a rejected descriptor violated.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ScErrorKind {
    /// An edge closed a directed cycle: the graph is not acyclic.
    CycleClosed,
    /// An edge referenced an unassigned ID.
    DanglingEdge,
    /// An ID outside `1..=k+1`.
    IdOutOfRange,
    /// A node descriptor without an operation label.
    UnlabeledNode,
    /// An edge descriptor without annotations.
    UnlabeledEdge,
    /// Pathologically many simultaneously retained nodes (sanity cap).
    TooManyRetained,
    /// Constraint 2 violated (program order).
    ProgramOrder(&'static str),
    /// Constraint 3 violated (ST order).
    StOrder(&'static str),
    /// Constraint 4 violated (inheritance).
    Inheritance(&'static str),
    /// Constraint 5(a) violated: a LD's forced edge never materialized.
    ForcedUnsatisfied,
    /// Constraint 5(b) violated: a `⊥` load lacks its forced edge to the
    /// first ST of its block.
    BottomUnsatisfied,
}

impl fmt::Display for ScError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.position {
            Some(p) => write!(f, "rejected at symbol {p}: {:?}", self.kind),
            None => write!(f, "rejected at end of input: {:?}", self.kind),
        }
    }
}

impl std::error::Error for ScError {}

/// Checker verdict with diagnostics.
pub type ScVerdict = Result<(), ScError>;

/// A growable bitset over slot indices (the reachability closure rows).
#[derive(PartialEq, Eq, Debug, Default)]
struct SlotSet(Vec<u64>);

// Manual `Clone` so `clone_from` reuses the word buffer: closure rows are
// copied once per replayed candidate on the lazy expansion path, and the
// derived impl would reallocate each row.
impl Clone for SlotSet {
    fn clone(&self) -> Self {
        SlotSet(self.0.clone())
    }

    fn clone_from(&mut self, source: &Self) {
        self.0.clone_from(&source.0);
    }
}

impl SlotSet {
    #[inline]
    fn get(&self, slot: u32) -> bool {
        let (w, b) = ((slot / 64) as usize, slot % 64);
        self.0.get(w).is_some_and(|x| x & (1 << b) != 0)
    }

    #[inline]
    fn set(&mut self, slot: u32) {
        let (w, b) = ((slot / 64) as usize, slot % 64);
        if self.0.len() <= w {
            self.0.resize(w + 1, 0);
        }
        self.0[w] |= 1 << b;
    }

    #[inline]
    fn clear(&mut self, slot: u32) {
        let (w, b) = ((slot / 64) as usize, slot % 64);
        if let Some(x) = self.0.get_mut(w) {
            *x &= !(1 << b);
        }
    }

    #[inline]
    fn or_with(&mut self, other: &SlotSet) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a |= b;
        }
    }

    fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.0.iter().enumerate().flat_map(|(w, &x)| {
            let mut bits = x;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros();
                bits &= bits - 1;
                Some(w as u32 * 64 + b)
            })
        })
    }
}

/// Where a block's first-in-ST-order store stands.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
enum HeadState {
    /// Unknown so far.
    #[default]
    Unknown,
    /// Confirmed and still retained.
    Alive(Handle),
    /// Confirmed, record already finalized (⊥-load obligations against it
    /// were resolved at confirmation time).
    ConfirmedGone,
}

#[derive(PartialEq, Eq, Debug)]
struct NodeRec {
    gen: u32,
    label: Op,
    /// Monotone birth index; only relative order among retained nodes is
    /// used (the canonical encoding ranks it away).
    birth: u64,
    /// Number of descriptor IDs currently naming this node.
    id_count: u32,
    po_in: bool,
    po_out: bool,
    sto_in: bool,
    sto_out: bool,
    inh_in: bool,
    /// LD: the ST-order successor of the inheritance source — the
    /// `forced-edge-on-path-to` variable of the paper. `None` with
    /// `target_dead` set means the successor exists but was finalized
    /// before the obligation was met (only supersession can save the
    /// node now).
    forced_target: Option<Handle>,
    /// See [`NodeRec::forced_target`].
    target_dead: bool,
    /// LD: the required forced edge has been seen (directly, or inherited
    /// through reachability per the contraction rule).
    forced_done: bool,
    /// LD: the inheritance source is still active with no ST-order
    /// successor yet, so the obligation cannot be evaluated.
    waiting_succ: bool,
    /// A later LD of the same processor covering this node's obligation
    /// (program-order-path proviso of constraint 5).
    superseded: bool,
    /// `⊥` LD: resolved verdict once the block's first store was
    /// confirmed while this node was retained (`None` = still open).
    bot_resolved: Option<bool>,
    /// `⊥` LD: retained stores of the same block this node has forced
    /// edges to (pruned when a target is finalized).
    bot_forced: Vec<Handle>,
    /// ST: next node in ST order, once known (`None` + `succ_dead` if the
    /// successor was finalized).
    sto_succ: Option<Handle>,
    /// See [`NodeRec::sto_succ`].
    succ_dead: bool,
    /// ST: the most recent inheriting LD per processor awaiting this
    /// store's ST-order successor.
    heirs: Vec<(u8, Handle)>,
    /// Targets of this node's *forced* edges (retained nodes only).
    forced_out: Vec<Handle>,
    /// Reachability closure: slot `s` present iff the node in slot `s` is
    /// reachable from this node in the (contracted) witness graph.
    reach: SlotSet,
}

// Manual `Clone` so `clone_from` reuses the record's edge lists and
// closure row. The checker is replayed into scratch copies once per
// candidate transition on the lazy expansion path; with the derived impl
// every replay reallocated `bot_forced`/`heirs`/`forced_out`/`reach` for
// every retained record.
impl Clone for NodeRec {
    fn clone(&self) -> Self {
        NodeRec {
            gen: self.gen,
            label: self.label,
            birth: self.birth,
            id_count: self.id_count,
            po_in: self.po_in,
            po_out: self.po_out,
            sto_in: self.sto_in,
            sto_out: self.sto_out,
            inh_in: self.inh_in,
            forced_target: self.forced_target,
            target_dead: self.target_dead,
            forced_done: self.forced_done,
            waiting_succ: self.waiting_succ,
            superseded: self.superseded,
            bot_resolved: self.bot_resolved,
            bot_forced: self.bot_forced.clone(),
            sto_succ: self.sto_succ,
            succ_dead: self.succ_dead,
            heirs: self.heirs.clone(),
            forced_out: self.forced_out.clone(),
            reach: self.reach.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.gen = source.gen;
        self.label = source.label;
        self.birth = source.birth;
        self.id_count = source.id_count;
        self.po_in = source.po_in;
        self.po_out = source.po_out;
        self.sto_in = source.sto_in;
        self.sto_out = source.sto_out;
        self.inh_in = source.inh_in;
        self.forced_target = source.forced_target;
        self.target_dead = source.target_dead;
        self.forced_done = source.forced_done;
        self.waiting_succ = source.waiting_succ;
        self.superseded = source.superseded;
        self.bot_resolved = source.bot_resolved;
        self.bot_forced.clone_from(&source.bot_forced);
        self.sto_succ = source.sto_succ;
        self.succ_dead = source.succ_dead;
        self.heirs.clone_from(&source.heirs);
        self.forced_out.clone_from(&source.forced_out);
        self.reach.clone_from(&source.reach);
    }
}

impl NodeRec {
    fn is_load(&self) -> bool {
        self.label.kind == OpKind::Load
    }
    fn is_store(&self) -> bool {
        self.label.kind == OpKind::Store
    }
    fn is_bottom_load(&self) -> bool {
        self.is_load() && self.label.value.is_bottom()
    }
}

/// End-of-string tallies for one processor's program order or one block's
/// ST order: how many members lacked an in-edge / out-edge (saturating at
/// 2 — only 0, 1, "many" matter).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
struct OrderTally {
    no_in: u8,
    no_out: u8,
}

impl OrderTally {
    fn bump_in(&mut self) {
        self.no_in = (self.no_in + 1).min(2);
    }
    fn bump_out(&mut self) {
        self.no_out = (self.no_out + 1).min(2);
    }
}

/// Streaming statistics, for the bandwidth experiments of §4.4.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ScStats {
    /// Maximum number of retained (active + deferred) nodes.
    pub max_retained: usize,
    /// Total symbols processed.
    pub symbols: usize,
}

/// The finite-state sequential-consistency checker (Theorem 3.1).
#[derive(PartialEq, Eq, Debug)]
pub struct ScChecker {
    k: u32,
    owner: Vec<Option<Handle>>,
    slots: Vec<Option<NodeRec>>,
    free_slots: Vec<u32>,
    next_gen: u32,
    birth: u64,
    position: usize,
    /// Per-processor program-order tallies.
    proc_tally: BTreeMap<u8, OrderTally>,
    /// Per-block ST-order tallies and head state.
    block_tally: BTreeMap<u8, (OrderTally, HeadState)>,
    /// Most recent `⊥` load per (processor, block).
    last_bot: BTreeMap<(u8, u8), Handle>,
    stats: ScStats,
    rejected: Option<ScError>,
}

// Manual `Clone` so `clone_from` reuses the target's allocations
// field-by-field. Lazy expansion replays candidate transitions into a
// scratch checker via `clone_from` on the model checker's hot path; the
// derived impl reallocates `slots`/`owner` and all three maps per replay.
impl Clone for ScChecker {
    fn clone(&self) -> Self {
        ScChecker {
            k: self.k,
            owner: self.owner.clone(),
            slots: self.slots.clone(),
            free_slots: self.free_slots.clone(),
            next_gen: self.next_gen,
            birth: self.birth,
            position: self.position,
            proc_tally: self.proc_tally.clone(),
            block_tally: self.block_tally.clone(),
            last_bot: self.last_bot.clone(),
            stats: self.stats,
            rejected: self.rejected.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.k = source.k;
        self.owner.clone_from(&source.owner);
        self.slots.clone_from(&source.slots);
        self.free_slots.clone_from(&source.free_slots);
        self.next_gen = source.next_gen;
        self.birth = source.birth;
        self.position = source.position;
        self.proc_tally.clone_from(&source.proc_tally);
        self.block_tally.clone_from(&source.block_tally);
        self.last_bot.clone_from(&source.last_bot);
        self.stats = source.stats;
        self.rejected = source.rejected.clone();
    }
}

impl ScChecker {
    /// A checker for *k*-graph descriptors.
    pub fn new(k: u32) -> Self {
        ScChecker {
            k,
            owner: vec![None; (k + 1) as usize],
            slots: Vec::new(),
            free_slots: Vec::new(),
            next_gen: 1,
            birth: 0,
            position: 0,
            proc_tally: BTreeMap::new(),
            block_tally: BTreeMap::new(),
            last_bot: BTreeMap::new(),
            stats: ScStats::default(),
            rejected: None,
        }
    }

    /// The bandwidth parameter.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Streaming statistics so far.
    pub fn stats(&self) -> ScStats {
        self.stats
    }

    /// Number of currently retained (active + deferred) nodes.
    pub fn retained_count(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Has the checker already rejected?
    pub fn is_rejected(&self) -> bool {
        self.rejected.is_some()
    }

    /// Run the checker over a whole descriptor.
    pub fn check(d: &Descriptor) -> ScVerdict {
        let mut c = ScChecker::new(d.k);
        for s in &d.symbols {
            c.step(s)?;
        }
        c.finish()
    }

    /// Process one symbol. Once an error is returned the checker stays
    /// rejected (subsequent calls return the same error).
    pub fn step(&mut self, sym: &Symbol) -> ScVerdict {
        if let Some(e) = &self.rejected {
            return Err(e.clone());
        }
        let pos = self.position;
        self.position += 1;
        self.stats.symbols += 1;
        if scv_telemetry::enabled() {
            scv_telemetry::add(scv_telemetry::Metric::CheckerSymbols, 1);
            if matches!(sym, Symbol::Edge { .. }) {
                scv_telemetry::add(scv_telemetry::Metric::CheckerEdges, 1);
            }
        }
        let result = self.step_inner(sym, pos);
        if let Err(e) = &result {
            self.rejected = Some(e.clone());
            if scv_telemetry::recorder_enabled() {
                scv_telemetry::recorder::instant(
                    scv_telemetry::recorder::InstantKind::CheckerReject,
                    pos as u64,
                );
            }
        }
        self.stats.max_retained = self.stats.max_retained.max(self.retained_count());
        result
    }

    fn step_inner(&mut self, sym: &Symbol, pos: usize) -> ScVerdict {
        let reject = |kind: ScErrorKind| {
            Err(ScError {
                position: Some(pos),
                kind,
            })
        };
        let in_range = |id: IdNum| id >= 1 && id <= self.k + 1;
        if !in_range(sym.min_id()) || !in_range(sym.max_id()) {
            return reject(ScErrorKind::IdOutOfRange);
        }
        match *sym {
            Symbol::Node { id, label } => {
                let Some(op) = label else {
                    return reject(ScErrorKind::UnlabeledNode);
                };
                self.retire_id(id)?;
                let h = self.alloc_node(op, pos)?;
                self.owner[(id - 1) as usize] = Some(h);
                self.rec_mut(h).id_count = 1;
                self.on_node_created(h, op);
                Ok(())
            }
            Symbol::AddId { of, add } => {
                if of == add {
                    return Ok(());
                }
                self.retire_id(add)?;
                if let Some(h) = self.owner[(of - 1) as usize] {
                    self.owner[(add - 1) as usize] = Some(h);
                    self.rec_mut(h).id_count += 1;
                }
                Ok(())
            }
            Symbol::Edge { from, to, label } => {
                let (Some(u), Some(v)) = (
                    self.owner[(from - 1) as usize],
                    self.owner[(to - 1) as usize],
                ) else {
                    return reject(ScErrorKind::DanglingEdge);
                };
                let Some(ann) = label.filter(|a| !a.is_empty()) else {
                    return reject(ScErrorKind::UnlabeledEdge);
                };
                if u == v || self.reaches(v, u) {
                    return reject(ScErrorKind::CycleClosed);
                }
                self.add_reach(u, v);
                self.apply_annotations(u, v, ann, pos)
            }
        }
    }

    /// End of input: run the end-of-string checks of Theorem 3.1.
    pub fn finish(self) -> ScVerdict {
        self.check_end()
    }

    /// The end-of-string checks of Theorem 3.1, *without* consuming the
    /// checker — traces are prefix-closed, so callers (the model checker's
    /// prefix-closure probe in particular) may ask "would this be a valid
    /// run end?" at any point and keep streaming afterwards.
    pub fn check_end(&self) -> ScVerdict {
        if let Some(e) = &self.rejected {
            return Err(e.clone());
        }
        let reject = |kind: ScErrorKind| {
            Err(ScError {
                position: None,
                kind,
            })
        };

        // Fold retained nodes into copies of the order tallies.
        let retained: Vec<Handle> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(s, r)| {
                r.as_ref().map(|r| Handle {
                    slot: s as u32,
                    gen: r.gen,
                })
            })
            .collect();
        let mut proc_tally = self.proc_tally.clone();
        let mut block_tally = self.block_tally.clone();
        for &h in &retained {
            let r = self.rec(h);
            let t = proc_tally.entry(r.label.proc.0).or_default();
            if !r.po_in {
                t.bump_in();
            }
            if !r.po_out {
                t.bump_out();
            }
            if r.is_store() {
                let (t, head) = block_tally
                    .entry(r.label.block.0)
                    .or_insert((OrderTally::default(), HeadState::Unknown));
                if !r.sto_in {
                    t.bump_in();
                    if *head == HeadState::Unknown {
                        *head = HeadState::Alive(h);
                    }
                }
                if !r.sto_out {
                    t.bump_out();
                }
            }
        }

        // Constraints 2 / 3: exactly one source and one sink per processor
        // and per block-with-stores (cycles were rejected eagerly, so this
        // forces a single chain).
        for t in proc_tally.values() {
            if t.no_in != 1 || t.no_out != 1 {
                return reject(ScErrorKind::ProgramOrder("order is not a single chain"));
            }
        }
        for (t, _) in block_tally.values() {
            if t.no_in != 1 || t.no_out != 1 {
                return reject(ScErrorKind::StOrder("order is not a single chain"));
            }
        }

        // Constraints 4 and 5 for retained nodes.
        for &h in &retained {
            let r = self.rec(h);
            if r.is_load() && !r.is_bottom_load() {
                if !r.inh_in {
                    return reject(ScErrorKind::Inheritance("load never inherited a value"));
                }
                // `waiting_succ` at end of string: the source never got an
                // ST-order successor (it is last in its block's validated
                // order) — vacuous. Otherwise the forced edge must have
                // been seen, or the load superseded.
                if !r.superseded
                    && !r.waiting_succ
                    && (r.forced_target.is_some() || r.target_dead)
                    && !r.forced_done
                {
                    return reject(ScErrorKind::ForcedUnsatisfied);
                }
            }
            if r.is_bottom_load() && !r.superseded {
                let block = r.label.block.0;
                let ok = match block_tally.get(&block) {
                    None => true, // no stores to the block: vacuous
                    Some((_, HeadState::Alive(head))) => r.bot_forced.contains(head),
                    Some((_, HeadState::ConfirmedGone)) => r.bot_resolved == Some(true),
                    Some((_, HeadState::Unknown)) => {
                        unreachable!("tally passed: chain head exists")
                    }
                };
                if !ok {
                    return reject(ScErrorKind::BottomUnsatisfied);
                }
            }
        }
        Ok(())
    }

    /// A canonical encoding of the checker state, independent of absolute
    /// birth/generation counters, slot arrangement, and — through `ids` —
    /// of the arbitrary identities of auxiliary descriptor IDs. The same
    /// [`scv_descriptor::IdCanon`] must be threaded through the paired
    /// observer's encoding *first*, so the renaming is consistent across
    /// the product state. Two checkers with the same encoding accept
    /// exactly the same future symbol streams up to that renaming.
    pub fn canonical_encoding(&self, out: &mut Vec<u64>, ids: &mut scv_descriptor::IdCanon<'_>) {
        self.encode_canonical(out, ids, None);
    }

    /// Stream [`ScChecker::canonical_encoding`] (optionally renamed
    /// through `view`) into an arbitrary [`scv_descriptor::EncSink`] —
    /// e.g. an incremental lexicographic comparator that aborts the walk
    /// at the first losing word during orbit-minimum canonicalization.
    pub fn canonical_encoding_into<S: scv_descriptor::EncSink>(
        &self,
        out: &mut S,
        ids: &mut scv_descriptor::IdCanon<'_>,
        view: Option<&scv_descriptor::SymView<'_>>,
    ) {
        self.encode_canonical(out, ids, view);
    }

    /// [`ScChecker::canonical_encoding`] as it would read after renaming
    /// every processor/block/value identity through `view` — emits exactly
    /// the sequence the renamed checker would emit. `ids` must be the same
    /// [`scv_descriptor::IdCanon`] (built with
    /// [`scv_descriptor::IdCanon::with_locs`]) already threaded through the
    /// paired observer's view encoding.
    pub fn canonical_encoding_with(
        &self,
        out: &mut Vec<u64>,
        ids: &mut scv_descriptor::IdCanon<'_>,
        view: &scv_descriptor::SymView<'_>,
    ) {
        self.encode_canonical(out, ids, Some(view));
    }

    fn encode_canonical<S: scv_descriptor::EncSink>(
        &self,
        out: &mut S,
        ids: &mut scv_descriptor::IdCanon<'_>,
        view: Option<&scv_descriptor::SymView<'_>>,
    ) {
        use scv_types::{BlockId, ProcId, Value};
        // Abort the walk the moment the sink refuses a word (see
        // `EncSink::word`); partial output is discarded by the sink.
        macro_rules! emit {
            ($w:expr) => {
                if !out.word($w) {
                    return;
                }
            };
        }
        macro_rules! emit_all {
            ($ws:expr) => {
                if !out.words($ws) {
                    return;
                }
            };
        }
        // Identity renamings for labels/tallies; the sorts below restore
        // the renamed structure's emission order.
        let re_p = |p: u8| view.map_or(p, |v| v.perm.proc(ProcId(p)).0);
        let re_b = |b: u8| view.map_or(b, |v| v.perm.block(BlockId(b)).0);
        let re_v = |val: u64| match view {
            // ⊥ (0) and the discharged-load sentinel (0xFF) are fixed.
            Some(v) if val != 0 && val != 0xFF => v.perm.value(Value(val as u8)).0 as u64,
            _ => val,
        };
        let mut retained: Vec<(u64, Handle)> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(s, r)| {
                r.as_ref().map(|r| {
                    (
                        r.birth,
                        Handle {
                            slot: s as u32,
                            gen: r.gen,
                        },
                    )
                })
            })
            .collect();
        retained.sort_unstable_by_key(|&(b, _)| b);
        // Rank table indexed directly by slot: each live slot holds at
        // most one retained handle, so this replaces two hash maps on a
        // path the model checker hits per sealed candidate. The
        // generation rides along to catch tokens referencing a stale
        // handle (which the old `rank[&h]` indexing would have caught by
        // panicking).
        let mut rank_by_slot: Vec<(u32, u64)> = vec![(0, u64::MAX); self.slots.len()];
        for (i, &(_, h)) in retained.iter().enumerate() {
            rank_by_slot[h.slot as usize] = (h.gen, i as u64);
        }
        let tok = |h: Option<Handle>| -> u64 {
            h.map_or(u64::MAX, |h| {
                let (gen, r) = rank_by_slot[h.slot as usize];
                debug_assert!(
                    r != u64::MAX && gen == h.gen,
                    "token references a non-retained handle"
                );
                r
            })
        };
        emit!(retained.len() as u64);
        // Owner table keyed by canonical ID (location IDs are fixed
        // points; auxiliary IDs were renamed by the observer's encoding).
        let mut owners: Vec<(u64, u64)> = self
            .owner
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.map(|h| (i as u32 + 1, h)))
            .map(|(id, h)| (ids.canon(id), tok(Some(h))))
            .collect();
        owners.sort_unstable();
        emit!(owners.len() as u64);
        for (id, t) in owners {
            emit!(id);
            emit!(t);
        }
        // Per-record emission buffers, reused across the record walk.
        let mut bf: Vec<u64> = Vec::new();
        let mut heirs: Vec<(u8, u64)> = Vec::new();
        let mut fo: Vec<u64> = Vec::new();
        let mut reach_ranks: Vec<u64> = Vec::new();
        for &(_, h) in &retained {
            let r = self.rec(h);
            // A load's value is never read again once its inheritance bit
            // is set (future inh edges are rejected on that bit before any
            // label comparison), so it is erased to a sentinel — loads
            // that already inherited differ only structurally.
            let value = if r.is_load() && !r.label.value.is_bottom() && r.inh_in {
                0xFFu64
            } else {
                r.label.value.0 as u64
            };
            emit!(
                (re_p(r.label.proc.0) as u64) << 24
                    | (re_b(r.label.block.0) as u64) << 16
                    | re_v(value) << 8
                    | r.is_store() as u64
            );
            emit!(
                (r.id_count as u64) << 16
                    | (r.po_in as u64)
                    | (r.po_out as u64) << 1
                    | (r.sto_in as u64) << 2
                    | (r.sto_out as u64) << 3
                    | (r.inh_in as u64) << 4
                    | (r.forced_done as u64) << 5
                    | (r.waiting_succ as u64) << 6
                    | (r.superseded as u64) << 7
                    | (r.target_dead as u64) << 8
                    | (r.succ_dead as u64) << 9
                    | (match r.bot_resolved {
                        None => 0u64,
                        Some(false) => 1,
                        Some(true) => 2,
                    }) << 10
            );
            emit!(tok(r.forced_target));
            emit!(tok(r.sto_succ));
            bf.clear();
            bf.extend(r.bot_forced.iter().map(|&x| tok(Some(x))));
            bf.sort_unstable();
            emit!(bf.len() as u64);
            emit_all!(&bf);
            heirs.clear();
            heirs.extend(r.heirs.iter().map(|&(p, x)| (re_p(p), tok(Some(x)))));
            heirs.sort_unstable();
            emit!(heirs.len() as u64);
            for &(p, x) in &heirs {
                emit!((p as u64) << 32 | x);
            }
            fo.clear();
            fo.extend(r.forced_out.iter().map(|&x| tok(Some(x))));
            fo.sort_unstable();
            emit!(fo.len() as u64);
            emit_all!(&fo);
            // Reachability closure as a rank set (slots retained under any
            // generation, exactly as the old slot-keyed map behaved).
            reach_ranks.clear();
            reach_ranks.extend(r.reach.iter().filter_map(|s| {
                let (_, rr) = rank_by_slot[s as usize];
                (rr != u64::MAX).then_some(rr)
            }));
            reach_ranks.sort_unstable();
            emit!(reach_ranks.len() as u64);
            emit_all!(&reach_ranks);
        }
        // Tallies are keyed by processor/block number: rename the keys and
        // re-sort so emission order matches the renamed BTreeMaps.
        let mut ptally: Vec<u64> = self
            .proc_tally
            .iter()
            .map(|(p, t)| (re_p(*p) as u64) << 16 | (t.no_in as u64) << 8 | t.no_out as u64)
            .collect();
        ptally.sort_unstable();
        emit_all!(&ptally);
        let mut btally: Vec<(u64, u64)> = self
            .block_tally
            .iter()
            .map(|(b, (t, head))| {
                (
                    (re_b(*b) as u64) << 16 | (t.no_in as u64) << 8 | t.no_out as u64,
                    match head {
                        HeadState::Unknown => u64::MAX,
                        HeadState::ConfirmedGone => u64::MAX - 1,
                        HeadState::Alive(h) => tok(Some(*h)),
                    },
                )
            })
            .collect();
        btally.sort_unstable();
        for (t, head) in btally {
            emit!(t);
            emit!(head);
        }
        let mut bots: Vec<(u64, u64)> = self
            .last_bot
            .iter()
            .map(|(&(p, b), h)| ((re_p(p) as u64) << 8 | re_b(b) as u64, tok(Some(*h))))
            .collect();
        bots.sort_unstable();
        for (k, t) in bots {
            emit!(k);
            emit!(t);
        }
        emit!(self.rejected.is_some() as u64);
    }

    // ----- node lifecycle -------------------------------------------------

    fn alloc_node(&mut self, op: Op, pos: usize) -> Result<Handle, ScError> {
        let gen = self.next_gen;
        self.next_gen += 1;
        let birth = self.birth;
        self.birth += 1;
        let rec = NodeRec {
            gen,
            label: op,
            birth,
            id_count: 0,
            po_in: false,
            po_out: false,
            sto_in: false,
            sto_out: false,
            inh_in: false,
            forced_target: None,
            target_dead: false,
            forced_done: false,
            waiting_succ: false,
            superseded: false,
            bot_resolved: None,
            bot_forced: Vec::new(),
            sto_succ: None,
            succ_dead: false,
            heirs: Vec::new(),
            forced_out: Vec::new(),
            reach: SlotSet::default(),
        };
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(rec);
                s
            }
            None => {
                // Sanity cap against adversarial streams that never let
                // anything finalize; real observers retain O(L + pb).
                if self.slots.len() >= 4096 {
                    return Err(ScError {
                        position: Some(pos),
                        kind: ScErrorKind::TooManyRetained,
                    });
                }
                self.slots.push(Some(rec));
                (self.slots.len() - 1) as u32
            }
        };
        Ok(Handle { slot, gen })
    }

    fn on_node_created(&mut self, h: Handle, op: Op) {
        self.proc_tally.entry(op.proc.0).or_default();
        if op.is_store() {
            self.block_tally
                .entry(op.block.0)
                .or_insert((OrderTally::default(), HeadState::Unknown));
        }
        if op.is_load() && op.value.is_bottom() {
            // Supersede the previous ⊥ load of this (processor, block).
            let key = (op.proc.0, op.block.0);
            if let Some(prev) = self.last_bot.insert(key, h) {
                if self.rec_opt(prev).is_some() {
                    self.rec_mut(prev).superseded = true;
                    self.try_finalize(prev);
                }
            }
        }
    }

    fn rec(&self, h: Handle) -> &NodeRec {
        let r = self.slots[h.slot as usize].as_ref().expect("live handle");
        debug_assert_eq!(r.gen, h.gen, "stale handle");
        r
    }

    fn rec_mut(&mut self, h: Handle) -> &mut NodeRec {
        let r = self.slots[h.slot as usize].as_mut().expect("live handle");
        debug_assert_eq!(r.gen, h.gen, "stale handle");
        r
    }

    /// Like [`Self::rec`] but `None` for finalized handles.
    fn rec_opt(&self, h: Handle) -> Option<&NodeRec> {
        self.slots[h.slot as usize]
            .as_ref()
            .filter(|r| r.gen == h.gen)
    }

    /// Drop ID `id`; if its owner lost its last ID, run the deactivation
    /// checks and possibly finalize it.
    fn retire_id(&mut self, id: IdNum) -> ScVerdict {
        let Some(h) = self.owner[(id - 1) as usize].take() else {
            return Ok(());
        };
        let r = self.rec_mut(h);
        r.id_count -= 1;
        if r.id_count > 0 {
            return Ok(());
        }
        self.deactivate(h)
    }

    /// A node lost its last ID: per the paper, reject a non-⊥ load removed
    /// without inheritance; release waiting heirs of a store (its ST-order
    /// successor can no longer appear); then finalize unless deferred.
    fn deactivate(&mut self, h: Handle) -> ScVerdict {
        let (is_ld, is_bot, inh_in) = {
            let r = self.rec(h);
            (r.is_load(), r.is_bottom_load(), r.inh_in)
        };
        if is_ld && !is_bot && !inh_in {
            return Err(ScError {
                position: Some(self.position.saturating_sub(1)),
                kind: ScErrorKind::Inheritance("load removed without inheritance edge"),
            });
        }
        if self.rec(h).is_store() {
            let heirs = std::mem::take(&mut self.rec_mut(h).heirs);
            for (_, j) in heirs {
                if self.rec_opt(j).is_some() {
                    self.rec_mut(j).waiting_succ = false;
                    self.try_finalize(j);
                }
            }
        }
        self.try_finalize(h);
        Ok(())
    }

    /// Finalize `h` if it is inactive and has no pending obligations:
    /// tally its order bits, propagate its forced edges per the
    /// contraction rule, scrub references to it, and drop the record.
    fn try_finalize(&mut self, h: Handle) {
        let Some(r) = self.rec_opt(h) else { return };
        if r.id_count > 0 {
            return;
        }
        let pending = if r.is_bottom_load() {
            !r.superseded && r.bot_resolved != Some(true)
        } else if r.is_load() {
            !r.superseded
                && (r.waiting_succ
                    || ((r.forced_target.is_some() || r.target_dead) && !r.forced_done))
        } else {
            false
        };
        if pending {
            return;
        }

        let r = self.rec(h).clone();

        // Tally order bits (the "counted when removed from the active
        // graph" step of the paper's checker).
        let t = self.proc_tally.entry(r.label.proc.0).or_default();
        if !r.po_in {
            t.bump_in();
        }
        if !r.po_out {
            t.bump_out();
        }
        if r.is_store() {
            let mut confirm_head = false;
            {
                let (t, head) = self
                    .block_tally
                    .entry(r.label.block.0)
                    .or_insert((OrderTally::default(), HeadState::Unknown));
                if !r.sto_in {
                    t.bump_in();
                    // No future in-edge can arrive: this is the confirmed
                    // head of the block's ST order.
                    if *head == HeadState::Unknown {
                        *head = HeadState::ConfirmedGone;
                        confirm_head = true;
                    }
                }
                if !r.sto_out {
                    t.bump_out();
                }
            }
            if confirm_head {
                // Resolve the ⊥-load obligations against the head now,
                // before the record disappears.
                let block = r.label.block.0;
                let loads: Vec<Handle> = self
                    .slots
                    .iter()
                    .enumerate()
                    .filter_map(|(s, n)| {
                        n.as_ref().map(|n| {
                            (
                                Handle {
                                    slot: s as u32,
                                    gen: n.gen,
                                },
                                n,
                            )
                        })
                    })
                    .filter(|(_, n)| n.is_bottom_load() && n.label.block.0 == block)
                    .map(|(x, _)| x)
                    .collect();
                for j in loads {
                    let sat = self.rec(j).bot_forced.contains(&h);
                    self.rec_mut(j).bot_resolved = Some(sat);
                }
            }
        }

        // The paper's contraction rule, in reachability form: every
        // retained same-processor node that reaches `h` inherits `h`'s
        // forced edges.
        if !r.forced_out.is_empty() {
            let preds: Vec<Handle> = self
                .slots
                .iter()
                .enumerate()
                .filter_map(|(s, n)| {
                    n.as_ref().map(|n| {
                        (
                            Handle {
                                slot: s as u32,
                                gen: n.gen,
                            },
                            n,
                        )
                    })
                })
                .filter(|(x, n)| *x != h && n.label.proc == r.label.proc && n.reach.get(h.slot))
                .map(|(x, _)| x)
                .collect();
            for g in preds {
                for &j in &r.forced_out {
                    if self.rec_opt(j).is_some() {
                        self.note_forced(g, j);
                    }
                }
            }
        }

        // Scrub references to the dying node from the retained set.
        for s in 0..self.slots.len() {
            let Some(n) = self.slots[s].as_mut() else {
                continue;
            };
            n.reach.clear(h.slot);
            if n.sto_succ == Some(h) {
                n.sto_succ = None;
                n.succ_dead = true;
            }
            if n.forced_target == Some(h) {
                n.forced_target = None;
                n.target_dead = true;
            }
            n.bot_forced.retain(|&x| x != h);
            n.forced_out.retain(|&x| x != h);
            n.heirs.retain(|&(_, x)| x != h);
        }
        self.slots[h.slot as usize] = None;
        self.free_slots.push(h.slot);
    }

    // ----- reachability ----------------------------------------------------

    /// Record the edge `u -> v` in the reachability closure.
    fn add_reach(&mut self, u: Handle, v: Handle) {
        debug_assert!(u != v);
        let mut add = self.rec(v).reach.clone();
        add.set(v.slot);
        for s in 0..self.slots.len() {
            let Some(n) = self.slots[s].as_mut() else {
                continue;
            };
            if s as u32 == u.slot || n.reach.get(u.slot) {
                n.reach.or_with(&add);
            }
        }
    }

    /// Is `to` reachable from `from`?
    fn reaches(&self, from: Handle, to: Handle) -> bool {
        self.rec(from).reach.get(to.slot)
    }

    // ----- annotation handling ---------------------------------------------

    fn apply_annotations(&mut self, u: Handle, v: Handle, ann: EdgeSet, pos: usize) -> ScVerdict {
        let reject = |kind: ScErrorKind| {
            Err(ScError {
                position: Some(pos),
                kind,
            })
        };

        if ann.contains(EdgeSet::PO) {
            let (lu, lv, bu, bv) = {
                let (ru, rv) = (self.rec(u), self.rec(v));
                (ru.label, rv.label, ru.birth, rv.birth)
            };
            if lu.proc != lv.proc {
                return reject(ScErrorKind::ProgramOrder("edge joins different processors"));
            }
            if bu >= bv {
                return reject(ScErrorKind::ProgramOrder("edge contradicts trace order"));
            }
            if self.rec(u).po_out {
                return reject(ScErrorKind::ProgramOrder("two program-order successors"));
            }
            if self.rec(v).po_in {
                return reject(ScErrorKind::ProgramOrder("two program-order predecessors"));
            }
            self.rec_mut(u).po_out = true;
            self.rec_mut(v).po_in = true;
        }

        if ann.contains(EdgeSet::STO) {
            let (lu, lv) = (self.rec(u).label, self.rec(v).label);
            if !lu.is_store() || !lv.is_store() || lu.block != lv.block {
                return reject(ScErrorKind::StOrder("edge is not between STs to one block"));
            }
            if self.rec(u).sto_out {
                return reject(ScErrorKind::StOrder("two ST-order successors"));
            }
            if self.rec(v).sto_in {
                return reject(ScErrorKind::StOrder("two ST-order predecessors"));
            }
            self.rec_mut(u).sto_out = true;
            self.rec_mut(v).sto_in = true;
            self.rec_mut(u).sto_succ = Some(v);
            // Initialize forced-edge-on-path-to for every waiting heir.
            // The heirs stay registered: a later load inheriting from `u`
            // may still supersede them (program-order-path proviso).
            let heirs = self.rec(u).heirs.clone();
            for (_, j) in &heirs {
                let j = *j;
                if self.rec_opt(j).is_none() {
                    continue;
                }
                let already_forced = self.rec(j).forced_out.contains(&v);
                {
                    let rj = self.rec_mut(j);
                    rj.forced_target = Some(v);
                    rj.waiting_succ = false;
                    if already_forced {
                        rj.forced_done = true;
                    }
                }
                self.try_finalize(j);
            }
        }

        if ann.contains(EdgeSet::INH) {
            let (lu, lv) = (self.rec(u).label, self.rec(v).label);
            if !lu.is_store() || !lv.is_load() || lv.value.is_bottom() {
                return reject(ScErrorKind::Inheritance(
                    "inheritance must run from a ST to a non-⊥ LD",
                ));
            }
            if lu.block != lv.block || lu.value != lv.value {
                return reject(ScErrorKind::Inheritance("source does not match load"));
            }
            if self.rec(v).inh_in {
                return reject(ScErrorKind::Inheritance("two inheritance edges"));
            }
            self.rec_mut(v).inh_in = true;
            let (succ, succ_dead) = {
                let ru = self.rec(u);
                (ru.sto_succ, ru.succ_dead)
            };
            match succ {
                Some(k) => {
                    let already_forced = self.rec(v).forced_out.contains(&k);
                    let rv = self.rec_mut(v);
                    rv.forced_target = Some(k);
                    if already_forced {
                        rv.forced_done = true;
                    }
                }
                None if succ_dead => {
                    // The successor exists but was finalized: the forced
                    // edge can no longer be expressed. Only supersession
                    // can discharge this load now.
                    self.rec_mut(v).target_dead = true;
                }
                None => {
                    self.rec_mut(v).waiting_succ = true;
                }
            }
            // Register v as the newest heir of u for its processor,
            // superseding any previous one (whether or not the ST-order
            // successor is already known): a forced edge from the latest
            // inheritor covers earlier ones via the program-order path.
            let proc = lv.proc.0;
            let prev = {
                let ru = self.rec_mut(u);
                let prev = ru
                    .heirs
                    .iter()
                    .position(|(p, _)| *p == proc)
                    .map(|i| ru.heirs.remove(i).1);
                ru.heirs.push((proc, v));
                prev
            };
            if let Some(prev) = prev {
                if self.rec_opt(prev).is_some() && prev != v {
                    self.rec_mut(prev).superseded = true;
                    self.try_finalize(prev);
                }
            }
        }

        if ann.contains(EdgeSet::FORCED) {
            self.note_forced(u, v);
        }
        Ok(())
    }

    /// A forced edge `u -> v` exists (read from the input, or inherited
    /// through the contraction rule): discharge matching obligations on
    /// `u`.
    fn note_forced(&mut self, u: Handle, v: Handle) {
        {
            let ru = self.rec_mut(u);
            if !ru.forced_out.contains(&v) {
                ru.forced_out.push(v);
            }
            if ru.forced_target == Some(v) {
                ru.forced_done = true;
            }
        }
        if self.rec(u).is_bottom_load() {
            let (is_st, same_block) = {
                match self.rec_opt(v) {
                    Some(rv) => (rv.is_store(), rv.label.block == self.rec(u).label.block),
                    None => (false, false),
                }
            };
            if is_st && same_block && !self.rec(u).bot_forced.contains(&v) {
                self.rec_mut(u).bot_forced.push(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scv_descriptor::{encode, naive_descriptor};
    use scv_graph::{graph_from_serial_reordering, saturated_graph, ConstraintGraph, Witness};
    use scv_types::{BlockId, Op, ProcId, Reordering, Trace, Value};

    fn st(p: u8, b: u8, v: u8) -> Op {
        Op::store(ProcId(p), BlockId(b), Value(v))
    }
    fn ld(p: u8, b: u8, v: u8) -> Op {
        Op::load(ProcId(p), BlockId(b), Value(v))
    }
    fn ldb(p: u8, b: u8) -> Op {
        Op::load(ProcId(p), BlockId(b), Value::BOTTOM)
    }

    fn figure3_trace() -> Trace {
        Trace::from_ops([
            st(1, 1, 1),
            ld(2, 1, 1),
            st(1, 1, 2),
            ld(2, 1, 1),
            ld(2, 1, 2),
        ])
    }

    /// The paper's hand-written 3-bandwidth descriptor for Figure 3.
    fn figure3_descriptor() -> Descriptor {
        let mut d = Descriptor::new(3);
        d.symbols = vec![
            Symbol::node(1, st(1, 1, 1)),
            Symbol::node(2, ld(2, 1, 1)),
            Symbol::edge(1, 2, EdgeSet::INH),
            Symbol::node(3, st(1, 1, 2)),
            Symbol::edge(1, 3, EdgeSet::PO_STO),
            Symbol::node(4, ld(2, 1, 1)),
            Symbol::edge(1, 4, EdgeSet::INH),
            Symbol::edge(2, 4, EdgeSet::PO),
            Symbol::edge(4, 3, EdgeSet::FORCED),
            Symbol::node(1, ld(2, 1, 2)),
            Symbol::edge(3, 1, EdgeSet::INH),
            Symbol::edge(4, 1, EdgeSet::PO),
        ];
        d
    }

    #[test]
    fn accepts_figure3_descriptor() {
        assert_eq!(ScChecker::check(&figure3_descriptor()), Ok(()));
    }

    #[test]
    fn accepts_saturated_witness_graphs() {
        let t = figure3_trace();
        let r = Reordering::new(vec![0, 1, 3, 2, 4]);
        let w = Witness::from_serial_reordering(&t, &r);
        let g = saturated_graph(&t, &w);
        let d = naive_descriptor(&g);
        assert_eq!(ScChecker::check(&d), Ok(()));
        let d = encode(&g, g.bandwidth() as u32).unwrap();
        assert_eq!(ScChecker::check(&d), Ok(()));
    }

    #[test]
    fn rejects_missing_forced_edge() {
        // Figure 3's descriptor without the forced edge (4,3): node 4's
        // obligation (triple ST1, LD4, ST3) is never met.
        let mut d = figure3_descriptor();
        d.symbols
            .retain(|s| !matches!(s, Symbol::Edge { from: 4, to: 3, .. }));
        let err = ScChecker::check(&d).unwrap_err();
        assert_eq!(err.kind, ScErrorKind::ForcedUnsatisfied);
    }

    #[test]
    fn rejects_missing_inheritance_at_recycle() {
        // A LD is recycled before any inheritance edge reaches it.
        let mut d = Descriptor::new(2);
        d.symbols = vec![
            Symbol::node(1, st(1, 1, 1)),
            Symbol::node(2, ld(2, 1, 1)),
            Symbol::node(2, ld(2, 1, 1)), // recycles the first LD: reject
        ];
        let err = ScChecker::check(&d).unwrap_err();
        assert!(matches!(err.kind, ScErrorKind::Inheritance(_)));
    }

    #[test]
    fn rejects_missing_inheritance_at_end() {
        let mut d = Descriptor::new(2);
        d.symbols = vec![Symbol::node(1, st(1, 1, 1)), Symbol::node(2, ld(2, 1, 1))];
        let err = ScChecker::check(&d).unwrap_err();
        assert!(matches!(err.kind, ScErrorKind::Inheritance(_)));
        assert_eq!(err.position, None);
    }

    #[test]
    fn rejects_value_mismatched_inheritance() {
        let mut d = Descriptor::new(2);
        d.symbols = vec![
            Symbol::node(1, st(1, 1, 1)),
            Symbol::node(2, ld(2, 1, 2)),
            Symbol::edge(1, 2, EdgeSet::INH),
        ];
        let err = ScChecker::check(&d).unwrap_err();
        assert!(matches!(err.kind, ScErrorKind::Inheritance(_)));
    }

    #[test]
    fn rejects_double_inheritance() {
        let mut d = Descriptor::new(3);
        d.symbols = vec![
            Symbol::node(1, st(1, 1, 1)),
            Symbol::node(2, st(2, 1, 1)),
            Symbol::edge(1, 2, EdgeSet::STO),
            Symbol::node(3, ld(1, 1, 1)),
            Symbol::edge(1, 3, EdgeSet::PO_INH),
            Symbol::edge(2, 3, EdgeSet::INH),
        ];
        let err = ScChecker::check(&d).unwrap_err();
        assert!(matches!(err.kind, ScErrorKind::Inheritance(_)));
    }

    #[test]
    fn rejects_cycle() {
        let mut d = Descriptor::new(2);
        d.symbols = vec![
            Symbol::node(1, st(1, 1, 1)),
            Symbol::node(2, st(2, 1, 2)),
            Symbol::edge(1, 2, EdgeSet::STO),
            Symbol::edge(2, 1, EdgeSet::FORCED),
        ];
        let err = ScChecker::check(&d).unwrap_err();
        assert_eq!(err.kind, ScErrorKind::CycleClosed);
        assert_eq!(err.position, Some(3));
    }

    #[test]
    fn rejects_po_out_of_trace_order() {
        let mut d = Descriptor::new(2);
        d.symbols = vec![
            Symbol::node(1, st(1, 1, 1)),
            Symbol::node(2, st(1, 1, 2)),
            Symbol::edge(2, 1, EdgeSet::PO), // backwards
        ];
        let err = ScChecker::check(&d).unwrap_err();
        assert!(matches!(err.kind, ScErrorKind::ProgramOrder(_)));
    }

    #[test]
    fn rejects_missing_po_edge_at_end() {
        let mut d = Descriptor::new(2);
        d.symbols = vec![
            Symbol::node(1, st(1, 1, 1)),
            Symbol::node(2, st(1, 1, 2)),
            Symbol::edge(1, 2, EdgeSet::STO), // po missing
        ];
        let err = ScChecker::check(&d).unwrap_err();
        assert!(matches!(err.kind, ScErrorKind::ProgramOrder(_)));
        assert_eq!(err.position, None);
    }

    #[test]
    fn rejects_cross_processor_po() {
        let mut d = Descriptor::new(2);
        d.symbols = vec![
            Symbol::node(1, st(1, 1, 1)),
            Symbol::node(2, st(2, 1, 2)),
            Symbol::edge(1, 2, EdgeSet::PO),
        ];
        let err = ScChecker::check(&d).unwrap_err();
        assert!(matches!(err.kind, ScErrorKind::ProgramOrder(_)));
    }

    #[test]
    fn rejects_split_st_order() {
        // Three stores to one block, but only one STo edge: not a chain.
        let mut d = Descriptor::new(3);
        d.symbols = vec![
            Symbol::node(1, st(1, 1, 1)),
            Symbol::node(2, st(2, 1, 2)),
            Symbol::node(3, st(3, 1, 3)),
            Symbol::edge(1, 2, EdgeSet::STO),
        ];
        let err = ScChecker::check(&d).unwrap_err();
        assert!(matches!(err.kind, ScErrorKind::StOrder(_)));
    }

    #[test]
    fn accepts_st_order_against_trace_order() {
        // STo may contradict trace order (that is its purpose).
        let mut d = Descriptor::new(3);
        d.symbols = vec![
            Symbol::node(1, st(1, 1, 1)),
            Symbol::node(2, st(2, 1, 2)),
            Symbol::edge(2, 1, EdgeSet::STO),
        ];
        assert_eq!(ScChecker::check(&d), Ok(()));
    }

    #[test]
    fn bottom_load_requires_forced_edge_to_first_store() {
        // LD(P2,B1,⊥) then ST(P1,B1,1): without the forced edge, reject.
        let mut d = Descriptor::new(2);
        d.symbols = vec![Symbol::node(1, ldb(2, 1)), Symbol::node(2, st(1, 1, 1))];
        let err = ScChecker::check(&d).unwrap_err();
        assert_eq!(err.kind, ScErrorKind::BottomUnsatisfied);
        // With the forced edge, accept.
        let mut d = Descriptor::new(2);
        d.symbols = vec![
            Symbol::node(1, ldb(2, 1)),
            Symbol::node(2, st(1, 1, 1)),
            Symbol::edge(1, 2, EdgeSet::FORCED),
        ];
        assert_eq!(ScChecker::check(&d), Ok(()));
    }

    #[test]
    fn bottom_load_vacuous_without_stores() {
        let mut d = Descriptor::new(2);
        d.symbols = vec![Symbol::node(1, ldb(2, 1)), Symbol::node(2, ldb(1, 1))];
        assert_eq!(ScChecker::check(&d), Ok(()));
    }

    #[test]
    fn later_bottom_load_supersedes_earlier() {
        // Two ⊥ loads by the same processor; only the later carries the
        // forced edge (program-order-path proviso).
        let mut d = Descriptor::new(3);
        d.symbols = vec![
            Symbol::node(1, ldb(2, 1)),
            Symbol::node(2, ldb(2, 1)),
            Symbol::edge(1, 2, EdgeSet::PO),
            Symbol::node(3, st(1, 1, 1)),
            Symbol::edge(2, 3, EdgeSet::FORCED),
        ];
        assert_eq!(ScChecker::check(&d), Ok(()));
    }

    #[test]
    fn bottom_load_of_other_processor_not_superseded() {
        // ⊥ loads by different processors: each needs its own forced edge.
        let mut d = Descriptor::new(3);
        d.symbols = vec![
            Symbol::node(1, ldb(2, 1)),
            Symbol::node(2, ldb(3, 1)),
            Symbol::node(3, st(1, 1, 1)),
            Symbol::edge(2, 3, EdgeSet::FORCED),
            // P2's ⊥ load has no forced edge.
        ];
        let err = ScChecker::check(&d).unwrap_err();
        assert_eq!(err.kind, ScErrorKind::BottomUnsatisfied);
    }

    #[test]
    fn heir_superseded_by_later_load() {
        // Two LDs of P2 inherit from the same ST; only the later one gets
        // the forced edge once the next ST arrives — exactly Figure 3
        // without a direct forced edge from node 2.
        assert_eq!(ScChecker::check(&figure3_descriptor()), Ok(()));
    }

    #[test]
    fn unlabeled_node_rejected() {
        let mut d = Descriptor::new(1);
        d.symbols = vec![Symbol::Node { id: 1, label: None }];
        let err = ScChecker::check(&d).unwrap_err();
        assert_eq!(err.kind, ScErrorKind::UnlabeledNode);
    }

    #[test]
    fn unlabeled_edge_rejected() {
        let mut d = Descriptor::new(2);
        d.symbols = vec![
            Symbol::node(1, st(1, 1, 1)),
            Symbol::node(2, st(1, 1, 2)),
            Symbol::Edge {
                from: 1,
                to: 2,
                label: None,
            },
        ];
        let err = ScChecker::check(&d).unwrap_err();
        assert_eq!(err.kind, ScErrorKind::UnlabeledEdge);
    }

    #[test]
    fn lemma31_graphs_always_accepted() {
        // Every graph built from a serial reordering is an acyclic
        // constraint graph, so the checker must accept its descriptor.
        let traces: Vec<(Trace, Vec<usize>)> = vec![
            (figure3_trace(), vec![0, 1, 3, 2, 4]),
            (
                Trace::from_ops([ldb(1, 1), st(2, 1, 1), ld(1, 1, 1)]),
                vec![0, 1, 2],
            ),
            (
                Trace::from_ops([st(1, 1, 1), st(1, 2, 2), ldb(2, 2), ld(2, 1, 1)]),
                vec![0, 2, 1, 3],
            ),
        ];
        for (t, perm) in traces {
            let r = Reordering::new(perm);
            let g = graph_from_serial_reordering(&t, &r);
            let k = g.bandwidth() as u32;
            let d = encode(&g, k).unwrap();
            assert_eq!(ScChecker::check(&d), Ok(()), "trace {t}");
            let d = naive_descriptor(&g);
            assert_eq!(ScChecker::check(&d), Ok(()), "naive, trace {t}");
        }
    }

    #[test]
    fn retained_nodes_stay_bounded() {
        // A long alternating ST/LD workload encoded at its natural
        // bandwidth: the checker must not accumulate deferred nodes.
        let mut ops = Vec::new();
        for i in 0..200u32 {
            let v = 1 + (i % 3) as u8;
            ops.push(st(1, 1, v));
            ops.push(ld(2, 1, v));
        }
        let t = Trace::from_ops(ops);
        assert!(t.is_serial());
        let r = Reordering::identity(t.len());
        let g = graph_from_serial_reordering(&t, &r);
        let k = g.bandwidth() as u32;
        let d = encode(&g, k).unwrap();
        let mut c = ScChecker::new(d.k);
        for s in &d.symbols {
            c.step(s).unwrap();
            assert!(
                c.retained_count() <= (k as usize + 1) + 8,
                "retained blow-up"
            );
        }
        c.finish().unwrap();
    }

    /// Differential test: the streaming checker must agree with the
    /// whole-graph reference (axioms + acyclicity) on saturated witness
    /// graphs and on mutated variants.
    #[test]
    fn differential_against_whole_graph_reference() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        use scv_graph::random::{random_witnessed_trace, WorkloadConfig};
        use scv_graph::validate_constraint_graph;

        let mut rng = SmallRng::seed_from_u64(42);
        let cfg = WorkloadConfig::new(scv_types::Params::new(3, 2, 3), 40);
        let mut positives = 0;
        for _ in 0..60 {
            let wt = random_witnessed_trace(&cfg, 5, &mut rng);
            let mut g = saturated_graph(&wt.trace, &wt.witness);
            // Randomly drop one edge annotation set entirely (possible
            // violation) in a third of the cases.
            let mutate = rng.gen_range(0..3) == 0;
            if mutate {
                let edges: Vec<(usize, usize, EdgeSet)> = g.edges().collect();
                if !edges.is_empty() {
                    let victim = edges[rng.gen_range(0..edges.len())];
                    let mut g2 = ConstraintGraph::with_nodes(g.labels().to_vec());
                    for (u, v, a) in edges {
                        if (u, v) != (victim.0, victim.1) {
                            g2.add_edge(u, v, a);
                        }
                    }
                    g = g2;
                }
            }
            let reference_ok = validate_constraint_graph(&g, &wt.trace).is_ok() && g.is_acyclic();
            let k = g.bandwidth().max(1) as u32;
            let d = encode(&g, k).unwrap();
            let streaming_ok = ScChecker::check(&d).is_ok();
            assert_eq!(
                streaming_ok, reference_ok,
                "disagreement (mutated={mutate}) on trace {}",
                wt.trace
            );
            positives += reference_ok as usize;
        }
        assert!(positives >= 20, "test should exercise plenty of positives");
    }
}

#[cfg(test)]
mod closure_tests {
    use super::*;
    use scv_descriptor::IdCanon;
    use scv_types::{BlockId, ProcId, Value};

    fn st(p: u8, b: u8, v: u8) -> Op {
        Op::store(ProcId(p), BlockId(b), Value(v))
    }
    fn ld(p: u8, b: u8, v: u8) -> Op {
        Op::load(ProcId(p), BlockId(b), Value(v))
    }
    fn ldb(p: u8, b: u8) -> Op {
        Op::load(ProcId(p), BlockId(b), Value::BOTTOM)
    }

    #[test]
    fn check_end_is_reusable_mid_stream() {
        // Prefix-closure probing: check_end never consumes, and the
        // checker keeps working afterwards.
        let mut c = ScChecker::new(3);
        c.step(&Symbol::node(1, st(1, 1, 1))).unwrap();
        assert_eq!(c.check_end(), Ok(()));
        c.step(&Symbol::node(2, ld(2, 1, 1))).unwrap();
        // Load without inheritance: a run ending here is invalid...
        assert!(c.check_end().is_err());
        // ...but the stream can continue and become valid again.
        c.step(&Symbol::edge(1, 2, EdgeSet::INH)).unwrap();
        assert_eq!(c.check_end(), Ok(()));
        assert_eq!(c.finish(), Ok(()));
    }

    #[test]
    fn transitive_cycle_through_recycled_node_rejected() {
        // a -> b, b -> c, recycle b's ID, then c -> a must close the
        // (contracted) cycle via the reachability closure.
        let mut c = ScChecker::new(3);
        c.step(&Symbol::node(1, st(1, 1, 1))).unwrap(); // a
        c.step(&Symbol::node(2, st(1, 1, 2))).unwrap(); // b
        c.step(&Symbol::edge(1, 2, EdgeSet::PO_STO)).unwrap();
        c.step(&Symbol::node(3, st(1, 1, 1))).unwrap(); // c
        c.step(&Symbol::edge(2, 3, EdgeSet::PO_STO)).unwrap();
        c.step(&Symbol::node(2, st(2, 1, 2))).unwrap(); // recycles b
        let err = c.step(&Symbol::edge(3, 1, EdgeSet::STO)).unwrap_err();
        assert_eq!(err.kind, ScErrorKind::CycleClosed);
    }

    #[test]
    fn inh_after_successor_died_rejects_at_end() {
        // ST a; ST b (a's STo successor); b loses its ID and finalizes; a
        // new load then inherits from a. Its forced edge to b can no
        // longer be expressed, so without supersession the run end must
        // reject with ForcedUnsatisfied.
        let mut c = ScChecker::new(4);
        c.step(&Symbol::node(1, st(1, 1, 1))).unwrap(); // a
        c.step(&Symbol::node(2, st(1, 1, 2))).unwrap(); // b
        c.step(&Symbol::edge(1, 2, EdgeSet::PO_STO)).unwrap();
        // b's ID is recycled for an unrelated third store of another
        // block; b finalizes (it had no obligations).
        c.step(&Symbol::node(2, st(2, 2, 1))).unwrap();
        // A load inherits from a, whose successor is now gone.
        c.step(&Symbol::node(3, ld(2, 1, 1))).unwrap();
        c.step(&Symbol::edge(2, 3, EdgeSet::PO)).unwrap();
        c.step(&Symbol::edge(1, 3, EdgeSet::INH)).unwrap();
        let err = c.check_end().unwrap_err();
        assert_eq!(err.kind, ScErrorKind::ForcedUnsatisfied);
        // A later load of the same processor inheriting from a supersedes
        // it — but inherits the same impossible obligation, so the end
        // check still rejects (soundly).
        c.step(&Symbol::node(4, ld(2, 1, 1))).unwrap();
        c.step(&Symbol::edge(3, 4, EdgeSet::PO)).unwrap();
        c.step(&Symbol::edge(1, 4, EdgeSet::INH)).unwrap();
        let err = c.finish().unwrap_err();
        assert_eq!(err.kind, ScErrorKind::ForcedUnsatisfied);
    }

    #[test]
    fn bottom_load_resolved_before_head_dies() {
        // LD(P2,B1,⊥) with forced edge to the first store; the store is
        // then recycled away — the obligation must have been resolved at
        // confirmation time.
        let mut c = ScChecker::new(4);
        c.step(&Symbol::node(1, ldb(2, 1))).unwrap();
        c.step(&Symbol::node(2, st(1, 1, 1))).unwrap();
        c.step(&Symbol::edge(1, 2, EdgeSet::FORCED)).unwrap();
        c.step(&Symbol::node(3, st(1, 1, 2))).unwrap();
        c.step(&Symbol::edge(2, 3, EdgeSet::PO_STO)).unwrap();
        // Recycle the first store's ID: it finalizes and is confirmed as
        // the block head; the ⊥-load's edge was recorded.
        c.step(&Symbol::node(2, ld(1, 1, 2))).unwrap();
        c.step(&Symbol::edge(3, 2, EdgeSet::PO_INH)).unwrap();
        assert_eq!(c.finish(), Ok(()));
    }

    #[test]
    fn bottom_load_without_edge_rejected_after_head_dies() {
        let mut c = ScChecker::new(4);
        c.step(&Symbol::node(1, ldb(2, 1))).unwrap();
        c.step(&Symbol::node(2, st(1, 1, 1))).unwrap();
        // no forced edge
        c.step(&Symbol::node(3, st(1, 1, 2))).unwrap();
        c.step(&Symbol::edge(2, 3, EdgeSet::PO_STO)).unwrap();
        c.step(&Symbol::node(2, ld(1, 1, 2))).unwrap();
        c.step(&Symbol::edge(3, 2, EdgeSet::PO_INH)).unwrap();
        let err = c.finish().unwrap_err();
        assert_eq!(err.kind, ScErrorKind::BottomUnsatisfied);
    }

    #[test]
    fn canonical_encoding_ignores_aux_identity() {
        // Two checkers whose streams differ only in which auxiliary ID
        // (above the location base 2) names the load encode identically.
        let build = |aux: IdNum| {
            let mut c = ScChecker::new(6);
            c.step(&Symbol::node(1, st(1, 1, 1))).unwrap();
            c.step(&Symbol::node(aux, ld(2, 1, 1))).unwrap();
            c.step(&Symbol::edge(1, aux, EdgeSet::INH)).unwrap();
            c
        };
        let (a, b) = (build(3), build(6));
        let mut ea = Vec::new();
        let mut eb = Vec::new();
        a.canonical_encoding(&mut ea, &mut IdCanon::new(2));
        b.canonical_encoding(&mut eb, &mut IdCanon::new(2));
        assert_eq!(ea, eb);
    }

    #[test]
    fn canonical_encoding_erases_discharged_load_values() {
        let build = |v: u8| {
            let mut c = ScChecker::new(6);
            c.step(&Symbol::node(1, st(1, 1, v))).unwrap();
            c.step(&Symbol::node(3, ld(2, 1, v))).unwrap();
            c.step(&Symbol::edge(1, 3, EdgeSet::INH)).unwrap();
            // Recycle the store so only the (discharged-by-waiting) load
            // and nothing value-bearing remains... keep both; the load's
            // value must be erased, the store's kept.
            c
        };
        let (a, b) = (build(1), build(2));
        let mut ea = Vec::new();
        let mut eb = Vec::new();
        a.canonical_encoding(&mut ea, &mut IdCanon::new(2));
        b.canonical_encoding(&mut eb, &mut IdCanon::new(2));
        // The store's value still distinguishes the states.
        assert_ne!(ea, eb);
    }

    #[test]
    fn too_many_retained_rejected_not_panicking() {
        // 70 loads, none ever discharged (no inheritance), all retained as
        // heirs... simplest blow-up: distinct processors' ⊥-loads.
        let mut c = ScChecker::new(63);
        let mut err = None;
        for i in 0..70u32 {
            let p = (i % 200 + 1) as u8;
            // ⊥-loads per (proc, block) are retained until superseded.
            if let Err(e) = c.step(&Symbol::node(1 + (i % 64), ldb(p, 1))) {
                err = Some(e);
                break;
            }
        }
        if let Some(e) = err {
            assert_eq!(e.kind, ScErrorKind::TooManyRetained);
        }
    }
}
