//! The finite-state cycle checker of Lemma 3.3.
//!
//! The checker maintains an *active graph* over at most `k+1` nodes. Upon
//! reading a node ID (or the second parameter of an `add-ID`) that is the
//! *only* ID of some active node, the node is removed after contracting
//! every pair of edges `(H,I)`, `(I,J)` into `(H,J)` — contraction
//! preserves cycles, which is why a bounded active graph suffices. Upon
//! reading an edge, the checker rejects iff the edge closes a directed
//! cycle in the active graph.

use scv_descriptor::{Descriptor, IdNum, Symbol};
use std::fmt;

/// Maximum supported active-graph size (`k+1 <= 64`), so node sets fit in a
/// machine word.
pub const MAX_IDS: u32 = 64;

/// Rejection reasons of the cycle checker.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CycleError {
    /// An edge descriptor closed a directed cycle.
    CycleClosed { position: usize },
    /// An edge descriptor referenced an ID held by no active node.
    DanglingEdge { position: usize },
    /// A symbol used an ID outside `1..=k+1`.
    IdOutOfRange { position: usize },
    /// `k+1` exceeds [`MAX_IDS`].
    TooManyIds,
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CycleError::CycleClosed { position } => {
                write!(f, "edge at symbol {position} closes a directed cycle")
            }
            CycleError::DanglingEdge { position } => {
                write!(f, "edge at symbol {position} references an unassigned ID")
            }
            CycleError::IdOutOfRange { position } => {
                write!(f, "symbol {position} uses an ID outside 1..=k+1")
            }
            CycleError::TooManyIds => write!(f, "k+1 exceeds {MAX_IDS}"),
        }
    }
}

impl std::error::Error for CycleError {}

/// Streaming cycle checker (Lemma 3.3).
///
/// The active graph is stored as one slot per ID-space entry: since every
/// active node holds at least one ID, at most `k+1` nodes are active, and
/// each node is canonically identified with the smallest slot it occupies.
/// Adjacency is kept as per-slot bitmasks, so reachability queries are a
/// handful of word operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CycleChecker {
    k: u32,
    /// `owner[id-1]` = slot of the node holding `id`, if any.
    owner: Vec<Option<u8>>,
    /// Slot occupancy mask: bit `s` set iff slot `s` hosts an active node.
    live: u64,
    /// `out[s]` = bitmask of slots with an edge from slot `s`.
    out: Vec<u64>,
    /// `inn[s]` = bitmask of slots with an edge to slot `s`.
    inn: Vec<u64>,
    /// Symbols processed (for error positions).
    position: usize,
}

impl CycleChecker {
    /// A checker for *k*-graph descriptors. Requires `k+1 <= 64`.
    pub fn new(k: u32) -> Result<Self, CycleError> {
        if k + 1 > MAX_IDS {
            return Err(CycleError::TooManyIds);
        }
        let n = (k + 1) as usize;
        Ok(CycleChecker {
            k,
            owner: vec![None; n],
            live: 0,
            out: vec![0; n],
            inn: vec![0; n],
            position: 0,
        })
    }

    /// The bandwidth parameter.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of active nodes in the active graph.
    pub fn active_count(&self) -> usize {
        self.live.count_ones() as usize
    }

    /// Process one symbol; `Err` means the checker rejects (rejection is
    /// permanent — callers should stop feeding symbols).
    pub fn step(&mut self, sym: &Symbol) -> Result<(), CycleError> {
        let pos = self.position;
        self.position += 1;
        if scv_telemetry::enabled() {
            scv_telemetry::add(scv_telemetry::Metric::CycleSymbols, 1);
            if matches!(sym, Symbol::Edge { .. }) {
                scv_telemetry::add(scv_telemetry::Metric::CycleEdges, 1);
            }
        }
        let in_range = |id: IdNum| id >= 1 && id <= self.k + 1;
        if !in_range(sym.min_id()) || !in_range(sym.max_id()) {
            return Err(CycleError::IdOutOfRange { position: pos });
        }
        match *sym {
            Symbol::Node { id, .. } => {
                self.retire_id(id);
                // Fresh node in its own slot (slot = id-1 is now free:
                // retire_id released it or moved the multi-ID node away).
                let slot = self.free_slot(id);
                self.owner[(id - 1) as usize] = Some(slot);
                self.live |= 1 << slot;
            }
            Symbol::AddId { of, add } => {
                if of != add {
                    self.retire_id(add);
                    if let Some(slot) = self.owner[(of - 1) as usize] {
                        self.owner[(add - 1) as usize] = Some(slot);
                    }
                }
            }
            Symbol::Edge { from, to, .. } => {
                let (Some(u), Some(v)) = (
                    self.owner[(from - 1) as usize],
                    self.owner[(to - 1) as usize],
                ) else {
                    return Err(CycleError::DanglingEdge { position: pos });
                };
                if u == v || self.reaches(v, u) {
                    return Err(CycleError::CycleClosed { position: pos });
                }
                self.out[u as usize] |= 1 << v;
                self.inn[v as usize] |= 1 << u;
            }
        }
        Ok(())
    }

    /// End of input. The cycle checker has no end-of-string obligations;
    /// it accepts iff it never rejected.
    pub fn finish(self) -> Result<(), CycleError> {
        Ok(())
    }

    /// Run the checker over a whole descriptor.
    pub fn check(d: &Descriptor) -> Result<(), CycleError> {
        let _t = scv_telemetry::timer(scv_telemetry::Phase::CheckerCycle);
        let mut c = CycleChecker::new(d.k)?;
        for s in &d.symbols {
            c.step(s)?;
        }
        c.finish()
    }

    /// Remove `id` from its owner; if that was the owner's last ID,
    /// contract edges through it and delete it from the active graph.
    fn retire_id(&mut self, id: IdNum) {
        let Some(slot) = self.owner[(id - 1) as usize].take() else {
            return;
        };
        if self.owner.contains(&Some(slot)) {
            return; // node still has other IDs
        }
        // Contract: every (H, slot), (slot, J) pair becomes (H, J).
        let preds = self.inn[slot as usize];
        let succs = self.out[slot as usize];
        let mut ps = preds;
        while ps != 0 {
            let h = ps.trailing_zeros() as usize;
            ps &= ps - 1;
            self.out[h] |= succs;
            self.out[h] &= !(1 << slot);
        }
        let mut ss = succs;
        while ss != 0 {
            let j = ss.trailing_zeros() as usize;
            ss &= ss - 1;
            self.inn[j] |= preds;
            self.inn[j] &= !(1 << slot);
        }
        // Remove remaining references to the slot.
        for m in self.out.iter_mut().chain(self.inn.iter_mut()) {
            *m &= !(1 << slot);
        }
        self.out[slot as usize] = 0;
        self.inn[slot as usize] = 0;
        self.live &= !(1 << slot);
        debug_assert!(
            preds & succs == 0,
            "a node on a cycle would have been rejected at edge time"
        );
    }

    /// Pick a free slot for a node introduced with `id`; prefer `id-1`.
    fn free_slot(&self, id: IdNum) -> u8 {
        let want = (id - 1) as u8;
        if self.live & (1 << want) == 0 {
            return want;
        }
        let n = self.owner.len();
        let valid: u64 = if n == 64 { !0 } else { (1u64 << n) - 1 };
        let free = !self.live & valid;
        debug_assert!(free != 0, "at most k+1 active nodes for k+1 IDs");
        free.trailing_zeros() as u8
    }

    /// Is `to` reachable from `from` in the active graph?
    fn reaches(&self, from: u8, to: u8) -> bool {
        let mut seen: u64 = 1 << from;
        let mut frontier: u64 = 1 << from;
        let goal: u64 = 1 << to;
        while frontier != 0 {
            let mut next: u64 = 0;
            let mut f = frontier;
            while f != 0 {
                let s = f.trailing_zeros() as usize;
                f &= f - 1;
                next |= self.out[s];
            }
            if next & goal != 0 {
                return true;
            }
            frontier = next & !seen;
            seen |= next;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scv_descriptor::{decode, encode, naive_descriptor, ConstraintGraph, EdgeSet};
    use scv_types::{BlockId, Op, ProcId, Value};

    fn st(p: u8, b: u8, v: u8) -> Op {
        Op::store(ProcId(p), BlockId(b), Value(v))
    }

    fn node(id: IdNum) -> Symbol {
        Symbol::Node { id, label: None }
    }
    fn edge(from: IdNum, to: IdNum) -> Symbol {
        Symbol::Edge {
            from,
            to,
            label: None,
        }
    }

    fn run(k: u32, syms: &[Symbol]) -> Result<(), CycleError> {
        let mut d = Descriptor::new(k);
        d.symbols = syms.to_vec();
        CycleChecker::check(&d)
    }

    #[test]
    fn accepts_simple_dag() {
        assert_eq!(
            run(2, &[node(1), node(2), edge(1, 2), node(3), edge(2, 3)]),
            Ok(())
        );
    }

    #[test]
    fn rejects_two_cycle() {
        assert_eq!(
            run(2, &[node(1), node(2), edge(1, 2), edge(2, 1)]),
            Err(CycleError::CycleClosed { position: 3 })
        );
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(
            run(1, &[node(1), edge(1, 1)]),
            Err(CycleError::CycleClosed { position: 1 })
        );
    }

    #[test]
    fn contraction_preserves_cycles() {
        // 1 -> 2 -> (recycled to 3) ... -> back to 1: build a cycle that
        // passes through a node whose ID is recycled before the closing
        // edge arrives.
        // Nodes: A(id1), B(id2), edge A->B; C(id2) recycles B's ID after
        // edge B->? ... concretely: A->B, B->C, then recycle B's ID, then
        // C->A must be rejected because A->B->C persists as A->C.
        let syms = [
            node(1),    // A
            node(2),    // B
            edge(1, 2), // A -> B
            node(3),    // C
            edge(2, 3), // B -> C
            node(2),    // D takes B's ID; B contracts away (A->C kept)
            edge(3, 1), // C -> A: closes A->C->A
        ];
        assert_eq!(run(2, &syms), Err(CycleError::CycleClosed { position: 6 }));
    }

    #[test]
    fn contraction_does_not_invent_cycles() {
        let syms = [
            node(1),
            node(2),
            edge(1, 2),
            node(3),
            edge(2, 3),
            node(2),    // contract middle node
            edge(1, 2), // A -> D: fine
        ];
        assert_eq!(run(2, &syms), Ok(()));
    }

    #[test]
    fn multi_id_nodes_merge_edges() {
        // Node A holds IDs {1,2}; edges through either ID hit the same
        // node, so (3->1) + (2->3) is a cycle.
        let syms = [
            node(1),
            Symbol::AddId { of: 1, add: 2 },
            node(3),
            edge(3, 1),
            edge(2, 3),
        ];
        assert_eq!(run(2, &syms), Err(CycleError::CycleClosed { position: 4 }));
    }

    #[test]
    fn losing_one_of_many_ids_keeps_node() {
        // A holds {1,2}; reusing ID 1 keeps A alive under ID 2.
        let syms = [
            node(1),
            Symbol::AddId { of: 1, add: 2 },
            node(1), // B; A keeps ID 2
            edge(2, 1),
            edge(1, 2), // closes B -> A -> B
        ];
        assert_eq!(run(1, &syms), Err(CycleError::CycleClosed { position: 4 }));
    }

    #[test]
    fn dangling_edge_rejected() {
        assert_eq!(
            run(2, &[node(1), edge(1, 2)]),
            Err(CycleError::DanglingEdge { position: 1 })
        );
    }

    #[test]
    fn id_out_of_range_rejected() {
        assert_eq!(
            run(1, &[node(3)]),
            Err(CycleError::IdOutOfRange { position: 0 })
        );
    }

    #[test]
    fn agrees_with_whole_graph_decode_on_encoded_dags() {
        // Random-ish DAG family: layered graphs encoded at minimal k.
        for seed in 0..20u64 {
            let mut g = ConstraintGraph::new();
            let n = 30 + (seed as usize % 17);
            for i in 0..n {
                g.add_node(st(1 + (i % 3) as u8, 1 + (i % 2) as u8, 1));
            }
            // Edges forward with stride patterns (always acyclic).
            let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            for i in 0..n {
                for _ in 0..2 {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let span = 1 + (x >> 33) as usize % 7;
                    if i + span < n {
                        g.add_edge(i, i + span, EdgeSet::PO);
                    }
                }
            }
            let k = g.bandwidth() as u32;
            let d = encode(&g, k).unwrap();
            let (dg, _) = decode(&d).unwrap();
            assert!(dg.is_acyclic());
            assert_eq!(CycleChecker::check(&d), Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn agrees_with_whole_graph_decode_on_cyclic_graphs() {
        // Take a chain and add one back edge; the naive descriptor (no
        // recycling) must be rejected exactly when decode finds the cycle.
        let mut g = ConstraintGraph::new();
        for i in 0..10 {
            g.add_node(st(1, 1, 1 + (i % 2) as u8));
        }
        for i in 0..9 {
            g.add_edge(i, i + 1, EdgeSet::PO);
        }
        g.add_edge(7, 3, EdgeSet::FORCED); // cycle 3..7
        let d = naive_descriptor(&g);
        let (dg, _) = decode(&d).unwrap();
        assert!(!dg.is_acyclic());
        assert!(matches!(
            CycleChecker::check(&d),
            Err(CycleError::CycleClosed { .. })
        ));
    }

    #[test]
    fn active_count_stays_within_k_plus_one() {
        let mut g = ConstraintGraph::new();
        for i in 0..50 {
            g.add_node(st(1, 1, 1 + (i % 2) as u8));
        }
        for i in 0..49 {
            g.add_edge(i, i + 1, EdgeSet::PO);
        }
        let d = encode(&g, 1).unwrap();
        let mut c = CycleChecker::new(1).unwrap();
        for s in &d.symbols {
            c.step(s).unwrap();
            assert!(c.active_count() <= 2);
        }
    }

    #[test]
    fn k_too_large_rejected() {
        assert_eq!(CycleChecker::new(64), Err(CycleError::TooManyIds));
        assert!(CycleChecker::new(63).is_ok());
    }
}
