//! Generic explicit-state reachability: sequential and parallel BFS.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// 128-bit state fingerprints for the seen-set.
///
/// Storing full states for every visited state is the memory bottleneck of
/// explicit-state search; both searchers instead record two independent
/// 64-bit hashes per state (full states live only in the current
/// frontier). A collision would silently merge two distinct states — with
/// 128 bits the probability across even 10⁹ states is ~10⁻²⁰, far below
/// any practical concern (the same trade Holzmann's bitstate hashing makes
/// far more aggressively).
///
/// Public so [`TransitionSystem::expand_admitted`] implementations can
/// fingerprint successors *before* materializing them; the keys are
/// per-instance random, so fingerprints are only comparable within one
/// search.
pub struct Fingerprinter {
    a: RandomState,
    b: RandomState,
}

impl Fingerprinter {
    pub(crate) fn new() -> Self {
        Fingerprinter {
            a: RandomState::new(),
            b: RandomState::new(),
        }
    }

    /// The 128-bit fingerprint of any hashable value. Implementations of
    /// [`TransitionSystem::expand_admitted`] must ensure the value they
    /// hash here is hash-identical to the `State` they would materialize.
    pub fn fp<S: Hash>(&self, s: &S) -> u128 {
        (self.a.hash_one(s) as u128) << 64 | self.b.hash_one(s) as u128
    }

    /// A half-width fingerprint (one hasher pass instead of two) for
    /// worker-local caching, where a collision costs a wrong cache answer
    /// bounded by the cache's size, not the whole search. At ≤2^16 cached
    /// keys the collision probability is ~2^-33 per cache lifetime —
    /// negligible next to the 128-bit birthday bound the global seen-set
    /// already accepts.
    pub(crate) fn fp64<S: Hash>(&self, s: &S) -> u64 {
        self.a.hash_one(s)
    }
}

/// Opaque per-worker scratch space for [`TransitionSystem::expand_admitted`].
///
/// Engines obtain one per worker via [`TransitionSystem::expand_scratch`]
/// and thread it through every expansion on that worker; what lives inside
/// is the system's business (the product system keeps replay copies of the
/// observer/checker, encoding arenas, and its orbit-seal cache here).
/// Systems that don't override the lazy path use [`ExpandScratch::none`].
pub struct ExpandScratch(Box<dyn std::any::Any + Send>);

impl ExpandScratch {
    /// The empty scratch used by the default (materialize-first) path.
    pub fn none() -> Self {
        ExpandScratch(Box::new(()))
    }

    /// Wrap a concrete scratch value.
    pub fn new<S: std::any::Any + Send>(scratch: S) -> Self {
        ExpandScratch(Box::new(scratch))
    }

    /// Downcast to the concrete scratch type, if this is one.
    pub fn get_mut<S: std::any::Any + Send>(&mut self) -> Option<&mut S> {
        self.0.downcast_mut::<S>()
    }
}

/// The reference implementation of admission-gated expansion: materialize
/// every successor eagerly, fingerprint them, then let `admit` filter.
///
/// This is both the trait default (correct for any system) and the
/// explicit "eager" mode of the product system — it reproduces the
/// pre-gating cost profile (full clone + encode per successor, admitted or
/// not), which is what the lazy path is benchmarked against.
pub fn eager_expand<T: TransitionSystem + ?Sized>(
    sys: &T,
    s: &T::State,
    fper: &Fingerprinter,
    admit: &mut dyn FnMut(&[u128], &mut Vec<bool>),
    out: &mut Vec<(T::Label, T::State, u128)>,
) {
    let mut succs = Vec::new();
    sys.successors_into(s, &mut succs);
    let fps: Vec<u128> = succs.iter().map(|(_, t)| fper.fp(t)).collect();
    let mut keep = Vec::new();
    admit(&fps, &mut keep);
    debug_assert_eq!(keep.len(), fps.len());
    for (i, (label, t)) in succs.into_iter().enumerate() {
        if keep[i] {
            out.push((label, t, fps[i]));
        }
    }
}

/// A finite labeled transition system with a safety predicate.
pub trait TransitionSystem {
    /// State type (hashable; `Send` for the parallel searcher).
    type State: Clone + Eq + Hash + Send;
    /// Transition label (used in counterexamples).
    type Label: Clone + Send;
    /// Violation diagnosis carried by counterexamples. Structured systems
    /// use a typed reason (see `RejectReason` in the verify layer); toy
    /// systems can use `String`.
    type Violation: Clone + Send;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// All successors of a state, with labels.
    fn successors(&self, s: &Self::State) -> Vec<(Self::Label, Self::State)>;

    /// A safety violation in `s`, if any (checked on every reachable
    /// state, including the initial one).
    fn violation(&self, s: &Self::State) -> Option<Self::Violation>;

    /// Append all successors of `s` to `out` instead of allocating a
    /// fresh `Vec`. The work-stealing engine calls this with a reused
    /// per-worker buffer; implementations that can generate successors
    /// in place should override it (the default delegates to
    /// [`TransitionSystem::successors`]).
    fn successors_into(&self, s: &Self::State, out: &mut Vec<(Self::Label, Self::State)>) {
        out.extend(self.successors(s));
    }

    /// Per-worker scratch for [`TransitionSystem::expand_admitted`];
    /// engines create one per worker and reuse it for every expansion.
    fn expand_scratch(&self) -> ExpandScratch {
        ExpandScratch::none()
    }

    /// Admission-gated expansion: fingerprint every successor of `s`
    /// first, ask `admit` which fingerprints are worth keeping, and push
    /// only the admitted `(label, state, fingerprint)` triples to `out`.
    ///
    /// The contract, which all three engines rely on:
    ///
    /// * every candidate successor's fingerprint is passed to `admit`
    ///   (possibly across several calls), and `admit` fills one `bool` per
    ///   fingerprint — `true` means materialize;
    /// * an admitted triple's fingerprint is exactly what `admit` saw, and
    ///   hashing the materialized state through `fper` reproduces it;
    /// * `admit` is a *hint*, not a claim: engines still insert admitted
    ///   fingerprints into their seen-set authoritatively, so false
    ///   positives (a racing worker admitted the state first, or the same
    ///   fingerprint appears twice in one expansion) cost a wasted
    ///   materialization, never a duplicate or dropped state.
    ///
    /// The default materializes everything first (via
    /// [`TransitionSystem::successors_into`]) and filters afterwards —
    /// correct for any system; systems with expensive states override this
    /// to defer the clone/allocate work until after admission.
    fn expand_admitted(
        &self,
        s: &Self::State,
        scratch: &mut ExpandScratch,
        fper: &Fingerprinter,
        admit: &mut dyn FnMut(&[u128], &mut Vec<bool>),
        out: &mut Vec<(Self::Label, Self::State, u128)>,
    ) {
        let _ = scratch;
        eager_expand(self, s, fper, admit, out);
    }
}

/// Which search engine to run when `threads > 1`.
///
/// Both engines implement the same [`TransitionSystem`] contract and
/// return the same verdicts; keeping the old level-synchronous path
/// selectable enables differential testing (`tests/parallel_mc.rs` runs
/// every protocol under both).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Asynchronous work-stealing search ([`crate::ws::ws_search`]):
    /// chunked per-worker deques, batch-granular stealing, batched
    /// seen-set claiming. The default.
    #[default]
    WorkStealing,
    /// Level-synchronous parallel BFS ([`bfs_parallel`]): a barrier per
    /// BFS level, one seen-set lock per successor. Kept for differential
    /// testing and as the reference for depth-minimal exploration order.
    LevelSync,
}

/// Search limits.
///
/// Construct with the builder: `BfsOptions::new().max_states(50_000)`.
/// The struct is `#[non_exhaustive]` so new limits can be added without
/// breaking callers; `BfsOptions::default()` remains as an escape hatch
/// (fields stay public for reading and in-place mutation) but literal
/// construction outside this crate is no longer possible.
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct BfsOptions {
    /// Stop after visiting this many states.
    pub max_states: usize,
    /// Explore at most this many BFS levels.
    pub max_depth: usize,
}

impl Default for BfsOptions {
    fn default() -> Self {
        BfsOptions {
            max_states: 1_000_000,
            max_depth: usize::MAX,
        }
    }
}

impl BfsOptions {
    /// Default limits (1M states, unbounded depth); chain builder methods
    /// to adjust.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stop after visiting this many states.
    pub fn max_states(mut self, n: usize) -> Self {
        self.max_states = n;
        self
    }

    /// Explore at most this many BFS levels.
    pub fn max_depth(mut self, d: usize) -> Self {
        self.max_depth = d;
        self
    }
}

/// Search statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct McStats {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions explored.
    pub transitions: usize,
    /// Depth reached.
    pub depth: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Worker threads used (1 for the sequential searcher).
    pub workers: usize,
    /// Successful chunk steals across all workers (work-stealing engine
    /// only; 0 elsewhere).
    pub steals: usize,
    /// Seen-set lock acquisitions, i.e. batch inserts (work-stealing
    /// engine only; 0 elsewhere).
    pub seen_batches: usize,
    /// Peak number of states queued for expansion at any instant
    /// (work-stealing engine only; 0 elsewhere).
    pub peak_frontier: usize,
}

impl McStats {
    /// Distinct states visited per second of wall-clock time.
    pub fn states_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.states as f64 / secs
        } else {
            0.0
        }
    }
}

/// A violating run: the labels from the initial state to the bad state,
/// and the violation diagnosis.
#[derive(Clone, Debug)]
pub struct Counterexample<L, V = String> {
    /// Transition labels along the path.
    pub path: Vec<L>,
    /// The safety predicate's diagnosis.
    pub reason: V,
}

/// Result of a search.
#[derive(Clone, Debug)]
pub enum SearchResult<L, V = String> {
    /// Every reachable state (within limits) is safe, and no limit was hit.
    Safe(McStats),
    /// Every explored state is safe but a limit stopped the search.
    Bounded(McStats),
    /// A violation was found.
    Unsafe(Counterexample<L, V>, McStats),
}

impl<L, V> SearchResult<L, V> {
    /// Search statistics regardless of outcome.
    pub fn stats(&self) -> McStats {
        match self {
            SearchResult::Safe(s) | SearchResult::Bounded(s) => *s,
            SearchResult::Unsafe(_, s) => *s,
        }
    }

    /// Did the search prove safety exhaustively?
    pub fn is_safe(&self) -> bool {
        matches!(self, SearchResult::Safe(_))
    }
}

/// Mirror a finished search's aggregates into the telemetry registry.
///
/// Engines that already stream counters during the run (the work-stealing
/// searcher) pass `counters_live = true` so only gauges are written;
/// the sequential/level-sync engines publish everything here. Gauges
/// describe the *most recent* search — counters accumulate across runs.
pub(crate) fn publish_search_stats(stats: &McStats, counters_live: bool) {
    if !scv_telemetry::enabled() {
        return;
    }
    use scv_telemetry::Metric;
    if !counters_live {
        scv_telemetry::add(Metric::McStatesAdmitted, stats.states as u64);
        scv_telemetry::add(Metric::McTransitions, stats.transitions as u64);
        scv_telemetry::add(Metric::McSteals, stats.steals as u64);
        scv_telemetry::add(Metric::McSeenBatches, stats.seen_batches as u64);
    }
    scv_telemetry::set_gauge("mc.states", stats.states as f64);
    scv_telemetry::set_gauge("mc.depth", stats.depth as f64);
    scv_telemetry::set_gauge("mc.workers", stats.workers as f64);
    scv_telemetry::set_gauge("mc.peak_frontier", stats.peak_frontier as f64);
    scv_telemetry::set_gauge("mc.states_per_sec", stats.states_per_sec());
    scv_telemetry::set_gauge("mc.elapsed_secs", stats.elapsed.as_secs_f64());
}

/// Sequential BFS with parent tracking for counterexample extraction.
/// The seen-set stores 128-bit fingerprints, not states (see
/// [`Fingerprinter`]); full states live only in the frontier.
pub fn bfs<T: TransitionSystem>(sys: &T, opts: BfsOptions) -> SearchResult<T::Label, T::Violation> {
    let _t = scv_telemetry::timer(scv_telemetry::Phase::Search);
    let r = bfs_inner(sys, opts);
    publish_search_stats(&r.stats(), false);
    r
}

fn bfs_inner<T: TransitionSystem>(
    sys: &T,
    opts: BfsOptions,
) -> SearchResult<T::Label, T::Violation> {
    use scv_telemetry::recorder;
    let start = Instant::now();
    if recorder::recorder_enabled() {
        recorder::set_worker("main");
    }
    let fper = Fingerprinter::new();
    let mut stats = McStats {
        workers: 1,
        ..Default::default()
    };
    let init = sys.initial();
    let mut index: HashMap<u128, u32> = HashMap::new();
    let mut parents: Vec<Option<(u32, T::Label)>> = Vec::new();
    let mut frontier: Vec<(T::State, u32)> = Vec::new();

    index.insert(fper.fp(&init), 0);
    parents.push(None);
    stats.states = 1;

    let rebuild = |parents: &Vec<Option<(u32, T::Label)>>, mut at: u32| -> Vec<T::Label> {
        let mut path = Vec::new();
        while let Some((p, l)) = &parents[at as usize] {
            path.push(l.clone());
            at = *p;
        }
        path.reverse();
        path
    };

    if let Some(reason) = sys.violation(&init) {
        stats.elapsed = start.elapsed();
        return SearchResult::Unsafe(
            Counterexample {
                path: Vec::new(),
                reason,
            },
            stats,
        );
    }
    frontier.push((init, 0));

    let mut scratch = sys.expand_scratch();
    let mut admitted: Vec<(T::Label, T::State, u128)> = Vec::new();
    let mut depth = 0usize;
    let mut truncated = false;
    while !frontier.is_empty() && depth < opts.max_depth {
        depth += 1;
        if recorder::recorder_enabled() {
            recorder::counter(recorder::CounterTrack::FrontierDepth, frontier.len() as f64);
            recorder::counter(recorder::CounterTrack::SeenStates, stats.states as f64);
            recorder::set_live(recorder::LiveGauge::FrontierDepth, frontier.len() as u64);
        }
        let mut next = Vec::new();
        for (s, si) in frontier.drain(..) {
            // Admission gate: probe the seen-set with fingerprints so
            // duplicate successors are rejected before materialization.
            admitted.clear();
            let mut admit = |fps: &[u128], keep: &mut Vec<bool>| {
                stats.transitions += fps.len();
                keep.clear();
                keep.extend(fps.iter().map(|fp| !index.contains_key(fp)));
            };
            sys.expand_admitted(&s, &mut scratch, &fper, &mut admit, &mut admitted);
            for (label, t, fp) in admitted.drain(..) {
                // Authoritative insert: within-expansion duplicates both
                // pass the probe, so re-check here.
                let ti = parents.len() as u32;
                match index.entry(fp) {
                    std::collections::hash_map::Entry::Occupied(_) => continue,
                    std::collections::hash_map::Entry::Vacant(v) => v.insert(ti),
                };
                parents.push(Some((si, label)));
                stats.states += 1;
                stats.depth = depth;
                if let Some(reason) = sys.violation(&t) {
                    stats.elapsed = start.elapsed();
                    return SearchResult::Unsafe(
                        Counterexample {
                            path: rebuild(&parents, ti),
                            reason,
                        },
                        stats,
                    );
                }
                if stats.states >= opts.max_states {
                    truncated = true;
                    break;
                }
                next.push((t, ti));
            }
            if truncated {
                break;
            }
        }
        frontier = next;
        if truncated {
            break;
        }
    }
    stats.elapsed = start.elapsed();
    if truncated || (depth >= opts.max_depth && !frontier.is_empty()) {
        SearchResult::Bounded(stats)
    } else {
        SearchResult::Safe(stats)
    }
}

/// Parallel level-synchronous BFS: each level's frontier is split among
/// scoped worker threads; the seen-set is sharded by state hash behind
/// `parking_lot` mutexes. Returns the same verdicts as [`bfs`] (the
/// counterexample path is reconstructed from parent states stored in the
/// shards).
pub fn bfs_parallel<T>(
    sys: &T,
    opts: BfsOptions,
    threads: usize,
) -> SearchResult<T::Label, T::Violation>
where
    T: TransitionSystem + Sync,
    T::State: Sync,
    T::Label: Sync,
{
    if threads <= 1 {
        return bfs(sys, opts);
    }
    let _t = scv_telemetry::timer(scv_telemetry::Phase::Search);
    let r = bfs_parallel_inner(sys, opts, threads);
    publish_search_stats(&r.stats(), false);
    r
}

fn bfs_parallel_inner<T>(
    sys: &T,
    opts: BfsOptions,
    threads: usize,
) -> SearchResult<T::Label, T::Violation>
where
    T: TransitionSystem + Sync,
    T::State: Sync,
    T::Label: Sync,
{
    use scv_telemetry::recorder;
    const SHARDS: usize = 64;
    let start = Instant::now();
    if recorder::recorder_enabled() {
        recorder::set_worker("main");
    }
    let fper = Fingerprinter::new();
    let shard_of = |fp: u128| -> usize { (fp as usize) % SHARDS };
    // Shard maps: fingerprint -> (parent fingerprint, label); the label
    // chain is all a counterexample needs.
    type Parent<T> = Option<(u128, <T as TransitionSystem>::Label)>;
    let shards: Vec<Mutex<HashMap<u128, Parent<T>>>> =
        (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect();

    let init = sys.initial();
    if let Some(reason) = sys.violation(&init) {
        let stats = McStats {
            states: 1,
            elapsed: start.elapsed(),
            ..Default::default()
        };
        return SearchResult::Unsafe(
            Counterexample {
                path: Vec::new(),
                reason,
            },
            stats,
        );
    }
    let init_fp = fper.fp(&init);
    shards[shard_of(init_fp)]
        .lock()
        .unwrap()
        .insert(init_fp, None);

    let n_states = AtomicU64::new(1);
    let n_trans = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let found: Mutex<Option<(u128, T::Violation)>> = Mutex::new(None);

    let mut frontier: Vec<(T::State, u128)> = vec![(init, init_fp)];
    let mut depth = 0usize;
    let mut truncated = false;
    // Per-worker expansion scratch, hoisted out of the level loop so the
    // replay buffers and seal caches survive across levels.
    let mut scratches: Vec<ExpandScratch> = (0..threads).map(|_| sys.expand_scratch()).collect();

    while !frontier.is_empty() && depth < opts.max_depth && !stop.load(Ordering::Relaxed) {
        depth += 1;
        if recorder::recorder_enabled() {
            recorder::counter(recorder::CounterTrack::FrontierDepth, frontier.len() as f64);
            recorder::counter(
                recorder::CounterTrack::SeenStates,
                n_states.load(Ordering::Relaxed) as f64,
            );
            recorder::set_live(recorder::LiveGauge::FrontierDepth, frontier.len() as u64);
        }
        let chunks: Vec<&[(T::State, u128)]> =
            frontier.chunks(frontier.len().div_ceil(threads)).collect();
        let next: Vec<Vec<(T::State, u128)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .zip(scratches.iter_mut())
                .enumerate()
                .map(|(wi, (chunk, scratch))| {
                    let shards = &shards;
                    let n_states = &n_states;
                    let n_trans = &n_trans;
                    let stop = &stop;
                    let found = &found;
                    let fper = &fper;
                    let shard_of = &shard_of;
                    scope.spawn(move || {
                        if recorder::recorder_enabled() {
                            recorder::set_worker(&format!("bfs-{wi}"));
                        }
                        let mut local = Vec::new();
                        let mut admitted: Vec<(T::Label, T::State, u128)> = Vec::new();
                        for (s, sfp) in chunk {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            // Probe-only admission (one shard lock per
                            // candidate); the insert below stays
                            // authoritative, so probe races are safe.
                            admitted.clear();
                            let mut admit = |fps: &[u128], keep: &mut Vec<bool>| {
                                n_trans.fetch_add(fps.len() as u64, Ordering::Relaxed);
                                keep.clear();
                                keep.extend(fps.iter().map(|fp| {
                                    !shards[shard_of(*fp)].lock().unwrap().contains_key(fp)
                                }));
                            };
                            sys.expand_admitted(s, scratch, fper, &mut admit, &mut admitted);
                            for (label, t, tfp) in admitted.drain(..) {
                                {
                                    let mut m = shards[shard_of(tfp)].lock().unwrap();
                                    if m.contains_key(&tfp) {
                                        continue;
                                    }
                                    m.insert(tfp, Some((*sfp, label)));
                                }
                                let total = n_states.fetch_add(1, Ordering::Relaxed) + 1;
                                if let Some(v) = sys.violation(&t) {
                                    *found.lock().unwrap() = Some((tfp, v));
                                    stop.store(true, Ordering::Relaxed);
                                    break;
                                }
                                if total as usize >= opts.max_states {
                                    stop.store(true, Ordering::Relaxed);
                                    break;
                                }
                                local.push((t, tfp));
                            }
                        }
                        // Level threads are short-lived; move their rings
                        // into the collected set before the scope joins
                        // (TLS destructors may run after `scope` returns).
                        recorder::flush_worker();
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect::<Vec<_>>()
        });
        frontier = next.into_iter().flatten().collect();
        if stop.load(Ordering::Relaxed) {
            truncated = true;
            break;
        }
    }

    let mut stats = McStats {
        states: n_states.load(Ordering::Relaxed) as usize,
        transitions: n_trans.load(Ordering::Relaxed) as usize,
        depth,
        elapsed: start.elapsed(),
        workers: threads,
        ..Default::default()
    };
    let found = found.lock().unwrap().take();
    if let Some((bad, reason)) = found {
        // Reconstruct the label path through the shard parent maps.
        let mut path = Vec::new();
        let mut cur = bad;
        loop {
            let parent = shards[shard_of(cur)]
                .lock()
                .unwrap()
                .get(&cur)
                .cloned()
                .flatten();
            match parent {
                Some((p, l)) => {
                    path.push(l);
                    cur = p;
                }
                None => break,
            }
        }
        path.reverse();
        stats.elapsed = start.elapsed();
        return SearchResult::Unsafe(Counterexample { path, reason }, stats);
    }
    if truncated || (depth >= opts.max_depth && !frontier.is_empty()) {
        SearchResult::Bounded(stats)
    } else {
        SearchResult::Safe(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter modulo n that "violates" at a designated value.
    struct Counter {
        n: u32,
        bad: Option<u32>,
    }

    impl TransitionSystem for Counter {
        type State = u32;
        type Label = &'static str;
        type Violation = String;

        fn initial(&self) -> u32 {
            0
        }
        fn successors(&self, s: &u32) -> Vec<(&'static str, u32)> {
            vec![("inc", (s + 1) % self.n), ("dbl", (s * 2) % self.n)]
        }
        fn violation(&self, s: &u32) -> Option<String> {
            (Some(*s) == self.bad).then(|| format!("hit {s}"))
        }
    }

    #[test]
    fn safe_system_explores_all_states() {
        let sys = Counter { n: 97, bad: None };
        let r = bfs(&sys, BfsOptions::default());
        assert!(r.is_safe());
        assert_eq!(r.stats().states, 97);
    }

    #[test]
    fn violation_found_with_shortest_path() {
        let sys = Counter {
            n: 97,
            bad: Some(5),
        };
        match bfs(&sys, BfsOptions::default()) {
            SearchResult::Unsafe(ce, _) => {
                assert_eq!(ce.reason, "hit 5");
                // Shortest path to 5: 0->1->2->4->5 (inc,dbl,dbl,inc) = 4 steps
                // or 0->1->2->3->... BFS guarantees minimality: length 4.
                assert_eq!(ce.path.len(), 4);
                // Replay the path.
                let mut s = 0u32;
                for l in &ce.path {
                    s = match *l {
                        "inc" => (s + 1) % 97,
                        _ => (s * 2) % 97,
                    };
                }
                assert_eq!(s, 5);
            }
            r => panic!("expected Unsafe, got {r:?}"),
        }
    }

    #[test]
    fn state_limit_reports_bounded() {
        let sys = Counter { n: 1000, bad: None };
        let r = bfs(&sys, BfsOptions::new().max_states(10));
        assert!(matches!(r, SearchResult::Bounded(_)));
    }

    #[test]
    fn depth_limit_reports_bounded() {
        let sys = Counter { n: 1000, bad: None };
        let r = bfs(&sys, BfsOptions::new().max_states(usize::MAX).max_depth(3));
        assert!(matches!(r, SearchResult::Bounded(_)));
    }

    #[test]
    fn parallel_agrees_with_sequential_on_safe() {
        let sys = Counter { n: 977, bad: None };
        let seq = bfs(&sys, BfsOptions::default());
        let par = bfs_parallel(&sys, BfsOptions::default(), 4);
        assert!(seq.is_safe() && par.is_safe());
        assert_eq!(seq.stats().states, par.stats().states);
    }

    #[test]
    fn parallel_finds_violations() {
        let sys = Counter {
            n: 977,
            bad: Some(123),
        };
        match bfs_parallel(&sys, BfsOptions::default(), 4) {
            SearchResult::Unsafe(ce, _) => {
                let mut s = 0u32;
                for l in &ce.path {
                    s = match *l {
                        "inc" => (s + 1) % 977,
                        _ => (s * 2) % 977,
                    };
                }
                assert_eq!(s, 123, "path must replay to the bad state");
            }
            r => panic!("expected Unsafe, got {r:?}"),
        }
    }

    #[test]
    fn violating_initial_state_caught() {
        let sys = Counter {
            n: 10,
            bad: Some(0),
        };
        match bfs(&sys, BfsOptions::default()) {
            SearchResult::Unsafe(ce, _) => assert!(ce.path.is_empty()),
            r => panic!("expected Unsafe, got {r:?}"),
        }
        match bfs_parallel(&sys, BfsOptions::default(), 2) {
            SearchResult::Unsafe(ce, _) => assert!(ce.path.is_empty()),
            r => panic!("expected Unsafe, got {r:?}"),
        }
    }
}
