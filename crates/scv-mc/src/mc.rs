//! Generic explicit-state reachability: sequential and parallel BFS.

use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::control::{code_to_reason, reason_to_code, InterruptReason, RunControl};
use crate::sip::SipBuild;

/// 128-bit state fingerprints for the seen-set.
///
/// Storing full states for every visited state is the memory bottleneck of
/// explicit-state search; both searchers instead record two independent
/// 64-bit hashes per state (full states live only in the current
/// frontier). A collision would silently merge two distinct states — with
/// 128 bits the probability across even 10⁹ states is ~10⁻²⁰, far below
/// any practical concern (the same trade Holzmann's bitstate hashing makes
/// far more aggressively).
///
/// Hashing is keyed SipHash-1-3 ([`crate::sip`]) under four explicit
/// 64-bit seeds. A fresh fingerprinter draws random seeds, so fingerprints
/// are only comparable within one search — but the seeds can be extracted
/// ([`Fingerprinter::seeds`]), serialized into a checkpoint, and restored
/// ([`Fingerprinter::from_seeds`]), which is what lets a resumed search
/// reuse the interrupted run's seen-set and parent logs verbatim.
///
/// Public so [`TransitionSystem::expand_admitted`] implementations can
/// fingerprint successors *before* materializing them.
pub struct Fingerprinter {
    a: SipBuild,
    b: SipBuild,
}

impl Fingerprinter {
    pub(crate) fn new() -> Self {
        // Four fresh random seeds per fingerprinter, derived from the
        // standard library's randomly-keyed hasher.
        let r = RandomState::new();
        Fingerprinter::from_seeds([
            r.hash_one(0u64),
            r.hash_one(1u64),
            r.hash_one(2u64),
            r.hash_one(3u64),
        ])
    }

    /// Rebuild a fingerprinter from extracted seeds; it reproduces the
    /// exact fingerprints of the instance the seeds came from.
    pub fn from_seeds(seeds: [u64; 4]) -> Self {
        Fingerprinter {
            a: SipBuild::new(seeds[0], seeds[1]),
            b: SipBuild::new(seeds[2], seeds[3]),
        }
    }

    /// The four hash seeds, in [`Fingerprinter::from_seeds`] order.
    pub fn seeds(&self) -> [u64; 4] {
        let (a0, a1) = self.a.keys();
        let (b0, b1) = self.b.keys();
        [a0, a1, b0, b1]
    }

    /// The 128-bit fingerprint of any hashable value. Implementations of
    /// [`TransitionSystem::expand_admitted`] must ensure the value they
    /// hash here is hash-identical to the `State` they would materialize.
    pub fn fp<S: Hash>(&self, s: &S) -> u128 {
        (self.a.hash_one(s) as u128) << 64 | self.b.hash_one(s) as u128
    }

    /// A half-width fingerprint (one hasher pass instead of two) for
    /// worker-local caching, where a collision costs a wrong cache answer
    /// bounded by the cache's size, not the whole search. At ≤2^16 cached
    /// keys the collision probability is ~2^-33 per cache lifetime —
    /// negligible next to the 128-bit birthday bound the global seen-set
    /// already accepts.
    pub(crate) fn fp64<S: Hash>(&self, s: &S) -> u64 {
        self.a.hash_one(s)
    }
}

/// Opaque per-worker scratch space for [`TransitionSystem::expand_admitted`].
///
/// Engines obtain one per worker via [`TransitionSystem::expand_scratch`]
/// and thread it through every expansion on that worker; what lives inside
/// is the system's business (the product system keeps replay copies of the
/// observer/checker, encoding arenas, and its orbit-seal cache here).
/// Systems that don't override the lazy path use [`ExpandScratch::none`].
pub struct ExpandScratch(Box<dyn std::any::Any + Send>);

impl ExpandScratch {
    /// The empty scratch used by the default (materialize-first) path.
    pub fn none() -> Self {
        ExpandScratch(Box::new(()))
    }

    /// Wrap a concrete scratch value.
    pub fn new<S: std::any::Any + Send>(scratch: S) -> Self {
        ExpandScratch(Box::new(scratch))
    }

    /// Downcast to the concrete scratch type, if this is one.
    pub fn get_mut<S: std::any::Any + Send>(&mut self) -> Option<&mut S> {
        self.0.downcast_mut::<S>()
    }
}

/// The reference implementation of admission-gated expansion: materialize
/// every successor eagerly, fingerprint them, then let `admit` filter.
///
/// This is both the trait default (correct for any system) and the
/// explicit "eager" mode of the product system — it reproduces the
/// pre-gating cost profile (full clone + encode per successor, admitted or
/// not), which is what the lazy path is benchmarked against.
pub fn eager_expand<T: TransitionSystem + ?Sized>(
    sys: &T,
    s: &T::State,
    fper: &Fingerprinter,
    admit: &mut dyn FnMut(&[u128], &mut Vec<bool>),
    out: &mut Vec<(T::Label, T::State, u128)>,
) {
    let mut succs = Vec::new();
    sys.successors_into(s, &mut succs);
    let fps: Vec<u128> = succs.iter().map(|(_, t)| fper.fp(t)).collect();
    let mut keep = Vec::new();
    admit(&fps, &mut keep);
    debug_assert_eq!(keep.len(), fps.len());
    for (i, (label, t)) in succs.into_iter().enumerate() {
        if keep[i] {
            out.push((label, t, fps[i]));
        }
    }
}

/// A finite labeled transition system with a safety predicate.
pub trait TransitionSystem {
    /// State type (hashable; `Send` for the parallel searcher).
    type State: Clone + Eq + Hash + Send;
    /// Transition label (used in counterexamples).
    type Label: Clone + Send;
    /// Violation diagnosis carried by counterexamples. Structured systems
    /// use a typed reason (see `RejectReason` in the verify layer); toy
    /// systems can use `String`.
    type Violation: Clone + Send;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// All successors of a state, with labels.
    fn successors(&self, s: &Self::State) -> Vec<(Self::Label, Self::State)>;

    /// A safety violation in `s`, if any (checked on every reachable
    /// state, including the initial one).
    fn violation(&self, s: &Self::State) -> Option<Self::Violation>;

    /// Append all successors of `s` to `out` instead of allocating a
    /// fresh `Vec`. The work-stealing engine calls this with a reused
    /// per-worker buffer; implementations that can generate successors
    /// in place should override it (the default delegates to
    /// [`TransitionSystem::successors`]).
    fn successors_into(&self, s: &Self::State, out: &mut Vec<(Self::Label, Self::State)>) {
        out.extend(self.successors(s));
    }

    /// Per-worker scratch for [`TransitionSystem::expand_admitted`];
    /// engines create one per worker and reuse it for every expansion.
    fn expand_scratch(&self) -> ExpandScratch {
        ExpandScratch::none()
    }

    /// Admission-gated expansion: fingerprint every successor of `s`
    /// first, ask `admit` which fingerprints are worth keeping, and push
    /// only the admitted `(label, state, fingerprint)` triples to `out`.
    ///
    /// The contract, which all three engines rely on:
    ///
    /// * every candidate successor's fingerprint is passed to `admit`
    ///   (possibly across several calls), and `admit` fills one `bool` per
    ///   fingerprint — `true` means materialize;
    /// * an admitted triple's fingerprint is exactly what `admit` saw, and
    ///   hashing the materialized state through `fper` reproduces it;
    /// * `admit` is a *hint*, not a claim: engines still insert admitted
    ///   fingerprints into their seen-set authoritatively, so false
    ///   positives (a racing worker admitted the state first, or the same
    ///   fingerprint appears twice in one expansion) cost a wasted
    ///   materialization, never a duplicate or dropped state.
    ///
    /// The default materializes everything first (via
    /// [`TransitionSystem::successors_into`]) and filters afterwards —
    /// correct for any system; systems with expensive states override this
    /// to defer the clone/allocate work until after admission.
    fn expand_admitted(
        &self,
        s: &Self::State,
        scratch: &mut ExpandScratch,
        fper: &Fingerprinter,
        admit: &mut dyn FnMut(&[u128], &mut Vec<bool>),
        out: &mut Vec<(Self::Label, Self::State, u128)>,
    ) {
        let _ = scratch;
        eager_expand(self, s, fper, admit, out);
    }
}

/// Which search engine to run when `threads > 1`.
///
/// Both engines implement the same [`TransitionSystem`] contract and
/// return the same verdicts; keeping the old level-synchronous path
/// selectable enables differential testing (`tests/parallel_mc.rs` runs
/// every protocol under both).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Asynchronous work-stealing search ([`crate::ws::ws_search`]):
    /// chunked per-worker deques, batch-granular stealing, batched
    /// seen-set claiming. The default.
    #[default]
    WorkStealing,
    /// Level-synchronous parallel BFS ([`bfs_parallel`]): a barrier per
    /// BFS level, one seen-set lock per successor. Kept for differential
    /// testing and as the reference for depth-minimal exploration order.
    LevelSync,
}

/// Search limits.
///
/// Construct with the builder: `BfsOptions::new().max_states(50_000)`.
/// The struct is `#[non_exhaustive]` so new limits can be added without
/// breaking callers; `BfsOptions::default()` remains as an escape hatch
/// (fields stay public for reading and in-place mutation) but literal
/// construction outside this crate is no longer possible.
///
/// These are *scope* limits: hitting one yields a `Bounded` verdict ("the
/// state space is larger than I was asked to cover"). Resource limits that
/// interrupt a run resumably live in [`crate::control::Budget`] instead.
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct BfsOptions {
    /// Stop after visiting this many states.
    pub max_states: usize,
    /// Explore at most this many BFS levels.
    pub max_depth: usize,
}

impl Default for BfsOptions {
    fn default() -> Self {
        BfsOptions {
            max_states: 1_000_000,
            max_depth: usize::MAX,
        }
    }
}

impl BfsOptions {
    /// Default limits (1M states, unbounded depth); chain builder methods
    /// to adjust.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stop after visiting this many states.
    pub fn max_states(mut self, n: usize) -> Self {
        self.max_states = n;
        self
    }

    /// Explore at most this many BFS levels.
    pub fn max_depth(mut self, d: usize) -> Self {
        self.max_depth = d;
        self
    }
}

/// Search statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct McStats {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions explored.
    pub transitions: usize,
    /// Depth reached.
    pub depth: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Worker threads used (1 for the sequential searcher).
    pub workers: usize,
    /// Successful chunk steals across all workers (work-stealing engine
    /// only; 0 elsewhere).
    pub steals: usize,
    /// Seen-set lock acquisitions, i.e. batch inserts (work-stealing
    /// engine only; 0 elsewhere).
    pub seen_batches: usize,
    /// Peak number of states queued for expansion at any instant
    /// (work-stealing engine only; 0 elsewhere).
    pub peak_frontier: usize,
}

impl McStats {
    /// Distinct states visited per second of wall-clock time.
    pub fn states_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.states as f64 / secs
        } else {
            0.0
        }
    }
}

/// A violating run: the labels from the initial state to the bad state,
/// and the violation diagnosis.
#[derive(Clone, Debug)]
pub struct Counterexample<L, V = String> {
    /// Transition labels along the path.
    pub path: Vec<L>,
    /// The safety predicate's diagnosis.
    pub reason: V,
}

/// Result of a search.
#[derive(Clone, Debug)]
pub enum SearchResult<L, V = String> {
    /// Every reachable state (within limits) is safe, and no limit was hit.
    Safe(McStats),
    /// Every explored state is safe but a limit stopped the search.
    Bounded(McStats),
    /// A violation was found.
    Unsafe(Counterexample<L, V>, McStats),
}

impl<L, V> SearchResult<L, V> {
    /// Search statistics regardless of outcome.
    pub fn stats(&self) -> McStats {
        match self {
            SearchResult::Safe(s) | SearchResult::Bounded(s) => *s,
            SearchResult::Unsafe(_, s) => *s,
        }
    }

    /// Did the search prove safety exhaustively?
    pub fn is_safe(&self) -> bool {
        matches!(self, SearchResult::Safe(_))
    }
}

/// Everything an interrupted search needs to continue exactly where it
/// stopped: the fingerprint seeds, the seen-set, the unexpanded frontier
/// (with per-state BFS depths), the parent edges accumulated so far, and
/// the running totals.
///
/// The *consistency point* invariant all engines guarantee before handing
/// one of these back: every expanded state has all of its successors
/// admitted, and every admitted-but-unexpanded state appears in
/// `frontier`. Resuming therefore never re-expands or skips a state, and
/// the final verdict and state count match an uninterrupted run.
#[derive(Clone, Debug)]
pub struct SearchCheckpoint<S, L> {
    /// The [`Fingerprinter`] seeds; resume must hash under the same keys.
    pub seeds: [u64; 4],
    /// Fingerprint of the initial state (parent-chain terminator, and a
    /// resume-time sanity check that the system is the same one).
    pub init_fp: u128,
    /// Every admitted fingerprint.
    pub seen: Vec<u128>,
    /// Admitted-but-unexpanded states: `(state, fingerprint, depth)`.
    pub frontier: Vec<(S, u128, usize)>,
    /// Parent edges `(child_fp, parent_fp, label)` for counterexample
    /// reconstruction after resume.
    pub parents: Vec<(u128, u128, L)>,
    /// Distinct states admitted so far.
    pub states: usize,
    /// Transitions explored so far.
    pub transitions: usize,
    /// Deepest BFS level admitted so far.
    pub depth: usize,
}

/// Outcome of a budget-/cancel-aware search.
#[derive(Clone, Debug)]
pub enum ControlledSearch<S, L, V = String> {
    /// The search ran to a verdict (safe, bounded, or unsafe).
    Finished(SearchResult<L, V>),
    /// A budget tripped or a cancel arrived; the engine drained to a
    /// consistent point and packaged the partial search.
    Interrupted {
        /// Which limit stopped the run.
        reason: InterruptReason,
        /// Resumable snapshot of the partial search.
        checkpoint: SearchCheckpoint<S, L>,
        /// Statistics at the interrupt point.
        stats: McStats,
    },
}

impl<S, L, V> ControlledSearch<S, L, V> {
    /// Search statistics regardless of outcome.
    pub fn stats(&self) -> McStats {
        match self {
            ControlledSearch::Finished(r) => r.stats(),
            ControlledSearch::Interrupted { stats, .. } => *stats,
        }
    }
}

/// Mirror a finished search's aggregates into the telemetry registry.
///
/// Engines that already stream counters during the run (the work-stealing
/// searcher) pass `counters_live = true` so only gauges are written;
/// the sequential/level-sync engines publish everything here. Gauges
/// describe the *most recent* search — counters accumulate across runs.
pub(crate) fn publish_search_stats(stats: &McStats, counters_live: bool) {
    if !scv_telemetry::enabled() {
        return;
    }
    use scv_telemetry::Metric;
    if !counters_live {
        scv_telemetry::add(Metric::McStatesAdmitted, stats.states as u64);
        scv_telemetry::add(Metric::McTransitions, stats.transitions as u64);
        scv_telemetry::add(Metric::McSteals, stats.steals as u64);
        scv_telemetry::add(Metric::McSeenBatches, stats.seen_batches as u64);
    }
    scv_telemetry::set_gauge("mc.states", stats.states as f64);
    scv_telemetry::set_gauge("mc.depth", stats.depth as f64);
    scv_telemetry::set_gauge("mc.workers", stats.workers as f64);
    scv_telemetry::set_gauge("mc.peak_frontier", stats.peak_frontier as f64);
    scv_telemetry::set_gauge("mc.states_per_sec", stats.states_per_sec());
    scv_telemetry::set_gauge("mc.elapsed_secs", stats.elapsed.as_secs_f64());
}

/// Sequential BFS with parent tracking for counterexample extraction.
/// The seen-set stores 128-bit fingerprints, not states (see
/// [`Fingerprinter`]); full states live only in the frontier.
pub fn bfs<T: TransitionSystem>(sys: &T, opts: BfsOptions) -> SearchResult<T::Label, T::Violation> {
    let _t = scv_telemetry::timer(scv_telemetry::Phase::Search);
    let r = match bfs_controlled(sys, opts, &RunControl::unlimited(), None) {
        ControlledSearch::Finished(r) => r,
        ControlledSearch::Interrupted { .. } => {
            unreachable!("an unlimited RunControl never interrupts")
        }
    };
    publish_search_stats(&r.stats(), false);
    r
}

/// Sequential BFS under a [`RunControl`], optionally resuming a prior
/// [`SearchCheckpoint`].
///
/// Limits are checked once per state expansion (the admission boundary):
/// when one trips, the state about to be expanded goes back to the front
/// of the queue and the whole search — seen-set, frontier, parent edges —
/// is packaged into a checkpoint. The queue is FIFO over `(state, fp,
/// depth)` triples, so exploration order (and counterexample minimality on
/// fresh runs) matches the classic level-by-level formulation.
pub fn bfs_controlled<T: TransitionSystem>(
    sys: &T,
    opts: BfsOptions,
    ctrl: &RunControl,
    resume: Option<SearchCheckpoint<T::State, T::Label>>,
) -> ControlledSearch<T::State, T::Label, T::Violation> {
    use scv_telemetry::recorder;
    let start = Instant::now();
    if recorder::recorder_enabled() {
        recorder::set_worker("main");
    }
    let fper = match &resume {
        Some(ck) => Fingerprinter::from_seeds(ck.seeds),
        None => Fingerprinter::new(),
    };
    let mut stats = McStats {
        workers: 1,
        ..Default::default()
    };
    // Seen map: fingerprint -> parent edge; the label chain is all a
    // counterexample needs.
    let mut seen: HashMap<u128, Option<(u128, T::Label)>> = HashMap::new();
    let mut frontier: VecDeque<(T::State, u128, usize)> = VecDeque::new();
    let init_fp;

    match resume {
        Some(ck) => {
            init_fp = ck.init_fp;
            seen.reserve(ck.seen.len());
            for fp in &ck.seen {
                seen.insert(*fp, None);
            }
            for (child, parent, label) in ck.parents {
                seen.insert(child, Some((parent, label)));
            }
            stats.states = ck.states;
            stats.transitions = ck.transitions;
            stats.depth = ck.depth;
            frontier.extend(ck.frontier);
        }
        None => {
            let init = sys.initial();
            init_fp = fper.fp(&init);
            seen.insert(init_fp, None);
            stats.states = 1;
            if let Some(reason) = sys.violation(&init) {
                stats.elapsed = start.elapsed();
                return ControlledSearch::Finished(SearchResult::Unsafe(
                    Counterexample {
                        path: Vec::new(),
                        reason,
                    },
                    stats,
                ));
            }
            frontier.push_back((init, init_fp, 0));
        }
    }

    let rebuild = |seen: &HashMap<u128, Option<(u128, T::Label)>>, mut at: u128| -> Vec<T::Label> {
        let mut path = Vec::new();
        while let Some(Some((p, l))) = seen.get(&at) {
            path.push(l.clone());
            at = *p;
        }
        path.reverse();
        path
    };

    let mut scratch = sys.expand_scratch();
    let mut admitted: Vec<(T::Label, T::State, u128)> = Vec::new();
    let mut truncated = false;
    let mut depth_limited = false;
    let mut ticks = 0u32;
    let mut rec_depth = usize::MAX; // last depth the recorder sampled at
    while let Some((s, sfp, d)) = frontier.pop_front() {
        if let Some(reason) = ctrl.trip(stats.states, &mut ticks) {
            frontier.push_front((s, sfp, d));
            stats.elapsed = start.elapsed();
            let checkpoint = SearchCheckpoint {
                seeds: fper.seeds(),
                init_fp,
                seen: seen.keys().copied().collect(),
                frontier: frontier.into_iter().collect(),
                parents: seen
                    .iter()
                    .filter_map(|(c, p)| p.as_ref().map(|(pf, l)| (*c, *pf, l.clone())))
                    .collect(),
                states: stats.states,
                transitions: stats.transitions,
                depth: stats.depth,
            };
            return ControlledSearch::Interrupted {
                reason,
                checkpoint,
                stats,
            };
        }
        if d >= opts.max_depth {
            depth_limited = true;
            continue;
        }
        if recorder::recorder_enabled() && rec_depth != d {
            rec_depth = d;
            recorder::counter(
                recorder::CounterTrack::FrontierDepth,
                frontier.len() as f64 + 1.0,
            );
            recorder::counter(recorder::CounterTrack::SeenStates, stats.states as f64);
            recorder::set_live(
                recorder::LiveGauge::FrontierDepth,
                frontier.len() as u64 + 1,
            );
        }
        // Admission gate: probe the seen-set with fingerprints so
        // duplicate successors are rejected before materialization.
        admitted.clear();
        {
            let seen = &seen;
            let transitions = &mut stats.transitions;
            let mut admit = |fps: &[u128], keep: &mut Vec<bool>| {
                *transitions += fps.len();
                keep.clear();
                keep.extend(fps.iter().map(|fp| !seen.contains_key(fp)));
            };
            sys.expand_admitted(&s, &mut scratch, &fper, &mut admit, &mut admitted);
        }
        for (label, t, fp) in admitted.drain(..) {
            // Authoritative insert: within-expansion duplicates both
            // pass the probe, so re-check here.
            match seen.entry(fp) {
                std::collections::hash_map::Entry::Occupied(_) => continue,
                std::collections::hash_map::Entry::Vacant(v) => v.insert(Some((sfp, label))),
            };
            stats.states += 1;
            stats.depth = stats.depth.max(d + 1);
            if let Some(reason) = sys.violation(&t) {
                stats.elapsed = start.elapsed();
                return ControlledSearch::Finished(SearchResult::Unsafe(
                    Counterexample {
                        path: rebuild(&seen, fp),
                        reason,
                    },
                    stats,
                ));
            }
            if stats.states >= opts.max_states {
                truncated = true;
                break;
            }
            frontier.push_back((t, fp, d + 1));
        }
        if truncated {
            break;
        }
    }
    stats.elapsed = start.elapsed();
    ControlledSearch::Finished(if truncated || depth_limited {
        SearchResult::Bounded(stats)
    } else {
        SearchResult::Safe(stats)
    })
}

/// Parallel level-synchronous BFS: each level's frontier is split among
/// scoped worker threads; the seen-set is sharded by state hash behind
/// mutexes. Returns the same verdicts as [`bfs`] (the counterexample path
/// is reconstructed from parent edges stored in the shards).
pub fn bfs_parallel<T>(
    sys: &T,
    opts: BfsOptions,
    threads: usize,
) -> SearchResult<T::Label, T::Violation>
where
    T: TransitionSystem + Sync,
    T::State: Sync,
    T::Label: Sync,
{
    if threads <= 1 {
        return bfs(sys, opts);
    }
    let _t = scv_telemetry::timer(scv_telemetry::Phase::Search);
    let r = match bfs_parallel_controlled(sys, opts, threads, &RunControl::unlimited(), None) {
        ControlledSearch::Finished(r) => r,
        ControlledSearch::Interrupted { .. } => {
            unreachable!("an unlimited RunControl never interrupts")
        }
    };
    publish_search_stats(&r.stats(), false);
    r
}

/// One shard of the parallel parent map: fingerprint -> optional
/// (parent fingerprint, label) edge.
type ParentShard<L> = Mutex<HashMap<u128, Option<(u128, L)>>>;

/// Collect the contents of sharded parent maps into checkpoint form:
/// every key into `seen`, every recorded edge into `parents`.
fn drain_shard_maps<L: Clone>(shards: &[ParentShard<L>]) -> (Vec<u128>, Vec<(u128, u128, L)>) {
    let mut seen = Vec::new();
    let mut parents = Vec::new();
    for shard in shards {
        let m = shard.lock().unwrap();
        for (child, edge) in m.iter() {
            seen.push(*child);
            if let Some((parent, label)) = edge {
                parents.push((*child, *parent, label.clone()));
            }
        }
    }
    (seen, parents)
}

/// Level-synchronous parallel BFS under a [`RunControl`], optionally
/// resuming a prior [`SearchCheckpoint`].
///
/// Workers poll the control once per state (the admission boundary) and
/// raise a shared interrupt flag on a trip; every worker then stops
/// *between* expansions, so each processed state has all successors
/// admitted. The checkpoint frontier is the unprocessed remainder of each
/// worker's chunk plus everything admitted this level.
pub fn bfs_parallel_controlled<T>(
    sys: &T,
    opts: BfsOptions,
    threads: usize,
    ctrl: &RunControl,
    resume: Option<SearchCheckpoint<T::State, T::Label>>,
) -> ControlledSearch<T::State, T::Label, T::Violation>
where
    T: TransitionSystem + Sync,
    T::State: Sync,
    T::Label: Sync,
{
    if threads <= 1 {
        return bfs_controlled(sys, opts, ctrl, resume);
    }
    use scv_telemetry::recorder;
    const SHARDS: usize = 64;
    let start = Instant::now();
    if recorder::recorder_enabled() {
        recorder::set_worker("main");
    }
    let fper = match &resume {
        Some(ck) => Fingerprinter::from_seeds(ck.seeds),
        None => Fingerprinter::new(),
    };
    let shard_of = |fp: u128| -> usize { (fp as usize) % SHARDS };
    // Shard maps: fingerprint -> (parent fingerprint, label); the label
    // chain is all a counterexample needs.
    type Parent<T> = Option<(u128, <T as TransitionSystem>::Label)>;
    let shards: Vec<Mutex<HashMap<u128, Parent<T>>>> =
        (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect();

    let n_states = AtomicU64::new(0);
    let n_trans = AtomicU64::new(0);
    let depth_max = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let interrupt = AtomicU8::new(0);
    let depth_limited = AtomicBool::new(false);
    let found: Mutex<Option<(u128, T::Violation)>> = Mutex::new(None);
    let init_fp;

    let mut frontier: Vec<(T::State, u128, usize)>;
    match resume {
        Some(ck) => {
            init_fp = ck.init_fp;
            for fp in &ck.seen {
                shards[shard_of(*fp)].lock().unwrap().insert(*fp, None);
            }
            for (child, parent, label) in ck.parents {
                shards[shard_of(child)]
                    .lock()
                    .unwrap()
                    .insert(child, Some((parent, label)));
            }
            n_states.store(ck.states as u64, Ordering::Relaxed);
            n_trans.store(ck.transitions as u64, Ordering::Relaxed);
            depth_max.store(ck.depth as u64, Ordering::Relaxed);
            frontier = ck.frontier;
        }
        None => {
            let init = sys.initial();
            if let Some(reason) = sys.violation(&init) {
                let stats = McStats {
                    states: 1,
                    elapsed: start.elapsed(),
                    ..Default::default()
                };
                return ControlledSearch::Finished(SearchResult::Unsafe(
                    Counterexample {
                        path: Vec::new(),
                        reason,
                    },
                    stats,
                ));
            }
            init_fp = fper.fp(&init);
            shards[shard_of(init_fp)]
                .lock()
                .unwrap()
                .insert(init_fp, None);
            n_states.store(1, Ordering::Relaxed);
            frontier = vec![(init, init_fp, 0)];
        }
    }

    let mut truncated = false;
    // Per-worker expansion scratch, hoisted out of the level loop so the
    // replay buffers and seal caches survive across levels.
    let mut scratches: Vec<ExpandScratch> = (0..threads).map(|_| sys.expand_scratch()).collect();

    while !frontier.is_empty() && !stop.load(Ordering::Relaxed) {
        if recorder::recorder_enabled() {
            recorder::counter(recorder::CounterTrack::FrontierDepth, frontier.len() as f64);
            recorder::counter(
                recorder::CounterTrack::SeenStates,
                n_states.load(Ordering::Relaxed) as f64,
            );
            recorder::set_live(recorder::LiveGauge::FrontierDepth, frontier.len() as u64);
        }
        // A frontier entry: state, its fingerprint, and its depth.
        type Entry<S> = (S, u128, usize);
        let chunk_slices: Vec<&[Entry<T::State>]> =
            frontier.chunks(frontier.len().div_ceil(threads)).collect();
        // Each worker returns (admitted successors, states fully processed):
        // on an interrupt the unprocessed chunk tail goes back into the
        // checkpoint frontier.
        let results: Vec<(Vec<Entry<T::State>>, usize)> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunk_slices
                .iter()
                .copied()
                .zip(scratches.iter_mut())
                .enumerate()
                .map(|(wi, (chunk, scratch))| {
                    let shards = &shards;
                    let n_states = &n_states;
                    let n_trans = &n_trans;
                    let depth_max = &depth_max;
                    let stop = &stop;
                    let interrupt = &interrupt;
                    let depth_limited = &depth_limited;
                    let found = &found;
                    let fper = &fper;
                    let shard_of = &shard_of;
                    scope.spawn(move || {
                        if recorder::recorder_enabled() {
                            recorder::set_worker(&format!("bfs-{wi}"));
                        }
                        let mut local = Vec::new();
                        let mut admitted: Vec<(T::Label, T::State, u128)> = Vec::new();
                        let mut ticks = 0u32;
                        let mut processed = 0usize;
                        for (s, sfp, d) in chunk {
                            if stop.load(Ordering::Relaxed)
                                || interrupt.load(Ordering::Relaxed) != 0
                            {
                                break;
                            }
                            if let Some(reason) =
                                ctrl.trip(n_states.load(Ordering::Relaxed) as usize, &mut ticks)
                            {
                                let _ = interrupt.compare_exchange(
                                    0,
                                    reason_to_code(reason),
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                );
                                break;
                            }
                            if *d >= opts.max_depth {
                                depth_limited.store(true, Ordering::Relaxed);
                                processed += 1;
                                continue;
                            }
                            // Probe-only admission (one shard lock per
                            // candidate); the insert below stays
                            // authoritative, so probe races are safe.
                            admitted.clear();
                            let mut admit = |fps: &[u128], keep: &mut Vec<bool>| {
                                n_trans.fetch_add(fps.len() as u64, Ordering::Relaxed);
                                keep.clear();
                                keep.extend(fps.iter().map(|fp| {
                                    !shards[shard_of(*fp)].lock().unwrap().contains_key(fp)
                                }));
                            };
                            sys.expand_admitted(s, scratch, fper, &mut admit, &mut admitted);
                            let mut broke = false;
                            for (label, t, tfp) in admitted.drain(..) {
                                {
                                    let mut m = shards[shard_of(tfp)].lock().unwrap();
                                    if m.contains_key(&tfp) {
                                        continue;
                                    }
                                    m.insert(tfp, Some((*sfp, label)));
                                }
                                let total = n_states.fetch_add(1, Ordering::Relaxed) + 1;
                                depth_max.fetch_max(*d as u64 + 1, Ordering::Relaxed);
                                if let Some(v) = sys.violation(&t) {
                                    *found.lock().unwrap() = Some((tfp, v));
                                    stop.store(true, Ordering::Relaxed);
                                    broke = true;
                                    break;
                                }
                                if total as usize >= opts.max_states {
                                    stop.store(true, Ordering::Relaxed);
                                    broke = true;
                                    break;
                                }
                                local.push((t, tfp, d + 1));
                            }
                            if broke {
                                break;
                            }
                            processed += 1;
                        }
                        // Level threads are short-lived; move their rings
                        // into the collected set before the scope joins
                        // (TLS destructors may run after `scope` returns).
                        recorder::flush_worker();
                        (local, processed)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect::<Vec<_>>()
        });

        let tripped = interrupt.load(Ordering::Relaxed);
        if tripped != 0 && !stop.load(Ordering::Relaxed) {
            // Consistent point: every processed state is fully expanded;
            // the snapshot frontier is each chunk's unprocessed tail plus
            // everything admitted this level.
            let mut snap: Vec<(T::State, u128, usize)> = Vec::new();
            for (chunk, (local, processed)) in chunk_slices.iter().zip(results) {
                snap.extend(chunk[processed..].iter().cloned());
                snap.extend(local);
            }
            let (seen, parents) = drain_shard_maps(&shards);
            let stats = McStats {
                states: n_states.load(Ordering::Relaxed) as usize,
                transitions: n_trans.load(Ordering::Relaxed) as usize,
                depth: depth_max.load(Ordering::Relaxed) as usize,
                elapsed: start.elapsed(),
                workers: threads,
                ..Default::default()
            };
            let checkpoint = SearchCheckpoint {
                seeds: fper.seeds(),
                init_fp,
                seen,
                frontier: snap,
                parents,
                states: stats.states,
                transitions: stats.transitions,
                depth: stats.depth,
            };
            return ControlledSearch::Interrupted {
                reason: code_to_reason(tripped),
                checkpoint,
                stats,
            };
        }

        frontier = results.into_iter().flat_map(|(local, _)| local).collect();
        if stop.load(Ordering::Relaxed) {
            truncated = true;
            break;
        }
    }

    let mut stats = McStats {
        states: n_states.load(Ordering::Relaxed) as usize,
        transitions: n_trans.load(Ordering::Relaxed) as usize,
        depth: depth_max.load(Ordering::Relaxed) as usize,
        elapsed: start.elapsed(),
        workers: threads,
        ..Default::default()
    };
    let found = found.lock().unwrap().take();
    if let Some((bad, reason)) = found {
        // Reconstruct the label path through the shard parent maps.
        let mut path = Vec::new();
        let mut cur = bad;
        loop {
            let parent = shards[shard_of(cur)]
                .lock()
                .unwrap()
                .get(&cur)
                .cloned()
                .flatten();
            match parent {
                Some((p, l)) => {
                    path.push(l);
                    cur = p;
                }
                None => break,
            }
        }
        path.reverse();
        stats.elapsed = start.elapsed();
        return ControlledSearch::Finished(SearchResult::Unsafe(
            Counterexample { path, reason },
            stats,
        ));
    }
    ControlledSearch::Finished(if truncated || depth_limited.load(Ordering::Relaxed) {
        SearchResult::Bounded(stats)
    } else {
        SearchResult::Safe(stats)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::{Budget, CancelToken};

    /// A counter modulo n that "violates" at a designated value.
    struct Counter {
        n: u32,
        bad: Option<u32>,
    }

    impl TransitionSystem for Counter {
        type State = u32;
        type Label = &'static str;
        type Violation = String;

        fn initial(&self) -> u32 {
            0
        }
        fn successors(&self, s: &u32) -> Vec<(&'static str, u32)> {
            vec![("inc", (s + 1) % self.n), ("dbl", (s * 2) % self.n)]
        }
        fn violation(&self, s: &u32) -> Option<String> {
            (Some(*s) == self.bad).then(|| format!("hit {s}"))
        }
    }

    #[test]
    fn safe_system_explores_all_states() {
        let sys = Counter { n: 97, bad: None };
        let r = bfs(&sys, BfsOptions::default());
        assert!(r.is_safe());
        assert_eq!(r.stats().states, 97);
    }

    #[test]
    fn violation_found_with_shortest_path() {
        let sys = Counter {
            n: 97,
            bad: Some(5),
        };
        match bfs(&sys, BfsOptions::default()) {
            SearchResult::Unsafe(ce, _) => {
                assert_eq!(ce.reason, "hit 5");
                // Shortest path to 5: 0->1->2->4->5 (inc,dbl,dbl,inc) = 4 steps
                // or 0->1->2->3->... BFS guarantees minimality: length 4.
                assert_eq!(ce.path.len(), 4);
                // Replay the path.
                let mut s = 0u32;
                for l in &ce.path {
                    s = match *l {
                        "inc" => (s + 1) % 97,
                        _ => (s * 2) % 97,
                    };
                }
                assert_eq!(s, 5);
            }
            r => panic!("expected Unsafe, got {r:?}"),
        }
    }

    #[test]
    fn state_limit_reports_bounded() {
        let sys = Counter { n: 1000, bad: None };
        let r = bfs(&sys, BfsOptions::new().max_states(10));
        assert!(matches!(r, SearchResult::Bounded(_)));
    }

    #[test]
    fn depth_limit_reports_bounded() {
        let sys = Counter { n: 1000, bad: None };
        let r = bfs(&sys, BfsOptions::new().max_states(usize::MAX).max_depth(3));
        assert!(matches!(r, SearchResult::Bounded(_)));
    }

    #[test]
    fn parallel_agrees_with_sequential_on_safe() {
        let sys = Counter { n: 977, bad: None };
        let seq = bfs(&sys, BfsOptions::default());
        let par = bfs_parallel(&sys, BfsOptions::default(), 4);
        assert!(seq.is_safe() && par.is_safe());
        assert_eq!(seq.stats().states, par.stats().states);
    }

    #[test]
    fn parallel_finds_violations() {
        let sys = Counter {
            n: 977,
            bad: Some(123),
        };
        match bfs_parallel(&sys, BfsOptions::default(), 4) {
            SearchResult::Unsafe(ce, _) => {
                let mut s = 0u32;
                for l in &ce.path {
                    s = match *l {
                        "inc" => (s + 1) % 977,
                        _ => (s * 2) % 977,
                    };
                }
                assert_eq!(s, 123, "path must replay to the bad state");
            }
            r => panic!("expected Unsafe, got {r:?}"),
        }
    }

    #[test]
    fn violating_initial_state_caught() {
        let sys = Counter {
            n: 10,
            bad: Some(0),
        };
        match bfs(&sys, BfsOptions::default()) {
            SearchResult::Unsafe(ce, _) => assert!(ce.path.is_empty()),
            r => panic!("expected Unsafe, got {r:?}"),
        }
        match bfs_parallel(&sys, BfsOptions::default(), 2) {
            SearchResult::Unsafe(ce, _) => assert!(ce.path.is_empty()),
            r => panic!("expected Unsafe, got {r:?}"),
        }
    }

    /// Interrupt a sequential run with a state budget, then resume from
    /// the checkpoint: verdict and total state count must match a clean
    /// run, and the interrupt must report accurate coverage.
    #[test]
    fn sequential_interrupt_resume_matches_clean_run() {
        let sys = Counter { n: 977, bad: None };
        let clean = bfs(&sys, BfsOptions::default());
        for cut in [1usize, 7, 100, 500] {
            let ctrl = RunControl::new(&Budget::unlimited().states(cut), CancelToken::new());
            let r = bfs_controlled(&sys, BfsOptions::default(), &ctrl, None);
            let ControlledSearch::Interrupted {
                reason,
                checkpoint,
                stats,
            } = r
            else {
                panic!("budget of {cut} must interrupt a 977-state space");
            };
            assert_eq!(reason, InterruptReason::StateBudget);
            assert!(stats.states >= cut);
            assert!(!checkpoint.frontier.is_empty(), "cut {cut}");
            assert_eq!(checkpoint.seen.len(), checkpoint.states, "cut {cut}");
            let resumed = bfs_controlled(
                &sys,
                BfsOptions::default(),
                &RunControl::unlimited(),
                Some(checkpoint),
            );
            let ControlledSearch::Finished(r2) = resumed else {
                panic!("unlimited resume must finish");
            };
            assert!(r2.is_safe(), "cut {cut}");
            assert_eq!(r2.stats().states, clean.stats().states, "cut {cut}");
            assert_eq!(r2.stats().depth, clean.stats().depth, "cut {cut}");
        }
    }

    /// Same for the level-synchronous parallel engine, including resuming
    /// a parallel checkpoint on a different thread count.
    #[test]
    fn levelsync_interrupt_resume_matches_clean_run() {
        let sys = Counter { n: 977, bad: None };
        let clean = bfs(&sys, BfsOptions::default());
        for cut in [5usize, 200, 800] {
            let ctrl = RunControl::new(&Budget::unlimited().states(cut), CancelToken::new());
            let r = bfs_parallel_controlled(&sys, BfsOptions::default(), 4, &ctrl, None);
            let ControlledSearch::Interrupted { checkpoint, .. } = r else {
                panic!("budget of {cut} must interrupt a 977-state space");
            };
            let resumed = bfs_parallel_controlled(
                &sys,
                BfsOptions::default(),
                2,
                &RunControl::unlimited(),
                Some(checkpoint),
            );
            let ControlledSearch::Finished(r2) = resumed else {
                panic!("unlimited resume must finish");
            };
            assert!(r2.is_safe(), "cut {cut}");
            assert_eq!(r2.stats().states, clean.stats().states, "cut {cut}");
        }
    }

    /// A resumed run still finds violations, and the reconstructed path
    /// replays to the bad state.
    #[test]
    fn resume_still_finds_violation() {
        let sys = Counter {
            n: 977,
            bad: Some(900),
        };
        let ctrl = RunControl::new(&Budget::unlimited().states(50), CancelToken::new());
        let ControlledSearch::Interrupted { checkpoint, .. } =
            bfs_controlled(&sys, BfsOptions::default(), &ctrl, None)
        else {
            panic!("expected interrupt");
        };
        let ControlledSearch::Finished(SearchResult::Unsafe(ce, _)) = bfs_controlled(
            &sys,
            BfsOptions::default(),
            &RunControl::unlimited(),
            Some(checkpoint),
        ) else {
            panic!("resume must find the violation");
        };
        let mut s = 0u32;
        for l in &ce.path {
            s = match *l {
                "inc" => (s + 1) % 977,
                _ => (s * 2) % 977,
            };
        }
        assert_eq!(s, 900, "path must replay to the bad state");
    }

    /// Cancellation interrupts promptly and the checkpoint resumes.
    #[test]
    fn cancel_interrupts_sequential_run() {
        let sys = Counter { n: 977, bad: None };
        let token = CancelToken::new();
        token.cancel();
        let ctrl = RunControl::new(&Budget::unlimited(), token);
        match bfs_controlled(&sys, BfsOptions::default(), &ctrl, None) {
            ControlledSearch::Interrupted { reason, .. } => {
                assert_eq!(reason, InterruptReason::Cancelled)
            }
            r => panic!("expected Interrupted, got stats {:?}", r.stats()),
        }
    }

    /// Fingerprinter seeds round-trip: same seeds, same fingerprints.
    #[test]
    fn fingerprinter_seed_roundtrip() {
        let f1 = Fingerprinter::new();
        let f2 = Fingerprinter::from_seeds(f1.seeds());
        for v in [0u64, 1, 42, u64::MAX] {
            assert_eq!(f1.fp(&v), f2.fp(&v));
            assert_eq!(f1.fp64(&v), f2.fp64(&v));
        }
        let f3 = Fingerprinter::new();
        assert_ne!(
            f1.fp(&7u64),
            f3.fp(&7u64),
            "independent fingerprinters should disagree"
        );
    }
}
