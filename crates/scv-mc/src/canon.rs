//! Sort-based symmetry canonicalization — the fast path behind
//! [`crate::SymmetryMode::Proc`] and [`crate::SymmetryMode::Full`].
//!
//! The reference canonicalizer (`VerifySystem::orbit_min`, kept selectable
//! as [`crate::SymmetryMode::FullEnum`]) walks the *entire* capped group:
//! `|G| - 1` renamed encodings per sealed state, each a full
//! observer/checker traversal. This module computes the **same
//! lexicographic minimum** — bit-for-bit, so fingerprints, state counts,
//! and checkpoints are interchangeable across the two paths — in three
//! accelerated phases:
//!
//! 1. **Sort-based refinement.** One symmetric dimension (the *inner*
//!    dimension, chosen as the sortable one with the largest factorial)
//!    acts positionally on a prefix of the protocol encoding
//!    ([`Symmetry::sort_keys`]). Stably sorting its elements by their
//!    composite key words yields the lexicographically minimal arrangement
//!    of that prefix in `O(n·lg n)` — when the keys are all distinct this
//!    *is* the unique argmin, and the whole inner factorial collapses to
//!    one candidate.
//! 2. **Residual-subgroup enumeration.** Tied key runs leave a residual
//!    subgroup `∏ len(run)!` that the prefix cannot discriminate; only
//!    those arrangements (times the enumerated *outer* perms over the
//!    remaining dimensions) are completed to full candidates.
//! 3. **Incremental word-by-word comparison.** Each completed candidate
//!    streams its encoding through a [`CmpSink`] against the incumbent
//!    minimum and aborts at the first losing word — most candidates die
//!    within a handful of words instead of paying a full encoding walk.
//!    The covered prefix itself is skipped outright
//!    ([`CmpSink::skip_equal`]) once it is known to tie the incumbent's.
//!
//! Every candidate is a member of the materialized capped group, located
//! by its factorial-number-system rank, so the precomputed location maps
//! (and their long-lived borrows inside the aux-ID renamer) are reused —
//! the steady-state loop allocates nothing.

use crate::verify::PermEntry;
use scv_checker::ScChecker;
use scv_descriptor::{CmpOutcome, CmpSink, EncSink, IdCanon, SymView};
use scv_observer::Observer;
use scv_protocol::Symmetry;
use scv_types::{ResidualEnum, SortKeyBuf, SymDim, SymDims};

fn factorial(n: u8) -> usize {
    (1..=n as usize).product::<usize>().max(1)
}

/// Lexicographic rank of a forward permutation map among all permutations
/// of its length — the factorial-number-system index matching the order
/// `SymPerm::group` enumerates each dimension in.
fn lex_rank(fwd: &[u8]) -> usize {
    let n = fwd.len();
    let mut rank = 0usize;
    for i in 0..n {
        let smaller_later = fwd[i + 1..].iter().filter(|&&x| x < fwd[i]).count();
        rank = rank * (n - i) + smaller_later;
    }
    rank
}

/// The static shape of the fast path for one `VerifySystem`: which
/// dimension is resolved by sorting, and where each outer coset leader
/// (inner part = identity) sits in the materialized group list.
pub(crate) struct FastPlan {
    /// The dimension resolved by sort-based refinement.
    pub(crate) inner: SymDim,
    /// Index stride of the inner dimension's rank in the group list
    /// (`SymPerm::group` enumerates procs ⋉ blocks ⋉ values, values
    /// innermost).
    pub(crate) inner_stride: usize,
    /// Group-list index of every outer element's coset leader, ascending
    /// (so `[0]` is the identity).
    pub(crate) outer_base: Vec<usize>,
    /// Observer-extension layout: `ext[e]` lists the 0-based locations the
    /// inner dimension moves together with element `e`, in identity
    /// position order — verified at build time against every inner
    /// element's materialized location map (see [`FastPlan::derive_ext`]).
    /// When present, the owner words of those locations extend each
    /// element's sort key past the protocol prefix through the encoding's
    /// `loc_owner` section, and locations in no row are fixed by every
    /// inner renaming (their words never discriminate).
    pub(crate) ext: Option<Vec<Vec<u32>>>,
}

impl FastPlan {
    /// Build the plan for a capped dimension set whose materialized group
    /// has `group_len` elements, or `None` when no enabled dimension is
    /// sortable (the caller then falls back to full enumeration).
    pub(crate) fn build<P: Symmetry>(
        protocol: &P,
        dims: SymDims,
        perms: &[PermEntry],
    ) -> Option<FastPlan> {
        let group_len = perms.len();
        let params = protocol.params();
        let init = protocol.initial();
        let mut keys = SortKeyBuf::new();
        // The sortable dimension with the largest factorial benefits most
        // from refinement; the others are enumerated as outer perms.
        let inner = SymDim::ALL
            .into_iter()
            .filter(|&d| dims.has(d) && d.count(params) >= 2)
            .filter(|&d| protocol.sort_keys(&init, d, &mut keys).is_some())
            .max_by_key(|&d| d.count(params))?;
        let per_dim = |d: SymDim| {
            if dims.has(d) {
                factorial(d.count(params))
            } else {
                1
            }
        };
        let (np, nb, nv) = (
            per_dim(SymDim::Procs),
            per_dim(SymDim::Blocks),
            per_dim(SymDim::Values),
        );
        debug_assert_eq!(np * nb * nv, group_len, "group list matches dims");
        let inner_stride = match inner {
            SymDim::Procs => nb * nv,
            SymDim::Blocks => nv,
            SymDim::Values => 1,
        };
        let inner_count = factorial(inner.count(params));
        let mut outer_base = Vec::with_capacity(group_len / inner_count);
        for idx in 0..group_len {
            if (idx / inner_stride) % inner_count == 0 {
                outer_base.push(idx);
            }
        }
        let ext = Self::derive_ext(params, inner, inner_stride, inner_count, perms);
        Some(FastPlan {
            inner,
            inner_stride,
            outer_base,
            ext,
        })
    }

    /// Derive and *verify* the per-element location rows the observer key
    /// extension needs. The candidate layout is guessed from the standard
    /// location spaces (`p·b` proc-major cache lines plus `b` memory
    /// locations, or `b` bare block locations), then checked exhaustively
    /// against the materialized location map of every inner group element:
    /// row `j` of element `e` must land on row `j` of `e`'s image, and
    /// every location outside the rows must be fixed. A protocol with any
    /// other location structure simply fails verification and keeps
    /// protocol-only keys — never an unsound extension.
    fn derive_ext(
        params: scv_types::Params,
        inner: SymDim,
        inner_stride: usize,
        inner_count: usize,
        perms: &[PermEntry],
    ) -> Option<Vec<Vec<u32>>> {
        let n = inner.count(params) as usize;
        let l = perms[0].locs.len().checked_sub(1)?;
        let (p, b) = (params.p as usize, params.b as usize);
        let rows: Vec<Vec<u32>> = match inner {
            SymDim::Procs if l == p * b + b => (0..n)
                .map(|e| (e * b..(e + 1) * b).map(|x| x as u32).collect())
                .collect(),
            SymDim::Blocks if l == p * b + b => (0..n)
                .map(|e| {
                    (0..p)
                        .map(|pi| (pi * b + e) as u32)
                        .chain([(p * b + e) as u32])
                        .collect()
                })
                .collect(),
            SymDim::Blocks if l == b => (0..n).map(|e| vec![e as u32]).collect(),
            // Unknown layout (or the values dimension, which never moves
            // locations): claim no rows — verification below then demands
            // every location be fixed, which still extends the covered
            // prefix through the whole (invariant) owner section.
            _ => vec![Vec::new(); n],
        };
        let mut in_row = vec![false; l];
        for row in &rows {
            for &pos in row {
                in_row[pos as usize] = true;
            }
        }
        for w in 0..inner_count {
            let e = &perms[w * inner_stride];
            let img = |x: usize| match inner {
                SymDim::Procs => e.perm.proc_idx(x),
                SymDim::Blocks => e.perm.block_idx(x),
                SymDim::Values => e.perm.value_idx(x),
            };
            for (elem, row) in rows.iter().enumerate() {
                let target = &rows[img(elem)];
                for (j, &pos) in row.iter().enumerate() {
                    if e.locs[pos as usize + 1] as usize - 1 != target[j] as usize {
                        return None;
                    }
                }
            }
            for (pos, covered) in in_row.iter().enumerate() {
                if !covered && e.locs[pos + 1] as usize - 1 != pos {
                    return None;
                }
            }
        }
        Some(rows)
    }

    /// Group-list index of the candidate composed of outer coset leader
    /// `base` and the inner forward map `fwd`.
    fn candidate_index(&self, base: usize, fwd: &[u8]) -> usize {
        base + lex_rank(fwd) * self.inner_stride
    }
}

fn inner_map_matches(perm: &scv_types::SymPerm, dim: SymDim, fwd: &[u8]) -> bool {
    (0..fwd.len()).all(|i| {
        let got = match dim {
            SymDim::Procs => perm.proc_idx(i),
            SymDim::Blocks => perm.block_idx(i),
            SymDim::Values => perm.value_idx(i),
        };
        got == fwd[i] as usize
    })
}

/// Reusable work buffers for [`fast_min`] — non-generic, so one instance
/// serves both the per-worker lazy scratch and the thread-local used by
/// the eager seal path.
pub(crate) struct CanonScratch {
    keys: SortKeyBuf,
    /// Observer-extension key per element (owner words of its location
    /// row) — compared *after* `keys`, refining its ties.
    ext_keys: SortKeyBuf,
    /// Full-observer key per element (`last_op` + `bot_anchor` row) —
    /// compared after `ext_keys`, refining its ties through the entire
    /// observer encoding.
    obs_keys: SortKeyBuf,
    /// Owner words of the observer's `loc_owner` section, identity order.
    owner: Vec<u64>,
    /// Inverse block map of the current outer coset leader.
    binv: Vec<u8>,
    /// `order[rank]` = inner element stably sorted to that rank.
    order: Vec<u8>,
    /// Maximal tied-key rank runs of `order`.
    runs: Vec<(u32, u32)>,
    residual: ResidualEnum,
    /// Forward map scratch (`fwd[element] = rank`).
    fwd: Vec<u8>,
    /// Renamed protocol-encoding scratch for candidates whose proto words
    /// are not fully covered by the sort keys.
    proto_cand: Vec<u64>,
}

impl CanonScratch {
    pub(crate) fn new() -> CanonScratch {
        CanonScratch {
            keys: SortKeyBuf::new(),
            ext_keys: SortKeyBuf::new(),
            obs_keys: SortKeyBuf::new(),
            owner: Vec::new(),
            binv: Vec::new(),
            order: Vec::new(),
            runs: Vec::new(),
            residual: ResidualEnum::new(),
            fwd: Vec::new(),
            proto_cand: Vec::new(),
        }
    }
}

/// Compute the orbit-minimum encoding of a product state via sort-based
/// refinement + residual enumeration + incremental comparison.
///
/// On entry, `best` holds the identity candidate (injective protocol
/// prefix of `proto_len` words, then the plain canonical encodings) when
/// `have_identity` is true; otherwise only the protocol prefix, and the
/// first enumerated candidate is materialized as the incumbent instead
/// (saving the identity's observer/checker walk when no cache key needs
/// it). On exit `best` holds exactly the encoding `orbit_min` would have
/// produced — byte-for-byte, tie counts included.
///
/// `identity_obs_end` is the length of `best` after the identity's
/// observer encoding (before the checker's), used to extend block-shared
/// prefix pruning through the whole observer section — pass 0 when
/// unknown (or `have_identity` is false) and it is derived from the first
/// materialized candidate instead.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fast_min<P: Symmetry>(
    protocol: &P,
    plan: &FastPlan,
    perms: &[PermEntry],
    proto: &P::State,
    obs: &Observer,
    chk: &ScChecker,
    base: u32,
    proto_len: usize,
    best: &mut Vec<u64>,
    cand: &mut Vec<u64>,
    cs: &mut CanonScratch,
    have_identity: bool,
    identity_obs_end: usize,
) {
    let params = protocol.params();
    let n = plan.inner.count(params) as usize;
    let mut have_best = have_identity;
    // Group elements mapping this state to the current minimum; the
    // initial 1 is the identity (skipped during enumeration when its
    // encoding is already the incumbent).
    let mut ties = 1usize;
    let mut beaten = false;
    // Does the identity encoding (still) equal the incumbent? Tracked so
    // `symmetry.canon_hits` stays exact when the identity encoding was
    // never materialized.
    let mut identity_min = have_identity;
    let mut ids = IdCanon::new(base);
    // The aux-ID renaming an observer walk builds is arrangement-invariant
    // (first-use order = entry order), so one completed walk's map serves
    // every candidate: `ids_warm` snapshots it, and candidates known to
    // tie the incumbent through the whole observer section skip their
    // observer walk entirely — clone the map, rename only the checker.
    let mut ids_warm = IdCanon::new(base);
    let mut warm = false;
    let mut residual_total = 0u64;
    // The observer key extension: owner words are arrangement-invariant
    // node ranks, so tied protocol keys refine further by each element's
    // slice of the encoding's `loc_owner` section.
    let have_owner = plan.ext.is_some() && obs.owner_words(&mut cs.owner);
    // Word index one past the observer section of the identity encoding —
    // the same for every candidate (section lengths are arrangement-
    // invariant) — or 0 until the first candidate is materialized.
    let mut obs_end = if have_identity { identity_obs_end } else { 0 };

    for (ui, &base_idx) in plan.outer_base.iter().enumerate() {
        let u = &perms[base_idx].perm;
        // The outer-renamed state the inner sort keys are read from. The
        // first outer element is the identity: borrow, no clone.
        let owned;
        let s_u: &P::State = if ui == 0 {
            proto
        } else {
            owned = protocol.permute_state(proto, u);
            &owned
        };
        let covered = protocol
            .sort_keys(s_u, plan.inner, &mut cs.keys)
            .expect("FastPlan::build verified the inner dimension is sortable");
        debug_assert!(covered <= proto_len && cs.keys.len() == n);
        // The extension is sound only when the protocol keys already cover
        // the whole protocol prefix: the lex argument needs the covered
        // region contiguous from word 0.
        let use_ext = have_owner && covered == proto_len;
        cs.ext_keys.clear();
        if use_ext {
            let rows = plan.ext.as_deref().expect("have_owner implies ext");
            // Under the outer coset leader `u`, position `pos` of the
            // owner section reads the owner of `u⁻¹(pos)` — the inner
            // renaming only reorders whole rows (verified at build time).
            let u_inv = &perms[base_idx].locs_inv;
            for row in rows {
                cs.ext_keys.begin_key();
                for &pos in row {
                    cs.ext_keys
                        .push(cs.owner[u_inv[pos as usize + 1] as usize - 1]);
                }
            }
        }
        // Full-observer extension: when the inner dimension is processors,
        // the only encoding words past the owner section that *move* under
        // an inner renaming are each processor's `last_op` entry and
        // `bot_anchor` row — everything else (node sections, per-block
        // sections) is emitted in arrangement-invariant order. Those words
        // then extend the sort keys through the *entire* observer encoding,
        // and `proc_key_ext` itself gates the cases that would break the
        // invariance (heirs, dead keys).
        cs.obs_keys.clear();
        let use_full = use_ext && plan.inner == SymDim::Procs && {
            let b_count = params.b as usize;
            cs.binv.clear();
            cs.binv.resize(b_count, 0);
            let u = &perms[base_idx].perm;
            for x in 0..b_count {
                cs.binv[u.block_idx(x)] = x as u8;
            }
            let binv = &cs.binv;
            obs.proc_key_ext(&|bi| binv[bi] as usize, &mut cs.obs_keys)
        };
        // How far the incumbent's prefix is provably shared by every
        // candidate of this block: through the whole observer encoding
        // when the full extension is live, through the owner section when
        // only the owner extension is (protocol prefix + entry-count word
        // + owners).
        let mut covered_cmp = if use_full && obs_end != 0 {
            obs_end
        } else if use_ext {
            proto_len + 1 + cs.owner.len()
        } else {
            covered
        };
        // Phase 1: stable argsort by composite key = the lexicographically
        // minimal arrangement of the covered prefix.
        cs.order.clear();
        cs.order.extend(0..n as u8);
        {
            let keys = &cs.keys;
            let ext = &cs.ext_keys;
            let obsk = &cs.obs_keys;
            cs.order.sort_by(|&a, &b| {
                let (a, b) = (a as usize, b as usize);
                let mut c = keys.key(a).cmp(keys.key(b));
                if use_ext {
                    c = c.then_with(|| ext.key(a).cmp(ext.key(b)));
                }
                if use_full {
                    c = c.then_with(|| obsk.key(a).cmp(obsk.key(b)));
                }
                c
            });
        }
        // Phase 2: tied runs = the residual subgroup the prefix cannot
        // discriminate.
        cs.runs.clear();
        {
            let keys = &cs.keys;
            let ext = &cs.ext_keys;
            let obsk = &cs.obs_keys;
            let tied = |a: usize, b: usize| {
                keys.key(a) == keys.key(b)
                    && (!use_ext || ext.key(a) == ext.key(b))
                    && (!use_full || obsk.key(a) == obsk.key(b))
            };
            let mut i = 0usize;
            while i < n {
                let mut j = i + 1;
                while j < n && tied(cs.order[j] as usize, cs.order[i] as usize) {
                    j += 1;
                }
                if j - i >= 2 {
                    cs.runs.push((i as u32, (j - i) as u32));
                }
                i = j;
            }
        }
        cs.residual.reset(&cs.order, &cs.runs);
        residual_total += cs.residual.count();
        // Every candidate of this block shares the same covered prefix
        // (residual arrangements only permute within tied runs). Once that
        // prefix is known to equal the incumbent's, later candidates skip
        // it without streaming; initially this is only known for the
        // identity block when the identity arrangement is itself minimal
        // (a stable sort then reproduces the identity order).
        let mut prefix_known_eq =
            have_best && ui == 0 && cs.order.iter().enumerate().all(|(i, &e)| e as usize == i);
        // Like `prefix_known_eq`, but for the block-shared prefix extended
        // through the whole observer section (`use_full`): once a candidate
        // proves the incumbent ties it through `obs_end`, its siblings'
        // observer walks are pure re-derivations and are skipped.
        let mut obs_eq = prefix_known_eq && use_full && obs_end != 0;

        while let Some(arr) = cs.residual.next() {
            cs.fwd.clear();
            cs.fwd.resize(n, 0);
            for (rank, &e) in arr.iter().enumerate() {
                cs.fwd[e as usize] = rank as u8;
            }
            let idx = plan.candidate_index(base_idx, &cs.fwd);
            let e = &perms[idx];
            debug_assert!(
                inner_map_matches(&e.perm, plan.inner, &cs.fwd),
                "factorial-rank lookup disagrees with the composed renaming"
            );
            if idx == 0 && have_best {
                continue; // the identity: counted by the initial `ties`
            }
            let view = SymView {
                perm: &e.perm,
                loc: &e.locs,
                loc_inv: &e.locs_inv,
            };
            if !have_best {
                // Materialize the first candidate as the incumbent.
                best.clear();
                let ps = protocol.permute_state(proto, &e.perm);
                protocol.encode_state(&ps, best);
                debug_assert_eq!(best.len(), proto_len, "perms preserve encoding length");
                ids.reset();
                ids.set_locs(&e.locs);
                obs.canonical_encoding_into(best, &mut ids, Some(&view));
                if !warm {
                    ids_warm.clone_from(&ids);
                    warm = true;
                }
                if obs_end == 0 {
                    obs_end = best.len();
                    if use_full {
                        covered_cmp = obs_end;
                    }
                }
                chk.canonical_encoding_into(best, &mut ids, Some(&view));
                have_best = true;
                ties = 1;
                identity_min = idx == 0;
                prefix_known_eq = true;
                obs_eq = use_full && obs_end != 0;
                continue;
            }
            // Phase 3: stream-compare E(g·s) against the incumbent.
            let mut sink = CmpSink::new(best, cand);
            let skip_obs = obs_eq && warm;
            if skip_obs {
                // The candidate provably ties the incumbent through the
                // whole observer section: skip straight to the checker
                // walk, with the aux-ID map restored from the snapshot.
                sink.skip_equal(obs_end);
                #[cfg(debug_assertions)]
                {
                    cs.proto_cand.clear();
                    let ps = protocol.permute_state(proto, &e.perm);
                    protocol.encode_state(&ps, &mut cs.proto_cand);
                    let mut dbg_ids = IdCanon::new(base);
                    dbg_ids.set_locs(&e.locs);
                    obs.canonical_encoding_into(&mut cs.proto_cand, &mut dbg_ids, Some(&view));
                    debug_assert_eq!(
                        &cs.proto_cand[..],
                        &best[..obs_end],
                        "obs-skip contract violated: skipped region differs"
                    );
                }
                ids.clone_from(&ids_warm);
                ids.set_locs(&e.locs);
            } else if prefix_known_eq && covered == proto_len {
                // The whole protocol prefix ties the incumbent's: no
                // renamed protocol state is materialized at all.
                sink.skip_equal(proto_len);
                #[cfg(debug_assertions)]
                {
                    cs.proto_cand.clear();
                    let ps = protocol.permute_state(proto, &e.perm);
                    protocol.encode_state(&ps, &mut cs.proto_cand);
                    debug_assert_eq!(
                        &cs.proto_cand[..],
                        &best[..proto_len],
                        "sort-key contract violated: skipped prefix differs"
                    );
                }
            } else {
                cs.proto_cand.clear();
                let ps = protocol.permute_state(proto, &e.perm);
                protocol.encode_state(&ps, &mut cs.proto_cand);
                if prefix_known_eq {
                    sink.skip_equal(covered);
                    debug_assert_eq!(
                        &cs.proto_cand[..covered],
                        &best[..covered],
                        "sort-key contract violated: skipped prefix differs"
                    );
                    let _ = sink.words(&cs.proto_cand[covered..]);
                } else {
                    let _ = sink.words(&cs.proto_cand);
                }
                if sink.outcome() == CmpOutcome::Greater {
                    if sink.matched() < covered {
                        // The candidate lost *within* the covered prefix,
                        // which every remaining candidate of this block
                        // shares: the whole block loses.
                        break;
                    }
                    prefix_known_eq = true;
                    continue;
                }
            }
            if !skip_obs {
                ids.reset();
                ids.set_locs(&e.locs);
                obs.canonical_encoding_into(&mut sink, &mut ids, Some(&view));
                if !warm && sink.outcome() != CmpOutcome::Greater {
                    // The walk completed: the aux map is fully built.
                    ids_warm.clone_from(&ids);
                    warm = true;
                }
            }
            if sink.outcome() != CmpOutcome::Greater {
                chk.canonical_encoding_into(&mut sink, &mut ids, Some(&view));
            }
            let diverged_at = sink.matched();
            match sink.finish() {
                CmpOutcome::Less => {
                    std::mem::swap(best, cand);
                    ties = 1;
                    beaten = true;
                    identity_min = false;
                    prefix_known_eq = true;
                    // The new incumbent is a member of this block: its
                    // whole shared prefix is now the incumbent's.
                    obs_eq = use_full && obs_end != 0;
                }
                CmpOutcome::Equal => {
                    ties += 1;
                    prefix_known_eq = true;
                    obs_eq = use_full && obs_end != 0;
                }
                CmpOutcome::Greater => {
                    if diverged_at < covered_cmp {
                        // Lost within the block-shared prefix (extended
                        // through the owner section when the extension is
                        // live): every remaining candidate loses there too.
                        break;
                    }
                    // Lost beyond the shared prefix — the prefix itself
                    // tied the incumbent's.
                    prefix_known_eq = true;
                    obs_eq = use_full && obs_end != 0 && diverged_at >= obs_end;
                }
            }
        }
    }

    if scv_telemetry::enabled() {
        use scv_telemetry::{Hist, Metric};
        scv_telemetry::add(Metric::SymCanonicalized, 1);
        let min_beats_identity = if have_identity { beaten } else { !identity_min };
        scv_telemetry::add(Metric::SymCanonHits, min_beats_identity as u64);
        // Orbit-stabilizer: |orbit| = |G| / |{g : E(g·s) = min}| — only
        // enumerated candidates can tie the minimum (every skipped one has
        // a strictly greater covered prefix), so `ties` is exact.
        scv_telemetry::record(Hist::SymOrbitSize, (perms.len() / ties) as u64);
        if residual_total <= plan.outer_base.len() as u64 {
            scv_telemetry::add(Metric::SymRefineExact, 1);
        } else {
            scv_telemetry::add(Metric::SymResidualEnum, 1);
            scv_telemetry::record(Hist::SymResidualGroupSize, residual_total);
        }
    }
}

/// Access the thread-local scratch used by the eager seal path (the lazy
/// expansion path carries a [`CanonScratch`] in its per-worker scratch
/// instead).
pub(crate) fn with_thread_scratch<R>(f: impl FnOnce(&mut CanonScratch) -> R) -> R {
    thread_local! {
        static SCRATCH: std::cell::RefCell<CanonScratch> =
            std::cell::RefCell::new(CanonScratch::new());
    }
    SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_rank_matches_sorted_enumeration_order() {
        // All permutations of 0..4 in lexicographic order must rank 0..24.
        let mut perms: Vec<Vec<u8>> = Vec::new();
        fn rec(cur: &mut Vec<u8>, rest: &mut Vec<u8>, out: &mut Vec<Vec<u8>>) {
            if rest.is_empty() {
                out.push(cur.clone());
                return;
            }
            for i in 0..rest.len() {
                let x = rest.remove(i);
                cur.push(x);
                rec(cur, rest, out);
                cur.pop();
                rest.insert(i, x);
            }
        }
        rec(&mut Vec::new(), &mut (0..4).collect(), &mut perms);
        perms.sort();
        for (i, p) in perms.iter().enumerate() {
            assert_eq!(lex_rank(p), i, "rank of {p:?}");
        }
    }
}
