//! Striped open-addressing seen-set over 128-bit state fingerprints.
//!
//! The level-synchronous searcher's profile (EXPERIMENTS.md E9) showed the
//! sharded-`HashMap` seen-set absorbing the parallelism: one mutex
//! acquisition *per successor*, plus `HashMap`'s per-entry overhead. This
//! table is built for the work-stealing engine's access pattern instead:
//!
//! * **Striping.** The table is split into independently locked shards,
//!   selected by the fingerprint's high bits (the low bits index within a
//!   shard, so shard choice and probe position stay uncorrelated).
//! * **Batched claiming.** Workers group successor fingerprints by shard
//!   and call [`StripedSeen::insert_batch`], paying one lock acquisition
//!   per *batch* (64–256 fingerprints in the intended configuration)
//!   instead of one per fingerprint.
//! * **Open addressing.** Each shard is a power-of-two linear-probing
//!   table of raw `u128`s at ≤ 50% load — no per-entry allocation, no
//!   hashing (fingerprints are already uniform), cache-friendly probes.
//!
//! Zero is reserved as the empty-slot sentinel; the all-zero fingerprint
//! (probability 2⁻¹²⁸ per state) is remapped to 1, which merely aliases
//! it with fingerprint 1 — far below the baseline collision probability
//! of the 128-bit fingerprint scheme itself.

use std::sync::Mutex;

/// Slots per shard at creation (must be a power of two).
const INITIAL_SHARD_CAPACITY: usize = 1024;

struct Shard {
    /// Power-of-two slot array; 0 = empty.
    slots: Box<[u128]>,
    /// Occupied slots.
    len: usize,
    /// Cached `slots.len() / 2`: the occupancy at which the next insert
    /// must grow first. Hot single inserts compare against this field
    /// instead of recomputing the load factor (the old code called
    /// `reserve(1)` — a function call plus two multiplies — per insert).
    grow_at: usize,
}

impl Shard {
    fn new() -> Self {
        Shard {
            slots: vec![0u128; INITIAL_SHARD_CAPACITY].into_boxed_slice(),
            len: 0,
            grow_at: INITIAL_SHARD_CAPACITY / 2,
        }
    }

    /// Insert without growth check; returns true if newly inserted.
    fn insert_raw(&mut self, fp: u128) -> bool {
        self.insert_raw_probed(fp).0
    }

    /// [`Shard::insert_raw`], also reporting the number of slots probed
    /// (1 = direct hit) for the telemetry probe-length histogram.
    fn insert_raw_probed(&mut self, fp: u128) -> (bool, u64) {
        let mask = self.slots.len() - 1;
        let mut i = (fp as usize) & mask;
        let mut probes = 1u64;
        loop {
            let slot = self.slots[i];
            if slot == 0 {
                self.slots[i] = fp;
                self.len += 1;
                return (true, probes);
            }
            if slot == fp {
                return (false, probes);
            }
            i = (i + 1) & mask;
            probes += 1;
        }
    }

    fn contains(&self, fp: u128) -> bool {
        let mask = self.slots.len() - 1;
        let mut i = (fp as usize) & mask;
        loop {
            let slot = self.slots[i];
            if slot == 0 {
                return false;
            }
            if slot == fp {
                return true;
            }
            i = (i + 1) & mask;
        }
    }

    /// Keep load at or below 1/2 for short probe chains.
    fn reserve(&mut self, incoming: usize) {
        let needed = self.len + incoming;
        if needed <= self.grow_at {
            return;
        }
        let mut cap = self.slots.len();
        while needed * 2 > cap {
            cap *= 2;
        }
        let old = std::mem::replace(&mut self.slots, vec![0u128; cap].into_boxed_slice());
        self.len = 0;
        self.grow_at = cap / 2;
        for fp in old.iter().copied().filter(|&fp| fp != 0) {
            self.insert_raw(fp);
        }
    }
}

/// A concurrent set of 128-bit fingerprints, striped across mutex-guarded
/// open-addressing shards. See the module docs for the design rationale.
pub struct StripedSeen {
    shards: Box<[Mutex<Shard>]>,
}

/// Never let a fingerprint collide with the empty-slot sentinel.
#[inline]
fn desentinel(fp: u128) -> u128 {
    if fp == 0 {
        1
    } else {
        fp
    }
}

impl StripedSeen {
    /// Create with `shards` stripes (any count ≥ 1 works; the engine uses
    /// a few stripes per worker).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        StripedSeen {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
        }
    }

    /// Number of stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The stripe a fingerprint belongs to. Uses the high 64 bits so the
    /// in-shard probe index (low bits) stays independent of shard choice.
    ///
    /// The map is a fixed-point multiply-shift — `(hi · n) >> 64` sends a
    /// uniform 64-bit value to `[0, n)` with at most one slot of bias —
    /// instead of `hi % n`: a 64×64→128 multiply retires in a few cycles
    /// where the hardware divide the `%` compiled to costs tens, and this
    /// runs once per successor fingerprint on the hot path.
    #[inline]
    pub fn shard_of(&self, fp: u128) -> usize {
        let hi = (desentinel(fp) >> 64) as u64;
        ((hi as u128 * self.shards.len() as u128) >> 64) as usize
    }

    /// Insert one fingerprint; returns `true` if it was not yet present.
    pub fn insert(&self, fp: u128) -> bool {
        let fp = desentinel(fp);
        let mut shard = self.shards[self.shard_of(fp)].lock().unwrap();
        if shard.len >= shard.grow_at {
            shard.reserve(1);
        }
        shard.insert_raw(fp)
    }

    /// Is the fingerprint present?
    pub fn contains(&self, fp: u128) -> bool {
        let fp = desentinel(fp);
        self.shards[self.shard_of(fp)].lock().unwrap().contains(fp)
    }

    /// Insert a batch of fingerprints that all map to shard `shard`
    /// (callers group by [`StripedSeen::shard_of`]), paying a single lock
    /// acquisition. Pushes one bool per fingerprint onto `is_new`, in
    /// order: `true` iff that fingerprint was absent before this call
    /// (duplicates *within* the batch: only the first occurrence reports
    /// `true`). Returns the number of new fingerprints.
    pub fn insert_batch(&self, shard: usize, fps: &[u128], is_new: &mut Vec<bool>) -> usize {
        debug_assert!(fps.iter().all(|&fp| self.shard_of(fp) == shard));
        let telemetry = scv_telemetry::enabled();
        let mut probes_total = 0u64;
        let mut guard = self.shards[shard].lock().unwrap();
        guard.reserve(fps.len());
        let mut new = 0usize;
        for &fp in fps {
            let (inserted, probes) = guard.insert_raw_probed(desentinel(fp));
            new += inserted as usize;
            is_new.push(inserted);
            probes_total += probes;
        }
        drop(guard);
        if scv_telemetry::recorder_enabled() {
            // Timeline instant for each admission batch: when the batch
            // landed and how many of its states were new.
            scv_telemetry::recorder::instant(
                scv_telemetry::recorder::InstantKind::AdmissionBatch,
                new as u64,
            );
        }
        if telemetry {
            // Probe lengths at batch granularity: the total probe count
            // feeds the average; the histogram gets one batch-mean sample
            // per lock acquisition so hot inserts stay cheap.
            scv_telemetry::add(scv_telemetry::Metric::SeenInserts, fps.len() as u64);
            scv_telemetry::add(scv_telemetry::Metric::SeenProbes, probes_total);
            if !fps.is_empty() {
                scv_telemetry::record(
                    scv_telemetry::Hist::SeenProbeLen,
                    probes_total / fps.len() as u64,
                );
            }
        }
        new
    }

    /// Probe a batch of fingerprints that all map to shard `shard` under a
    /// single lock acquisition, **without inserting anything**. Pushes one
    /// bool per fingerprint onto `absent`, in order: `true` iff the
    /// fingerprint is not in the set. This is the admission gate's read
    /// side: a `true` answer is a *hint* (a racing worker may insert the
    /// fingerprint right after the lock drops), so callers must still
    /// treat [`StripedSeen::insert_batch`] as the authoritative admission.
    /// A `false` answer is definitive — fingerprints are never removed.
    pub fn probe_batch(&self, shard: usize, fps: &[u128], absent: &mut Vec<bool>) {
        debug_assert!(fps.iter().all(|&fp| self.shard_of(fp) == shard));
        let guard = self.shards[shard].lock().unwrap();
        absent.extend(fps.iter().map(|&fp| !guard.contains(desentinel(fp))));
    }

    /// Probe an unsorted batch of fingerprints (any mix of stripes),
    /// writing `absent[i] == true` iff `fps[i]` is not in the set. Groups
    /// the batch by stripe internally so each touched stripe is locked
    /// exactly once; `order` is caller-provided scratch (cleared here,
    /// reused across calls to stay allocation-free in steady state).
    /// Duplicates *within* the batch all report the same answer — the
    /// authoritative dedup happens at [`StripedSeen::insert_batch`].
    pub fn probe_many(&self, fps: &[u128], absent: &mut Vec<bool>, order: &mut Vec<(u32, u32)>) {
        absent.clear();
        absent.resize(fps.len(), false);
        order.clear();
        order.extend(
            fps.iter()
                .enumerate()
                .map(|(i, &fp)| (self.shard_of(fp) as u32, i as u32)),
        );
        order.sort_unstable();
        let mut at = 0usize;
        while at < order.len() {
            let stripe = order[at].0;
            let end = at
                + order[at..]
                    .iter()
                    .take_while(|&&(s, _)| s == stripe)
                    .count();
            let guard = self.shards[stripe as usize].lock().unwrap();
            for &(_, i) in &order[at..end] {
                absent[i as usize] = !guard.contains(desentinel(fps[i as usize]));
            }
            at = end;
        }
    }

    /// Snapshot every stored fingerprint (in arbitrary order), for
    /// checkpoint serialization. Exact when no concurrent inserts are in
    /// flight; the values are post-sentinel-remap, so re-inserting them
    /// into a fresh set reproduces the same membership answers.
    pub fn fingerprints(&self) -> Vec<u128> {
        let mut out = Vec::with_capacity(self.len());
        for shard in self.shards.iter() {
            let guard = shard.lock().unwrap();
            out.extend(guard.slots.iter().copied().filter(|&fp| fp != 0));
        }
        out
    }

    /// Occupancy of every stripe, for end-of-run load-balance gauges.
    pub fn stripe_loads(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.lock().unwrap().len).collect()
    }

    /// Total fingerprints stored. Exact when no concurrent inserts are in
    /// flight (each shard is summed under its lock).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains_roundtrip() {
        let seen = StripedSeen::new(8);
        for i in 1..1000u128 {
            assert!(seen.insert(i * 0x9E3779B97F4A7C15));
        }
        for i in 1..1000u128 {
            let fp = i * 0x9E3779B97F4A7C15;
            assert!(seen.contains(fp));
            assert!(!seen.insert(fp), "reinsert must report seen");
        }
        assert_eq!(seen.len(), 999);
    }

    #[test]
    fn zero_fingerprint_is_handled() {
        let seen = StripedSeen::new(4);
        assert!(!seen.contains(0));
        assert!(seen.insert(0));
        assert!(seen.contains(0));
        assert!(!seen.insert(0));
        // 0 aliases to 1 by design.
        assert!(!seen.insert(1));
    }

    #[test]
    fn growth_beyond_initial_capacity() {
        let seen = StripedSeen::new(1);
        let n = (INITIAL_SHARD_CAPACITY * 4) as u128;
        for i in 1..=n {
            assert!(seen.insert(i << 32));
        }
        assert_eq!(seen.len(), n as usize);
        for i in 1..=n {
            assert!(seen.contains(i << 32));
        }
    }

    #[test]
    fn shard_of_covers_every_stripe() {
        // The multiply-shift map must still reach every shard (it sends
        // uniform high bits to [0, n) with at most one slot of bias).
        for shards in [1usize, 3, 8, 13] {
            let seen = StripedSeen::new(shards);
            let mut hit = vec![false; shards];
            for i in 0..4096u128 {
                let fp = (i * 0x9E3779B97F4A7C15) << 64 | i;
                let s = seen.shard_of(fp);
                assert!(s < shards);
                hit[s] = true;
            }
            assert!(hit.iter().all(|&h| h), "{shards} stripes all reachable");
        }
    }

    #[test]
    fn probe_batch_and_probe_many_report_membership_without_inserting() {
        let seen = StripedSeen::new(5);
        let present: Vec<u128> = (1..100u128).map(|i| i * 0x1234567890AB).collect();
        for &fp in &present {
            seen.insert(fp);
        }
        let absent_fps: Vec<u128> = (1..100u128).map(|i| i * 0xFEDCBA987654321).collect();
        // probe_batch: per-stripe, membership answers in order.
        let mut by_shard: Vec<Vec<u128>> = vec![Vec::new(); seen.shard_count()];
        for &fp in present.iter().chain(&absent_fps) {
            by_shard[seen.shard_of(fp)].push(fp);
        }
        for (shard, group) in by_shard.iter().enumerate() {
            let mut flags = Vec::new();
            seen.probe_batch(shard, group, &mut flags);
            for (i, &fp) in group.iter().enumerate() {
                assert_eq!(flags[i], !present.contains(&fp), "fp {fp:x}");
            }
        }
        // probe_many: interleaved stripes, same answers, nothing inserted.
        let mixed: Vec<u128> = present
            .iter()
            .zip(&absent_fps)
            .flat_map(|(&a, &b)| [a, b])
            .collect();
        let mut flags = Vec::new();
        let mut order = Vec::new();
        seen.probe_many(&mixed, &mut flags, &mut order);
        for (i, &fp) in mixed.iter().enumerate() {
            assert_eq!(flags[i], !present.contains(&fp));
        }
        assert_eq!(seen.len(), present.len(), "probing must not insert");
        // The zero fingerprint probes through the sentinel remap.
        let mut flags = Vec::new();
        seen.probe_many(&[0], &mut flags, &mut order);
        assert!(flags[0]);
        seen.insert(0);
        let mut flags = Vec::new();
        seen.probe_many(&[0, 1], &mut flags, &mut order);
        assert!(!flags[0] && !flags[1], "0 aliases to 1 by design");
    }

    #[test]
    fn fingerprints_snapshot_roundtrips_into_fresh_set() {
        let seen = StripedSeen::new(7);
        let fps: Vec<u128> = (0..500u128).map(|i| i * 0x9E3779B97F4A7C15).collect();
        for &fp in &fps {
            seen.insert(fp);
        }
        let snap = seen.fingerprints();
        assert_eq!(snap.len(), seen.len());
        let rebuilt = StripedSeen::new(3);
        for &fp in &snap {
            assert!(rebuilt.insert(fp), "snapshot has no duplicates");
        }
        for &fp in &fps {
            assert!(rebuilt.contains(fp), "membership preserved for {fp:x}");
        }
    }

    #[test]
    fn batch_insert_reports_new_flags_in_order() {
        let seen = StripedSeen::new(3); // deliberately non-power-of-two
        let fps: Vec<u128> = (1..200u128).map(|i| i * 0xABCDEF123457).collect();
        let mut by_shard: Vec<Vec<u128>> = vec![Vec::new(); seen.shard_count()];
        for &fp in &fps {
            by_shard[seen.shard_of(fp)].push(fp);
        }
        for (shard, group) in by_shard.iter().enumerate() {
            // Duplicate the group: first copies new, second copies seen.
            let doubled: Vec<u128> = group.iter().chain(group.iter()).copied().collect();
            let mut flags = Vec::new();
            let new = seen.insert_batch(shard, &doubled, &mut flags);
            assert_eq!(new, group.len());
            assert_eq!(flags.len(), doubled.len());
            assert!(flags[..group.len()].iter().all(|&b| b));
            assert!(flags[group.len()..].iter().all(|&b| !b));
        }
        assert_eq!(seen.len(), fps.len());
    }
}
