//! Striped open-addressing seen-set over 128-bit state fingerprints.
//!
//! The level-synchronous searcher's profile (EXPERIMENTS.md E9) showed the
//! sharded-`HashMap` seen-set absorbing the parallelism: one mutex
//! acquisition *per successor*, plus `HashMap`'s per-entry overhead. This
//! table is built for the work-stealing engine's access pattern instead:
//!
//! * **Striping.** The table is split into independently locked shards,
//!   selected by the fingerprint's high bits (the low bits index within a
//!   shard, so shard choice and probe position stay uncorrelated).
//! * **Batched claiming.** Workers group successor fingerprints by shard
//!   and call [`StripedSeen::insert_batch`], paying one lock acquisition
//!   per *batch* (64–256 fingerprints in the intended configuration)
//!   instead of one per fingerprint.
//! * **Open addressing.** Each shard is a power-of-two linear-probing
//!   table of raw `u128`s at ≤ 50% load — no per-entry allocation, no
//!   hashing (fingerprints are already uniform), cache-friendly probes.
//!
//! Zero is reserved as the empty-slot sentinel; the all-zero fingerprint
//! (probability 2⁻¹²⁸ per state) is remapped to 1, which merely aliases
//! it with fingerprint 1 — far below the baseline collision probability
//! of the 128-bit fingerprint scheme itself.

use std::sync::Mutex;

/// Slots per shard at creation (must be a power of two).
const INITIAL_SHARD_CAPACITY: usize = 1024;

struct Shard {
    /// Power-of-two slot array; 0 = empty.
    slots: Box<[u128]>,
    /// Occupied slots.
    len: usize,
}

impl Shard {
    fn new() -> Self {
        Shard {
            slots: vec![0u128; INITIAL_SHARD_CAPACITY].into_boxed_slice(),
            len: 0,
        }
    }

    /// Insert without growth check; returns true if newly inserted.
    fn insert_raw(&mut self, fp: u128) -> bool {
        self.insert_raw_probed(fp).0
    }

    /// [`Shard::insert_raw`], also reporting the number of slots probed
    /// (1 = direct hit) for the telemetry probe-length histogram.
    fn insert_raw_probed(&mut self, fp: u128) -> (bool, u64) {
        let mask = self.slots.len() - 1;
        let mut i = (fp as usize) & mask;
        let mut probes = 1u64;
        loop {
            let slot = self.slots[i];
            if slot == 0 {
                self.slots[i] = fp;
                self.len += 1;
                return (true, probes);
            }
            if slot == fp {
                return (false, probes);
            }
            i = (i + 1) & mask;
            probes += 1;
        }
    }

    fn contains(&self, fp: u128) -> bool {
        let mask = self.slots.len() - 1;
        let mut i = (fp as usize) & mask;
        loop {
            let slot = self.slots[i];
            if slot == 0 {
                return false;
            }
            if slot == fp {
                return true;
            }
            i = (i + 1) & mask;
        }
    }

    /// Keep load at or below 1/2 for short probe chains.
    fn reserve(&mut self, incoming: usize) {
        let needed = self.len + incoming;
        if needed * 2 <= self.slots.len() {
            return;
        }
        let mut cap = self.slots.len();
        while needed * 2 > cap {
            cap *= 2;
        }
        let old = std::mem::replace(&mut self.slots, vec![0u128; cap].into_boxed_slice());
        self.len = 0;
        for fp in old.iter().copied().filter(|&fp| fp != 0) {
            self.insert_raw(fp);
        }
    }
}

/// A concurrent set of 128-bit fingerprints, striped across mutex-guarded
/// open-addressing shards. See the module docs for the design rationale.
pub struct StripedSeen {
    shards: Box<[Mutex<Shard>]>,
}

/// Never let a fingerprint collide with the empty-slot sentinel.
#[inline]
fn desentinel(fp: u128) -> u128 {
    if fp == 0 {
        1
    } else {
        fp
    }
}

impl StripedSeen {
    /// Create with `shards` stripes (any count ≥ 1 works; the engine uses
    /// a few stripes per worker).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        StripedSeen {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
        }
    }

    /// Number of stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The stripe a fingerprint belongs to. Uses the high 64 bits so the
    /// in-shard probe index (low bits) stays independent of shard choice.
    #[inline]
    pub fn shard_of(&self, fp: u128) -> usize {
        (((desentinel(fp) >> 64) as u64) % self.shards.len() as u64) as usize
    }

    /// Insert one fingerprint; returns `true` if it was not yet present.
    pub fn insert(&self, fp: u128) -> bool {
        let fp = desentinel(fp);
        let mut shard = self.shards[self.shard_of(fp)].lock().unwrap();
        shard.reserve(1);
        shard.insert_raw(fp)
    }

    /// Is the fingerprint present?
    pub fn contains(&self, fp: u128) -> bool {
        let fp = desentinel(fp);
        self.shards[self.shard_of(fp)].lock().unwrap().contains(fp)
    }

    /// Insert a batch of fingerprints that all map to shard `shard`
    /// (callers group by [`StripedSeen::shard_of`]), paying a single lock
    /// acquisition. Pushes one bool per fingerprint onto `is_new`, in
    /// order: `true` iff that fingerprint was absent before this call
    /// (duplicates *within* the batch: only the first occurrence reports
    /// `true`). Returns the number of new fingerprints.
    pub fn insert_batch(&self, shard: usize, fps: &[u128], is_new: &mut Vec<bool>) -> usize {
        debug_assert!(fps.iter().all(|&fp| self.shard_of(fp) == shard));
        let telemetry = scv_telemetry::enabled();
        let mut probes_total = 0u64;
        let mut guard = self.shards[shard].lock().unwrap();
        guard.reserve(fps.len());
        let mut new = 0usize;
        for &fp in fps {
            let (inserted, probes) = guard.insert_raw_probed(desentinel(fp));
            new += inserted as usize;
            is_new.push(inserted);
            probes_total += probes;
        }
        drop(guard);
        if telemetry {
            // Probe lengths at batch granularity: the total probe count
            // feeds the average; the histogram gets one batch-mean sample
            // per lock acquisition so hot inserts stay cheap.
            scv_telemetry::add(scv_telemetry::Metric::SeenInserts, fps.len() as u64);
            scv_telemetry::add(scv_telemetry::Metric::SeenProbes, probes_total);
            if !fps.is_empty() {
                scv_telemetry::record(
                    scv_telemetry::Hist::SeenProbeLen,
                    probes_total / fps.len() as u64,
                );
            }
        }
        new
    }

    /// Occupancy of every stripe, for end-of-run load-balance gauges.
    pub fn stripe_loads(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.lock().unwrap().len).collect()
    }

    /// Total fingerprints stored. Exact when no concurrent inserts are in
    /// flight (each shard is summed under its lock).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains_roundtrip() {
        let seen = StripedSeen::new(8);
        for i in 1..1000u128 {
            assert!(seen.insert(i * 0x9E3779B97F4A7C15));
        }
        for i in 1..1000u128 {
            let fp = i * 0x9E3779B97F4A7C15;
            assert!(seen.contains(fp));
            assert!(!seen.insert(fp), "reinsert must report seen");
        }
        assert_eq!(seen.len(), 999);
    }

    #[test]
    fn zero_fingerprint_is_handled() {
        let seen = StripedSeen::new(4);
        assert!(!seen.contains(0));
        assert!(seen.insert(0));
        assert!(seen.contains(0));
        assert!(!seen.insert(0));
        // 0 aliases to 1 by design.
        assert!(!seen.insert(1));
    }

    #[test]
    fn growth_beyond_initial_capacity() {
        let seen = StripedSeen::new(1);
        let n = (INITIAL_SHARD_CAPACITY * 4) as u128;
        for i in 1..=n {
            assert!(seen.insert(i << 32));
        }
        assert_eq!(seen.len(), n as usize);
        for i in 1..=n {
            assert!(seen.contains(i << 32));
        }
    }

    #[test]
    fn batch_insert_reports_new_flags_in_order() {
        let seen = StripedSeen::new(3); // deliberately non-power-of-two
        let fps: Vec<u128> = (1..200u128).map(|i| i * 0xABCDEF123457).collect();
        let mut by_shard: Vec<Vec<u128>> = vec![Vec::new(); seen.shard_count()];
        for &fp in &fps {
            by_shard[seen.shard_of(fp)].push(fp);
        }
        for (shard, group) in by_shard.iter().enumerate() {
            // Duplicate the group: first copies new, second copies seen.
            let doubled: Vec<u128> = group.iter().chain(group.iter()).copied().collect();
            let mut flags = Vec::new();
            let new = seen.insert_batch(shard, &doubled, &mut flags);
            assert_eq!(new, group.len());
            assert_eq!(flags.len(), doubled.len());
            assert!(flags[..group.len()].iter().all(|&b| b));
            assert!(flags[group.len()..].iter().all(|&b| !b));
        }
        assert_eq!(seen.len(), fps.len());
    }
}
