//! A keyed, *seed-extractable* SipHash implementation for state
//! fingerprinting.
//!
//! The fingerprinters used to be built on `std::hash::RandomState`, whose
//! keys cannot be read back — fine for a single search, fatal for
//! checkpoint/resume, where the resumed search must reproduce the exact
//! fingerprints of the interrupted one (the seen-set, the parent logs, and
//! the frontier are all keyed by fingerprint). This module provides the
//! same algorithm family (SipHash-1-3, what `RandomState` uses) with
//! explicit 128-bit keys that can be serialized into a checkpoint and fed
//! back through [`SipBuild::new`].
//!
//! The implementation is generic over the round counts so the test suite
//! can validate the compression/finalization structure against the
//! published SipHash-2-4 reference vectors; production fingerprinting uses
//! the faster 1-3 variant, matching the standard library's choice for
//! hash tables.

use std::hash::{BuildHasher, Hasher};

/// A [`BuildHasher`] over [`SipHasher13`] with an explicit, extractable
/// 128-bit key.
#[derive(Clone, Copy, Debug)]
pub struct SipBuild {
    k0: u64,
    k1: u64,
}

impl SipBuild {
    /// Build from an explicit key pair.
    pub fn new(k0: u64, k1: u64) -> Self {
        SipBuild { k0, k1 }
    }

    /// The key pair this builder hashes under.
    pub fn keys(&self) -> (u64, u64) {
        (self.k0, self.k1)
    }
}

impl BuildHasher for SipBuild {
    type Hasher = SipHasher13;

    #[inline]
    fn build_hasher(&self) -> SipHasher13 {
        Sip::new(self.k0, self.k1)
    }
}

/// SipHash-1-3: one compression round per message word, three finalization
/// rounds — the variant the standard library uses for hash tables.
pub type SipHasher13 = Sip<1, 3>;

/// SipHash with `C` compression rounds and `D` finalization rounds.
///
/// Message words are assembled little-endian, so byte streams hash
/// identically on every platform (multi-byte `Hasher::write_*` calls go
/// through an explicit little-endian path for the same reason).
#[derive(Clone, Debug)]
pub struct Sip<const C: usize, const D: usize> {
    v0: u64,
    v1: u64,
    v2: u64,
    v3: u64,
    /// Bytes hashed so far (mod 256 is what finalization needs).
    len: usize,
    /// Pending bytes that don't yet fill a message word, packed LE.
    tail: u64,
    ntail: usize,
}

#[inline]
fn sipround(v0: &mut u64, v1: &mut u64, v2: &mut u64, v3: &mut u64) {
    *v0 = v0.wrapping_add(*v1);
    *v1 = v1.rotate_left(13);
    *v1 ^= *v0;
    *v0 = v0.rotate_left(32);
    *v2 = v2.wrapping_add(*v3);
    *v3 = v3.rotate_left(16);
    *v3 ^= *v2;
    *v0 = v0.wrapping_add(*v3);
    *v3 = v3.rotate_left(21);
    *v3 ^= *v0;
    *v2 = v2.wrapping_add(*v1);
    *v1 = v1.rotate_left(17);
    *v1 ^= *v2;
    *v2 = v2.rotate_left(32);
}

impl<const C: usize, const D: usize> Sip<C, D> {
    /// Fresh hasher under the key `(k0, k1)`.
    #[inline]
    pub fn new(k0: u64, k1: u64) -> Self {
        Sip {
            v0: k0 ^ 0x736f6d6570736575,
            v1: k1 ^ 0x646f72616e646f6d,
            v2: k0 ^ 0x6c7967656e657261,
            v3: k1 ^ 0x7465646279746573,
            len: 0,
            tail: 0,
            ntail: 0,
        }
    }

    #[inline]
    fn compress(&mut self, m: u64) {
        self.v3 ^= m;
        for _ in 0..C {
            sipround(&mut self.v0, &mut self.v1, &mut self.v2, &mut self.v3);
        }
        self.v0 ^= m;
    }

    /// Hash a whole byte string in one call (used for self-tests and
    /// one-shot keyed hashing).
    pub fn hash_bytes(k0: u64, k1: u64, data: &[u8]) -> u64 {
        let mut h = Self::new(k0, k1);
        h.write(data);
        h.finish()
    }
}

impl<const C: usize, const D: usize> Hasher for Sip<C, D> {
    #[inline]
    fn write(&mut self, mut msg: &[u8]) {
        self.len = self.len.wrapping_add(msg.len());
        if self.ntail > 0 {
            while self.ntail < 8 {
                let Some((&b, rest)) = msg.split_first() else {
                    return;
                };
                self.tail |= (b as u64) << (8 * self.ntail);
                self.ntail += 1;
                msg = rest;
            }
            let m = self.tail;
            self.compress(m);
            self.tail = 0;
            self.ntail = 0;
        }
        while msg.len() >= 8 {
            let m = u64::from_le_bytes(msg[..8].try_into().expect("8-byte chunk"));
            self.compress(m);
            msg = &msg[8..];
        }
        for &b in msg {
            self.tail |= (b as u64) << (8 * self.ntail);
            self.ntail += 1;
        }
    }

    // Fast path for the dominant input shape (encodings are `&[u64]`,
    // hashed one word at a time). Routing through `to_le_bytes` keeps the
    // byte semantics identical to `write`, and the aligned case (no
    // pending tail) compresses the word directly.
    #[inline]
    fn write_u64(&mut self, x: u64) {
        if self.ntail == 0 {
            self.len = self.len.wrapping_add(8);
            self.compress(x.to_le());
        } else {
            self.write(&x.to_le_bytes());
        }
    }

    #[inline]
    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }

    #[inline]
    fn write_u32(&mut self, x: u32) {
        self.write(&x.to_le_bytes());
    }

    #[inline]
    fn write_u16(&mut self, x: u16) {
        self.write(&x.to_le_bytes());
    }

    #[inline]
    fn write_u128(&mut self, x: u128) {
        self.write(&x.to_le_bytes());
    }

    #[inline]
    fn finish(&self) -> u64 {
        let mut v0 = self.v0;
        let mut v1 = self.v1;
        let mut v2 = self.v2;
        let mut v3 = self.v3;
        let b = ((self.len as u64 & 0xff) << 56) | self.tail;
        v3 ^= b;
        for _ in 0..C {
            sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        }
        v0 ^= b;
        v2 ^= 0xff;
        for _ in 0..D {
            sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        }
        v0 ^ v1 ^ v2 ^ v3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    /// The reference test key from the SipHash paper: bytes 00..0f.
    const K0: u64 = 0x0706050403020100;
    const K1: u64 = 0x0f0e0d0c0b0a0908;

    #[test]
    fn sip24_matches_reference_vectors() {
        // `vectors_sip64` from the SipHash reference implementation:
        // SipHash-2-4 over the message 00 01 02 … (n-1) under the key
        // above. Getting these right validates the initialization,
        // compression, tail packing, and finalization all at once.
        let expected: [(usize, u64); 4] = [
            (0, 0x726fdb47dd0e0e31),
            (1, 0x74f839c593dc67fd),
            (2, 0x0d6c8009d9a94f5a),
            (3, 0x85676696d7fb7e2d),
        ];
        for (n, want) in expected {
            let msg: Vec<u8> = (0..n as u8).collect();
            let got = Sip::<2, 4>::hash_bytes(K0, K1, &msg);
            assert_eq!(got, want, "SipHash-2-4 vector for {n}-byte message");
        }
    }

    #[test]
    fn write_u64_fast_path_matches_byte_path() {
        for (pre, xs) in [
            (&b""[..], vec![0u64, 1, u64::MAX, 0x0123456789abcdef]),
            (&b"abc"[..], vec![42u64, u64::MAX / 3]),
        ] {
            let mut fast: SipHasher13 = Sip::new(K0, K1);
            let mut slow: SipHasher13 = Sip::new(K0, K1);
            fast.write(pre);
            slow.write(pre);
            for &x in &xs {
                fast.write_u64(x);
                slow.write(&x.to_le_bytes());
            }
            assert_eq!(fast.finish(), slow.finish(), "prefix {pre:?}");
        }
    }

    #[test]
    fn build_hasher_is_deterministic_per_key() {
        let a = SipBuild::new(1, 2);
        let b = SipBuild::new(1, 2);
        let c = SipBuild::new(1, 3);
        let v = vec![1u64, 2, 3];
        assert_eq!(a.hash_one(&v), b.hash_one(&v));
        assert_ne!(a.hash_one(&v), c.hash_one(&v), "different keys differ");
        assert_eq!(a.keys(), (1, 2));
    }

    #[test]
    fn tail_handling_across_split_writes() {
        // Hashing a byte string in arbitrary split points must agree with
        // hashing it whole.
        let data: Vec<u8> = (0..64u8).collect();
        let whole = Sip::<1, 3>::hash_bytes(K0, K1, &data);
        for split in [1, 3, 7, 8, 9, 15, 33] {
            let mut h: SipHasher13 = Sip::new(K0, K1);
            h.write(&data[..split]);
            h.write(&data[split..]);
            assert_eq!(h.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn struct_hashing_differs_between_values() {
        #[derive(Hash)]
        struct S(u8, u64, Vec<u32>);
        let b = SipBuild::new(7, 9);
        assert_ne!(b.hash_one(S(1, 2, vec![3])), b.hash_one(S(1, 2, vec![4])));
    }
}
