//! Explicit-state model checking of the protocol ⊗ observer ⊗ checker
//! product (§3.4 of Condon & Hu, SPAA 2001).
//!
//! The paper's verification method is: generate the observer from the
//! protocol (non-interferingly), then use a model checker to prove that
//! *every* run of the observer describes an acyclic constraint graph. This
//! crate supplies the model checker:
//!
//! * [`TransitionSystem`] — a generic labeled transition system with a
//!   safety predicate;
//! * [`bfs`] — sequential breadth-first reachability with counterexample
//!   extraction (paths are depth-minimal);
//! * [`ws_search`] — the default parallel engine: asynchronous
//!   work-stealing search over chunked per-worker deques with a striped,
//!   batch-claimed seen-set ([`StripedSeen`]) and per-worker successor
//!   arenas; see the [`ws`] module docs for the architecture and its
//!   termination/counterexample arguments;
//! * [`bfs_parallel`] — the older level-synchronous parallel BFS, kept
//!   selectable via [`SearchStrategy::LevelSync`] for differential
//!   testing against the work-stealing engine;
//! * [`VerifySystem`] — the product system whose states pair a protocol
//!   state with the observer and checker states (hashed through their
//!   canonical encodings, which keeps the product finite);
//! * [`verify_protocol`] — the end-to-end §3.4 method: returns
//!   [`Outcome::Verified`] (the protocol has a witness observer, hence is
//!   sequentially consistent), or [`Outcome::Violation`] with the
//!   offending run, or [`Outcome::Bounded`] if a limit was hit first.

pub mod mc;
pub mod seen;
pub mod verify;
pub mod ws;

pub use mc::{
    bfs, bfs_parallel, eager_expand, BfsOptions, Counterexample, ExpandScratch, Fingerprinter,
    McStats, SearchResult, SearchStrategy, TransitionSystem,
};
pub use seen::StripedSeen;
pub use verify::{
    verify_protocol, verify_system, EncRef, Outcome, RejectReason, SymmetryMode, VerifyOptions,
    VerifyState, VerifySystem,
};
pub use ws::{ws_search, ws_search_detailed, WorkerStats};
