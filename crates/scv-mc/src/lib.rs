//! Explicit-state model checking of the protocol ⊗ observer ⊗ checker
//! product (§3.4 of Condon & Hu, SPAA 2001).
//!
//! The paper's verification method is: generate the observer from the
//! protocol (non-interferingly), then use a model checker to prove that
//! *every* run of the observer describes an acyclic constraint graph. This
//! crate supplies the model checker:
//!
//! * [`TransitionSystem`] — a generic labeled transition system with a
//!   safety predicate;
//! * [`bfs`] — sequential breadth-first reachability with counterexample
//!   extraction (paths are depth-minimal);
//! * [`ws_search`] — the default parallel engine: asynchronous
//!   work-stealing search over chunked per-worker deques with a striped,
//!   batch-claimed seen-set ([`StripedSeen`]) and per-worker successor
//!   arenas; see the [`ws`] module docs for the architecture and its
//!   termination/counterexample arguments;
//! * [`bfs_parallel`] — the older level-synchronous parallel BFS, kept
//!   selectable via [`SearchStrategy::LevelSync`] for differential
//!   testing against the work-stealing engine;
//! * [`VerifySystem`] — the product system whose states pair a protocol
//!   state with the observer and checker states (hashed through their
//!   canonical encodings, which keeps the product finite);
//! * [`verify_protocol`] — the end-to-end §3.4 method: returns
//!   [`Outcome::Verified`] (the protocol has a witness observer, hence is
//!   sequentially consistent), or [`Outcome::Violation`] with the
//!   offending run, or [`Outcome::Bounded`] if a limit was hit first, or
//!   [`Outcome::Inconclusive`] when a [`Budget`] tripped or the
//!   [`CancelToken`] fired;
//! * run control & checkpointing — [`Budget`], [`CancelToken`], and the
//!   `*_controlled` engine variants interrupt a search at a consistent
//!   point; [`checkpoint::CheckpointFile`] serializes it, and
//!   [`VerifyOptions::resume_from`] continues it exactly.

mod canon;
pub mod checkpoint;
pub mod control;
pub mod mc;
pub mod seen;
pub mod sip;
pub mod verify;
pub mod ws;

pub use checkpoint::{CheckpointError, CheckpointFile};
pub use control::{Budget, CancelToken, Coverage, InterruptReason, RunControl};
pub use mc::{
    bfs, bfs_controlled, bfs_parallel, bfs_parallel_controlled, eager_expand, BfsOptions,
    ControlledSearch, Counterexample, ExpandScratch, Fingerprinter, McStats, SearchCheckpoint,
    SearchResult, SearchStrategy, TransitionSystem,
};
pub use seen::StripedSeen;
pub use sip::{Sip, SipBuild, SipHasher13};
#[allow(deprecated)]
pub use verify::verify_system;
pub use verify::{
    verify_protocol, EncRef, Outcome, RejectReason, SymmetryMode, VerifyOptions, VerifyState,
    VerifySystem,
};
pub use ws::{ws_search, ws_search_controlled, ws_search_detailed, WorkerStats};
