//! Asynchronous work-stealing reachability search.
//!
//! The level-synchronous parallel BFS ([`crate::mc::bfs_parallel`], kept
//! for differential testing) pays three taxes that EXPERIMENTS.md E9
//! measured as absorbing *all* parallelism at product-state granularity
//! (tens of microseconds per state): a full-frontier barrier every level,
//! one seen-set mutex acquisition per successor, and allocator traffic for
//! every level's frontier vectors. This engine removes each:
//!
//! * **No barrier.** Work lives in fixed-size *chunks* of states on
//!   per-worker deques. Workers pop locally from the back (LIFO — hot
//!   caches), and steal whole chunks from the *front* of a victim's deque
//!   (FIFO — steals take the oldest, largest-subtree work, the classic
//!   Cilk/crossbeam discipline at batch granularity). Deques are
//!   mutex-guarded `VecDeque`s: operations are chunk-granular, so each
//!   lock acquisition amortizes over an entire chunk of states —
//!   contention is structurally negligible, no lock-free deque needed.
//! * **Batched seen-set claiming.** Successor fingerprints are buffered
//!   per seen-set stripe and inserted through
//!   [`StripedSeen::insert_batch`] — one lock acquisition per batch
//!   (up to `batch` fingerprints), not per state.
//! * **Arena-style reuse.** Each worker owns long-lived successor and
//!   stripe buffers that are drained and reused, so steady-state
//!   expansion does per-successor pushes into pre-grown vectors instead
//!   of allocating fresh frontier vectors every level.
//!
//! **Termination detection** uses a pending-chunk count plus a steal
//! epoch: `pending` counts every chunk from the moment it is enqueued
//! until its last successor is flushed, so `pending == 0` proves global
//! quiescence (no queued chunk, no in-flight expansion, no buffered
//! successor); the `epoch` counter, bumped on every enqueue, lets idle
//! workers wait cheaply and re-scan victims only when new work has
//! actually appeared. Workers also count idle sweeps in
//! [`WorkerStats::idle_spins`], making scheduler health observable.
//!
//! **Counterexamples** survive the asynchrony: each worker logs
//! `(child-fp, parent-fp, label)` for every state *it* admitted (the
//! seen-set admits each state exactly once, so logs never conflict), and
//! on a violation the per-worker logs are merged and the fingerprint
//! chain walked back to the initial state. Paths are valid runs but —
//! unlike sequential BFS — not necessarily shortest.
//!
//! **Verdict determinism.** `Safe`/`Bounded`/`Unsafe` agree with
//! sequential BFS whenever the limits are not the deciding factor: an
//! exhaustive search visits exactly the reachable set regardless of
//! schedule (same `states` count), and a violation reachable within the
//! limits is found by *some* worker before quiescence. Only searches
//! truncated by `max_states`/`max_depth` may differ in which frontier
//! they saw — identical to the level-synchronous engine's behaviour.
//! `tests/parallel_mc.rs` pins this battery down across the protocol zoo.
//!
//! **Interrupts** ([`ws_search_controlled`]): budgets and cancellation are
//! polled at chunk and flush boundaries, never per successor. A tripped
//! worker raises a shared interrupt byte; every worker then *drains to a
//! consistent point* — flushes its dirty stripe buffers, hands off its
//! output chunk, pushes the unprocessed remainder of its input chunk back
//! onto its deque — and exits. At that point each expanded state has all
//! successors admitted and every admitted-unexpanded state sits in some
//! deque, so the main thread can snapshot the queues + seen-set + parent
//! logs into a [`SearchCheckpoint`] from which a later run continues with
//! verdict- and state-count parity.

use crate::control::{code_to_reason, reason_to_code, RunControl};
use crate::mc::{
    BfsOptions, ControlledSearch, Counterexample, ExpandScratch, Fingerprinter, McStats,
    SearchCheckpoint, SearchResult, TransitionSystem,
};
use crate::seen::StripedSeen;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Per-worker counters, exposed for benches and the soak test.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerStats {
    /// States this worker expanded (generated successors of).
    pub expanded: usize,
    /// Transitions this worker explored.
    pub transitions: usize,
    /// New states this worker admitted into the seen-set.
    pub admitted: usize,
    /// Chunks successfully stolen from other workers.
    pub steals: usize,
    /// Seen-set lock acquisitions (batch inserts).
    pub seen_batches: usize,
    /// Idle sweeps that found no local or stealable work.
    pub idle_spins: usize,
}

/// A buffered successor awaiting its stripe's batch insert.
struct PendingSucc<T: TransitionSystem> {
    fp: u128,
    parent_fp: u128,
    depth: usize,
    label: T::Label,
    state: T::State,
}

type Chunk<T> = Vec<(<T as TransitionSystem>::State, u128, usize)>;

struct Shared<'a, T: TransitionSystem> {
    sys: &'a T,
    opts: BfsOptions,
    ctrl: &'a RunControl,
    fper: Fingerprinter,
    seen: StripedSeen,
    queues: Vec<Mutex<VecDeque<Chunk<T>>>>,
    /// Chunks enqueued but not yet fully expanded-and-flushed.
    pending: AtomicUsize,
    /// Bumped on every enqueue; idle workers re-scan when it moves.
    epoch: AtomicU64,
    stop: AtomicBool,
    /// Nonzero = an [`InterruptReason`](crate::control::InterruptReason)
    /// code; workers drain and exit when they observe it.
    interrupt: AtomicU8,
    states: AtomicU64,
    depth_max: AtomicUsize,
    state_limited: AtomicBool,
    depth_limited: AtomicBool,
    queued_items: AtomicUsize,
    peak_frontier: AtomicUsize,
    found: Mutex<Option<(u128, T::Violation)>>,
    chunk_size: usize,
    batch: usize,
}

impl<T: TransitionSystem> Shared<'_, T> {
    fn push_chunk(&self, worker: usize, chunk: Chunk<T>) {
        let items = chunk.len();
        self.pending.fetch_add(1, Ordering::SeqCst);
        let q = self.queued_items.fetch_add(items, Ordering::Relaxed) + items;
        self.peak_frontier.fetch_max(q, Ordering::Relaxed);
        if scv_telemetry::enabled() {
            scv_telemetry::record(scv_telemetry::Hist::McQueueDepth, q as u64);
            scv_telemetry::recorder::set_live(
                scv_telemetry::recorder::LiveGauge::FrontierDepth,
                q as u64,
            );
        }
        if scv_telemetry::recorder_enabled() {
            scv_telemetry::recorder::counter(
                scv_telemetry::recorder::CounterTrack::FrontierDepth,
                q as f64,
            );
        }
        self.queues[worker].lock().unwrap().push_back(chunk);
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Pop from the back of our own deque, else steal from the front of
    /// another worker's (round-robin sweep from our right neighbour).
    fn obtain_chunk(&self, worker: usize, stats: &mut WorkerStats) -> Option<Chunk<T>> {
        if let Some(chunk) = self.queues[worker].lock().unwrap().pop_back() {
            self.queued_items.fetch_sub(chunk.len(), Ordering::Relaxed);
            return Some(chunk);
        }
        let n = self.queues.len();
        for i in 1..n {
            let victim = (worker + i) % n;
            if let Some(chunk) = self.queues[victim].lock().unwrap().pop_front() {
                self.queued_items.fetch_sub(chunk.len(), Ordering::Relaxed);
                stats.steals += 1;
                scv_telemetry::add(scv_telemetry::Metric::McSteals, 1);
                if scv_telemetry::recorder_enabled() {
                    scv_telemetry::recorder::instant(
                        scv_telemetry::recorder::InstantKind::Steal,
                        chunk.len() as u64,
                    );
                }
                return Some(chunk);
            }
        }
        None
    }

    /// Poll the run control at a batch boundary; on a trip, raise the
    /// shared interrupt flag (first tripper wins).
    fn check_trip(&self, ticks: &mut u32) {
        if self.interrupt.load(Ordering::Relaxed) != 0 {
            return;
        }
        if let Some(reason) = self
            .ctrl
            .trip(self.states.load(Ordering::Relaxed) as usize, ticks)
        {
            let _ = self.interrupt.compare_exchange(
                0,
                reason_to_code(reason),
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
        }
    }
}

/// One worker's append-only `(child, parent, label)` fingerprint log —
/// merged across workers only when a violation needs a counterexample or
/// an interrupt needs a checkpoint.
type ParentLog<L> = Vec<(u128, u128, L)>;

/// One worker's long-lived scratch space (the "successor arena"): every
/// vector here is drained and reused across chunks, so steady-state
/// expansion performs no frontier allocation at all. `expand` is the
/// system's own scratch (replay copies, encoding arena, seal cache for the
/// product system), threaded through every admission-gated expansion.
struct Scratch<T: TransitionSystem> {
    expand: ExpandScratch,
    admitted: Vec<(T::Label, T::State, u128)>,
    probe_order: Vec<(u32, u32)>,
    stripes: Vec<Vec<PendingSucc<T>>>,
    fp_scratch: Vec<u128>,
    flag_scratch: Vec<bool>,
    out_chunk: Chunk<T>,
    parent_log: ParentLog<T::Label>,
}

fn worker_loop<T: TransitionSystem>(
    shared: &Shared<'_, T>,
    id: usize,
) -> (WorkerStats, ParentLog<T::Label>) {
    let mut stats = WorkerStats::default();
    if scv_telemetry::recorder_enabled() {
        scv_telemetry::recorder::set_worker(&format!("ws-{id}"));
    }
    let mut scratch = Scratch::<T> {
        expand: shared.sys.expand_scratch(),
        admitted: Vec::new(),
        probe_order: Vec::new(),
        stripes: (0..shared.seen.shard_count()).map(|_| Vec::new()).collect(),
        fp_scratch: Vec::new(),
        flag_scratch: Vec::new(),
        out_chunk: Vec::with_capacity(shared.chunk_size),
        parent_log: Vec::new(),
    };
    let mut ticks = 0u32;

    'main: loop {
        // At the top of the loop all scratch buffers are clean (flushed at
        // end of chunk), so exiting here is already a consistent point.
        if shared.stop.load(Ordering::Relaxed) || shared.interrupt.load(Ordering::Relaxed) != 0 {
            break;
        }
        let Some(chunk) = shared.obtain_chunk(id, &mut stats) else {
            if shared.pending.load(Ordering::SeqCst) == 0 {
                break;
            }
            // Quiesce until new work appears (epoch moves) or everything
            // drains. Spin briefly, then yield the core.
            stats.idle_spins += 1;
            scv_telemetry::add(scv_telemetry::Metric::McIdleSpins, 1);
            if scv_telemetry::recorder_enabled() {
                scv_telemetry::recorder::instant(
                    scv_telemetry::recorder::InstantKind::Idle,
                    stats.idle_spins as u64,
                );
            }
            let seen_epoch = shared.epoch.load(Ordering::Acquire);
            let mut spins = 0u32;
            while shared.epoch.load(Ordering::Acquire) == seen_epoch
                && shared.pending.load(Ordering::SeqCst) != 0
                && !shared.stop.load(Ordering::Relaxed)
                && shared.interrupt.load(Ordering::Relaxed) == 0
            {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
            continue;
        };
        // One control poll per obtained chunk: the batch boundary that
        // keeps the per-state loop branch-cheap.
        shared.check_trip(&mut ticks);

        let mut idx = 0usize;
        while idx < chunk.len() {
            if shared.stop.load(Ordering::Relaxed) {
                break;
            }
            if shared.interrupt.load(Ordering::Relaxed) != 0 {
                // Drain to a consistent point: admit everything already
                // buffered, hand off the output chunk, and put the
                // unprocessed tail of this chunk back on our deque so the
                // checkpoint frontier sees it.
                for stripe in 0..scratch.stripes.len() {
                    if !scratch.stripes[stripe].is_empty() {
                        flush_stripe(shared, id, stripe, &mut scratch, &mut stats);
                    }
                }
                if !scratch.out_chunk.is_empty() {
                    let out = std::mem::replace(
                        &mut scratch.out_chunk,
                        Vec::with_capacity(shared.chunk_size),
                    );
                    shared.push_chunk(id, out);
                }
                let rest: Chunk<T> = chunk[idx..].to_vec();
                if !rest.is_empty() {
                    shared.push_chunk(id, rest);
                }
                shared.pending.fetch_sub(1, Ordering::SeqCst);
                break 'main;
            }
            let (state, fp, depth) = &chunk[idx];
            idx += 1;
            stats.expanded += 1;
            // Admission gate: batch-probe the seen-set with successor
            // fingerprints so duplicates are rejected before the system
            // materializes them. The probe is a hint; `insert_batch` in
            // `flush_stripe` stays authoritative, so a racing worker
            // admitting the same state first costs only the one wasted
            // materialization.
            let mut admitted = std::mem::take(&mut scratch.admitted);
            admitted.clear();
            let mut n_cand = 0usize;
            {
                let probe_order = &mut scratch.probe_order;
                let mut admit = |fps: &[u128], keep: &mut Vec<bool>| {
                    n_cand += fps.len();
                    shared.seen.probe_many(fps, keep, probe_order);
                };
                shared.sys.expand_admitted(
                    state,
                    &mut scratch.expand,
                    &shared.fper,
                    &mut admit,
                    &mut admitted,
                );
            }
            stats.transitions += n_cand;
            if scv_telemetry::enabled() {
                scv_telemetry::add(scv_telemetry::Metric::McStatesExpanded, 1);
                scv_telemetry::add(scv_telemetry::Metric::McTransitions, n_cand as u64);
            }
            for (label, succ, sfp) in admitted.drain(..) {
                let stripe = shared.seen.shard_of(sfp);
                scratch.stripes[stripe].push(PendingSucc {
                    fp: sfp,
                    parent_fp: *fp,
                    depth: depth + 1,
                    label,
                    state: succ,
                });
                if scratch.stripes[stripe].len() >= shared.batch {
                    flush_stripe(shared, id, stripe, &mut scratch, &mut stats);
                    if shared.stop.load(Ordering::Relaxed) {
                        break 'main;
                    }
                    // A flush is the other batch boundary worth a poll.
                    shared.check_trip(&mut ticks);
                }
            }
            scratch.admitted = admitted;
        }
        // End of chunk: flush every dirty stripe, hand off any full output
        // chunk, and only then retire the input chunk from `pending`.
        for stripe in 0..scratch.stripes.len() {
            if !scratch.stripes[stripe].is_empty() {
                flush_stripe(shared, id, stripe, &mut scratch, &mut stats);
                if shared.stop.load(Ordering::Relaxed) {
                    break 'main;
                }
            }
        }
        if !scratch.out_chunk.is_empty() {
            let chunk = std::mem::replace(
                &mut scratch.out_chunk,
                Vec::with_capacity(shared.chunk_size),
            );
            shared.push_chunk(id, chunk);
        }
        shared.pending.fetch_sub(1, Ordering::SeqCst);
    }
    // Hand the worker's flight-recorder ring to the collector before the
    // scope joins us (TLS destructors may outlive the join).
    scv_telemetry::recorder::flush_worker();
    (stats, scratch.parent_log)
}

/// Batch-insert one stripe's buffered successors, then admit the new ones:
/// log parents, check the safety predicate, enforce limits, and enqueue
/// for expansion.
fn flush_stripe<T: TransitionSystem>(
    shared: &Shared<'_, T>,
    worker: usize,
    stripe: usize,
    scratch: &mut Scratch<T>,
    stats: &mut WorkerStats,
) {
    scratch.fp_scratch.clear();
    scratch.flag_scratch.clear();
    scratch
        .fp_scratch
        .extend(scratch.stripes[stripe].iter().map(|p| p.fp));
    let batch_new =
        shared
            .seen
            .insert_batch(stripe, &scratch.fp_scratch, &mut scratch.flag_scratch);
    stats.seen_batches += 1;
    if scv_telemetry::enabled() {
        scv_telemetry::add(scv_telemetry::Metric::McSeenBatches, 1);
        scv_telemetry::add(scv_telemetry::Metric::McStatesAdmitted, batch_new as u64);
        scv_telemetry::record(scv_telemetry::Hist::SeenBatchYield, batch_new as u64);
    }
    if scv_telemetry::recorder_enabled() {
        // `insert_batch` records the batch instant; the running total
        // (which only this engine knows) becomes the seen-load counter.
        scv_telemetry::recorder::counter(
            scv_telemetry::recorder::CounterTrack::SeenStates,
            shared.states.load(Ordering::Relaxed) as f64 + batch_new as f64,
        );
    }

    let mut max_depth_seen = 0usize;
    for (i, pending) in scratch.stripes[stripe].drain(..).enumerate() {
        if !scratch.flag_scratch[i] {
            continue;
        }
        stats.admitted += 1;
        let total = shared.states.fetch_add(1, Ordering::Relaxed) + 1;
        max_depth_seen = max_depth_seen.max(pending.depth);
        scratch
            .parent_log
            .push((pending.fp, pending.parent_fp, pending.label));
        if let Some(v) = shared.sys.violation(&pending.state) {
            let mut found = shared.found.lock().unwrap();
            if found.is_none() {
                *found = Some((pending.fp, v));
            }
            shared.stop.store(true, Ordering::Relaxed);
            break;
        }
        if total as usize >= shared.opts.max_states {
            shared.state_limited.store(true, Ordering::Relaxed);
            shared.stop.store(true, Ordering::Relaxed);
            break;
        }
        if pending.depth >= shared.opts.max_depth {
            // Visited but not expanded — the depth frontier is non-empty,
            // exactly the level-synchronous engine's Bounded condition.
            shared.depth_limited.store(true, Ordering::Relaxed);
            continue;
        }
        scratch
            .out_chunk
            .push((pending.state, pending.fp, pending.depth));
        if scratch.out_chunk.len() >= shared.chunk_size {
            // New work stays on the owner's deque (classic work-stealing:
            // distribution happens only through steals).
            let chunk = std::mem::replace(
                &mut scratch.out_chunk,
                Vec::with_capacity(shared.chunk_size),
            );
            shared.push_chunk(worker, chunk);
        }
    }
    shared
        .depth_max
        .fetch_max(max_depth_seen, Ordering::Relaxed);
}

/// Work-stealing search; same contract as [`crate::mc::bfs`] /
/// [`crate::mc::bfs_parallel`]. Returns the aggregate result plus
/// per-worker statistics.
pub fn ws_search_detailed<T>(
    sys: &T,
    opts: BfsOptions,
    threads: usize,
    batch: usize,
) -> (SearchResult<T::Label, T::Violation>, Vec<WorkerStats>)
where
    T: TransitionSystem + Sync,
    T::Label: Send,
{
    let (r, ws) = ws_search_controlled(sys, opts, threads, batch, &RunControl::unlimited(), None);
    match r {
        ControlledSearch::Finished(r) => (r, ws),
        ControlledSearch::Interrupted { .. } => {
            unreachable!("an unlimited RunControl never interrupts")
        }
    }
}

/// Work-stealing search under a [`RunControl`], optionally resuming a
/// prior [`SearchCheckpoint`]; see the module docs for the interrupt
/// drain protocol.
#[allow(clippy::type_complexity)]
pub fn ws_search_controlled<T>(
    sys: &T,
    opts: BfsOptions,
    threads: usize,
    batch: usize,
    ctrl: &RunControl,
    resume: Option<SearchCheckpoint<T::State, T::Label>>,
) -> (
    ControlledSearch<T::State, T::Label, T::Violation>,
    Vec<WorkerStats>,
)
where
    T: TransitionSystem + Sync,
    T::Label: Send,
{
    let _t = scv_telemetry::timer(scv_telemetry::Phase::Search);
    if scv_telemetry::recorder_enabled() {
        scv_telemetry::recorder::set_worker("main");
    }
    let start = Instant::now();
    let threads = threads.max(1);
    let batch = batch.clamp(1, 4096);
    let fper = match &resume {
        Some(ck) => Fingerprinter::from_seeds(ck.seeds),
        None => Fingerprinter::new(),
    };

    let shared = Shared::<T> {
        sys,
        opts,
        ctrl,
        seen: StripedSeen::new((threads * 4).max(16)),
        fper,
        queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
        pending: AtomicUsize::new(0),
        epoch: AtomicU64::new(0),
        stop: AtomicBool::new(false),
        interrupt: AtomicU8::new(0),
        states: AtomicU64::new(0),
        depth_max: AtomicUsize::new(0),
        state_limited: AtomicBool::new(false),
        depth_limited: AtomicBool::new(false),
        queued_items: AtomicUsize::new(0),
        peak_frontier: AtomicUsize::new(0),
        found: Mutex::new(None),
        chunk_size: batch,
        batch,
    };

    let init_fp;
    let mut base_transitions = 0usize;
    let mut base_parents: ParentLog<T::Label> = Vec::new();
    match resume {
        Some(ck) => {
            init_fp = ck.init_fp;
            for fp in &ck.seen {
                shared.seen.insert(*fp);
            }
            shared.states.store(ck.states as u64, Ordering::Relaxed);
            shared.depth_max.store(ck.depth, Ordering::Relaxed);
            base_transitions = ck.transitions;
            base_parents = ck.parents;
            // Re-chunk the saved frontier round-robin across the deques so
            // every worker starts with local work.
            let mut w = 0usize;
            let mut frontier = ck.frontier;
            while !frontier.is_empty() {
                let take = frontier.len().min(batch);
                let chunk: Chunk<T> = frontier.drain(..take).collect();
                shared.push_chunk(w % threads, chunk);
                w += 1;
            }
        }
        None => {
            let init = sys.initial();
            if let Some(reason) = sys.violation(&init) {
                let stats = McStats {
                    states: 1,
                    workers: threads,
                    elapsed: start.elapsed(),
                    ..Default::default()
                };
                return (
                    ControlledSearch::Finished(SearchResult::Unsafe(
                        Counterexample {
                            path: Vec::new(),
                            reason,
                        },
                        stats,
                    )),
                    vec![WorkerStats::default(); threads],
                );
            }
            init_fp = shared.fper.fp(&init);
            shared.seen.insert(init_fp);
            shared.states.store(1, Ordering::Relaxed);
            if opts.max_depth == 0 {
                // Nothing may be expanded; mirror the level-synchronous verdict.
                let has_succs = !sys.successors(&init).is_empty();
                let stats = McStats {
                    states: 1,
                    workers: threads,
                    elapsed: start.elapsed(),
                    ..Default::default()
                };
                let result = if has_succs {
                    SearchResult::Bounded(stats)
                } else {
                    SearchResult::Safe(stats)
                };
                return (
                    ControlledSearch::Finished(result),
                    vec![WorkerStats::default(); threads],
                );
            }
            shared.push_chunk(0, vec![(init, init_fp, 0usize)]);
        }
    }

    let per_worker: Vec<(WorkerStats, ParentLog<T::Label>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|id| {
                let shared = &shared;
                scope.spawn(move || worker_loop(shared, id))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut worker_stats = Vec::with_capacity(threads);
    let mut stats = McStats {
        states: shared.states.load(Ordering::Relaxed) as usize,
        transitions: base_transitions,
        depth: shared.depth_max.load(Ordering::Relaxed),
        workers: threads,
        peak_frontier: shared.peak_frontier.load(Ordering::Relaxed),
        ..Default::default()
    };
    for (ws, _) in &per_worker {
        stats.transitions += ws.transitions;
        stats.steals += ws.steals;
        stats.seen_batches += ws.seen_batches;
        worker_stats.push(*ws);
    }
    stats.elapsed = start.elapsed();
    crate::mc::publish_search_stats(&stats, true);
    if scv_telemetry::enabled() {
        let loads = shared.seen.stripe_loads();
        let max = loads.iter().copied().max().unwrap_or(0);
        let mean = loads.iter().sum::<usize>() as f64 / loads.len().max(1) as f64;
        scv_telemetry::set_gauge("seen.stripes", loads.len() as f64);
        scv_telemetry::set_gauge("seen.stripe_load_max", max as f64);
        scv_telemetry::set_gauge("seen.stripe_load_mean", mean);
        let idle: usize = worker_stats.iter().map(|w| w.idle_spins).sum();
        scv_telemetry::set_gauge("mc.idle_spins", idle as f64);
    }

    // Priority: a found violation or an exceeded scope limit outranks an
    // interrupt — those are real verdicts, the interrupt is only "stopped
    // early".
    let found = shared.found.lock().unwrap().take();
    if let Some((bad_fp, reason)) = found {
        let mut parents: HashMap<u128, (u128, T::Label)> = HashMap::new();
        for (child, parent, label) in base_parents {
            parents.insert(child, (parent, label));
        }
        for (_, log) in per_worker {
            for (child, parent, label) in log {
                parents.insert(child, (parent, label));
            }
        }
        let mut path = Vec::new();
        let mut cur = bad_fp;
        while let Some((parent, label)) = parents.get(&cur) {
            path.push(label.clone());
            cur = *parent;
        }
        path.reverse();
        return (
            ControlledSearch::Finished(SearchResult::Unsafe(
                Counterexample { path, reason },
                stats,
            )),
            worker_stats,
        );
    }
    let truncated = shared.state_limited.load(Ordering::Relaxed)
        || shared.depth_limited.load(Ordering::Relaxed);
    if truncated {
        return (
            ControlledSearch::Finished(SearchResult::Bounded(stats)),
            worker_stats,
        );
    }
    let tripped = shared.interrupt.load(Ordering::Relaxed);
    if tripped != 0 {
        // Every worker exited through a consistent point, so the deques
        // hold exactly the admitted-but-unexpanded states.
        let mut frontier: Vec<(T::State, u128, usize)> = Vec::new();
        for q in &shared.queues {
            for chunk in q.lock().unwrap().drain(..) {
                frontier.extend(chunk);
            }
        }
        let mut parents = base_parents;
        for (_, log) in per_worker {
            parents.extend(log);
        }
        let checkpoint = SearchCheckpoint {
            seeds: shared.fper.seeds(),
            init_fp,
            seen: shared.seen.fingerprints(),
            frontier,
            parents,
            states: stats.states,
            transitions: stats.transitions,
            depth: stats.depth,
        };
        return (
            ControlledSearch::Interrupted {
                reason: code_to_reason(tripped),
                checkpoint,
                stats,
            },
            worker_stats,
        );
    }
    (
        ControlledSearch::Finished(SearchResult::Safe(stats)),
        worker_stats,
    )
}

/// Work-stealing search (aggregate-stats entry point).
pub fn ws_search<T>(
    sys: &T,
    opts: BfsOptions,
    threads: usize,
    batch: usize,
) -> SearchResult<T::Label, T::Violation>
where
    T: TransitionSystem + Sync,
    T::Label: Send,
{
    ws_search_detailed(sys, opts, threads, batch).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::{Budget, CancelToken, InterruptReason};

    /// A counter modulo n that "violates" at a designated value (the same
    /// fixture as the mc.rs unit tests).
    struct Counter {
        n: u32,
        bad: Option<u32>,
    }

    impl TransitionSystem for Counter {
        type State = u32;
        type Label = &'static str;
        type Violation = String;

        fn initial(&self) -> u32 {
            0
        }
        fn successors(&self, s: &u32) -> Vec<(&'static str, u32)> {
            vec![("inc", (s + 1) % self.n), ("dbl", (s * 2) % self.n)]
        }
        fn violation(&self, s: &u32) -> Option<String> {
            (Some(*s) == self.bad).then(|| format!("hit {s}"))
        }
    }

    fn replay(path: &[&str], n: u32) -> u32 {
        let mut s = 0u32;
        for l in path {
            s = match *l {
                "inc" => (s + 1) % n,
                _ => (s * 2) % n,
            };
        }
        s
    }

    #[test]
    fn exhaustive_search_agrees_with_bfs() {
        let sys = Counter { n: 977, bad: None };
        for threads in [1, 2, 4] {
            let (r, ws) = ws_search_detailed(&sys, BfsOptions::default(), threads, 8);
            assert!(r.is_safe(), "threads={threads}");
            assert_eq!(r.stats().states, 977, "threads={threads}");
            let expanded: usize = ws.iter().map(|w| w.expanded).sum();
            assert_eq!(expanded, 977, "every admitted state is expanded");
        }
    }

    #[test]
    fn violation_found_and_path_replays() {
        let sys = Counter {
            n: 977,
            bad: Some(123),
        };
        for threads in [1, 2, 4] {
            match ws_search(&sys, BfsOptions::default(), threads, 4) {
                SearchResult::Unsafe(ce, _) => {
                    assert_eq!(replay(&ce.path, 977), 123, "threads={threads}");
                }
                r => panic!("expected Unsafe at threads={threads}, got {r:?}"),
            }
        }
    }

    #[test]
    fn violating_initial_state_caught() {
        let sys = Counter {
            n: 10,
            bad: Some(0),
        };
        match ws_search(&sys, BfsOptions::default(), 2, 8) {
            SearchResult::Unsafe(ce, _) => assert!(ce.path.is_empty()),
            r => panic!("expected Unsafe, got {r:?}"),
        }
    }

    #[test]
    fn state_limit_reports_bounded() {
        let sys = Counter {
            n: 100_000,
            bad: None,
        };
        let r = ws_search(&sys, BfsOptions::new().max_states(50), 2, 4);
        assert!(matches!(r, SearchResult::Bounded(_)), "{r:?}");
    }

    #[test]
    fn depth_limit_reports_bounded() {
        let sys = Counter { n: 1000, bad: None };
        let r = ws_search(
            &sys,
            BfsOptions::new().max_states(usize::MAX).max_depth(3),
            2,
            4,
        );
        assert!(matches!(r, SearchResult::Bounded(_)), "{r:?}");
        let r = ws_search(
            &sys,
            BfsOptions::new().max_states(usize::MAX).max_depth(0),
            2,
            4,
        );
        assert!(matches!(r, SearchResult::Bounded(_)), "{r:?}");
    }

    #[test]
    fn unreachable_violation_is_safe() {
        // bad = 981 > n is never reached.
        let sys = Counter {
            n: 977,
            bad: Some(981),
        };
        let r = ws_search(&sys, BfsOptions::default(), 3, 16);
        assert!(r.is_safe());
    }

    /// Interrupt with a state budget at various cut points and thread
    /// counts, resume, and demand exact verdict + state-count parity with
    /// a clean run.
    #[test]
    fn interrupt_resume_matches_clean_run() {
        let sys = Counter { n: 977, bad: None };
        let clean = ws_search(&sys, BfsOptions::default(), 4, 8);
        assert_eq!(clean.stats().states, 977);
        for threads in [1usize, 4] {
            for cut in [2usize, 50, 400, 900] {
                let ctrl = RunControl::new(&Budget::unlimited().states(cut), CancelToken::new());
                let (r, _) =
                    ws_search_controlled(&sys, BfsOptions::default(), threads, 8, &ctrl, None);
                let ControlledSearch::Interrupted {
                    reason, checkpoint, ..
                } = r
                else {
                    panic!("budget {cut} must interrupt (threads={threads})");
                };
                assert_eq!(reason, InterruptReason::StateBudget);
                assert_eq!(
                    checkpoint.seen.len(),
                    checkpoint.states,
                    "seen-set matches the admitted count (threads={threads}, cut={cut})"
                );
                let (resumed, _) = ws_search_controlled(
                    &sys,
                    BfsOptions::default(),
                    threads,
                    8,
                    &RunControl::unlimited(),
                    Some(checkpoint),
                );
                let ControlledSearch::Finished(r2) = resumed else {
                    panic!("unlimited resume must finish");
                };
                assert!(r2.is_safe(), "threads={threads}, cut={cut}");
                assert_eq!(
                    r2.stats().states,
                    977,
                    "state-count parity (threads={threads}, cut={cut})"
                );
            }
        }
    }

    /// A violation beyond the interrupt point is still found after
    /// resuming, and the merged (base + new) parent logs replay.
    #[test]
    fn resume_finds_violation_past_cut() {
        let sys = Counter {
            n: 977,
            bad: Some(955),
        };
        let ctrl = RunControl::new(&Budget::unlimited().states(100), CancelToken::new());
        let (r, _) = ws_search_controlled(&sys, BfsOptions::default(), 3, 8, &ctrl, None);
        let ControlledSearch::Interrupted { checkpoint, .. } = r else {
            panic!("expected interrupt");
        };
        let (resumed, _) = ws_search_controlled(
            &sys,
            BfsOptions::default(),
            3,
            8,
            &RunControl::unlimited(),
            Some(checkpoint),
        );
        let ControlledSearch::Finished(SearchResult::Unsafe(ce, _)) = resumed else {
            panic!("resume must find the violation");
        };
        assert_eq!(
            replay(&ce.path, 977),
            955,
            "path must replay to the bad state"
        );
    }

    /// A pre-cancelled token interrupts before any expansion and the
    /// checkpoint carries the full (singleton) frontier.
    #[test]
    fn cancel_interrupts_and_checkpoint_is_resumable() {
        let sys = Counter { n: 977, bad: None };
        let token = CancelToken::new();
        token.cancel();
        let ctrl = RunControl::new(&Budget::unlimited(), token);
        let (r, _) = ws_search_controlled(&sys, BfsOptions::default(), 2, 8, &ctrl, None);
        let ControlledSearch::Interrupted {
            reason, checkpoint, ..
        } = r
        else {
            panic!("expected interrupt");
        };
        assert_eq!(reason, InterruptReason::Cancelled);
        let (resumed, _) = ws_search_controlled(
            &sys,
            BfsOptions::default(),
            2,
            8,
            &RunControl::unlimited(),
            Some(checkpoint),
        );
        let ControlledSearch::Finished(r2) = resumed else {
            panic!("resume must finish");
        };
        assert!(r2.is_safe());
        assert_eq!(r2.stats().states, 977);
    }
}
