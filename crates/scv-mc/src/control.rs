//! Run control: budgets, cooperative cancellation, and coverage reporting.
//!
//! A [`Budget`] bounds a verification run by wall-clock time, admitted
//! states, or resident memory; a [`CancelToken`] lets another thread stop
//! it cooperatively. Both are checked by the search engines only at batch
//! admission boundaries, so the per-state hot loop stays branch-cheap and
//! an interrupted engine can always drain to a *consistent point*: every
//! expanded state has all of its successors admitted, and every admitted
//! but unexpanded state is in the frontier. That invariant is what makes
//! the checkpoint/resume path exact rather than approximate.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Resource limits for a verification run.
///
/// All limits are optional; the default budget is unlimited. Unlike
/// `BfsOptions::max_states` (which yields a `Bounded` verdict — "the
/// search space is bigger than I was asked to cover"), a tripped budget
/// yields `Outcome::Inconclusive` — "the run was interrupted and can be
/// resumed from a checkpoint".
#[non_exhaustive]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Stop after this much wall-clock time has elapsed.
    pub deadline: Option<Duration>,
    /// Stop after admitting this many states.
    pub max_states: Option<usize>,
    /// Stop once peak resident memory exceeds this many bytes.
    pub max_rss_bytes: Option<u64>,
}

impl Budget {
    /// A budget with no limits (the default).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Set a wall-clock deadline, measured from the start of the run.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Cap the number of admitted states.
    pub fn states(mut self, n: usize) -> Self {
        self.max_states = Some(n);
        self
    }

    /// Cap peak resident memory, in bytes.
    pub fn memory_bytes(mut self, bytes: u64) -> Self {
        self.max_rss_bytes = Some(bytes);
        self
    }

    /// True when no limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_states.is_none() && self.max_rss_bytes.is_none()
    }
}

/// A cooperative cancellation handle.
///
/// Cloning is cheap and all clones share one flag; calling
/// [`CancelToken::cancel`] from any thread asks every engine holding a
/// clone to stop at its next admission boundary.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Why a run stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InterruptReason {
    /// The [`CancelToken`] was cancelled.
    Cancelled,
    /// The wall-clock deadline passed.
    Deadline,
    /// The admitted-state budget was exhausted.
    StateBudget,
    /// Peak resident memory exceeded the budget.
    MemoryBudget,
}

/// Encode a reason into a nonzero byte for shared atomic interrupt flags
/// (0 means "no interrupt").
pub(crate) fn reason_to_code(r: InterruptReason) -> u8 {
    match r {
        InterruptReason::Cancelled => 1,
        InterruptReason::Deadline => 2,
        InterruptReason::StateBudget => 3,
        InterruptReason::MemoryBudget => 4,
    }
}

/// Inverse of [`reason_to_code`]; panics on 0 or unknown codes.
pub(crate) fn code_to_reason(c: u8) -> InterruptReason {
    match c {
        1 => InterruptReason::Cancelled,
        2 => InterruptReason::Deadline,
        3 => InterruptReason::StateBudget,
        4 => InterruptReason::MemoryBudget,
        _ => unreachable!("invalid interrupt code {c}"),
    }
}

impl fmt::Display for InterruptReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InterruptReason::Cancelled => "cancelled",
            InterruptReason::Deadline => "wall-clock deadline",
            InterruptReason::StateBudget => "state budget",
            InterruptReason::MemoryBudget => "memory budget",
        })
    }
}

/// How much of the state space an interrupted run covered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Distinct states admitted to the seen-set.
    pub explored: usize,
    /// Admitted states still awaiting expansion when the run stopped.
    pub frontier: usize,
    /// Deepest BFS level reached.
    pub depth: usize,
}

impl fmt::Display for Coverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states explored, {} in frontier, depth {}",
            self.explored, self.frontier, self.depth
        )
    }
}

/// A [`Budget`] resolved against a concrete start instant, plus the
/// cancel token — the form the engines actually poll.
#[derive(Clone, Debug)]
pub struct RunControl {
    cancel: CancelToken,
    deadline: Option<Instant>,
    max_states: usize,
    max_rss: Option<u64>,
}

/// RSS is read from the OS (a procfs parse), so it is polled only every
/// `RSS_STRIDE`-th trip check.
const RSS_STRIDE: u32 = 32;

impl RunControl {
    /// A control that never trips.
    pub fn unlimited() -> Self {
        RunControl {
            cancel: CancelToken::new(),
            deadline: None,
            max_states: usize::MAX,
            max_rss: None,
        }
    }

    /// Resolve `budget` against `Instant::now()` with the given token.
    pub fn new(budget: &Budget, cancel: CancelToken) -> Self {
        RunControl {
            cancel,
            deadline: budget.deadline.map(|d| Instant::now() + d),
            max_states: budget.max_states.unwrap_or(usize::MAX),
            max_rss: budget.max_rss_bytes,
        }
    }

    /// Override the absolute deadline (used by the checkpoint driver to
    /// shorten a slice to the next checkpoint tick).
    pub fn with_deadline(mut self, at: Instant) -> Self {
        self.deadline = Some(match self.deadline {
            Some(d) => d.min(at),
            None => at,
        });
        self
    }

    /// The cancel token this control polls.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Check every limit. `states` is the current admitted-state count;
    /// `ticks` is caller-owned scratch that strides the RSS poll. Returns
    /// the first tripped limit, or `None` to keep going.
    #[inline]
    pub fn trip(&self, states: usize, ticks: &mut u32) -> Option<InterruptReason> {
        if self.cancel.is_cancelled() {
            return Some(InterruptReason::Cancelled);
        }
        if states >= self.max_states {
            return Some(InterruptReason::StateBudget);
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Some(InterruptReason::Deadline);
            }
        }
        if let Some(cap) = self.max_rss {
            *ticks = ticks.wrapping_add(1);
            if ticks.is_multiple_of(RSS_STRIDE) {
                if let Some(rss) = scv_telemetry::peak_rss_bytes() {
                    if rss > cap {
                        return Some(InterruptReason::MemoryBudget);
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited() {
        let b = Budget::default();
        assert!(b.is_unlimited());
        assert_eq!(b, Budget::unlimited());
        let ctrl = RunControl::new(&b, CancelToken::new());
        let mut ticks = 0;
        assert_eq!(ctrl.trip(1_000_000_000, &mut ticks), None);
    }

    #[test]
    fn budget_builders_compose() {
        let b = Budget::unlimited()
            .deadline(Duration::from_secs(5))
            .states(100)
            .memory_bytes(1 << 30);
        assert_eq!(b.deadline, Some(Duration::from_secs(5)));
        assert_eq!(b.max_states, Some(100));
        assert_eq!(b.max_rss_bytes, Some(1 << 30));
        assert!(!b.is_unlimited());
    }

    #[test]
    fn state_budget_trips_at_cap() {
        let ctrl = RunControl::new(&Budget::unlimited().states(10), CancelToken::new());
        let mut ticks = 0;
        assert_eq!(ctrl.trip(9, &mut ticks), None);
        assert_eq!(
            ctrl.trip(10, &mut ticks),
            Some(InterruptReason::StateBudget)
        );
        assert_eq!(
            ctrl.trip(11, &mut ticks),
            Some(InterruptReason::StateBudget)
        );
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let t = CancelToken::new();
        let t2 = t.clone();
        assert!(!t.is_cancelled());
        t2.cancel();
        assert!(t.is_cancelled());
        let ctrl = RunControl::new(&Budget::unlimited(), t);
        let mut ticks = 0;
        assert_eq!(ctrl.trip(0, &mut ticks), Some(InterruptReason::Cancelled));
    }

    #[test]
    fn expired_deadline_trips() {
        let ctrl = RunControl::new(
            &Budget::unlimited().deadline(Duration::ZERO),
            CancelToken::new(),
        );
        let mut ticks = 0;
        assert_eq!(ctrl.trip(0, &mut ticks), Some(InterruptReason::Deadline));
    }

    #[test]
    fn with_deadline_takes_the_earlier_instant() {
        let near = Instant::now();
        let far = near + Duration::from_secs(3600);
        let ctrl = RunControl::unlimited()
            .with_deadline(far)
            .with_deadline(near);
        let mut ticks = 0;
        assert_eq!(ctrl.trip(0, &mut ticks), Some(InterruptReason::Deadline));
    }

    #[test]
    fn reason_display_is_stable() {
        assert_eq!(InterruptReason::Cancelled.to_string(), "cancelled");
        assert_eq!(InterruptReason::Deadline.to_string(), "wall-clock deadline");
        assert_eq!(InterruptReason::StateBudget.to_string(), "state budget");
        assert_eq!(InterruptReason::MemoryBudget.to_string(), "memory budget");
    }

    #[test]
    fn coverage_display() {
        let c = Coverage {
            explored: 12,
            frontier: 3,
            depth: 4,
        };
        assert_eq!(c.to_string(), "12 states explored, 3 in frontier, depth 4");
    }
}
