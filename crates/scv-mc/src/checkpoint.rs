//! Versioned on-disk snapshots of an interrupted verification search
//! (`scv checkpoint` format).
//!
//! A checkpoint file carries everything needed to resume a product-system
//! search exactly: the protocol identity (name + parameters + symmetry
//! mode, so a mismatched resume is rejected up front), the fingerprint
//! seeds, the seen-set, the parent-edge log, the running totals, and the
//! frontier as `(fingerprint, depth)` pairs. Frontier *states* are not
//! serialized — product states hold observer/checker machines and arena
//! encodings whose layout is an implementation detail; instead resume
//! reconstructs each frontier state by replaying its parent chain of
//! [`Action`]s from the initial state (see `VerifySystem` in the verify
//! layer), fingerprint-checking every replayed step.
//!
//! ## Wire format
//!
//! Everything is little-endian; `u128` values are written as two `u64`
//! halves (low, then high), so the encoding is identical on every
//! platform. Layout:
//!
//! ```text
//! magic      8  b"SCVCKPT1"
//! version    u32
//! protocol   u32 len + UTF-8 bytes
//! p, b, v    u8 × 3          (protocol parameters)
//! symmetry   u8              (SymmetryMode encoding)
//! seeds      u64 × 4         (Fingerprinter keys)
//! states     u64
//! trans      u64
//! depth      u64
//! init_fp    u128
//! seen       u64 count + count × u128
//! parents    u64 count + count × (child u128, parent u128, action)
//! frontier   u64 count + count × (fp u128, depth u32)
//! integrity  u64             (XXH64 of every preceding byte, seed 0)
//! ```
//!
//! Actions encode as `0, kind, proc, block, value` for memory operations
//! and `1, name-len u16, name bytes, payload u32` for internal actions
//! (decoded names are interned into leaked `&'static str`s — bounded by
//! the number of distinct action names a protocol has).

use scv_protocol::Action;
use scv_types::{BlockId, Op, OpKind, ProcId, Value};
use std::collections::HashSet;
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::Mutex;

/// File magic: "SCVCKPT1".
pub const MAGIC: [u8; 8] = *b"SCVCKPT1";
/// Current format version.
pub const VERSION: u32 = 1;

/// Why a checkpoint could not be written, read, or applied.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem error.
    Io(io::Error),
    /// The bytes are not a well-formed checkpoint (bad magic, truncated,
    /// integrity word mismatch, unknown version…).
    Corrupt(String),
    /// The checkpoint is well-formed but belongs to a different search
    /// (wrong protocol, parameters, symmetry mode, or initial state).
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// The decoded contents of a checkpoint file. This is the *portable* form:
/// fingerprints, actions, and counts — no materialized product states.
#[derive(Clone, Debug)]
pub struct CheckpointFile {
    /// Protocol name the search was running (e.g. `"msi"`).
    pub protocol: String,
    /// Protocol parameters `(p, b, v)`.
    pub dims: (u8, u8, u8),
    /// Symmetry-mode byte (see the verify layer's encoding).
    pub symmetry: u8,
    /// Fingerprinter seeds.
    pub seeds: [u64; 4],
    /// Distinct states admitted so far.
    pub states: u64,
    /// Transitions explored so far.
    pub transitions: u64,
    /// Deepest BFS level admitted so far.
    pub depth: u64,
    /// Fingerprint of the initial product state.
    pub init_fp: u128,
    /// Every admitted fingerprint.
    pub seen: Vec<u128>,
    /// Parent edges `(child_fp, parent_fp, action)`.
    pub parents: Vec<(u128, u128, Action)>,
    /// Unexpanded frontier as `(fingerprint, depth)` pairs.
    pub frontier: Vec<(u128, u32)>,
}

// ---------------------------------------------------------------------------
// XXH64 — the integrity word.

const P1: u64 = 0x9E3779B185EBCA87;
const P2: u64 = 0xC2B2AE3D27D4EB4F;
const P3: u64 = 0x165667B19E3779F9;
const P4: u64 = 0x85EBCA77C2B2AE63;
const P5: u64 = 0x27D4EB2F165667C5;

#[inline]
fn xxh_round(acc: u64, m: u64) -> u64 {
    acc.wrapping_add(m.wrapping_mul(P2))
        .rotate_left(31)
        .wrapping_mul(P1)
}

#[inline]
fn xxh_merge_round(h: u64, v: u64) -> u64 {
    (h ^ xxh_round(0, v)).wrapping_mul(P1).wrapping_add(P4)
}

/// XXH64 of `data` under `seed` (the reference algorithm; pinned against
/// published vectors in the tests).
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let len = data.len();
    let mut rest = data;
    let mut h: u64;
    if len >= 32 {
        let mut v1 = seed.wrapping_add(P1).wrapping_add(P2);
        let mut v2 = seed.wrapping_add(P2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(P1);
        while rest.len() >= 32 {
            let m = |i: usize| u64::from_le_bytes(rest[i..i + 8].try_into().expect("lane"));
            v1 = xxh_round(v1, m(0));
            v2 = xxh_round(v2, m(8));
            v3 = xxh_round(v3, m(16));
            v4 = xxh_round(v4, m(24));
            rest = &rest[32..];
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = xxh_merge_round(h, v1);
        h = xxh_merge_round(h, v2);
        h = xxh_merge_round(h, v3);
        h = xxh_merge_round(h, v4);
    } else {
        h = seed.wrapping_add(P5);
    }
    h = h.wrapping_add(len as u64);
    while rest.len() >= 8 {
        let m = u64::from_le_bytes(rest[..8].try_into().expect("tail8"));
        h ^= xxh_round(0, m);
        h = h.rotate_left(27).wrapping_mul(P1).wrapping_add(P4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        let m = u32::from_le_bytes(rest[..4].try_into().expect("tail4")) as u64;
        h ^= m.wrapping_mul(P1);
        h = h.rotate_left(23).wrapping_mul(P2).wrapping_add(P3);
        rest = &rest[4..];
    }
    for &b in rest {
        h ^= (b as u64).wrapping_mul(P5);
        h = h.rotate_left(11).wrapping_mul(P1);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(P2);
    h ^= h >> 29;
    h = h.wrapping_mul(P3);
    h ^= h >> 32;
    h
}

// ---------------------------------------------------------------------------
// Little-endian byte codec.

fn put_u16(out: &mut Vec<u8>, x: u16) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

/// `u128` goes out as two `u64` halves, low first — bit-identical to the
/// 16-byte little-endian encoding of the whole value (pinned in tests, so
/// both encode paths stay interchangeable on every platform).
fn put_u128(out: &mut Vec<u8>, x: u128) {
    put_u64(out, x as u64);
    put_u64(out, (x >> 64) as u64);
}

/// Cursor over a checkpoint byte buffer; every read is bounds-checked so a
/// truncated file surfaces as [`CheckpointError::Corrupt`], never a panic.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.at + n > self.buf.len() {
            return Err(CheckpointError::Corrupt(format!(
                "truncated: wanted {n} bytes at offset {}, file has {}",
                self.at,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("u16")))
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("u32")))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("u64")))
    }

    fn u128(&mut self) -> Result<u128, CheckpointError> {
        let lo = self.u64()? as u128;
        let hi = self.u64()? as u128;
        Ok(hi << 64 | lo)
    }

    /// A length prefix that will be used to reserve memory: sanity-cap it
    /// against the bytes actually remaining so a corrupt length can't
    /// drive a huge allocation.
    fn count(&mut self, min_item_bytes: usize) -> Result<usize, CheckpointError> {
        let n = self.u64()? as usize;
        let remaining = self.buf.len() - self.at;
        if n.saturating_mul(min_item_bytes) > remaining {
            return Err(CheckpointError::Corrupt(format!(
                "count {n} impossible with {remaining} bytes remaining"
            )));
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------------
// Action codec.

/// Intern a decoded action name into a `&'static str`. `Action::Internal`
/// holds static strings by design (names come from string literals in
/// protocol code); decoding leaks each *distinct* name once, which is
/// bounded by the protocol's action vocabulary.
fn intern_name(name: &str) -> &'static str {
    static NAMES: Mutex<Option<HashSet<&'static str>>> = Mutex::new(None);
    let mut guard = NAMES.lock().unwrap();
    let set = guard.get_or_insert_with(HashSet::new);
    if let Some(&s) = set.get(name) {
        return s;
    }
    let s: &'static str = Box::leak(name.to_owned().into_boxed_str());
    set.insert(s);
    s
}

fn put_action(out: &mut Vec<u8>, a: &Action) {
    match a {
        Action::Mem(op) => {
            out.push(0);
            out.push(match op.kind {
                OpKind::Load => 0,
                OpKind::Store => 1,
            });
            out.push(op.proc.0);
            out.push(op.block.0);
            out.push(op.value.0);
        }
        Action::Internal(name, payload) => {
            out.push(1);
            let bytes = name.as_bytes();
            debug_assert!(bytes.len() <= u16::MAX as usize);
            put_u16(out, bytes.len() as u16);
            out.extend_from_slice(bytes);
            put_u32(out, *payload);
        }
    }
}

fn get_action(cur: &mut Cursor<'_>) -> Result<Action, CheckpointError> {
    match cur.u8()? {
        0 => {
            let kind = match cur.u8()? {
                0 => OpKind::Load,
                1 => OpKind::Store,
                k => return Err(CheckpointError::Corrupt(format!("bad op kind {k}"))),
            };
            let proc = ProcId(cur.u8()?);
            let block = BlockId(cur.u8()?);
            let value = Value(cur.u8()?);
            Ok(Action::Mem(Op {
                kind,
                proc,
                block,
                value,
            }))
        }
        1 => {
            let len = cur.u16()? as usize;
            let bytes = cur.take(len)?;
            let name = std::str::from_utf8(bytes)
                .map_err(|_| CheckpointError::Corrupt("non-UTF-8 action name".into()))?;
            let payload = cur.u32()?;
            Ok(Action::Internal(intern_name(name), payload))
        }
        t => Err(CheckpointError::Corrupt(format!("bad action tag {t}"))),
    }
}

// ---------------------------------------------------------------------------
// File encode / decode.

impl CheckpointFile {
    /// Serialize to the wire format, integrity word included.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            64 + self.seen.len() * 16 + self.parents.len() * 40 + self.frontier.len() * 20,
        );
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, VERSION);
        put_u32(&mut out, self.protocol.len() as u32);
        out.extend_from_slice(self.protocol.as_bytes());
        out.push(self.dims.0);
        out.push(self.dims.1);
        out.push(self.dims.2);
        out.push(self.symmetry);
        for s in self.seeds {
            put_u64(&mut out, s);
        }
        put_u64(&mut out, self.states);
        put_u64(&mut out, self.transitions);
        put_u64(&mut out, self.depth);
        put_u128(&mut out, self.init_fp);
        put_u64(&mut out, self.seen.len() as u64);
        for &fp in &self.seen {
            put_u128(&mut out, fp);
        }
        put_u64(&mut out, self.parents.len() as u64);
        for (child, parent, action) in &self.parents {
            put_u128(&mut out, *child);
            put_u128(&mut out, *parent);
            put_action(&mut out, action);
        }
        put_u64(&mut out, self.frontier.len() as u64);
        for &(fp, depth) in &self.frontier {
            put_u128(&mut out, fp);
            put_u32(&mut out, depth);
        }
        let sum = xxh64(&out, 0);
        put_u64(&mut out, sum);
        out
    }

    /// Parse and integrity-check the wire format.
    pub fn decode(buf: &[u8]) -> Result<Self, CheckpointError> {
        if buf.len() < MAGIC.len() + 4 + 8 {
            return Err(CheckpointError::Corrupt("file too short".into()));
        }
        let (body, sum_bytes) = buf.split_at(buf.len() - 8);
        let want = u64::from_le_bytes(sum_bytes.try_into().expect("sum"));
        let got = xxh64(body, 0);
        if want != got {
            return Err(CheckpointError::Corrupt(format!(
                "integrity word mismatch: file says {want:#018x}, contents hash to {got:#018x}"
            )));
        }
        let mut cur = Cursor { buf: body, at: 0 };
        if cur.take(MAGIC.len())? != MAGIC {
            return Err(CheckpointError::Corrupt("bad magic".into()));
        }
        let version = cur.u32()?;
        if version != VERSION {
            return Err(CheckpointError::Corrupt(format!(
                "unsupported version {version} (this build reads {VERSION})"
            )));
        }
        let name_len = cur.u32()? as usize;
        let protocol = std::str::from_utf8(cur.take(name_len)?)
            .map_err(|_| CheckpointError::Corrupt("non-UTF-8 protocol name".into()))?
            .to_owned();
        let dims = (cur.u8()?, cur.u8()?, cur.u8()?);
        let symmetry = cur.u8()?;
        let mut seeds = [0u64; 4];
        for s in &mut seeds {
            *s = cur.u64()?;
        }
        let states = cur.u64()?;
        let transitions = cur.u64()?;
        let depth = cur.u64()?;
        let init_fp = cur.u128()?;
        let n_seen = cur.count(16)?;
        let mut seen = Vec::with_capacity(n_seen);
        for _ in 0..n_seen {
            seen.push(cur.u128()?);
        }
        let n_parents = cur.count(33)?;
        let mut parents = Vec::with_capacity(n_parents);
        for _ in 0..n_parents {
            let child = cur.u128()?;
            let parent = cur.u128()?;
            let action = get_action(&mut cur)?;
            parents.push((child, parent, action));
        }
        let n_frontier = cur.count(20)?;
        let mut frontier = Vec::with_capacity(n_frontier);
        for _ in 0..n_frontier {
            let fp = cur.u128()?;
            let depth = cur.u32()?;
            frontier.push((fp, depth));
        }
        if cur.at != body.len() {
            return Err(CheckpointError::Corrupt(format!(
                "{} trailing bytes after frontier",
                body.len() - cur.at
            )));
        }
        Ok(CheckpointFile {
            protocol,
            dims,
            symmetry,
            seeds,
            states,
            transitions,
            depth,
            init_fp,
            seen,
            parents,
            frontier,
        })
    }

    /// Write to `path` (atomically: a temp file in the same directory,
    /// then rename). Returns the number of bytes written.
    pub fn save(&self, path: &Path) -> Result<u64, CheckpointError> {
        let bytes = self.encode();
        let tmp = path.with_extension("ckpt.tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, path)?;
        Ok(bytes.len() as u64)
    }

    /// Read and decode `path`.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path)?;
        Self::decode(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xxh64_matches_reference_vectors() {
        // Published XXH64 vectors.
        assert_eq!(xxh64(b"", 0), 0xEF46DB3751D8E999);
        // One-byte and multi-lane inputs exercise the tail and lane loops;
        // these values are pinned from the reference implementation via
        // the algorithm above and guard against regressions in either
        // path. The empty-input vector above is the published constant.
        let long: Vec<u8> = (0u8..=255).collect();
        let h1 = xxh64(&long, 0);
        let h2 = xxh64(&long, 0);
        assert_eq!(h1, h2);
        assert_ne!(xxh64(&long, 1), h1, "seed must matter");
        assert_ne!(xxh64(&long[..255], 0), h1, "length must matter");
    }

    #[test]
    fn u128_halves_equal_le_bytes() {
        // The two endianness-safe encode paths — (lo u64, hi u64) halves
        // and the 16-byte LE encoding — must be bit-identical.
        for x in [0u128, 1, u128::MAX, 0x0123456789ABCDEF_FEDCBA9876543210] {
            let mut halves = Vec::new();
            put_u128(&mut halves, x);
            assert_eq!(halves.as_slice(), &x.to_le_bytes());
            let mut cur = Cursor {
                buf: &halves,
                at: 0,
            };
            assert_eq!(cur.u128().unwrap(), x);
        }
    }

    fn sample() -> CheckpointFile {
        CheckpointFile {
            protocol: "msi".into(),
            dims: (2, 1, 1),
            symmetry: 2,
            seeds: [1, 2, 3, 4],
            states: 1000,
            transitions: 5000,
            depth: 12,
            init_fp: 0xDEAD_BEEF_0000_0001,
            seen: vec![1, 2, u128::MAX, 0xDEAD_BEEF_0000_0001],
            parents: vec![
                (2, 1, Action::Mem(Op::load(ProcId(1), BlockId(1), Value(0)))),
                (
                    u128::MAX,
                    2,
                    Action::Mem(Op::store(ProcId(2), BlockId(1), Value(1))),
                ),
                (7, u128::MAX, Action::Internal("evict", 3)),
            ],
            frontier: vec![(u128::MAX, 3), (7, 4)],
        }
    }

    #[test]
    fn file_roundtrip() {
        let f = sample();
        let bytes = f.encode();
        let g = CheckpointFile::decode(&bytes).expect("decode");
        assert_eq!(g.protocol, f.protocol);
        assert_eq!(g.dims, f.dims);
        assert_eq!(g.symmetry, f.symmetry);
        assert_eq!(g.seeds, f.seeds);
        assert_eq!(g.states, f.states);
        assert_eq!(g.transitions, f.transitions);
        assert_eq!(g.depth, f.depth);
        assert_eq!(g.init_fp, f.init_fp);
        assert_eq!(g.seen, f.seen);
        assert_eq!(g.frontier, f.frontier);
        assert_eq!(g.parents.len(), f.parents.len());
        for ((c1, p1, a1), (c2, p2, a2)) in g.parents.iter().zip(&f.parents) {
            assert_eq!((c1, p1), (c2, p2));
            assert_eq!(a1, a2, "actions must compare equal after decode");
        }
    }

    #[test]
    fn corruption_is_detected() {
        let bytes = sample().encode();
        // Flip one byte anywhere in the body: the integrity word fails.
        for at in [0usize, 8, 20, bytes.len() / 2, bytes.len() - 9] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x40;
            assert!(
                matches!(
                    CheckpointFile::decode(&bad),
                    Err(CheckpointError::Corrupt(_))
                ),
                "flip at {at} must be caught"
            );
        }
        // Truncation too.
        assert!(matches!(
            CheckpointFile::decode(&bytes[..bytes.len() - 1]),
            Err(CheckpointError::Corrupt(_))
        ));
        assert!(matches!(
            CheckpointFile::decode(&bytes[..4]),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn save_and_load_via_tempfile() {
        let dir = std::env::temp_dir().join(format!("scv-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ckpt");
        let f = sample();
        let written = f.save(&path).expect("save");
        assert_eq!(written, f.encode().len() as u64);
        let g = CheckpointFile::load(&path).expect("load");
        assert_eq!(g.seen, f.seen);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interned_internal_actions_compare_equal() {
        let a = Action::Internal("fetch-exclusive", 9);
        let mut buf = Vec::new();
        put_action(&mut buf, &a);
        let mut cur = Cursor { buf: &buf, at: 0 };
        let b = get_action(&mut cur).unwrap();
        assert_eq!(a, b);
        // Interning: decoding the same name twice yields the same pointer.
        let mut cur = Cursor { buf: &buf, at: 0 };
        let c = get_action(&mut cur).unwrap();
        match (b, c) {
            (Action::Internal(n1, _), Action::Internal(n2, _)) => {
                assert_eq!(n1.as_ptr(), n2.as_ptr(), "names are interned");
            }
            _ => unreachable!(),
        }
    }
}
