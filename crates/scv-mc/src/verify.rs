//! The §3.4 verification method as a transition system: protocol ⊗
//! observer ⊗ checker, optionally explored modulo the protocol's
//! symmetry group.

use crate::mc::{
    bfs, bfs_parallel, BfsOptions, McStats, SearchResult, SearchStrategy, TransitionSystem,
};
use crate::ws::ws_search;
use scv_checker::{ScChecker, ScError};
use scv_observer::{Observer, ObserverConfig};
use scv_protocol::{location_maps, Action, Step, Symmetry};
use scv_types::{Op, SymDims, SymPerm, Trace};
use std::fmt;
use std::hash::{Hash, Hasher};

/// Why a product state was rejected — the typed replacement for the old
/// stringly error channel. [`fmt::Display`] reproduces the exact text the
/// strings used to carry ("rejected at symbol {p}: {kind:?}" for
/// mid-stream rejections, prefixed with "at run end: " for end-of-string
/// ones), so log-diffing across versions stays stable while callers can
/// now match on [`scv_checker::ScErrorKind`] structurally.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RejectReason {
    /// The checker rejected a descriptor symbol mid-stream: some prefix of
    /// the run already has no acyclic-constraint-graph witness.
    Stream(ScError),
    /// The run's symbols were accepted but the end-of-string conditions
    /// failed (order totality, outstanding forced obligations), possibly
    /// after replaying pending serializations.
    RunEnd(ScError),
}

impl RejectReason {
    /// The underlying checker error, whichever stage raised it.
    pub fn error(&self) -> &ScError {
        match self {
            RejectReason::Stream(e) | RejectReason::RunEnd(e) => e,
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::Stream(e) => write!(f, "{e}"),
            RejectReason::RunEnd(e) => write!(f, "at run end: {e}"),
        }
    }
}

/// How much of the protocol's declared symmetry group the search quotients
/// by (CLI: `--symmetry=off|proc|full`).
///
/// The *effective* group is always the intersection of what is requested
/// here with what the protocol declares sound via
/// [`Symmetry::symmetry_dims`] — requesting `Full` on a protocol that only
/// declares processor symmetry quotients by processors alone.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SymmetryMode {
    /// No reduction: explore the raw product space.
    #[default]
    Off,
    /// Processor permutations only.
    Proc,
    /// Everything the protocol declares: processors, blocks, and values.
    Full,
}

impl SymmetryMode {
    /// The dimensions this mode requests (before intersecting with the
    /// protocol's declaration).
    pub fn requested_dims(self) -> SymDims {
        match self {
            SymmetryMode::Off => SymDims::NONE,
            SymmetryMode::Proc => SymDims::PROCS,
            SymmetryMode::Full => SymDims::FULL,
        }
    }
}

/// Upper bound on the symmetry-group order the checker will enumerate per
/// state seal. [`SymPerm::group`] drops whole dimensions (values, then
/// blocks, then processors) until the order fits, which keeps the
/// remaining set a true subgroup — required for soundness of the
/// orbit-minimum representative.
const GROUP_CAP: usize = 1024;

/// A product state: the protocol state paired with the live observer and
/// checker. Equality and hashing go through the canonical encodings, so
/// two product states that behave identically compare equal — this is
/// what makes the composed state space finite. Under symmetry reduction
/// the encoding is additionally the *orbit minimum* over the symmetry
/// group, so all members of an orbit compare equal; the stored components
/// remain the genuinely reached member (not the representative), which
/// keeps counterexample paths valid runs of the unreduced system.
#[derive(Clone)]
pub struct VerifyState<PS> {
    /// The protocol component.
    pub proto: PS,
    /// The observer component.
    pub obs: Observer,
    /// The checker component.
    pub chk: ScChecker,
    /// Rejection raised while reaching this state, if any.
    pub error: Option<RejectReason>,
    enc: Vec<u64>,
    /// True when `enc` is an orbit-canonical encoding that already covers
    /// the protocol component (hash/eq then ignore `proto`).
    sym: bool,
}

impl<PS: Eq> PartialEq for VerifyState<PS> {
    fn eq(&self, other: &Self) -> bool {
        debug_assert_eq!(self.sym, other.sym, "mixed-seal comparison");
        let base = self.enc == other.enc && self.error == other.error;
        if self.sym {
            base
        } else {
            base && self.proto == other.proto
        }
    }
}

impl<PS: Eq> Eq for VerifyState<PS> {}

impl<PS: Hash> Hash for VerifyState<PS> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        if !self.sym {
            self.proto.hash(state);
        }
        self.enc.hash(state);
    }
}

/// One precomputed symmetry-group element: the identity renaming plus the
/// location maps it induces through [`Symmetry::permute_loc`].
struct PermEntry {
    perm: SymPerm,
    locs: Vec<u32>,
    locs_inv: Vec<u32>,
}

/// The product transition system for a protocol.
///
/// Built plain ([`VerifySystem::new`]) or with symmetry reduction
/// ([`VerifySystem::with_symmetry`]); the reduction canonicalizes each
/// product state to its orbit-minimum encoding before the seen-set sees
/// its fingerprint, in every search engine.
pub struct VerifySystem<P: Symmetry> {
    protocol: P,
    /// Identity-first symmetry group; empty when reduction is off or the
    /// effective group is trivial.
    perms: Vec<PermEntry>,
}

impl<P: Symmetry> VerifySystem<P> {
    /// Build the product system without symmetry reduction.
    pub fn new(protocol: P) -> Self {
        Self::with_symmetry(protocol, SymmetryMode::Off)
    }

    /// Build the product system, quotienting by the protocol's symmetry
    /// group as far as `mode` requests and the protocol declares sound.
    pub fn with_symmetry(protocol: P, mode: SymmetryMode) -> Self {
        let dims = mode.requested_dims().intersect(protocol.symmetry_dims());
        let mut perms = Vec::new();
        if dims.any() {
            let group = SymPerm::group(protocol.params(), dims, GROUP_CAP);
            if group.len() > 1 {
                debug_assert!(group[0].is_identity(), "group must lead with identity");
                perms = group
                    .into_iter()
                    .map(|perm| {
                        let (locs, locs_inv) = location_maps(&protocol, &perm);
                        PermEntry {
                            perm,
                            locs,
                            locs_inv,
                        }
                    })
                    .collect();
            }
        }
        if scv_telemetry::enabled() {
            scv_telemetry::set_gauge("symmetry.group_size", perms.len().max(1) as f64);
        }
        VerifySystem { protocol, perms }
    }

    /// The wrapped protocol.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Order of the effective symmetry group (1 = no reduction).
    pub fn symmetry_group_order(&self) -> usize {
        self.perms.len().max(1)
    }

    /// Seal a product state: compute the canonical encoding its hash and
    /// equality go through.
    ///
    /// Without symmetry this is the aux-ID-canonical encoding of observer
    /// and checker (the protocol state is hashed natively alongside).
    /// With symmetry it is the lexicographic minimum, over every group
    /// element `g`, of `encode(g · (proto, obs, chk))` — computed without
    /// materialising any renamed structure, by threading a
    /// [`scv_descriptor::SymView`] through the encoding traversals. A
    /// cheap prefix comparison on the (injective) protocol part prunes
    /// most candidates before the expensive observer/checker walk.
    fn seal(
        &self,
        proto: P::State,
        obs: Observer,
        chk: ScChecker,
        error: Option<RejectReason>,
    ) -> VerifyState<P::State> {
        let base = obs.location_count();
        if self.perms.is_empty() {
            // One IdCanon across both encodings: auxiliary descriptor IDs
            // are renamed consistently, so product states differing only
            // by an aux-ID permutation (which are bisimilar) hash
            // identically.
            let _t = scv_telemetry::timer_sampled(scv_telemetry::Phase::DescriptorEncode);
            let mut ids = scv_descriptor::IdCanon::new(base);
            let mut enc = Vec::with_capacity(128);
            obs.canonical_encoding(&mut enc, &mut ids);
            chk.canonical_encoding(&mut enc, &mut ids);
            return VerifyState {
                proto,
                obs,
                chk,
                error,
                enc,
                sym: false,
            };
        }

        let _t = scv_telemetry::timer_sampled(scv_telemetry::Phase::Canonicalize);
        // Identity candidate: protocol encoding (injective, required
        // because `proto` no longer participates in the hash) followed by
        // the plain canonical encodings.
        let mut best = Vec::with_capacity(160);
        self.protocol.encode_state(&proto, &mut best);
        let proto_len = best.len();
        {
            let mut ids = scv_descriptor::IdCanon::new(base);
            obs.canonical_encoding(&mut best, &mut ids);
            chk.canonical_encoding(&mut best, &mut ids);
        }
        let mut ties = 1usize; // group elements mapping this state to the current minimum
        let mut beaten = false;
        let mut cand = Vec::with_capacity(best.len());
        for e in &self.perms[1..] {
            cand.clear();
            let ps = self.protocol.permute_state(&proto, &e.perm);
            self.protocol.encode_state(&ps, &mut cand);
            // Lexicographic fast path: if the renamed protocol prefix
            // already exceeds the current minimum's, the full candidate
            // cannot win or tie — skip the observer/checker walk.
            if cand.as_slice() > &best[..proto_len] {
                continue;
            }
            let view = scv_descriptor::SymView {
                perm: &e.perm,
                loc: &e.locs,
                loc_inv: &e.locs_inv,
            };
            let mut ids = scv_descriptor::IdCanon::with_locs(base, e.locs.clone());
            obs.canonical_encoding_with(&mut cand, &mut ids, &view);
            chk.canonical_encoding_with(&mut cand, &mut ids, &view);
            match cand.cmp(&best) {
                std::cmp::Ordering::Less => {
                    std::mem::swap(&mut best, &mut cand);
                    ties = 1;
                    beaten = true;
                }
                std::cmp::Ordering::Equal => ties += 1,
                std::cmp::Ordering::Greater => {}
            }
        }
        if scv_telemetry::enabled() {
            use scv_telemetry::{Hist, Metric};
            scv_telemetry::add(Metric::SymCanonicalized, 1);
            scv_telemetry::add(Metric::SymCanonHits, beaten as u64);
            // Orbit-stabilizer: |orbit| = |G| / |{g : E(g·s) = min}|.
            scv_telemetry::record(Hist::SymOrbitSize, (self.perms.len() / ties) as u64);
        }
        VerifyState {
            proto,
            obs,
            chk,
            error,
            enc: best,
            sym: true,
        }
    }
}

impl<P: Symmetry> TransitionSystem for VerifySystem<P>
where
    P::State: Send,
{
    type State = VerifyState<P::State>;
    type Label = Action;
    type Violation = RejectReason;

    fn initial(&self) -> Self::State {
        let obs = Observer::new(ObserverConfig::from_protocol(&self.protocol));
        let chk = ScChecker::new(obs.k());
        self.seal(self.protocol.initial(), obs, chk, None)
    }

    fn successors(&self, s: &Self::State) -> Vec<(Action, Self::State)> {
        let mut out = Vec::new();
        self.successors_into(s, &mut out);
        out
    }

    // The work-stealing engine expands through this with a reused
    // per-worker buffer, so steady-state product exploration does not
    // allocate a successor vector per state.
    fn successors_into(&self, s: &Self::State, out: &mut Vec<(Action, Self::State)>) {
        if s.error.is_some() {
            return; // rejection is absorbing
        }
        let _t = scv_telemetry::timer(scv_telemetry::Phase::Expand);
        for t in self.protocol.transitions(&s.proto) {
            let mut obs = s.obs.clone();
            let mut chk = s.chk.clone();
            let mut syms = Vec::new();
            obs.step(
                &Step {
                    action: t.action,
                    tracking: t.tracking.clone(),
                },
                &mut syms,
            );
            let mut error = None;
            {
                let _t = scv_telemetry::timer_sampled(scv_telemetry::Phase::CheckerStep);
                for sym in &syms {
                    if let Err(e) = chk.step(sym) {
                        error = Some(RejectReason::Stream(e));
                        break;
                    }
                }
            }
            out.push((t.action, self.seal(t.next, obs, chk, error)));
        }
    }

    fn violation(&self, s: &Self::State) -> Option<RejectReason> {
        if let Some(e) = &s.error {
            return Some(e.clone());
        }
        let _t = scv_telemetry::timer_sampled(scv_telemetry::Phase::CheckerEnd);
        // Traces are prefix-closed: every reachable state is a possible
        // end of run, so the end-of-string conditions (order totality,
        // outstanding forced obligations) must hold here too.
        if !s.obs.has_pending() {
            // Nothing left to serialize: probe the checker in place.
            return s.chk.check_end().err().map(RejectReason::RunEnd);
        }
        // Pending serializations: replay the observer's trailing symbols
        // on copies.
        let mut obs = s.obs.clone();
        let mut chk = s.chk.clone();
        let mut syms = Vec::new();
        obs.finish(&mut syms);
        for sym in &syms {
            if let Err(e) = chk.step(sym) {
                return Some(RejectReason::RunEnd(e));
            }
        }
        chk.check_end().err().map(RejectReason::RunEnd)
    }
}

/// Limits and parallelism for [`verify_protocol`].
///
/// Construct with the chained builder:
///
/// ```
/// use scv_mc::{SymmetryMode, VerifyOptions};
/// let opts = VerifyOptions::new()
///     .threads(4)
///     .max_states(500_000)
///     .symmetry(SymmetryMode::Full);
/// # assert_eq!(opts.threads, 4);
/// ```
///
/// The struct is `#[non_exhaustive]`, so literal construction outside this
/// crate no longer compiles; `VerifyOptions::default()` remains as an
/// escape hatch (fields stay public for reading and in-place mutation)
/// for one release while callers migrate.
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct VerifyOptions {
    /// BFS limits.
    pub bfs: BfsOptions,
    /// Worker threads (1 = sequential).
    pub threads: usize,
    /// Parallel engine to use when `threads > 1` (ignored otherwise).
    pub strategy: SearchStrategy,
    /// Work-stealing batch granularity: states per deque chunk and
    /// fingerprints claimed per seen-set lock acquisition (ignored by the
    /// level-synchronous engine).
    pub batch_size: usize,
    /// Symmetry reduction: quotient the product space by the protocol's
    /// declared symmetry group.
    pub symmetry: SymmetryMode,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            bfs: BfsOptions::new().max_states(200_000),
            threads: 1,
            strategy: SearchStrategy::default(),
            batch_size: 128,
            symmetry: SymmetryMode::Off,
        }
    }
}

impl VerifyOptions {
    /// Default options (sequential, 200k-state cap, no symmetry); chain
    /// builder methods to adjust.
    pub fn new() -> Self {
        Self::default()
    }

    /// Worker threads (1 = sequential).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Stop after visiting this many states.
    pub fn max_states(mut self, n: usize) -> Self {
        self.bfs.max_states = n;
        self
    }

    /// Explore at most this many BFS levels.
    pub fn max_depth(mut self, d: usize) -> Self {
        self.bfs.max_depth = d;
        self
    }

    /// Replace the whole [`BfsOptions`] block.
    pub fn bfs(mut self, bfs: BfsOptions) -> Self {
        self.bfs = bfs;
        self
    }

    /// Parallel engine to use when `threads > 1`.
    pub fn strategy(mut self, s: SearchStrategy) -> Self {
        self.strategy = s;
        self
    }

    /// Work-stealing batch granularity.
    pub fn batch_size(mut self, n: usize) -> Self {
        self.batch_size = n;
        self
    }

    /// Symmetry reduction mode.
    pub fn symmetry(mut self, m: SymmetryMode) -> Self {
        self.symmetry = m;
        self
    }
}

/// Outcome of verifying a protocol.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Every reachable observer run describes an acyclic constraint graph:
    /// the observer is a witness and the protocol is **sequentially
    /// consistent** (Theorem 3.1).
    Verified {
        /// Search statistics.
        stats: McStats,
    },
    /// Some run's witness graph is not an acyclic constraint graph: the
    /// protocol is not in the class Γ for the generated tracking labels
    /// and ST order generator (for real protocols this means a genuine SC
    /// violation; the run is returned for inspection).
    Violation {
        /// The actions of the violating run.
        run: Vec<Action>,
        /// The memory operations of the violating run.
        trace: Trace,
        /// The checker's diagnosis.
        reason: RejectReason,
        /// Search statistics.
        stats: McStats,
    },
    /// A search limit was reached with no violation found.
    Bounded {
        /// Search statistics.
        stats: McStats,
    },
}

impl Outcome {
    /// Search statistics regardless of outcome.
    pub fn stats(&self) -> McStats {
        match self {
            Outcome::Verified { stats }
            | Outcome::Violation { stats, .. }
            | Outcome::Bounded { stats } => *stats,
        }
    }

    /// Did verification succeed exhaustively?
    pub fn is_verified(&self) -> bool {
        matches!(self, Outcome::Verified { .. })
    }

    /// The violation diagnosis rendered as the historical message text,
    /// if this outcome is a violation.
    pub fn message(&self) -> Option<String> {
        match self {
            Outcome::Violation { reason, .. } => Some(reason.to_string()),
            _ => None,
        }
    }
}

/// Run a search over an already-built product system.
pub fn verify_system<P>(sys: &VerifySystem<P>, opts: VerifyOptions) -> Outcome
where
    P: Symmetry + Sync,
    P::State: Send + Sync,
{
    let result = if opts.threads > 1 {
        match opts.strategy {
            SearchStrategy::WorkStealing => ws_search(sys, opts.bfs, opts.threads, opts.batch_size),
            SearchStrategy::LevelSync => bfs_parallel(sys, opts.bfs, opts.threads),
        }
    } else {
        bfs(sys, opts.bfs)
    };
    match result {
        SearchResult::Safe(stats) => Outcome::Verified { stats },
        SearchResult::Bounded(stats) => Outcome::Bounded { stats },
        SearchResult::Unsafe(ce, stats) => {
            let ops: Vec<Op> = ce.path.iter().filter_map(|a| a.op()).collect();
            Outcome::Violation {
                run: ce.path,
                trace: Trace::from_ops(ops),
                reason: ce.reason,
                stats,
            }
        }
    }
}

/// Run the complete §3.4 method on a protocol.
pub fn verify_protocol<P>(protocol: P, opts: VerifyOptions) -> Outcome
where
    P: Symmetry + Sync,
    P::State: Send + Sync,
{
    let sys = VerifySystem::with_symmetry(protocol, opts.symmetry);
    verify_system(&sys, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scv_protocol::{Fig4Protocol, LazyCaching, MsiProtocol, SerialMemory, StoreBufferTso};
    use scv_types::Params;

    fn opts(max_states: usize) -> VerifyOptions {
        VerifyOptions::new().max_states(max_states)
    }

    /// "Safe within the cap": either fully verified, or the cap was hit
    /// with no violation — never a violation. Product spaces here run to
    /// millions of states even for tiny protocols (see DESIGN.md §6), so
    /// most positive tests assert bounded safety and only the smallest
    /// configuration is proved exhaustively.
    fn safe_within(out: &Outcome) -> bool {
        !matches!(out, Outcome::Violation { .. })
    }

    #[test]
    #[ignore = "exhaustive proof (~120k product states): run with `cargo test --release -- --ignored`"]
    fn serial_memory_2_1_1_verifies_exhaustively() {
        let out = verify_protocol(SerialMemory::new(Params::new(2, 1, 1)), opts(400_000));
        assert!(
            out.is_verified(),
            "serial memory must verify: {:?}",
            out.stats()
        );
        assert!(
            out.stats().states > 50_000,
            "the product is genuinely large"
        );
    }

    #[test]
    fn serial_memory_2_1_1_safe_within_cap() {
        let out = verify_protocol(SerialMemory::new(Params::new(2, 1, 1)), opts(30_000));
        assert!(safe_within(&out), "{:?}", out.stats());
    }

    #[test]
    fn serial_memory_2_1_2_safe_within_cap() {
        let out = verify_protocol(SerialMemory::new(Params::new(2, 1, 2)), opts(60_000));
        assert!(
            safe_within(&out),
            "no violation may appear: {:?}",
            out.stats()
        );
    }

    #[test]
    fn msi_safe_within_cap() {
        let out = verify_protocol(MsiProtocol::new(Params::new(2, 1, 2)), opts(60_000));
        assert!(safe_within(&out), "MSI must not violate: {:?}", out.stats());
    }

    #[test]
    fn lazy_caching_safe_within_cap() {
        let out = verify_protocol(LazyCaching::new(Params::new(2, 1, 1), 1, 1), opts(60_000));
        assert!(
            safe_within(&out),
            "lazy caching must not violate: {:?}",
            out.stats()
        );
    }

    #[test]
    fn buggy_msi_violates() {
        let out = verify_protocol(MsiProtocol::buggy(Params::new(2, 2, 1)), opts(2_000_000));
        match out {
            Outcome::Violation { trace, reason, .. } => {
                // The violating run's trace must itself be non-SC — the
                // bug is real, not a verification artifact.
                assert!(
                    !scv_graph::has_serial_reordering(&trace),
                    "counterexample trace should violate SC: {trace} ({reason})"
                );
            }
            o => panic!("expected Violation, got {:?}", o.stats()),
        }
    }

    #[test]
    fn tso_violates() {
        let out = verify_protocol(
            StoreBufferTso::new(Params::new(2, 2, 1), 1),
            opts(2_000_000),
        );
        match out {
            Outcome::Violation { trace, .. } => {
                assert!(!scv_graph::has_serial_reordering(&trace));
            }
            o => panic!("expected Violation, got {:?}", o.stats()),
        }
    }

    #[test]
    fn fig4_not_verified() {
        // The Get-Shared protocol is outside the class Γ for the real-time
        // ST order generator (stale views re-fetched via Get-Shared make
        // the real-time store order wrong), so verification must fail.
        // Note the *shortest* rejected run may still have an SC trace —
        // rejection means "no witness under this generator", and the
        // protocol also has genuinely non-SC traces (shown in
        // scv-protocol's fig4 tests).
        let out = verify_protocol(Fig4Protocol::new(Params::new(2, 1, 2), 1), opts(2_000_000));
        assert!(
            matches!(out, Outcome::Violation { .. }),
            "expected Violation, got {:?}",
            out.stats()
        );
    }

    #[test]
    fn parallel_agrees_with_sequential() {
        // Verdicts must agree on a violation hunt (counterexamples are
        // found quickly in parallel too), under both parallel engines.
        let seq = verify_protocol(MsiProtocol::buggy(Params::new(2, 2, 1)), opts(2_000_000));
        assert!(matches!(seq, Outcome::Violation { .. }));
        for strategy in [SearchStrategy::WorkStealing, SearchStrategy::LevelSync] {
            let par = verify_protocol(
                MsiProtocol::buggy(Params::new(2, 2, 1)),
                opts(2_000_000).threads(4).strategy(strategy),
            );
            assert!(matches!(par, Outcome::Violation { .. }), "{strategy:?}");
        }
    }

    #[test]
    fn bounded_outcome_on_tiny_limit() {
        let out = verify_protocol(MsiProtocol::new(Params::new(2, 2, 2)), opts(50));
        assert!(matches!(out, Outcome::Bounded { .. }));
    }

    #[test]
    fn symmetry_reduces_msi_with_same_verdict() {
        // Depth-bounded so both runs cut the same frontier: the quotient
        // must explore at least 2× fewer states (the (2,1,2) group has
        // order 4) and reach the same verdict.
        let depth = 8;
        let base = opts(500_000).max_depth(depth);
        let off = verify_protocol(MsiProtocol::new(Params::new(2, 1, 2)), base);
        let on = verify_protocol(
            MsiProtocol::new(Params::new(2, 1, 2)),
            base.symmetry(SymmetryMode::Full),
        );
        assert_eq!(
            matches!(off, Outcome::Bounded { .. }),
            matches!(on, Outcome::Bounded { .. }),
            "verdicts must agree"
        );
        assert!(!matches!(off, Outcome::Violation { .. }));
        assert!(!matches!(on, Outcome::Violation { .. }));
        let (s_off, s_on) = (off.stats().states, on.stats().states);
        assert!(
            s_on * 2 <= s_off,
            "symmetry must at least halve the explored states: {s_on} vs {s_off}"
        );
    }

    #[test]
    fn symmetry_preserves_buggy_msi_violation() {
        let out = verify_protocol(
            MsiProtocol::buggy(Params::new(2, 2, 1)),
            opts(2_000_000).symmetry(SymmetryMode::Full),
        );
        match out {
            Outcome::Violation { trace, reason, .. } => {
                assert!(
                    !scv_graph::has_serial_reordering(&trace),
                    "reduced-search counterexample must still be a real violation: {trace} ({reason})"
                );
            }
            o => panic!("expected Violation, got {:?}", o.stats()),
        }
    }

    #[test]
    fn proc_mode_intersects_with_protocol_dims() {
        // Buggy MSI declares blocks+values only, so requesting Proc yields
        // the trivial group and Full yields blocks·values.
        let sys = VerifySystem::with_symmetry(
            MsiProtocol::buggy(Params::new(2, 2, 2)),
            SymmetryMode::Proc,
        );
        assert_eq!(sys.symmetry_group_order(), 1);
        let sys = VerifySystem::with_symmetry(
            MsiProtocol::buggy(Params::new(2, 2, 2)),
            SymmetryMode::Full,
        );
        assert_eq!(sys.symmetry_group_order(), 4); // 2! blocks × 2! values
    }
}
