//! The §3.4 verification method as a transition system: protocol ⊗
//! observer ⊗ checker.

use crate::mc::{
    bfs, bfs_parallel, BfsOptions, McStats, SearchResult, SearchStrategy, TransitionSystem,
};
use crate::ws::ws_search;
use scv_checker::ScChecker;
use scv_observer::{Observer, ObserverConfig};
use scv_protocol::{Action, Protocol, Step};
use scv_types::{Op, Trace};
use std::hash::{Hash, Hasher};

/// A product state: the protocol state paired with the live observer and
/// checker. Equality and hashing go through the canonical encodings, so
/// two product states that behave identically compare equal — this is
/// what makes the composed state space finite.
#[derive(Clone)]
pub struct VerifyState<PS> {
    /// The protocol component.
    pub proto: PS,
    /// The observer component.
    pub obs: Observer,
    /// The checker component.
    pub chk: ScChecker,
    /// Rejection raised while reaching this state, if any.
    pub error: Option<String>,
    enc: Vec<u64>,
}

impl<PS: Eq> PartialEq for VerifyState<PS> {
    fn eq(&self, other: &Self) -> bool {
        self.proto == other.proto && self.enc == other.enc && self.error == other.error
    }
}

impl<PS: Eq> Eq for VerifyState<PS> {}

impl<PS: Hash> Hash for VerifyState<PS> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.proto.hash(state);
        self.enc.hash(state);
    }
}

impl<PS> VerifyState<PS> {
    fn seal(proto: PS, obs: Observer, chk: ScChecker, error: Option<String>) -> Self {
        // One IdCanon across both encodings: auxiliary descriptor IDs are
        // renamed consistently, so product states differing only by an
        // aux-ID permutation (which are bisimilar) hash identically.
        let _t = scv_telemetry::timer_sampled(scv_telemetry::Phase::DescriptorEncode);
        let mut ids = scv_descriptor::IdCanon::new(obs.location_count());
        let mut enc = Vec::with_capacity(128);
        obs.canonical_encoding(&mut enc, &mut ids);
        chk.canonical_encoding(&mut enc, &mut ids);
        VerifyState {
            proto,
            obs,
            chk,
            error,
            enc,
        }
    }
}

/// The product transition system for a protocol.
pub struct VerifySystem<P: Protocol> {
    protocol: P,
}

impl<P: Protocol> VerifySystem<P> {
    /// Build the product system.
    pub fn new(protocol: P) -> Self {
        VerifySystem { protocol }
    }

    /// The wrapped protocol.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }
}

impl<P: Protocol> TransitionSystem for VerifySystem<P>
where
    P::State: Send,
{
    type State = VerifyState<P::State>;
    type Label = Action;

    fn initial(&self) -> Self::State {
        let obs = Observer::new(ObserverConfig::from_protocol(&self.protocol));
        let chk = ScChecker::new(obs.k());
        VerifyState::seal(self.protocol.initial(), obs, chk, None)
    }

    fn successors(&self, s: &Self::State) -> Vec<(Action, Self::State)> {
        let mut out = Vec::new();
        self.successors_into(s, &mut out);
        out
    }

    // The work-stealing engine expands through this with a reused
    // per-worker buffer, so steady-state product exploration does not
    // allocate a successor vector per state.
    fn successors_into(&self, s: &Self::State, out: &mut Vec<(Action, Self::State)>) {
        if s.error.is_some() {
            return; // rejection is absorbing
        }
        let _t = scv_telemetry::timer(scv_telemetry::Phase::Expand);
        for t in self.protocol.transitions(&s.proto) {
            let mut obs = s.obs.clone();
            let mut chk = s.chk.clone();
            let mut syms = Vec::new();
            obs.step(
                &Step {
                    action: t.action,
                    tracking: t.tracking.clone(),
                },
                &mut syms,
            );
            let mut error = None;
            {
                let _t = scv_telemetry::timer_sampled(scv_telemetry::Phase::CheckerStep);
                for sym in &syms {
                    if let Err(e) = chk.step(sym) {
                        error = Some(e.to_string());
                        break;
                    }
                }
            }
            out.push((t.action, VerifyState::seal(t.next, obs, chk, error)));
        }
    }

    fn violation(&self, s: &Self::State) -> Option<String> {
        if let Some(e) = &s.error {
            return Some(e.clone());
        }
        let _t = scv_telemetry::timer_sampled(scv_telemetry::Phase::CheckerEnd);
        // Traces are prefix-closed: every reachable state is a possible
        // end of run, so the end-of-string conditions (order totality,
        // outstanding forced obligations) must hold here too.
        if !s.obs.has_pending() {
            // Nothing left to serialize: probe the checker in place.
            return s.chk.check_end().err().map(|e| format!("at run end: {e}"));
        }
        // Pending serializations: replay the observer's trailing symbols
        // on copies.
        let mut obs = s.obs.clone();
        let mut chk = s.chk.clone();
        let mut syms = Vec::new();
        obs.finish(&mut syms);
        for sym in &syms {
            if let Err(e) = chk.step(sym) {
                return Some(format!("at run end: {e}"));
            }
        }
        chk.check_end().err().map(|e| format!("at run end: {e}"))
    }
}

/// Limits and parallelism for [`verify_protocol`].
#[derive(Clone, Copy, Debug)]
pub struct VerifyOptions {
    /// BFS limits.
    pub bfs: BfsOptions,
    /// Worker threads (1 = sequential).
    pub threads: usize,
    /// Parallel engine to use when `threads > 1` (ignored otherwise).
    pub strategy: SearchStrategy,
    /// Work-stealing batch granularity: states per deque chunk and
    /// fingerprints claimed per seen-set lock acquisition (ignored by the
    /// level-synchronous engine).
    pub batch_size: usize,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            bfs: BfsOptions {
                max_states: 200_000,
                max_depth: usize::MAX,
            },
            threads: 1,
            strategy: SearchStrategy::default(),
            batch_size: 128,
        }
    }
}

/// Outcome of verifying a protocol.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Every reachable observer run describes an acyclic constraint graph:
    /// the observer is a witness and the protocol is **sequentially
    /// consistent** (Theorem 3.1).
    Verified {
        /// Search statistics.
        stats: McStats,
    },
    /// Some run's witness graph is not an acyclic constraint graph: the
    /// protocol is not in the class Γ for the generated tracking labels
    /// and ST order generator (for real protocols this means a genuine SC
    /// violation; the run is returned for inspection).
    Violation {
        /// The actions of the violating run.
        run: Vec<Action>,
        /// The memory operations of the violating run.
        trace: Trace,
        /// The checker's diagnosis.
        message: String,
        /// Search statistics.
        stats: McStats,
    },
    /// A search limit was reached with no violation found.
    Bounded {
        /// Search statistics.
        stats: McStats,
    },
}

impl Outcome {
    /// Search statistics regardless of outcome.
    pub fn stats(&self) -> McStats {
        match self {
            Outcome::Verified { stats }
            | Outcome::Violation { stats, .. }
            | Outcome::Bounded { stats } => *stats,
        }
    }

    /// Did verification succeed exhaustively?
    pub fn is_verified(&self) -> bool {
        matches!(self, Outcome::Verified { .. })
    }
}

/// Run the complete §3.4 method on a protocol.
pub fn verify_protocol<P>(protocol: P, opts: VerifyOptions) -> Outcome
where
    P: Protocol + Sync,
    P::State: Send + Sync,
{
    let sys = VerifySystem::new(protocol);
    let result = if opts.threads > 1 {
        match opts.strategy {
            SearchStrategy::WorkStealing => {
                ws_search(&sys, opts.bfs, opts.threads, opts.batch_size)
            }
            SearchStrategy::LevelSync => bfs_parallel(&sys, opts.bfs, opts.threads),
        }
    } else {
        bfs(&sys, opts.bfs)
    };
    match result {
        SearchResult::Safe(stats) => Outcome::Verified { stats },
        SearchResult::Bounded(stats) => Outcome::Bounded { stats },
        SearchResult::Unsafe(ce, stats) => {
            let ops: Vec<Op> = ce.path.iter().filter_map(|a| a.op()).collect();
            Outcome::Violation {
                run: ce.path,
                trace: Trace::from_ops(ops),
                message: ce.message,
                stats,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scv_protocol::{Fig4Protocol, LazyCaching, MsiProtocol, SerialMemory, StoreBufferTso};
    use scv_types::Params;

    fn opts(max_states: usize) -> VerifyOptions {
        VerifyOptions {
            bfs: BfsOptions {
                max_states,
                max_depth: usize::MAX,
            },
            threads: 1,
            ..Default::default()
        }
    }

    /// "Safe within the cap": either fully verified, or the cap was hit
    /// with no violation — never a violation. Product spaces here run to
    /// millions of states even for tiny protocols (see DESIGN.md §6), so
    /// most positive tests assert bounded safety and only the smallest
    /// configuration is proved exhaustively.
    fn safe_within(out: &Outcome) -> bool {
        !matches!(out, Outcome::Violation { .. })
    }

    #[test]
    #[ignore = "exhaustive proof (~120k product states): run with `cargo test --release -- --ignored`"]
    fn serial_memory_2_1_1_verifies_exhaustively() {
        let out = verify_protocol(SerialMemory::new(Params::new(2, 1, 1)), opts(400_000));
        assert!(
            out.is_verified(),
            "serial memory must verify: {:?}",
            out.stats()
        );
        assert!(
            out.stats().states > 50_000,
            "the product is genuinely large"
        );
    }

    #[test]
    fn serial_memory_2_1_1_safe_within_cap() {
        let out = verify_protocol(SerialMemory::new(Params::new(2, 1, 1)), opts(30_000));
        assert!(safe_within(&out), "{:?}", out.stats());
    }

    #[test]
    fn serial_memory_2_1_2_safe_within_cap() {
        let out = verify_protocol(SerialMemory::new(Params::new(2, 1, 2)), opts(60_000));
        assert!(
            safe_within(&out),
            "no violation may appear: {:?}",
            out.stats()
        );
    }

    #[test]
    fn msi_safe_within_cap() {
        let out = verify_protocol(MsiProtocol::new(Params::new(2, 1, 2)), opts(60_000));
        assert!(safe_within(&out), "MSI must not violate: {:?}", out.stats());
    }

    #[test]
    fn lazy_caching_safe_within_cap() {
        let out = verify_protocol(LazyCaching::new(Params::new(2, 1, 1), 1, 1), opts(60_000));
        assert!(
            safe_within(&out),
            "lazy caching must not violate: {:?}",
            out.stats()
        );
    }

    #[test]
    fn buggy_msi_violates() {
        let out = verify_protocol(MsiProtocol::buggy(Params::new(2, 2, 1)), opts(2_000_000));
        match out {
            Outcome::Violation { trace, message, .. } => {
                // The violating run's trace must itself be non-SC — the
                // bug is real, not a verification artifact.
                assert!(
                    !scv_graph::has_serial_reordering(&trace),
                    "counterexample trace should violate SC: {trace} ({message})"
                );
            }
            o => panic!("expected Violation, got {:?}", o.stats()),
        }
    }

    #[test]
    fn tso_violates() {
        let out = verify_protocol(
            StoreBufferTso::new(Params::new(2, 2, 1), 1),
            opts(2_000_000),
        );
        match out {
            Outcome::Violation { trace, .. } => {
                assert!(!scv_graph::has_serial_reordering(&trace));
            }
            o => panic!("expected Violation, got {:?}", o.stats()),
        }
    }

    #[test]
    fn fig4_not_verified() {
        // The Get-Shared protocol is outside the class Γ for the real-time
        // ST order generator (stale views re-fetched via Get-Shared make
        // the real-time store order wrong), so verification must fail.
        // Note the *shortest* rejected run may still have an SC trace —
        // rejection means "no witness under this generator", and the
        // protocol also has genuinely non-SC traces (shown in
        // scv-protocol's fig4 tests).
        let out = verify_protocol(Fig4Protocol::new(Params::new(2, 1, 2), 1), opts(2_000_000));
        assert!(
            matches!(out, Outcome::Violation { .. }),
            "expected Violation, got {:?}",
            out.stats()
        );
    }

    #[test]
    fn parallel_agrees_with_sequential() {
        // Verdicts must agree on a violation hunt (counterexamples are
        // found quickly in parallel too), under both parallel engines.
        let seq = verify_protocol(MsiProtocol::buggy(Params::new(2, 2, 1)), opts(2_000_000));
        assert!(matches!(seq, Outcome::Violation { .. }));
        for strategy in [SearchStrategy::WorkStealing, SearchStrategy::LevelSync] {
            let par = verify_protocol(
                MsiProtocol::buggy(Params::new(2, 2, 1)),
                VerifyOptions {
                    bfs: BfsOptions {
                        max_states: 2_000_000,
                        max_depth: usize::MAX,
                    },
                    threads: 4,
                    strategy,
                    ..Default::default()
                },
            );
            assert!(matches!(par, Outcome::Violation { .. }), "{strategy:?}");
        }
    }

    #[test]
    fn bounded_outcome_on_tiny_limit() {
        let out = verify_protocol(MsiProtocol::new(Params::new(2, 2, 2)), opts(50));
        assert!(matches!(out, Outcome::Bounded { .. }));
    }
}
