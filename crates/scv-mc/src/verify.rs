//! The §3.4 verification method as a transition system: protocol ⊗
//! observer ⊗ checker, optionally explored modulo the protocol's
//! symmetry group.

use crate::canon::{self, CanonScratch, FastPlan};
use crate::checkpoint::{CheckpointError, CheckpointFile};
use crate::control::{Budget, CancelToken, Coverage, InterruptReason, RunControl};
use crate::mc::{
    bfs_controlled, bfs_parallel_controlled, eager_expand, publish_search_stats, BfsOptions,
    ControlledSearch, ExpandScratch, Fingerprinter, McStats, SearchCheckpoint, SearchResult,
    SearchStrategy, TransitionSystem,
};
use crate::ws::ws_search_controlled;
use scv_checker::{ScChecker, ScError};
use scv_descriptor::Symbol;
use scv_observer::{Observer, ObserverConfig};
use scv_protocol::{location_maps, Action, Step, Symmetry, Transition};
use scv_types::{Op, SymDims, SymPerm, Trace};
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Why a product state was rejected — the typed replacement for the old
/// stringly error channel. [`fmt::Display`] reproduces the exact text the
/// strings used to carry ("rejected at symbol {p}: {kind:?}" for
/// mid-stream rejections, prefixed with "at run end: " for end-of-string
/// ones), so log-diffing across versions stays stable while callers can
/// now match on [`scv_checker::ScErrorKind`] structurally.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RejectReason {
    /// The checker rejected a descriptor symbol mid-stream: some prefix of
    /// the run already has no acyclic-constraint-graph witness.
    Stream(ScError),
    /// The run's symbols were accepted but the end-of-string conditions
    /// failed (order totality, outstanding forced obligations), possibly
    /// after replaying pending serializations.
    RunEnd(ScError),
}

impl RejectReason {
    /// The underlying checker error, whichever stage raised it.
    pub fn error(&self) -> &ScError {
        match self {
            RejectReason::Stream(e) | RejectReason::RunEnd(e) => e,
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::Stream(e) => write!(f, "{e}"),
            RejectReason::RunEnd(e) => write!(f, "at run end: {e}"),
        }
    }
}

/// How much of the protocol's declared symmetry group the search quotients
/// by (CLI: `--symmetry=off|proc|full|full-enum`).
///
/// The *effective* group is always the intersection of what is requested
/// here with what the protocol declares sound via
/// [`Symmetry::symmetry_dims`] — requesting `Full` on a protocol that only
/// declares processor symmetry quotients by processors alone.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SymmetryMode {
    /// No reduction: explore the raw product space.
    #[default]
    Off,
    /// Processor permutations only.
    Proc,
    /// Everything the protocol declares: processors, blocks, and values.
    Full,
    /// The same quotient as [`SymmetryMode::Full`], computed by the
    /// brute-force reference canonicalizer (one renamed encoding per group
    /// element) instead of the sort-based fast path. Canonical encodings —
    /// and therefore fingerprints, state counts, and checkpoints — are
    /// byte-identical to `Full`; this mode exists as the differential
    /// oracle the fast path is tested against, and as the baseline arm of
    /// the canonicalization benchmarks.
    FullEnum,
}

impl SymmetryMode {
    /// The dimensions this mode requests (before intersecting with the
    /// protocol's declaration).
    pub fn requested_dims(self) -> SymDims {
        match self {
            SymmetryMode::Off => SymDims::NONE,
            SymmetryMode::Proc => SymDims::PROCS,
            SymmetryMode::Full | SymmetryMode::FullEnum => SymDims::FULL,
        }
    }

    /// The single-byte encoding used by the checkpoint file format.
    pub fn as_byte(self) -> u8 {
        match self {
            SymmetryMode::Off => 0,
            SymmetryMode::Proc => 1,
            SymmetryMode::Full => 2,
            SymmetryMode::FullEnum => 3,
        }
    }

    /// Inverse of [`SymmetryMode::as_byte`].
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(SymmetryMode::Off),
            1 => Some(SymmetryMode::Proc),
            2 => Some(SymmetryMode::Full),
            3 => Some(SymmetryMode::FullEnum),
            _ => None,
        }
    }
}

/// Upper bound on the symmetry-group order the checker will enumerate per
/// state seal. [`SymPerm::group`] drops whole dimensions (values, then
/// blocks, then processors) until the order fits, which keeps the
/// remaining set a true subgroup — required for soundness of the
/// orbit-minimum representative.
const GROUP_CAP: usize = 1024;

/// An arena-interned canonical encoding: a view into a shared chunk.
///
/// Admission-gated expansion freezes *one* `Arc<[u64]>` per parent
/// expansion, covering the encodings of every admitted successor, instead
/// of allocating a `Vec<u64>` per successor. Equality and hashing go
/// through the viewed slice, so an interned encoding is indistinguishable
/// from an owned one — in particular it hashes exactly like the
/// `Vec<u64>` it replaced (both are length-prefixed slice hashes).
#[derive(Clone, Debug)]
pub struct EncRef {
    chunk: Arc<[u64]>,
    start: u32,
    len: u32,
}

impl EncRef {
    /// Intern a standalone encoding in its own chunk (initial state and
    /// eager-mode successors).
    fn owned(enc: &[u64]) -> Self {
        EncRef {
            chunk: Arc::from(enc),
            start: 0,
            len: enc.len() as u32,
        }
    }

    /// A view into an already-frozen chunk.
    fn view(chunk: &Arc<[u64]>, start: usize, len: usize) -> Self {
        debug_assert!(start + len <= chunk.len());
        EncRef {
            chunk: Arc::clone(chunk),
            start: start as u32,
            len: len as u32,
        }
    }

    /// The encoding payload.
    pub fn as_slice(&self) -> &[u64] {
        &self.chunk[self.start as usize..(self.start + self.len) as usize]
    }
}

impl PartialEq for EncRef {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for EncRef {}

impl Hash for EncRef {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

/// A product state: the protocol state paired with the live observer and
/// checker. Equality and hashing go through the canonical encodings, so
/// two product states that behave identically compare equal — this is
/// what makes the composed state space finite. Under symmetry reduction
/// the encoding is additionally the *orbit minimum* over the symmetry
/// group, so all members of an orbit compare equal; the stored components
/// remain the genuinely reached member (not the representative), which
/// keeps counterexample paths valid runs of the unreduced system.
#[derive(Clone)]
pub struct VerifyState<PS> {
    /// The protocol component.
    pub proto: PS,
    /// The observer component.
    pub obs: Observer,
    /// The checker component.
    pub chk: ScChecker,
    /// Rejection raised while reaching this state, if any.
    pub error: Option<RejectReason>,
    enc: EncRef,
    /// True when `enc` is an orbit-canonical encoding that already covers
    /// the protocol component (hash/eq then ignore `proto`).
    sym: bool,
}

impl<PS> VerifyState<PS> {
    /// The canonical encoding this state hashes and compares through.
    pub fn encoding(&self) -> &[u64] {
        self.enc.as_slice()
    }
}

/// The hashable projection of a product state that the admission gate
/// fingerprints *before* materializing it: protocol component iff the
/// encoding is not symmetry-sealed, then the canonical encoding. Must
/// hash exactly like [`VerifyState`] (same field order, and `&[u64]`
/// hashes identically to the `EncRef`/`Vec<u64>` it stands in for) —
/// `tests/lazy_expand_props.rs` pins this equivalence.
struct FpParts<'a, PS> {
    proto: Option<&'a PS>,
    enc: &'a [u64],
}

impl<PS: Hash> Hash for FpParts<'_, PS> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        if let Some(p) = self.proto {
            p.hash(state);
        }
        self.enc.hash(state);
    }
}

impl<PS: Eq> PartialEq for VerifyState<PS> {
    fn eq(&self, other: &Self) -> bool {
        debug_assert_eq!(self.sym, other.sym, "mixed-seal comparison");
        let base = self.enc == other.enc && self.error == other.error;
        if self.sym {
            base
        } else {
            base && self.proto == other.proto
        }
    }
}

impl<PS: Eq> Eq for VerifyState<PS> {}

impl<PS: Hash> Hash for VerifyState<PS> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        if !self.sym {
            self.proto.hash(state);
        }
        self.enc.hash(state);
    }
}

/// One precomputed symmetry-group element: the identity renaming plus the
/// location maps it induces through [`Symmetry::permute_loc`].
pub(crate) struct PermEntry {
    pub(crate) perm: SymPerm,
    pub(crate) locs: Vec<u32>,
    pub(crate) locs_inv: Vec<u32>,
}

/// Slot count of the per-worker L1 orbit-seal cache — a direct-mapped
/// array (no probing, no wholesale clears), so a cold or adversarial
/// workload costs one array read per candidate and nothing else. At 24
/// bytes per slot the full array is under 1 MB per worker.
const SEAL_L1_SLOTS: usize = 1 << 15;

/// The L1/L2 hit-rate gate: after this many probes, a worker whose hit
/// count stayed below [`SEAL_GATE_MIN_HITS`] turns its seal cache off for
/// the rest of the run — on orbit-dense spaces where re-derivations are
/// rare, the per-candidate key hash and probe are pure overhead.
const SEAL_GATE_WINDOW: u32 = 8192;

/// Minimum hits per [`SEAL_GATE_WINDOW`] probes (≈1.6%) to keep probing.
const SEAL_GATE_MIN_HITS: u32 = 128;

/// Stripe count of the shared L2 orbit-seal cache (power of two).
const SEAL_L2_STRIPES: usize = 64;

/// Per-stripe entry bound of the L2 cache; a stripe at capacity is
/// cleared wholesale (≈1M entries total across stripes).
const SEAL_L2_STRIPE_CAP: usize = 1 << 14;

/// The shared second-level orbit-seal cache, living in the
/// [`VerifySystem`] so every worker (and every slice of a stop-and-go
/// run) sees it: identity-encoding key → orbit-minimum fingerprint, plus
/// the interned canonical encoding once the state has been admitted and
/// frozen. A hit with an encoding skips the *entire* seal — canonical
/// words are copied straight out of the arena; a hit without one still
/// skips the group enumeration (the encoding is recomputed only in the
/// rare admitted case, exactly like an L1 hit).
///
/// Keys are [`Fingerprinter::fp64`] values and therefore seed-dependent;
/// `seed_tag` folds the fingerprinter seeds, and a mismatch (a new search
/// over the same system) clears the cache before first use. Runs never
/// overlap on one system, so the raced clear is at worst a few wasted
/// fresh inserts.
/// One L2 entry: orbit-minimum fingerprint plus the interned canonical
/// encoding once the owning state has been admitted and frozen.
type SealEntry = (u128, Option<EncRef>);

struct SealCacheL2 {
    stripes: Vec<Mutex<HashMap<u64, SealEntry>>>,
    seed_tag: AtomicU64,
}

impl SealCacheL2 {
    fn new() -> SealCacheL2 {
        SealCacheL2 {
            stripes: (0..SEAL_L2_STRIPES)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            seed_tag: AtomicU64::new(0),
        }
    }

    /// Clear the cache if it was populated under different fingerprinter
    /// seeds. Called once per expansion — one atomic load in steady state.
    fn ensure_seeds(&self, seeds: [u64; 4]) {
        let tag = (seeds[0]
            ^ seeds[1].rotate_left(16)
            ^ seeds[2].rotate_left(32)
            ^ seeds[3].rotate_left(48))
            | 1;
        let old = self.seed_tag.load(Ordering::Acquire);
        if old == tag {
            return;
        }
        if self
            .seed_tag
            .compare_exchange(old, tag, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            for stripe in &self.stripes {
                stripe.lock().expect("seal L2 poisoned").clear();
            }
        }
    }

    fn stripe(&self, key: u64) -> &Mutex<HashMap<u64, SealEntry>> {
        // High bits pick the stripe so it decorrelates from the L1 index
        // (low bits).
        &self.stripes[((key >> 32) as usize) & (SEAL_L2_STRIPES - 1)]
    }

    fn get(&self, key: u64) -> Option<(u128, Option<EncRef>)> {
        self.stripe(key)
            .lock()
            .expect("seal L2 poisoned")
            .get(&key)
            .cloned()
    }

    /// Record a freshly canonicalized fingerprint (no encoding yet).
    fn insert_fp(&self, key: u64, fp: u128) {
        let mut m = self.stripe(key).lock().expect("seal L2 poisoned");
        if m.len() >= SEAL_L2_STRIPE_CAP {
            m.clear();
        }
        m.entry(key).or_insert((fp, None));
    }

    /// Attach the interned canonical encoding of an admitted state.
    fn set_enc(&self, key: u64, fp: u128, enc: EncRef) {
        let mut m = self.stripe(key).lock().expect("seal L2 poisoned");
        if m.len() >= SEAL_L2_STRIPE_CAP {
            m.clear();
        }
        m.insert(key, (fp, Some(enc)));
    }
}

/// Sentinel for [`CandSlot::enc_len`]: the candidate's canonical encoding
/// was *not* written to the scratch arena (its fingerprint came from the
/// orbit-seal cache). If such a candidate is admitted — rare: only probe
/// races and within-expansion duplicates, since a cache hit normally means
/// the state is already in the seen-set — the encoding is recomputed at
/// freeze time.
const ENC_UNSEALED: usize = usize::MAX;

/// One replay slot of the lazy expansion scratch: the observer/checker
/// copies (and protocol successor) for a single candidate transition,
/// plus where its canonical encoding landed in the scratch arena.
///
/// `proto`/`obs`/`chk` are `Option` so an admitted candidate's components
/// can be *moved* into the materialized state with no extra copy; the
/// next expansion re-fills an emptied slot with a fresh clone, and a
/// still-full slot through allocation-reusing `clone_from`.
struct CandSlot<PS> {
    action: Action,
    proto: Option<PS>,
    obs: Option<Observer>,
    chk: Option<ScChecker>,
    /// The transition emitted no symbols, so the candidate's checker state
    /// *is* the parent's: the slot's `chk` copy was skipped (encoding read
    /// the parent directly) and materialization clones the parent instead.
    chk_is_parent: bool,
    error: Option<RejectReason>,
    enc_start: usize,
    enc_len: usize,
    /// The seal-cache key of this candidate's identity encoding, kept so
    /// an admitted slot can upgrade the shared L2 entry with its interned
    /// canonical encoding at freeze time.
    key: Option<u64>,
}

/// Per-worker scratch for admission-gated lazy expansion, carried by the
/// engines inside an opaque [`ExpandScratch`]. Everything here is reused
/// across expansions: the replay slots, the symbol and encoding buffers,
/// and the orbit-seal cache (per worker, hence lock-free).
pub(crate) struct SealScratch<PS> {
    slots: Vec<CandSlot<PS>>,
    syms: Vec<Symbol>,
    /// Reused transition-enumeration buffer (fed to
    /// [`scv_protocol::Protocol::transitions_into`]).
    trans: Vec<Transition<PS>>,
    /// Concatenated candidate encodings for the current expansion.
    enc: Vec<u64>,
    /// Orbit-minimization work buffers.
    best: Vec<u64>,
    cand: Vec<u64>,
    /// Candidate fingerprints and the admission verdicts they received.
    fps: Vec<u128>,
    keep: Vec<bool>,
    /// Freeze buffer: admitted encodings, compacted before interning.
    frozen: Vec<u64>,
    /// Reusable aux-ID renaming for the per-candidate identity encodings
    /// (no location map — `'static` is the no-borrow case).
    ids: scv_descriptor::IdCanon<'static>,
    /// L1 orbit-seal cache: a direct-mapped array keyed by the half-width
    /// fingerprint of the *identity* encoding, holding the orbit-minimum
    /// state fingerprint. The identity encoding starts with the injective
    /// protocol encoding, so it determines the product state; re-deriving
    /// the same state from another parent hits here and skips the whole
    /// canonicalization. Key 0 marks an empty slot (a real key of 0 simply
    /// never caches — the same 2⁻⁶⁴-class event as an fp64 collision). A
    /// miss falls through to the shared [`SealCacheL2`].
    l1_keys: Box<[u64]>,
    l1_fps: Box<[u128]>,
    /// Hit-rate gate over both levels (see [`SEAL_GATE_WINDOW`]): on
    /// orbit-dense spaces with almost no re-derivations the cache turns
    /// itself off, dropping the per-candidate key hash *and* the identity
    /// encoding's observer/checker walk the key is hashed from.
    probes: u32,
    hits: u32,
    cache_off: bool,
    /// Sort-based canonicalization work buffers.
    canon: CanonScratch,
}

impl<PS> SealScratch<PS> {
    fn new() -> Self {
        SealScratch {
            slots: Vec::new(),
            syms: Vec::new(),
            trans: Vec::new(),
            enc: Vec::with_capacity(1024),
            best: Vec::with_capacity(160),
            cand: Vec::with_capacity(160),
            fps: Vec::new(),
            keep: Vec::new(),
            frozen: Vec::with_capacity(1024),
            ids: scv_descriptor::IdCanon::new(0),
            l1_keys: vec![0u64; SEAL_L1_SLOTS].into_boxed_slice(),
            l1_fps: vec![0u128; SEAL_L1_SLOTS].into_boxed_slice(),
            probes: 0,
            hits: 0,
            cache_off: false,
            canon: CanonScratch::new(),
        }
    }
}

/// The product transition system for a protocol.
///
/// Built plain ([`VerifySystem::new`]) or with symmetry reduction
/// ([`VerifySystem::with_symmetry`]); the reduction canonicalizes each
/// product state to its orbit-minimum encoding before the seen-set sees
/// its fingerprint, in every search engine.
pub struct VerifySystem<P: Symmetry> {
    protocol: P,
    /// Identity-first symmetry group; empty when reduction is off or the
    /// effective group is trivial.
    perms: Vec<PermEntry>,
    /// The sort-based canonicalization plan; `None` selects the
    /// full-enumeration reference path ([`SymmetryMode::FullEnum`], or a
    /// protocol with no sortable dimension).
    fast: Option<FastPlan>,
    /// Shared second-level orbit-seal cache (see [`SealCacheL2`]).
    l2: SealCacheL2,
    /// The mode the system was built with (recorded in checkpoint files so
    /// a resume under a different quotient is rejected up front).
    mode: SymmetryMode,
    /// Admission-gated lazy materialization (the default). `false` forces
    /// the eager reference path in `expand_admitted`: every successor is
    /// fully materialized before the seen-set probe — the pre-gating cost
    /// profile, kept for differential testing and benchmarking.
    lazy: bool,
}

impl<P: Symmetry> VerifySystem<P> {
    /// Build the product system without symmetry reduction.
    pub fn new(protocol: P) -> Self {
        Self::with_symmetry(protocol, SymmetryMode::Off)
    }

    /// Build the product system, quotienting by the protocol's symmetry
    /// group as far as `mode` requests and the protocol declares sound.
    pub fn with_symmetry(protocol: P, mode: SymmetryMode) -> Self {
        let dims = mode.requested_dims().intersect(protocol.symmetry_dims());
        let mut perms = Vec::new();
        let mut fast = None;
        if dims.any() {
            let capped = SymPerm::capped_dims(protocol.params(), dims, GROUP_CAP);
            if capped != dims && scv_telemetry::enabled() {
                // The cap degraded the quotient: record by how much (the
                // ratio of the requested group order to the enumerated
                // one — an upper bound on the forfeited state reduction).
                let requested = SymPerm::group_order(protocol.params(), dims) as f64;
                let kept = SymPerm::group_order(protocol.params(), capped) as f64;
                scv_telemetry::set_gauge("symmetry.cap_degradation", requested / kept);
            }
            let group = SymPerm::group(protocol.params(), capped, GROUP_CAP);
            if group.len() > 1 {
                debug_assert!(group[0].is_identity(), "group must lead with identity");
                perms = group
                    .into_iter()
                    .map(|perm| {
                        let (locs, locs_inv) = location_maps(&protocol, &perm);
                        PermEntry {
                            perm,
                            locs,
                            locs_inv,
                        }
                    })
                    .collect();
                if mode != SymmetryMode::FullEnum {
                    fast = FastPlan::build(&protocol, capped, &perms);
                }
            }
        }
        if scv_telemetry::enabled() {
            scv_telemetry::set_gauge("symmetry.group_size", perms.len().max(1) as f64);
        }
        VerifySystem {
            protocol,
            perms,
            fast,
            l2: SealCacheL2::new(),
            mode,
            lazy: true,
        }
    }

    /// The wrapped protocol.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The symmetry mode this system was built with.
    pub fn symmetry_mode(&self) -> SymmetryMode {
        self.mode
    }

    /// Select admission-gated lazy materialization (`true`, the default)
    /// or the eager reference expansion path (`false`). Consuming builder,
    /// consistent with [`VerifySystem::with_symmetry`]:
    ///
    /// ```ignore
    /// let sys = VerifySystem::with_symmetry(p, SymmetryMode::Full).lazy(false);
    /// ```
    pub fn lazy(mut self, lazy: bool) -> Self {
        self.lazy = lazy;
        self
    }

    /// Toggle admission-gated lazy materialization in place.
    #[deprecated(
        since = "0.1.0",
        note = "use the consuming builder `VerifySystem::lazy`"
    )]
    pub fn set_lazy(&mut self, lazy: bool) {
        self.lazy = lazy;
    }

    /// Is lazy (admission-gated) expansion active?
    pub fn is_lazy(&self) -> bool {
        self.lazy
    }

    /// Order of the effective symmetry group (1 = no reduction).
    pub fn symmetry_group_order(&self) -> usize {
        self.perms.len().max(1)
    }

    /// Seal a product state: compute the canonical encoding its hash and
    /// equality go through.
    ///
    /// Without symmetry this is the aux-ID-canonical encoding of observer
    /// and checker (the protocol state is hashed natively alongside).
    /// With symmetry it is the lexicographic minimum, over every group
    /// element `g`, of `encode(g · (proto, obs, chk))` — computed without
    /// materialising any renamed structure, by threading a
    /// [`scv_descriptor::SymView`] through the encoding traversals. A
    /// cheap prefix comparison on the (injective) protocol part prunes
    /// most candidates before the expensive observer/checker walk.
    fn seal(
        &self,
        proto: P::State,
        obs: Observer,
        chk: ScChecker,
        error: Option<RejectReason>,
    ) -> VerifyState<P::State> {
        let base = obs.location_count();
        if self.perms.is_empty() {
            // One IdCanon across both encodings: auxiliary descriptor IDs
            // are renamed consistently, so product states differing only
            // by an aux-ID permutation (which are bisimilar) hash
            // identically.
            let _t = scv_telemetry::timer_sampled(scv_telemetry::Phase::DescriptorEncode);
            let mut ids = scv_descriptor::IdCanon::new(base);
            let mut enc = Vec::with_capacity(128);
            obs.canonical_encoding(&mut enc, &mut ids);
            chk.canonical_encoding(&mut enc, &mut ids);
            return VerifyState {
                proto,
                obs,
                chk,
                error,
                enc: EncRef::owned(&enc),
                sym: false,
            };
        }

        let _t = scv_telemetry::timer_sampled(scv_telemetry::Phase::Canonicalize);
        // Identity candidate: protocol encoding (injective, required
        // because `proto` no longer participates in the hash) followed by
        // the plain canonical encodings.
        let mut best = Vec::with_capacity(160);
        self.protocol.encode_state(&proto, &mut best);
        let proto_len = best.len();
        let obs_end;
        {
            let mut ids = scv_descriptor::IdCanon::new(base);
            obs.canonical_encoding(&mut best, &mut ids);
            obs_end = best.len();
            chk.canonical_encoding(&mut best, &mut ids);
        }
        let mut cand = Vec::with_capacity(best.len());
        canon::with_thread_scratch(|cs| {
            self.canon_min(
                &proto, &obs, &chk, base, proto_len, &mut best, &mut cand, cs, true, obs_end,
            )
        });
        VerifyState {
            proto,
            obs,
            chk,
            error,
            enc: EncRef::owned(&best),
            sym: true,
        }
    }

    /// Recompute the canonical encoding of a product state from scratch,
    /// bypassing every seal cache — the key differential-testing and
    /// benchmarking hook: two systems over the same protocol must produce
    /// byte-identical results here whether they canonicalize via the
    /// sort-based fast path ([`SymmetryMode::Full`]) or the brute-force
    /// reference ([`SymmetryMode::FullEnum`]).
    pub fn canonical_encoding_of(&self, s: &VerifyState<P::State>) -> Vec<u64> {
        let resealed = self.seal(s.proto.clone(), s.obs.clone(), s.chk.clone(), None);
        resealed.enc.as_slice().to_vec()
    }

    /// Dispatch one orbit-minimization: the sort-based fast path when a
    /// plan exists, the full-enumeration reference otherwise. Both produce
    /// the same bytes in `best` and the same telemetry tie counts.
    #[allow(clippy::too_many_arguments)]
    fn canon_min(
        &self,
        proto: &P::State,
        obs: &Observer,
        chk: &ScChecker,
        base: u32,
        proto_len: usize,
        best: &mut Vec<u64>,
        cand: &mut Vec<u64>,
        cs: &mut CanonScratch,
        have_identity: bool,
        identity_obs_end: usize,
    ) {
        match &self.fast {
            Some(plan) => canon::fast_min(
                &self.protocol,
                plan,
                &self.perms,
                proto,
                obs,
                chk,
                base,
                proto_len,
                best,
                cand,
                cs,
                have_identity,
                identity_obs_end,
            ),
            None => {
                debug_assert!(have_identity, "the enum path needs the identity encoding");
                self.orbit_min(proto, obs, chk, base, proto_len, best, cand);
            }
        }
    }

    /// The orbit-minimization inner loop shared by [`VerifySystem::seal`]
    /// and the lazy expansion path. On entry `best` holds the identity
    /// candidate (injective protocol prefix of `proto_len` words, then the
    /// plain canonical encodings); on exit it holds the lexicographic
    /// minimum over the whole group, computed without materialising any
    /// renamed structure.
    #[allow(clippy::too_many_arguments)]
    fn orbit_min(
        &self,
        proto: &P::State,
        obs: &Observer,
        chk: &ScChecker,
        base: u32,
        proto_len: usize,
        best: &mut Vec<u64>,
        cand: &mut Vec<u64>,
    ) {
        let mut ties = 1usize; // group elements mapping this state to the current minimum
        let mut beaten = false;
        // One renaming map reused across the whole group enumeration.
        let mut ids = scv_descriptor::IdCanon::new(base);
        for e in &self.perms[1..] {
            cand.clear();
            let ps = self.protocol.permute_state(proto, &e.perm);
            self.protocol.encode_state(&ps, cand);
            // Lexicographic fast path: if the renamed protocol prefix
            // already exceeds the current minimum's, the full candidate
            // cannot win or tie — skip the observer/checker walk.
            if cand.as_slice() > &best[..proto_len] {
                continue;
            }
            let view = scv_descriptor::SymView {
                perm: &e.perm,
                loc: &e.locs,
                loc_inv: &e.locs_inv,
            };
            ids.reset();
            ids.set_locs(&e.locs);
            obs.canonical_encoding_with(cand, &mut ids, &view);
            chk.canonical_encoding_with(cand, &mut ids, &view);
            match (*cand).cmp(best) {
                std::cmp::Ordering::Less => {
                    std::mem::swap(best, cand);
                    ties = 1;
                    beaten = true;
                }
                std::cmp::Ordering::Equal => ties += 1,
                std::cmp::Ordering::Greater => {}
            }
        }
        if scv_telemetry::enabled() {
            use scv_telemetry::{Hist, Metric};
            scv_telemetry::add(Metric::SymCanonicalized, 1);
            scv_telemetry::add(Metric::SymCanonHits, beaten as u64);
            // Orbit-stabilizer: |orbit| = |G| / |{g : E(g·s) = min}|.
            scv_telemetry::record(Hist::SymOrbitSize, (self.perms.len() / ties) as u64);
        }
    }
}

impl<P: Symmetry> TransitionSystem for VerifySystem<P>
where
    P::State: Send + 'static,
{
    type State = VerifyState<P::State>;
    type Label = Action;
    type Violation = RejectReason;

    fn initial(&self) -> Self::State {
        let obs = Observer::new(ObserverConfig::from_protocol(&self.protocol));
        let chk = ScChecker::new(obs.k());
        self.seal(self.protocol.initial(), obs, chk, None)
    }

    fn successors(&self, s: &Self::State) -> Vec<(Action, Self::State)> {
        let mut out = Vec::new();
        self.successors_into(s, &mut out);
        out
    }

    // The work-stealing engine expands through this with a reused
    // per-worker buffer, so steady-state product exploration does not
    // allocate a successor vector per state.
    fn successors_into(&self, s: &Self::State, out: &mut Vec<(Action, Self::State)>) {
        if s.error.is_some() {
            return; // rejection is absorbing
        }
        let _t = scv_telemetry::timer(scv_telemetry::Phase::Expand);
        let mut syms = Vec::new(); // hoisted: one symbol buffer per expansion
        for t in self.protocol.transitions(&s.proto) {
            let Transition {
                action,
                next,
                tracking,
            } = t;
            let mut obs = s.obs.clone();
            let mut chk = s.chk.clone();
            syms.clear();
            obs.step(&Step { action, tracking }, &mut syms);
            let mut error = None;
            {
                let _t = scv_telemetry::timer_sampled(scv_telemetry::Phase::CheckerStep);
                for sym in &syms {
                    if let Err(e) = chk.step(sym) {
                        error = Some(RejectReason::Stream(e));
                        break;
                    }
                }
            }
            out.push((action, self.seal(next, obs, chk, error)));
        }
    }

    fn expand_scratch(&self) -> ExpandScratch {
        ExpandScratch::new(SealScratch::<P::State>::new())
    }

    // The admission-gated hot path: replay each candidate transition into
    // reused scratch copies, seal only as far as a fingerprint, let the
    // engine's `admit` probe reject duplicates, and materialize (move out
    // of the scratch slots + intern the encodings in one frozen chunk)
    // only what survived. In dense product graphs the majority of
    // candidates are duplicates, so the majority of clone/alloc work is
    // skipped — `mc.clones_avoided` counts exactly how much.
    fn expand_admitted(
        &self,
        s: &Self::State,
        scratch: &mut ExpandScratch,
        fper: &Fingerprinter,
        admit: &mut dyn FnMut(&[u128], &mut Vec<bool>),
        out: &mut Vec<(Action, Self::State, u128)>,
    ) {
        if s.error.is_some() {
            return; // rejection is absorbing
        }
        if !self.lazy {
            let _t = scv_telemetry::timer(scv_telemetry::Phase::Expand);
            eager_expand(self, s, fper, admit, out);
            return;
        }
        let Some(sc) = scratch.get_mut::<SealScratch<P::State>>() else {
            // A foreign scratch: some engine didn't thread ours through.
            // The reference path is always correct.
            eager_expand(self, s, fper, admit, out);
            return;
        };
        let _t = scv_telemetry::timer(scv_telemetry::Phase::Expand);
        let base = s.obs.location_count();
        let sym = !self.perms.is_empty();
        if sym {
            // The shared L2 is keyed by identity-encoding fp64, which
            // depends on the fingerprinter seeds: (re)seed it, clearing
            // stale entries when the seeds changed since the last run.
            self.l2.ensure_seeds(fper.seeds());
        }
        // Taken out of the scratch so the loop can mutate `sc` while
        // draining it; the allocation is handed back at the end.
        let mut trans = std::mem::take(&mut sc.trans);
        trans.clear();
        self.protocol.transitions_into(&s.proto, &mut trans);
        let n = trans.len();
        if n == 0 {
            sc.trans = trans;
            return;
        }
        sc.enc.clear();
        sc.fps.clear();
        for (i, t) in trans.drain(..).enumerate() {
            let Transition {
                action,
                next,
                tracking,
            } = t;
            if sc.slots.len() <= i {
                sc.slots.push(CandSlot {
                    action,
                    proto: None,
                    obs: None,
                    chk: None,
                    chk_is_parent: false,
                    error: None,
                    enc_start: 0,
                    enc_len: 0,
                    key: None,
                });
            }
            let slot = &mut sc.slots[i];
            slot.action = action;
            slot.error = None;
            slot.proto = Some(next);
            // Replay into the slot's scratch copies: `clone_from` reuses
            // the previous round's allocations; only an emptied slot (its
            // components were moved into an admitted state) pays a fresh
            // clone — which the eager path paid for *every* candidate.
            match &mut slot.obs {
                Some(o) => o.clone_from(&s.obs),
                None => slot.obs = Some(s.obs.clone()),
            }
            sc.syms.clear();
            slot.obs
                .as_mut()
                .expect("slot.obs filled above")
                .step(&Step { action, tracking }, &mut sc.syms);
            // A transition with no symbols (an internal protocol action)
            // leaves the checker untouched: skip the checker copy and
            // encode through the parent's checker directly. Materializing
            // such a candidate clones the parent checker then — but only
            // for admitted candidates, where the eager path cloned it for
            // every one.
            slot.chk_is_parent = sc.syms.is_empty();
            if !slot.chk_is_parent {
                match &mut slot.chk {
                    Some(c) => c.clone_from(&s.chk),
                    None => slot.chk = Some(s.chk.clone()),
                }
                let _t = scv_telemetry::timer_sampled(scv_telemetry::Phase::CheckerStep);
                let chk = slot.chk.as_mut().expect("slot.chk filled above");
                for symbol in &sc.syms {
                    if let Err(e) = chk.step(symbol) {
                        slot.error = Some(RejectReason::Stream(e));
                        break;
                    }
                }
            }
            // Fingerprint-only seal: canonical encoding into the scratch
            // arena, no state construction.
            let obs = slot.obs.as_ref().expect("slot.obs filled above");
            let chk = if slot.chk_is_parent {
                &s.chk
            } else {
                slot.chk.as_ref().expect("slot.chk filled above")
            };
            let start = sc.enc.len();
            let fp = if !sym {
                let _t = scv_telemetry::timer_sampled(scv_telemetry::Phase::DescriptorEncode);
                sc.ids.reset_with(base);
                obs.canonical_encoding(&mut sc.enc, &mut sc.ids);
                chk.canonical_encoding(&mut sc.enc, &mut sc.ids);
                fper.fp(&FpParts {
                    proto: slot.proto.as_ref(),
                    enc: &sc.enc[start..],
                })
            } else {
                let _t = scv_telemetry::timer_sampled(scv_telemetry::Phase::Canonicalize);
                let proto_next = slot.proto.as_ref().expect("slot.proto filled above");
                // Identity protocol prefix first — injective, so together
                // with the identity observer/checker encodings it
                // determines the product state and keys the seal caches.
                sc.best.clear();
                self.protocol.encode_state(proto_next, &mut sc.best);
                let proto_len = sc.best.len();
                // Keying the cache costs a hash pass over the identity
                // encoding, while a hit saves the whole canonicalization —
                // worthwhile only when the group is big enough to amortize
                // the key, and only until the hit-rate gate trips.
                let use_cache = self.perms.len() >= 4 && !sc.cache_off;
                // The fast path seeds its incumbent from the first
                // enumerated candidate, so when no cache key is needed the
                // identity's observer/checker walk is skipped entirely.
                let have_identity = use_cache || self.fast.is_none();
                let mut obs_end = 0usize;
                if have_identity {
                    sc.ids.reset_with(base);
                    obs.canonical_encoding(&mut sc.best, &mut sc.ids);
                    obs_end = sc.best.len();
                    chk.canonical_encoding(&mut sc.best, &mut sc.ids);
                }
                slot.key = None;
                let mut key = None;
                if use_cache {
                    let k = fper.fp64(&FpParts::<P::State> {
                        proto: None,
                        enc: &sc.best,
                    });
                    sc.probes += 1;
                    let l1 = (k as usize) & (SEAL_L1_SLOTS - 1);
                    let mut hit = None;
                    if k != 0 && sc.l1_keys[l1] == k {
                        hit = Some((sc.l1_fps[l1], None));
                    } else {
                        match self.l2.get(k) {
                            Some(entry) => {
                                scv_telemetry::add(scv_telemetry::Metric::SealCacheL2Hits, 1);
                                if k != 0 {
                                    sc.l1_keys[l1] = k;
                                    sc.l1_fps[l1] = entry.0;
                                }
                                hit = Some(entry);
                            }
                            None => {
                                scv_telemetry::add(scv_telemetry::Metric::SealCacheL2Misses, 1);
                            }
                        }
                    }
                    if sc.probes >= SEAL_GATE_WINDOW {
                        if sc.hits < SEAL_GATE_MIN_HITS {
                            sc.cache_off = true;
                        }
                        sc.probes = 0;
                        sc.hits = 0;
                    }
                    match hit {
                        Some((cached_fp, cached_enc)) => {
                            sc.hits += 1;
                            scv_telemetry::add(scv_telemetry::Metric::SealCacheHits, 1);
                            if scv_telemetry::recorder_enabled() {
                                scv_telemetry::recorder::instant(
                                    scv_telemetry::recorder::InstantKind::SealCacheHit,
                                    0,
                                );
                            }
                            slot.enc_start = start;
                            match cached_enc {
                                Some(enc) => {
                                    // The canonical encoding is already
                                    // interned: copy it into the arena and
                                    // seal the slot outright.
                                    sc.enc.extend_from_slice(enc.as_slice());
                                    slot.enc_len = sc.enc.len() - start;
                                }
                                None => {
                                    slot.enc_len = ENC_UNSEALED;
                                    slot.key = Some(k);
                                }
                            }
                            sc.fps.push(cached_fp);
                            continue;
                        }
                        None => {
                            scv_telemetry::add(scv_telemetry::Metric::SealCacheMisses, 1);
                            if scv_telemetry::recorder_enabled() {
                                scv_telemetry::recorder::instant(
                                    scv_telemetry::recorder::InstantKind::SealCacheMiss,
                                    0,
                                );
                            }
                            key = Some(k);
                        }
                    }
                }
                self.canon_min(
                    proto_next,
                    obs,
                    chk,
                    base,
                    proto_len,
                    &mut sc.best,
                    &mut sc.cand,
                    &mut sc.canon,
                    have_identity,
                    obs_end,
                );
                let fp = fper.fp(&FpParts::<P::State> {
                    proto: None,
                    enc: &sc.best,
                });
                if let Some(k) = key {
                    if k != 0 {
                        let l1 = (k as usize) & (SEAL_L1_SLOTS - 1);
                        sc.l1_keys[l1] = k;
                        sc.l1_fps[l1] = fp;
                    }
                    self.l2.insert_fp(k, fp);
                    slot.key = Some(k);
                }
                sc.enc.extend_from_slice(&sc.best);
                fp
            };
            slot.enc_start = start;
            slot.enc_len = sc.enc.len() - start;
            sc.fps.push(fp);
        }
        sc.trans = trans; // drained; hand the allocation back

        admit(&sc.fps, &mut sc.keep);
        debug_assert_eq!(sc.keep.len(), n);
        let admitted = sc.keep.iter().filter(|k| **k).count();
        if scv_telemetry::enabled() {
            scv_telemetry::add(
                scv_telemetry::Metric::McClonesAvoided,
                (n - admitted) as u64,
            );
        }
        if admitted == 0 {
            return;
        }

        // Freeze the admitted encodings into one shared chunk: a single
        // allocation per parent instead of one per successor.
        sc.frozen.clear();
        for i in 0..n {
            if !sc.keep[i] {
                continue;
            }
            if sc.slots[i].enc_len == ENC_UNSEALED {
                // Admitted on a cache hit (probe race or within-expansion
                // duplicate): the fingerprint was cached but the canonical
                // encoding was never written — recompute it now.
                let new_len = {
                    let slot = &sc.slots[i];
                    let proto_next = slot.proto.as_ref().expect("slot.proto filled above");
                    let obs = slot.obs.as_ref().expect("slot.obs filled above");
                    let chk = if slot.chk_is_parent {
                        &s.chk
                    } else {
                        slot.chk.as_ref().expect("slot.chk filled above")
                    };
                    sc.best.clear();
                    self.protocol.encode_state(proto_next, &mut sc.best);
                    let proto_len = sc.best.len();
                    let obs_end;
                    {
                        let mut ids = scv_descriptor::IdCanon::new(base);
                        obs.canonical_encoding(&mut sc.best, &mut ids);
                        obs_end = sc.best.len();
                        chk.canonical_encoding(&mut sc.best, &mut ids);
                    }
                    self.canon_min(
                        proto_next,
                        obs,
                        chk,
                        base,
                        proto_len,
                        &mut sc.best,
                        &mut sc.cand,
                        &mut sc.canon,
                        true,
                        obs_end,
                    );
                    debug_assert_eq!(
                        fper.fp(&FpParts::<P::State> {
                            proto: None,
                            enc: &sc.best,
                        }),
                        sc.fps[i],
                        "recomputed orbit minimum disagrees with the cached fingerprint"
                    );
                    sc.frozen.extend_from_slice(&sc.best);
                    sc.best.len()
                };
                sc.slots[i].enc_len = new_len;
            } else {
                let slot = &sc.slots[i];
                sc.frozen
                    .extend_from_slice(&sc.enc[slot.enc_start..slot.enc_start + slot.enc_len]);
            }
        }
        let chunk: Arc<[u64]> = sc.frozen.as_slice().into();
        if scv_telemetry::enabled() {
            scv_telemetry::add(
                scv_telemetry::Metric::McArenaAllocBytes,
                (sc.frozen.len() * std::mem::size_of::<u64>()) as u64,
            );
        }
        let mut off = 0usize;
        for i in 0..n {
            if !sc.keep[i] {
                continue;
            }
            let slot = &mut sc.slots[i];
            let enc = EncRef::view(&chunk, off, slot.enc_len);
            if let Some(k) = slot.key.take() {
                // Upgrade the fingerprint-only cache entry with the interned
                // canonical encoding so future hits seal without recomputing.
                self.l2.set_enc(k, sc.fps[i], enc.clone());
            }
            off += slot.enc_len;
            out.push((
                slot.action,
                VerifyState {
                    proto: slot.proto.take().expect("admitted slot has proto"),
                    obs: slot.obs.take().expect("admitted slot has obs"),
                    chk: if slot.chk_is_parent {
                        s.chk.clone()
                    } else {
                        slot.chk.take().expect("admitted slot has chk")
                    },
                    error: slot.error.take(),
                    enc,
                    sym,
                },
                sc.fps[i],
            ));
        }
    }

    fn violation(&self, s: &Self::State) -> Option<RejectReason> {
        if let Some(e) = &s.error {
            return Some(e.clone());
        }
        let _t = scv_telemetry::timer_sampled(scv_telemetry::Phase::CheckerEnd);
        // Traces are prefix-closed: every reachable state is a possible
        // end of run, so the end-of-string conditions (order totality,
        // outstanding forced obligations) must hold here too.
        if !s.obs.has_pending() {
            // Nothing left to serialize: probe the checker in place.
            return s.chk.check_end().err().map(RejectReason::RunEnd);
        }
        // Pending serializations: replay the observer's trailing symbols
        // on copies.
        let mut obs = s.obs.clone();
        let mut chk = s.chk.clone();
        let mut syms = Vec::new();
        obs.finish(&mut syms);
        for sym in &syms {
            if let Err(e) = chk.step(sym) {
                return Some(RejectReason::RunEnd(e));
            }
        }
        chk.check_end().err().map(RejectReason::RunEnd)
    }
}

/// Limits and parallelism for [`verify_protocol`].
///
/// Construct with the chained builder:
///
/// ```
/// use scv_mc::{SymmetryMode, VerifyOptions};
/// let opts = VerifyOptions::new()
///     .threads(4)
///     .max_states(500_000)
///     .symmetry(SymmetryMode::Full);
/// # assert_eq!(opts.threads, 4);
/// ```
///
/// The struct is `#[non_exhaustive]`, so literal construction outside this
/// crate no longer compiles; `VerifyOptions::default()` remains as an
/// escape hatch (fields stay public for reading and in-place mutation)
/// for one release while callers migrate.
///
/// Run control rides along here too: a [`Budget`] and [`CancelToken`]
/// bound the run (tripping yields [`Outcome::Inconclusive`], not
/// `Bounded`), and the checkpoint fields make interrupted searches
/// resumable — see [`VerifySystem::try_search`]. These fields made the
/// struct `Clone`-but-not-`Copy`.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct VerifyOptions {
    /// BFS limits.
    pub bfs: BfsOptions,
    /// Worker threads (1 = sequential).
    pub threads: usize,
    /// Parallel engine to use when `threads > 1` (ignored otherwise).
    pub strategy: SearchStrategy,
    /// Work-stealing batch granularity: states per deque chunk and
    /// fingerprints claimed per seen-set lock acquisition (ignored by the
    /// level-synchronous engine).
    pub batch_size: usize,
    /// Symmetry reduction: quotient the product space by the protocol's
    /// declared symmetry group.
    pub symmetry: SymmetryMode,
    /// Admission-gated lazy state materialization (the default). `false`
    /// selects the eager reference path: every successor is fully
    /// materialized before the seen-set probe. Consumed by
    /// [`verify_protocol`] when it builds the system; [`verify_system`]
    /// runs whatever the passed-in system was configured with.
    pub lazy: bool,
    /// Resource budget for the run (wall clock, admitted states, resident
    /// memory). Tripping yields [`Outcome::Inconclusive`].
    pub budget: Budget,
    /// Cooperative cancellation handle polled at admission boundaries.
    pub cancel: CancelToken,
    /// Write a checkpoint this often while the run is in progress (the
    /// search is paused at a consistent point, serialized, and resumed
    /// in-process). Requires [`VerifyOptions::checkpoint_path`].
    pub checkpoint_every: Option<Duration>,
    /// Where periodic and final (budget-trip) checkpoints are written.
    pub checkpoint_path: Option<PathBuf>,
    /// Resume a previous run from this checkpoint file instead of
    /// starting fresh. The file must match the protocol, parameters,
    /// symmetry mode, and initial state, or the search fails with
    /// [`CheckpointError::Mismatch`].
    pub resume_from: Option<PathBuf>,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            bfs: BfsOptions::new().max_states(200_000),
            threads: 1,
            strategy: SearchStrategy::default(),
            batch_size: 128,
            symmetry: SymmetryMode::Off,
            lazy: true,
            budget: Budget::unlimited(),
            cancel: CancelToken::new(),
            checkpoint_every: None,
            checkpoint_path: None,
            resume_from: None,
        }
    }
}

impl VerifyOptions {
    /// Default options (sequential, 200k-state cap, no symmetry); chain
    /// builder methods to adjust.
    pub fn new() -> Self {
        Self::default()
    }

    /// Worker threads (1 = sequential).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Stop after visiting this many states.
    pub fn max_states(mut self, n: usize) -> Self {
        self.bfs.max_states = n;
        self
    }

    /// Explore at most this many BFS levels.
    pub fn max_depth(mut self, d: usize) -> Self {
        self.bfs.max_depth = d;
        self
    }

    /// Replace the whole [`BfsOptions`] block.
    pub fn bfs(mut self, bfs: BfsOptions) -> Self {
        self.bfs = bfs;
        self
    }

    /// Parallel engine to use when `threads > 1`.
    pub fn strategy(mut self, s: SearchStrategy) -> Self {
        self.strategy = s;
        self
    }

    /// Work-stealing batch granularity.
    pub fn batch_size(mut self, n: usize) -> Self {
        self.batch_size = n;
        self
    }

    /// Symmetry reduction mode.
    pub fn symmetry(mut self, m: SymmetryMode) -> Self {
        self.symmetry = m;
        self
    }

    /// Admission-gated lazy materialization (`true`, the default) or the
    /// eager reference expansion path (`false`).
    pub fn lazy(mut self, on: bool) -> Self {
        self.lazy = on;
        self
    }

    /// Resource budget for the run.
    pub fn budget(mut self, b: Budget) -> Self {
        self.budget = b;
        self
    }

    /// Wall-clock deadline, measured from the start of the run. Shorthand
    /// for `budget(self.budget.deadline(d))`.
    pub fn timeout(mut self, d: Duration) -> Self {
        self.budget = self.budget.deadline(d);
        self
    }

    /// Cancellation token the engines poll at admission boundaries.
    pub fn cancel_token(mut self, t: CancelToken) -> Self {
        self.cancel = t;
        self
    }

    /// Write a checkpoint to [`VerifyOptions::checkpoint_path`] this often.
    pub fn checkpoint_every(mut self, d: Duration) -> Self {
        self.checkpoint_every = Some(d);
        self
    }

    /// Where checkpoints (periodic and budget-trip) are written.
    pub fn checkpoint_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Resume from a checkpoint file instead of starting fresh.
    pub fn resume_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume_from = Some(path.into());
        self
    }
}

/// Outcome of verifying a protocol.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Every reachable observer run describes an acyclic constraint graph:
    /// the observer is a witness and the protocol is **sequentially
    /// consistent** (Theorem 3.1).
    Verified {
        /// Search statistics.
        stats: McStats,
    },
    /// Some run's witness graph is not an acyclic constraint graph: the
    /// protocol is not in the class Γ for the generated tracking labels
    /// and ST order generator (for real protocols this means a genuine SC
    /// violation; the run is returned for inspection).
    Violation {
        /// The actions of the violating run.
        run: Vec<Action>,
        /// The memory operations of the violating run.
        trace: Trace,
        /// The checker's diagnosis.
        reason: RejectReason,
        /// Search statistics.
        stats: McStats,
    },
    /// A search limit was reached with no violation found.
    Bounded {
        /// Search statistics.
        stats: McStats,
    },
    /// The run was interrupted — budget tripped or cancel requested —
    /// before reaching a verdict. Unlike `Bounded` ("the space is bigger
    /// than I was asked to cover"), an inconclusive run is *resumable*: if
    /// a checkpoint path was configured, the partial search is on disk and
    /// [`VerifyOptions::resume_from`] continues it exactly.
    Inconclusive {
        /// Which limit stopped the run.
        reason: InterruptReason,
        /// How much of the state space was covered before the interrupt.
        coverage: Coverage,
        /// Search statistics at the interrupt point.
        stats: McStats,
    },
}

impl Outcome {
    /// Search statistics regardless of outcome.
    pub fn stats(&self) -> McStats {
        match self {
            Outcome::Verified { stats }
            | Outcome::Violation { stats, .. }
            | Outcome::Bounded { stats }
            | Outcome::Inconclusive { stats, .. } => *stats,
        }
    }

    /// Did verification succeed exhaustively?
    pub fn is_verified(&self) -> bool {
        matches!(self, Outcome::Verified { .. })
    }

    /// Was the run interrupted before reaching a verdict?
    pub fn is_inconclusive(&self) -> bool {
        matches!(self, Outcome::Inconclusive { .. })
    }

    /// The typed violation diagnosis, if this outcome is a violation.
    ///
    /// Borrowing replacement for [`Outcome::message`]: no allocation, and
    /// the caller can match on [`scv_checker::ScErrorKind`] structurally
    /// instead of parsing text. The historical message text is
    /// `reason.to_string()` (its `Display` is pinned by the
    /// `options_and_reasons` test battery).
    pub fn reject_reason(&self) -> Option<&RejectReason> {
        match self {
            Outcome::Violation { reason, .. } => Some(reason),
            _ => None,
        }
    }

    /// Coverage of an interrupted run, if this outcome is inconclusive.
    pub fn coverage(&self) -> Option<Coverage> {
        match self {
            Outcome::Inconclusive { coverage, .. } => Some(*coverage),
            _ => None,
        }
    }

    /// The violation diagnosis rendered as the historical message text,
    /// if this outcome is a violation.
    #[deprecated(
        since = "0.1.0",
        note = "allocates per call and loses the typed reason; use `reject_reason`"
    )]
    pub fn message(&self) -> Option<String> {
        self.reject_reason().map(RejectReason::to_string)
    }
}

impl<P> VerifySystem<P>
where
    P: Symmetry + Sync,
    P::State: Send + Sync + 'static,
{
    /// Run a search over this product system, honouring every
    /// [`VerifyOptions`] knob including run control and checkpointing.
    ///
    /// Panics if checkpoint I/O fails or a resume file does not match
    /// this system; use [`VerifySystem::try_search`] to handle those.
    pub fn search(&self, opts: &VerifyOptions) -> Outcome {
        match self.try_search(opts) {
            Ok(out) => out,
            Err(e) => panic!("checkpoint error (use try_search to handle): {e}"),
        }
    }

    /// Run a search over this product system.
    ///
    /// This is the stop-and-go driver behind every public entry point:
    ///
    /// 1. If [`VerifyOptions::resume_from`] is set, load the checkpoint
    ///    file, validate it against this system (protocol name,
    ///    parameters, symmetry mode, initial-state fingerprint), and
    ///    rebuild the in-memory search state — frontier states are
    ///    reconstructed by replaying their parent chains of actions from
    ///    the initial state, fingerprint-checking every step.
    /// 2. Run the configured engine in *slices*: each slice's deadline is
    ///    the earlier of the budget deadline and the next
    ///    [`VerifyOptions::checkpoint_every`] tick. A slice that ends at a
    ///    checkpoint tick serializes the paused search to
    ///    [`VerifyOptions::checkpoint_path`] and resumes in-process.
    /// 3. A verdict maps to `Verified`/`Violation`/`Bounded` exactly as
    ///    before; a tripped budget or cancel writes a final checkpoint (if
    ///    a path is configured) and returns [`Outcome::Inconclusive`] with
    ///    the reason and coverage counts.
    ///
    /// The resume path is exact: verdicts and state counts match an
    /// uninterrupted run (the engines drain to a consistent point before
    /// checkpointing; see `crate::control`).
    pub fn try_search(&self, opts: &VerifyOptions) -> Result<Outcome, CheckpointError> {
        let run_start = Instant::now();
        let mut resume = match &opts.resume_from {
            Some(path) => Some(self.rebuild_checkpoint(&CheckpointFile::load(path)?)?),
            None => None,
        };
        // The budget deadline is absolute (measured from run start); each
        // slice additionally caps itself at the next checkpoint tick.
        let budget_deadline = opts.budget.deadline.map(|d| run_start + d);
        let sliced_budget = Budget {
            deadline: None,
            ..opts.budget
        };
        let is_ws = opts.threads > 1 && opts.strategy == SearchStrategy::WorkStealing;
        // Floor the tick: a zero-length slice would trip before expanding
        // anything. `effective_every` then adapts upward (doubling) any
        // time a slice makes no progress — as the seen-set grows, resume
        // setup costs O(states), and a fixed short tick could otherwise be
        // consumed entirely by setup, livelocking the run.
        let mut effective_every = opts
            .checkpoint_every
            .map(|e| e.max(Duration::from_millis(1)));
        let mut last_states = resume.as_ref().map_or(0, |ck| ck.states);
        loop {
            let mut ctrl = RunControl::new(&sliced_budget, opts.cancel.clone());
            if let Some(d) = budget_deadline {
                ctrl = ctrl.with_deadline(d);
            }
            if let Some(every) = effective_every {
                ctrl = ctrl.with_deadline(Instant::now() + every);
            }
            let taken = resume.take();
            let result = if is_ws {
                ws_search_controlled(self, opts.bfs, opts.threads, opts.batch_size, &ctrl, taken).0
            } else {
                // The work-stealing engine times and publishes internally;
                // these two do neither, so the driver does both.
                let _t = scv_telemetry::timer(scv_telemetry::Phase::Search);
                if opts.threads > 1 {
                    bfs_parallel_controlled(self, opts.bfs, opts.threads, &ctrl, taken)
                } else {
                    bfs_controlled(self, opts.bfs, &ctrl, taken)
                }
            };
            match result {
                ControlledSearch::Finished(r) => {
                    let mut stats = r.stats();
                    stats.elapsed = run_start.elapsed();
                    if !is_ws {
                        publish_search_stats(&stats, false);
                    }
                    return Ok(match r {
                        SearchResult::Safe(_) => Outcome::Verified { stats },
                        SearchResult::Bounded(_) => Outcome::Bounded { stats },
                        SearchResult::Unsafe(ce, _) => {
                            let ops: Vec<Op> = ce.path.iter().filter_map(|a| a.op()).collect();
                            Outcome::Violation {
                                run: ce.path,
                                trace: Trace::from_ops(ops),
                                reason: ce.reason,
                                stats,
                            }
                        }
                    });
                }
                ControlledSearch::Interrupted {
                    reason,
                    checkpoint,
                    mut stats,
                } => {
                    // A deadline trip with the *budget* deadline still in
                    // the future is a checkpoint tick, not a budget trip:
                    // snapshot and keep going.
                    let tick = reason == InterruptReason::Deadline
                        && budget_deadline.is_none_or(|d| Instant::now() < d);
                    if let Some(path) = &opts.checkpoint_path {
                        self.write_checkpoint(path, &checkpoint)?;
                    }
                    if tick {
                        if checkpoint.states <= last_states {
                            if let Some(e) = &mut effective_every {
                                *e = e.saturating_mul(2);
                            }
                        }
                        last_states = checkpoint.states;
                        resume = Some(checkpoint);
                        continue;
                    }
                    scv_telemetry::add(scv_telemetry::Metric::McBudgetTrips, 1);
                    let coverage = Coverage {
                        explored: stats.states,
                        frontier: checkpoint.frontier.len(),
                        depth: stats.depth,
                    };
                    stats.elapsed = run_start.elapsed();
                    if !is_ws {
                        publish_search_stats(&stats, false);
                    }
                    return Ok(Outcome::Inconclusive {
                        reason,
                        coverage,
                        stats,
                    });
                }
            }
        }
    }

    /// Package an engine checkpoint into the portable file form.
    fn checkpoint_file(
        &self,
        ck: &SearchCheckpoint<VerifyState<P::State>, Action>,
    ) -> CheckpointFile {
        let p = self.protocol.params();
        CheckpointFile {
            protocol: self.protocol.name().to_string(),
            dims: (p.p, p.b, p.v),
            symmetry: self.mode.as_byte(),
            seeds: ck.seeds,
            states: ck.states as u64,
            transitions: ck.transitions as u64,
            depth: ck.depth as u64,
            init_fp: ck.init_fp,
            seen: ck.seen.clone(),
            parents: ck.parents.clone(),
            frontier: ck
                .frontier
                .iter()
                .map(|(_, fp, d)| (*fp, *d as u32))
                .collect(),
        }
    }

    fn write_checkpoint(
        &self,
        path: &std::path::Path,
        ck: &SearchCheckpoint<VerifyState<P::State>, Action>,
    ) -> Result<(), CheckpointError> {
        let bytes = self.checkpoint_file(ck).save(path)?;
        scv_telemetry::add(scv_telemetry::Metric::McCheckpointBytes, bytes);
        if scv_telemetry::recorder_enabled() {
            scv_telemetry::recorder::instant(
                scv_telemetry::recorder::InstantKind::Checkpoint,
                bytes,
            );
        }
        Ok(())
    }

    /// Validate a checkpoint file against this system and rebuild the
    /// in-memory [`SearchCheckpoint`], rematerializing every frontier
    /// state by replaying its parent chain from the initial state.
    fn rebuild_checkpoint(
        &self,
        file: &CheckpointFile,
    ) -> Result<SearchCheckpoint<VerifyState<P::State>, Action>, CheckpointError> {
        let name = self.protocol.name();
        if file.protocol != name {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint is for protocol {:?}, not {name:?}",
                file.protocol
            )));
        }
        let p = self.protocol.params();
        if file.dims != (p.p, p.b, p.v) {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint parameters {:?} do not match ({}, {}, {})",
                file.dims, p.p, p.b, p.v
            )));
        }
        if file.symmetry != self.mode.as_byte() {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint symmetry byte {} does not match mode {:?}",
                file.symmetry, self.mode
            )));
        }
        let fper = Fingerprinter::from_seeds(file.seeds);
        let init = self.initial();
        let init_fp = fper.fp(&init);
        if init_fp != file.init_fp {
            return Err(CheckpointError::Mismatch(
                "initial-state fingerprint does not match (different system?)".into(),
            ));
        }
        // Parent edges keyed by child fingerprint, for chain walking.
        let mut up: HashMap<u128, (u128, Action)> = HashMap::with_capacity(file.parents.len());
        for &(child, parent, action) in &file.parents {
            up.insert(child, (parent, action));
        }
        // Replayed states are cached by fingerprint so frontier states
        // sharing a prefix walk it only once.
        let mut cache: HashMap<u128, VerifyState<P::State>> = HashMap::new();
        cache.insert(init_fp, init);
        let mut frontier = Vec::with_capacity(file.frontier.len());
        let mut succs = Vec::new();
        for &(fp, depth) in &file.frontier {
            let mut chain = Vec::new();
            let mut cur = fp;
            while !cache.contains_key(&cur) {
                let Some(&(parent, action)) = up.get(&cur) else {
                    return Err(CheckpointError::Corrupt(format!(
                        "frontier fingerprint {cur:#034x} has no parent chain to the initial state"
                    )));
                };
                chain.push((cur, action));
                if chain.len() > file.parents.len() {
                    return Err(CheckpointError::Corrupt("parent-edge cycle".into()));
                }
                cur = parent;
            }
            let mut state = cache[&cur].clone();
            for &(child_fp, action) in chain.iter().rev() {
                succs.clear();
                self.successors_into(&state, &mut succs);
                let next = succs
                    .drain(..)
                    .find(|(a, s)| *a == action && fper.fp(s) == child_fp);
                let Some((_, s)) = next else {
                    return Err(CheckpointError::Mismatch(format!(
                        "replaying {action:?} did not reproduce fingerprint {child_fp:#034x} \
                         (protocol behaviour changed since the checkpoint?)"
                    )));
                };
                cache.insert(child_fp, s.clone());
                state = s;
            }
            frontier.push((state, fp, depth as usize));
        }
        Ok(SearchCheckpoint {
            seeds: file.seeds,
            init_fp,
            seen: file.seen.clone(),
            frontier,
            parents: file.parents.clone(),
            states: file.states as usize,
            transitions: file.transitions as usize,
            depth: file.depth as usize,
        })
    }
}

/// Run a search over an already-built product system.
#[deprecated(
    since = "0.1.0",
    note = "use `VerifySystem::search`/`try_search`, or the root-crate `Verifier` facade"
)]
pub fn verify_system<P>(sys: &VerifySystem<P>, opts: VerifyOptions) -> Outcome
where
    P: Symmetry + Sync,
    P::State: Send + Sync + 'static,
{
    sys.search(&opts)
}

/// Run the complete §3.4 method on a protocol.
pub fn verify_protocol<P>(protocol: P, opts: VerifyOptions) -> Outcome
where
    P: Symmetry + Sync,
    P::State: Send + Sync + 'static,
{
    let sys = VerifySystem::with_symmetry(protocol, opts.symmetry).lazy(opts.lazy);
    sys.search(&opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scv_protocol::{Fig4Protocol, LazyCaching, MsiProtocol, SerialMemory, StoreBufferTso};
    use scv_types::Params;

    fn opts(max_states: usize) -> VerifyOptions {
        VerifyOptions::new().max_states(max_states)
    }

    /// "Safe within the cap": either fully verified, or the cap was hit
    /// with no violation — never a violation. Product spaces here run to
    /// millions of states even for tiny protocols (see DESIGN.md §6), so
    /// most positive tests assert bounded safety and only the smallest
    /// configuration is proved exhaustively.
    fn safe_within(out: &Outcome) -> bool {
        !matches!(out, Outcome::Violation { .. })
    }

    #[test]
    #[ignore = "exhaustive proof (~120k product states): run with `cargo test --release -- --ignored`"]
    fn serial_memory_2_1_1_verifies_exhaustively() {
        let out = verify_protocol(SerialMemory::new(Params::new(2, 1, 1)), opts(400_000));
        assert!(
            out.is_verified(),
            "serial memory must verify: {:?}",
            out.stats()
        );
        assert!(
            out.stats().states > 50_000,
            "the product is genuinely large"
        );
    }

    #[test]
    fn serial_memory_2_1_1_safe_within_cap() {
        let out = verify_protocol(SerialMemory::new(Params::new(2, 1, 1)), opts(30_000));
        assert!(safe_within(&out), "{:?}", out.stats());
    }

    #[test]
    fn serial_memory_2_1_2_safe_within_cap() {
        let out = verify_protocol(SerialMemory::new(Params::new(2, 1, 2)), opts(60_000));
        assert!(
            safe_within(&out),
            "no violation may appear: {:?}",
            out.stats()
        );
    }

    #[test]
    fn msi_safe_within_cap() {
        let out = verify_protocol(MsiProtocol::new(Params::new(2, 1, 2)), opts(60_000));
        assert!(safe_within(&out), "MSI must not violate: {:?}", out.stats());
    }

    #[test]
    fn lazy_caching_safe_within_cap() {
        let out = verify_protocol(LazyCaching::new(Params::new(2, 1, 1), 1, 1), opts(60_000));
        assert!(
            safe_within(&out),
            "lazy caching must not violate: {:?}",
            out.stats()
        );
    }

    #[test]
    fn buggy_msi_violates() {
        let out = verify_protocol(MsiProtocol::buggy(Params::new(2, 2, 1)), opts(2_000_000));
        match out {
            Outcome::Violation { trace, reason, .. } => {
                // The violating run's trace must itself be non-SC — the
                // bug is real, not a verification artifact.
                assert!(
                    !scv_graph::has_serial_reordering(&trace),
                    "counterexample trace should violate SC: {trace} ({reason})"
                );
            }
            o => panic!("expected Violation, got {:?}", o.stats()),
        }
    }

    #[test]
    fn tso_violates() {
        let out = verify_protocol(
            StoreBufferTso::new(Params::new(2, 2, 1), 1),
            opts(2_000_000),
        );
        match out {
            Outcome::Violation { trace, .. } => {
                assert!(!scv_graph::has_serial_reordering(&trace));
            }
            o => panic!("expected Violation, got {:?}", o.stats()),
        }
    }

    #[test]
    fn fig4_not_verified() {
        // The Get-Shared protocol is outside the class Γ for the real-time
        // ST order generator (stale views re-fetched via Get-Shared make
        // the real-time store order wrong), so verification must fail.
        // Note the *shortest* rejected run may still have an SC trace —
        // rejection means "no witness under this generator", and the
        // protocol also has genuinely non-SC traces (shown in
        // scv-protocol's fig4 tests).
        let out = verify_protocol(Fig4Protocol::new(Params::new(2, 1, 2), 1), opts(2_000_000));
        assert!(
            matches!(out, Outcome::Violation { .. }),
            "expected Violation, got {:?}",
            out.stats()
        );
    }

    #[test]
    fn parallel_agrees_with_sequential() {
        // Verdicts must agree on a violation hunt (counterexamples are
        // found quickly in parallel too), under both parallel engines.
        let seq = verify_protocol(MsiProtocol::buggy(Params::new(2, 2, 1)), opts(2_000_000));
        assert!(matches!(seq, Outcome::Violation { .. }));
        for strategy in [SearchStrategy::WorkStealing, SearchStrategy::LevelSync] {
            let par = verify_protocol(
                MsiProtocol::buggy(Params::new(2, 2, 1)),
                opts(2_000_000).threads(4).strategy(strategy),
            );
            assert!(matches!(par, Outcome::Violation { .. }), "{strategy:?}");
        }
    }

    #[test]
    fn bounded_outcome_on_tiny_limit() {
        let out = verify_protocol(MsiProtocol::new(Params::new(2, 2, 2)), opts(50));
        assert!(matches!(out, Outcome::Bounded { .. }));
    }

    #[test]
    fn symmetry_reduces_msi_with_same_verdict() {
        // Depth-bounded so both runs cut the same frontier: the quotient
        // must explore at least 2× fewer states (the (2,1,2) group has
        // order 4) and reach the same verdict.
        let depth = 8;
        let base = opts(500_000).max_depth(depth);
        let off = verify_protocol(MsiProtocol::new(Params::new(2, 1, 2)), base.clone());
        let on = verify_protocol(
            MsiProtocol::new(Params::new(2, 1, 2)),
            base.symmetry(SymmetryMode::Full),
        );
        assert_eq!(
            matches!(off, Outcome::Bounded { .. }),
            matches!(on, Outcome::Bounded { .. }),
            "verdicts must agree"
        );
        assert!(!matches!(off, Outcome::Violation { .. }));
        assert!(!matches!(on, Outcome::Violation { .. }));
        let (s_off, s_on) = (off.stats().states, on.stats().states);
        assert!(
            s_on * 2 <= s_off,
            "symmetry must at least halve the explored states: {s_on} vs {s_off}"
        );
    }

    #[test]
    fn symmetry_preserves_buggy_msi_violation() {
        let out = verify_protocol(
            MsiProtocol::buggy(Params::new(2, 2, 1)),
            opts(2_000_000).symmetry(SymmetryMode::Full),
        );
        match out {
            Outcome::Violation { trace, reason, .. } => {
                assert!(
                    !scv_graph::has_serial_reordering(&trace),
                    "reduced-search counterexample must still be a real violation: {trace} ({reason})"
                );
            }
            o => panic!("expected Violation, got {:?}", o.stats()),
        }
    }

    /// Unique temp path for checkpoint tests.
    fn tmp_ckpt(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("scv-verify-{}-{name}.ckpt", std::process::id()));
        p
    }

    #[test]
    fn state_budget_trip_is_inconclusive_with_coverage() {
        let sys = VerifySystem::new(SerialMemory::new(Params::new(2, 1, 1)));
        let out = sys.search(&opts(100_000).budget(Budget::unlimited().states(1_000)));
        match out {
            Outcome::Inconclusive {
                reason,
                coverage,
                stats,
            } => {
                assert_eq!(reason, InterruptReason::StateBudget);
                assert!(coverage.explored >= 1_000, "{coverage}");
                assert!(coverage.frontier > 0, "{coverage}");
                assert_eq!(coverage.explored, stats.states);
            }
            o => panic!("expected Inconclusive, got {:?}", o.stats()),
        }
    }

    #[test]
    fn zero_timeout_is_inconclusive_deadline() {
        let sys = VerifySystem::new(SerialMemory::new(Params::new(2, 1, 1)));
        let out = sys.search(&opts(100_000).timeout(std::time::Duration::ZERO));
        assert!(
            matches!(
                out,
                Outcome::Inconclusive {
                    reason: InterruptReason::Deadline,
                    ..
                }
            ),
            "got {:?}",
            out.stats()
        );
    }

    #[test]
    fn cancelled_search_is_inconclusive() {
        let token = CancelToken::new();
        token.cancel();
        let sys = VerifySystem::new(SerialMemory::new(Params::new(2, 1, 1)));
        let out = sys.search(&opts(100_000).cancel_token(token));
        assert!(matches!(
            out,
            Outcome::Inconclusive {
                reason: InterruptReason::Cancelled,
                ..
            }
        ));
    }

    #[test]
    fn driver_checkpoint_resume_matches_clean_run() {
        let clean = verify_protocol(SerialMemory::new(Params::new(2, 1, 1)), opts(30_000));
        assert!(matches!(clean, Outcome::Bounded { .. }));
        let clean_stats = clean.stats();

        let path = tmp_ckpt("resume-parity");
        let sys = VerifySystem::new(SerialMemory::new(Params::new(2, 1, 1)));
        let out = sys
            .try_search(
                &opts(30_000)
                    .budget(Budget::unlimited().states(2_000))
                    .checkpoint_to(&path),
            )
            .unwrap();
        assert!(out.is_inconclusive(), "{:?}", out.stats());

        // The file on disk round-trips through the codec.
        let file = CheckpointFile::load(&path).unwrap();
        assert_eq!(file.protocol, "serial-memory");
        assert!(file.states >= 2_000);

        // Resuming finishes the run with the clean run's verdict and —
        // for the deterministic sequential engine — its exact totals.
        let resumed = sys.try_search(&opts(30_000).resume_from(&path)).unwrap();
        assert!(
            matches!(resumed, Outcome::Bounded { .. }),
            "{:?}",
            resumed.stats()
        );
        assert_eq!(resumed.stats().states, clean_stats.states);

        // A different engine may overshoot the cap differently, but the
        // verdict and the cap itself must hold.
        let resumed_ws = sys
            .try_search(&opts(30_000).threads(4).resume_from(&path))
            .unwrap();
        assert!(
            matches!(resumed_ws, Outcome::Bounded { .. }),
            "{:?}",
            resumed_ws.stats()
        );
        assert!(resumed_ws.stats().states >= 30_000);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn periodic_checkpoints_do_not_change_the_verdict() {
        let clean = verify_protocol(SerialMemory::new(Params::new(2, 1, 1)), opts(20_000));
        let path = tmp_ckpt("periodic");
        let sys = VerifySystem::new(SerialMemory::new(Params::new(2, 1, 1)));
        let out = sys
            .try_search(
                &opts(20_000)
                    .checkpoint_every(std::time::Duration::from_millis(1))
                    .checkpoint_to(&path),
            )
            .unwrap();
        assert!(matches!(out, Outcome::Bounded { .. }), "{:?}", out.stats());
        assert_eq!(out.stats().states, clean.stats().states);
        // The run was long enough for at least one tick, so a valid
        // snapshot must be on disk.
        assert!(path.exists(), "no periodic checkpoint written");
        CheckpointFile::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_rejects_mismatched_system() {
        let path = tmp_ckpt("mismatch");
        let sys = VerifySystem::new(SerialMemory::new(Params::new(2, 1, 1)));
        let out = sys
            .try_search(
                &opts(30_000)
                    .budget(Budget::unlimited().states(500))
                    .checkpoint_to(&path),
            )
            .unwrap();
        assert!(out.is_inconclusive());

        // Wrong protocol.
        let err = VerifySystem::new(MsiProtocol::new(Params::new(2, 1, 1)))
            .try_search(&opts(30_000).resume_from(&path))
            .unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");

        // Wrong parameters.
        let err = VerifySystem::new(SerialMemory::new(Params::new(2, 1, 2)))
            .try_search(&opts(30_000).resume_from(&path))
            .unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");

        // Wrong symmetry mode.
        let err = VerifySystem::with_symmetry(
            SerialMemory::new(Params::new(2, 1, 1)),
            SymmetryMode::Full,
        )
        .try_search(&opts(30_000).resume_from(&path))
        .unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reject_reason_accessor_borrows_the_typed_reason() {
        let out = verify_protocol(MsiProtocol::buggy(Params::new(2, 2, 1)), opts(2_000_000));
        let reason = out.reject_reason().expect("buggy MSI violates");
        // The borrowing accessor and the historical text agree.
        #[allow(deprecated)]
        let msg = out.message().unwrap();
        assert_eq!(msg, reason.to_string());
        assert!(
            verify_protocol(SerialMemory::new(Params::new(2, 1, 1)), opts(5_000))
                .reject_reason()
                .is_none()
        );
    }

    #[test]
    fn lazy_builder_replaces_set_lazy() {
        let sys = VerifySystem::new(SerialMemory::new(Params::new(2, 1, 1))).lazy(false);
        assert!(!sys.is_lazy());
        let sys = sys.lazy(true);
        assert!(sys.is_lazy());
        assert_eq!(sys.symmetry_mode(), SymmetryMode::Off);
    }

    #[test]
    fn symmetry_mode_byte_roundtrip() {
        for mode in [
            SymmetryMode::Off,
            SymmetryMode::Proc,
            SymmetryMode::Full,
            SymmetryMode::FullEnum,
        ] {
            assert_eq!(SymmetryMode::from_byte(mode.as_byte()), Some(mode));
        }
        assert_eq!(SymmetryMode::from_byte(4), None);
    }

    #[test]
    fn proc_mode_intersects_with_protocol_dims() {
        // Buggy MSI declares blocks+values only, so requesting Proc yields
        // the trivial group and Full yields blocks·values.
        let sys = VerifySystem::with_symmetry(
            MsiProtocol::buggy(Params::new(2, 2, 2)),
            SymmetryMode::Proc,
        );
        assert_eq!(sys.symmetry_group_order(), 1);
        let sys = VerifySystem::with_symmetry(
            MsiProtocol::buggy(Params::new(2, 2, 2)),
            SymmetryMode::Full,
        );
        assert_eq!(sys.symmetry_group_order(), 4); // 2! blocks × 2! values
    }
}
