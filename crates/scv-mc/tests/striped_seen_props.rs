//! Property battery: [`StripedSeen`] against a `HashSet<u128>` model.
//!
//! The striped table is the concurrency-critical core of the
//! work-stealing engine — a membership bug silently truncates or inflates
//! the explored state space, which no protocol-level test would reliably
//! catch. These properties drive the table through both its entry points
//! (single [`StripedSeen::insert`] and the batch-claiming
//! [`StripedSeen::insert_batch`] path the engine actually uses) across
//! shard counts of one, a power of two, and a non-power-of-two, and check
//! every return value against the reference set semantics.
//!
//! The vendored proptest is deterministic (cases seeded from the test
//! name), so failures reproduce exactly.

use proptest::prelude::*;
use scv_mc::StripedSeen;
use std::collections::HashSet;

/// The model-side view of a fingerprint: the table reserves 0 as its
/// empty-slot sentinel and remaps it to 1 by design.
fn canon(fp: u128) -> u128 {
    if fp == 0 {
        1
    } else {
        fp
    }
}

/// Fingerprints drawn from a tiny pool (forcing duplicates, including the
/// sentinel-adjacent values 0 and 1) half the time, and from the full
/// 128-bit space the other half.
fn fp_any() -> impl Strategy<Value = u128> {
    prop_oneof![
        (0u64..6, 0u64..6).prop_map(|hl| ((hl.0 as u128) << 64) | hl.1 as u128),
        (0u64..u64::MAX, 0u64..u64::MAX).prop_map(|hl| ((hl.0 as u128) << 64) | hl.1 as u128),
    ]
}

/// Shard counts covering the degenerate (1), power-of-two (8), and
/// non-power-of-two (7) layouts.
fn shard_counts() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(7usize), Just(8usize)]
}

proptest! {
    #[test]
    fn single_inserts_match_hashset(
        shards in shard_counts(),
        fps in proptest::collection::vec(fp_any(), 0..300),
    ) {
        let seen = StripedSeen::new(shards);
        let mut model: HashSet<u128> = HashSet::new();
        for &fp in &fps {
            prop_assert_eq!(seen.insert(fp), model.insert(canon(fp)), "insert({fp:#x})");
            prop_assert!(seen.contains(fp), "contains({fp:#x}) right after insert");
        }
        prop_assert_eq!(seen.len(), model.len());
        for &fp in &model {
            prop_assert!(seen.contains(fp), "model member {fp:#x} missing");
        }
    }

    #[test]
    fn batch_inserts_match_hashset(
        shards in shard_counts(),
        rounds in proptest::collection::vec(
            proptest::collection::vec(fp_any(), 0..40),
            0..10,
        ),
    ) {
        let seen = StripedSeen::new(shards);
        prop_assert_eq!(seen.shard_count(), shards);
        let mut model: HashSet<u128> = HashSet::new();
        for round in &rounds {
            // Group by stripe exactly as a worker does before flushing.
            let mut by_shard: Vec<Vec<u128>> = vec![Vec::new(); seen.shard_count()];
            for &fp in round {
                by_shard[seen.shard_of(fp)].push(fp);
            }
            for (shard, group) in by_shard.iter().enumerate() {
                if group.is_empty() {
                    continue;
                }
                let mut flags = Vec::new();
                let claimed = seen.insert_batch(shard, group, &mut flags);
                prop_assert_eq!(flags.len(), group.len(), "one flag per fingerprint");
                let mut expected_new = 0usize;
                for (i, &fp) in group.iter().enumerate() {
                    let is_new = model.insert(canon(fp));
                    prop_assert_eq!(flags[i], is_new, "flag for {fp:#x} at index {i}");
                    expected_new += is_new as usize;
                }
                prop_assert_eq!(claimed, expected_new);
            }
        }
        prop_assert_eq!(seen.len(), model.len());
        for &fp in &model {
            prop_assert!(seen.contains(fp));
        }
    }

    #[test]
    fn mixed_single_and_batch_paths_agree(
        shards in shard_counts(),
        singles in proptest::collection::vec(fp_any(), 0..60),
        batched in proptest::collection::vec(fp_any(), 0..60),
    ) {
        // Interleave both entry points over overlapping fingerprints; the
        // table must behave as one set regardless of which path admitted
        // a fingerprint first.
        let seen = StripedSeen::new(shards);
        let mut model: HashSet<u128> = HashSet::new();
        let mut si = singles.iter();
        let mut by_shard: Vec<Vec<u128>> = vec![Vec::new(); seen.shard_count()];
        for &fp in &batched {
            by_shard[seen.shard_of(fp)].push(fp);
            if let Some(&s) = si.next() {
                prop_assert_eq!(seen.insert(s), model.insert(canon(s)));
            }
        }
        for (shard, group) in by_shard.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let mut flags = Vec::new();
            seen.insert_batch(shard, group, &mut flags);
            for (i, &fp) in group.iter().enumerate() {
                prop_assert_eq!(flags[i], model.insert(canon(fp)));
            }
        }
        for &s in si {
            prop_assert_eq!(seen.insert(s), model.insert(canon(s)));
        }
        prop_assert_eq!(seen.len(), model.len());
    }
}

proptest! {
    // Fewer, larger cases: push a single stripe far past its initial
    // capacity so the in-lock growth path is exercised under both entry
    // points.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn growth_under_batch_load(base in 1u64..1_000_000) {
        let seen = StripedSeen::new(1);
        let mut model: HashSet<u128> = HashSet::new();
        let fps: Vec<u128> = (0..3000u64)
            .map(|i| ((base.wrapping_mul(i + 1) as u128) << 64) | i as u128)
            .collect();
        for chunk in fps.chunks(257) {
            let mut flags = Vec::new();
            seen.insert_batch(0, chunk, &mut flags);
            for (i, &fp) in chunk.iter().enumerate() {
                prop_assert_eq!(flags[i], model.insert(canon(fp)));
            }
        }
        prop_assert_eq!(seen.len(), model.len());
        for &fp in &fps {
            prop_assert!(seen.contains(fp));
        }
    }
}
