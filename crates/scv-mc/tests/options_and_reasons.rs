//! Contract tests for the public option builders and the typed rejection
//! channel.
//!
//! The builder defaults are load-bearing: the CLI, the fuzz harness, and
//! the experiment battery all construct `VerifyOptions::new()` and adjust
//! only the knobs they care about, so a silently changed default would
//! shift every caller at once. Likewise `RejectReason`'s `Display` text
//! is diffed across versions by log-comparison tooling, so it is pinned
//! here for every `ScErrorKind` variant in both rejection stages.

use scv_checker::{ScError, ScErrorKind};
use scv_mc::{BfsOptions, RejectReason, SearchStrategy, SymmetryMode, VerifyOptions};

/// Every `ScErrorKind` variant, exactly once. A new variant shows up as a
/// non-exhaustive-match compile error in `kind_name`, which forces this
/// list (and therefore the Display pins below) to be extended.
fn all_kinds() -> Vec<ScErrorKind> {
    vec![
        ScErrorKind::CycleClosed,
        ScErrorKind::DanglingEdge,
        ScErrorKind::IdOutOfRange,
        ScErrorKind::UnlabeledNode,
        ScErrorKind::UnlabeledEdge,
        ScErrorKind::TooManyRetained,
        ScErrorKind::ProgramOrder("po-test"),
        ScErrorKind::StOrder("st-test"),
        ScErrorKind::Inheritance("inh-test"),
        ScErrorKind::ForcedUnsatisfied,
        ScErrorKind::BottomUnsatisfied,
    ]
}

fn kind_name(kind: &ScErrorKind) -> &'static str {
    match kind {
        ScErrorKind::CycleClosed => "CycleClosed",
        ScErrorKind::DanglingEdge => "DanglingEdge",
        ScErrorKind::IdOutOfRange => "IdOutOfRange",
        ScErrorKind::UnlabeledNode => "UnlabeledNode",
        ScErrorKind::UnlabeledEdge => "UnlabeledEdge",
        ScErrorKind::TooManyRetained => "TooManyRetained",
        ScErrorKind::ProgramOrder(_) => "ProgramOrder",
        ScErrorKind::StOrder(_) => "StOrder",
        ScErrorKind::Inheritance(_) => "Inheritance",
        ScErrorKind::ForcedUnsatisfied => "ForcedUnsatisfied",
        ScErrorKind::BottomUnsatisfied => "BottomUnsatisfied",
    }
}

#[test]
fn every_kind_appears_exactly_once() {
    let kinds = all_kinds();
    let mut names: Vec<&str> = kinds.iter().map(kind_name).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), kinds.len(), "duplicate kind in all_kinds()");
}

#[test]
fn stream_rejections_display_the_checker_error_verbatim() {
    for kind in all_kinds() {
        let err = ScError {
            position: Some(7),
            kind: kind.clone(),
        };
        let reason = RejectReason::Stream(err.clone());
        assert_eq!(reason.error(), &err);
        let text = reason.to_string();
        assert_eq!(text, err.to_string());
        assert!(
            text.starts_with("rejected at symbol 7: "),
            "{text:?} for {}",
            kind_name(&kind)
        );
        assert!(text.contains(kind_name(&kind)), "{text:?}");
    }
}

#[test]
fn run_end_rejections_get_the_run_end_prefix() {
    for kind in all_kinds() {
        // End-of-string rejections carry no symbol position.
        let err = ScError {
            position: None,
            kind: kind.clone(),
        };
        let reason = RejectReason::RunEnd(err.clone());
        assert_eq!(reason.error(), &err);
        let text = reason.to_string();
        assert_eq!(text, format!("at run end: {err}"));
        assert!(
            text.starts_with("at run end: rejected at end of input: "),
            "{text:?} for {}",
            kind_name(&kind)
        );
        assert!(text.contains(kind_name(&kind)), "{text:?}");
    }
}

#[test]
fn reject_reason_distinguishes_the_stage_not_just_the_error() {
    let err = ScError {
        position: Some(1),
        kind: ScErrorKind::CycleClosed,
    };
    let stream = RejectReason::Stream(err.clone());
    let run_end = RejectReason::RunEnd(err);
    assert_ne!(stream, run_end);
    assert_eq!(stream.error(), run_end.error());
    assert_eq!(stream, stream.clone());
}

#[test]
fn parameterized_kinds_carry_their_rule_text() {
    for (kind, rule) in [
        (ScErrorKind::ProgramOrder("c2-rule"), "c2-rule"),
        (ScErrorKind::StOrder("c3-rule"), "c3-rule"),
        (ScErrorKind::Inheritance("c4-rule"), "c4-rule"),
    ] {
        let reason = RejectReason::Stream(ScError {
            position: Some(0),
            kind,
        });
        assert!(reason.to_string().contains(rule), "{reason}");
    }
}

#[test]
fn bfs_options_defaults() {
    let opts = BfsOptions::new();
    assert_eq!(opts.max_states, 1_000_000);
    assert_eq!(opts.max_depth, usize::MAX);
    assert_eq!(opts.max_states, BfsOptions::default().max_states);
    assert_eq!(opts.max_depth, BfsOptions::default().max_depth);
}

#[test]
fn bfs_options_builders_touch_only_their_field() {
    let opts = BfsOptions::new().max_states(42);
    assert_eq!(opts.max_states, 42);
    assert_eq!(opts.max_depth, usize::MAX);

    let opts = BfsOptions::new().max_depth(9);
    assert_eq!(opts.max_states, 1_000_000);
    assert_eq!(opts.max_depth, 9);
}

#[test]
fn verify_options_defaults() {
    for opts in [VerifyOptions::new(), VerifyOptions::default()] {
        // Sequential by default; the 200k cap keeps an accidental
        // unbounded product search from running away.
        assert_eq!(opts.threads, 1);
        assert_eq!(opts.bfs.max_states, 200_000);
        assert_eq!(opts.bfs.max_depth, usize::MAX);
        assert!(matches!(opts.strategy, SearchStrategy::WorkStealing));
        assert_eq!(opts.strategy, SearchStrategy::default());
        assert_eq!(opts.batch_size, 128);
        assert!(matches!(opts.symmetry, SymmetryMode::Off));
    }
}

#[test]
fn verify_options_builders_touch_only_their_field() {
    let base = VerifyOptions::new();

    let opts = VerifyOptions::new().threads(8);
    assert_eq!(opts.threads, 8);
    assert_eq!(opts.bfs.max_states, base.bfs.max_states);
    assert_eq!(opts.batch_size, base.batch_size);

    let opts = VerifyOptions::new().max_states(777);
    assert_eq!(opts.bfs.max_states, 777);
    assert_eq!(opts.bfs.max_depth, usize::MAX);
    assert_eq!(opts.threads, 1);

    let opts = VerifyOptions::new().max_depth(5);
    assert_eq!(opts.bfs.max_depth, 5);
    assert_eq!(opts.bfs.max_states, base.bfs.max_states);

    let opts = VerifyOptions::new().bfs(BfsOptions::new());
    assert_eq!(opts.bfs.max_states, 1_000_000);
    assert_eq!(opts.threads, 1);

    let opts = VerifyOptions::new().strategy(SearchStrategy::LevelSync);
    assert!(matches!(opts.strategy, SearchStrategy::LevelSync));
    assert_eq!(opts.threads, 1);

    let opts = VerifyOptions::new().batch_size(64);
    assert_eq!(opts.batch_size, 64);
    assert_eq!(opts.bfs.max_states, base.bfs.max_states);

    let opts = VerifyOptions::new().symmetry(SymmetryMode::Full);
    assert!(matches!(opts.symmetry, SymmetryMode::Full));
    assert_eq!(opts.threads, 1);
}

#[test]
fn builders_chain_in_any_order() {
    let a = VerifyOptions::new()
        .threads(4)
        .max_states(10_000)
        .strategy(SearchStrategy::LevelSync)
        .symmetry(SymmetryMode::Proc)
        .batch_size(32);
    let b = VerifyOptions::new()
        .batch_size(32)
        .symmetry(SymmetryMode::Proc)
        .strategy(SearchStrategy::LevelSync)
        .max_states(10_000)
        .threads(4);
    assert_eq!(a.threads, b.threads);
    assert_eq!(a.bfs.max_states, b.bfs.max_states);
    assert_eq!(a.strategy, b.strategy);
    assert_eq!(a.batch_size, b.batch_size);
    assert!(matches!(b.symmetry, SymmetryMode::Proc));
}
