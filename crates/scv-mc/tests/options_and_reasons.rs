//! Contract tests for the public option builders and the typed rejection
//! channel.
//!
//! The builder defaults are load-bearing: the CLI, the fuzz harness, and
//! the experiment battery all construct `VerifyOptions::new()` and adjust
//! only the knobs they care about, so a silently changed default would
//! shift every caller at once. Likewise `RejectReason`'s `Display` text
//! is diffed across versions by log-comparison tooling, so it is pinned
//! here for every `ScErrorKind` variant in both rejection stages.

use scv_checker::{ScError, ScErrorKind};
use scv_mc::{
    BfsOptions, Budget, CancelToken, Coverage, InterruptReason, RejectReason, SearchStrategy,
    SymmetryMode, VerifyOptions,
};
use std::time::Duration;

/// Every `ScErrorKind` variant, exactly once. A new variant shows up as a
/// non-exhaustive-match compile error in `kind_name`, which forces this
/// list (and therefore the Display pins below) to be extended.
fn all_kinds() -> Vec<ScErrorKind> {
    vec![
        ScErrorKind::CycleClosed,
        ScErrorKind::DanglingEdge,
        ScErrorKind::IdOutOfRange,
        ScErrorKind::UnlabeledNode,
        ScErrorKind::UnlabeledEdge,
        ScErrorKind::TooManyRetained,
        ScErrorKind::ProgramOrder("po-test"),
        ScErrorKind::StOrder("st-test"),
        ScErrorKind::Inheritance("inh-test"),
        ScErrorKind::ForcedUnsatisfied,
        ScErrorKind::BottomUnsatisfied,
    ]
}

fn kind_name(kind: &ScErrorKind) -> &'static str {
    match kind {
        ScErrorKind::CycleClosed => "CycleClosed",
        ScErrorKind::DanglingEdge => "DanglingEdge",
        ScErrorKind::IdOutOfRange => "IdOutOfRange",
        ScErrorKind::UnlabeledNode => "UnlabeledNode",
        ScErrorKind::UnlabeledEdge => "UnlabeledEdge",
        ScErrorKind::TooManyRetained => "TooManyRetained",
        ScErrorKind::ProgramOrder(_) => "ProgramOrder",
        ScErrorKind::StOrder(_) => "StOrder",
        ScErrorKind::Inheritance(_) => "Inheritance",
        ScErrorKind::ForcedUnsatisfied => "ForcedUnsatisfied",
        ScErrorKind::BottomUnsatisfied => "BottomUnsatisfied",
    }
}

#[test]
fn every_kind_appears_exactly_once() {
    let kinds = all_kinds();
    let mut names: Vec<&str> = kinds.iter().map(kind_name).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), kinds.len(), "duplicate kind in all_kinds()");
}

#[test]
fn stream_rejections_display_the_checker_error_verbatim() {
    for kind in all_kinds() {
        let err = ScError {
            position: Some(7),
            kind: kind.clone(),
        };
        let reason = RejectReason::Stream(err.clone());
        assert_eq!(reason.error(), &err);
        let text = reason.to_string();
        assert_eq!(text, err.to_string());
        assert!(
            text.starts_with("rejected at symbol 7: "),
            "{text:?} for {}",
            kind_name(&kind)
        );
        assert!(text.contains(kind_name(&kind)), "{text:?}");
    }
}

#[test]
fn run_end_rejections_get_the_run_end_prefix() {
    for kind in all_kinds() {
        // End-of-string rejections carry no symbol position.
        let err = ScError {
            position: None,
            kind: kind.clone(),
        };
        let reason = RejectReason::RunEnd(err.clone());
        assert_eq!(reason.error(), &err);
        let text = reason.to_string();
        assert_eq!(text, format!("at run end: {err}"));
        assert!(
            text.starts_with("at run end: rejected at end of input: "),
            "{text:?} for {}",
            kind_name(&kind)
        );
        assert!(text.contains(kind_name(&kind)), "{text:?}");
    }
}

#[test]
fn reject_reason_distinguishes_the_stage_not_just_the_error() {
    let err = ScError {
        position: Some(1),
        kind: ScErrorKind::CycleClosed,
    };
    let stream = RejectReason::Stream(err.clone());
    let run_end = RejectReason::RunEnd(err);
    assert_ne!(stream, run_end);
    assert_eq!(stream.error(), run_end.error());
    assert_eq!(stream, stream.clone());
}

#[test]
fn parameterized_kinds_carry_their_rule_text() {
    for (kind, rule) in [
        (ScErrorKind::ProgramOrder("c2-rule"), "c2-rule"),
        (ScErrorKind::StOrder("c3-rule"), "c3-rule"),
        (ScErrorKind::Inheritance("c4-rule"), "c4-rule"),
    ] {
        let reason = RejectReason::Stream(ScError {
            position: Some(0),
            kind,
        });
        assert!(reason.to_string().contains(rule), "{reason}");
    }
}

#[test]
fn bfs_options_defaults() {
    let opts = BfsOptions::new();
    assert_eq!(opts.max_states, 1_000_000);
    assert_eq!(opts.max_depth, usize::MAX);
    assert_eq!(opts.max_states, BfsOptions::default().max_states);
    assert_eq!(opts.max_depth, BfsOptions::default().max_depth);
}

#[test]
fn bfs_options_builders_touch_only_their_field() {
    let opts = BfsOptions::new().max_states(42);
    assert_eq!(opts.max_states, 42);
    assert_eq!(opts.max_depth, usize::MAX);

    let opts = BfsOptions::new().max_depth(9);
    assert_eq!(opts.max_states, 1_000_000);
    assert_eq!(opts.max_depth, 9);
}

#[test]
fn verify_options_defaults() {
    for opts in [VerifyOptions::new(), VerifyOptions::default()] {
        // Sequential by default; the 200k cap keeps an accidental
        // unbounded product search from running away.
        assert_eq!(opts.threads, 1);
        assert_eq!(opts.bfs.max_states, 200_000);
        assert_eq!(opts.bfs.max_depth, usize::MAX);
        assert!(matches!(opts.strategy, SearchStrategy::WorkStealing));
        assert_eq!(opts.strategy, SearchStrategy::default());
        assert_eq!(opts.batch_size, 128);
        assert!(matches!(opts.symmetry, SymmetryMode::Off));
        // Run control defaults: no budget, fresh token, no checkpointing.
        assert!(opts.budget.is_unlimited());
        assert!(!opts.cancel.is_cancelled());
        assert_eq!(opts.checkpoint_every, None);
        assert_eq!(opts.checkpoint_path, None);
        assert_eq!(opts.resume_from, None);
    }
}

#[test]
fn run_control_builders_touch_only_their_field() {
    let base = VerifyOptions::new();

    let opts = VerifyOptions::new().budget(Budget::unlimited().states(5_000));
    assert_eq!(opts.budget.max_states, Some(5_000));
    assert_eq!(opts.budget.deadline, None);
    assert_eq!(opts.bfs.max_states, base.bfs.max_states);

    // `timeout` composes with an existing budget instead of replacing it.
    let opts = VerifyOptions::new()
        .budget(Budget::unlimited().states(5_000))
        .timeout(Duration::from_secs(9));
    assert_eq!(opts.budget.max_states, Some(5_000));
    assert_eq!(opts.budget.deadline, Some(Duration::from_secs(9)));

    let token = CancelToken::new();
    let opts = VerifyOptions::new().cancel_token(token.clone());
    token.cancel();
    assert!(
        opts.cancel.is_cancelled(),
        "token must be shared, not copied"
    );

    let opts = VerifyOptions::new()
        .checkpoint_every(Duration::from_secs(30))
        .checkpoint_to("/tmp/a.ckpt")
        .resume_from("/tmp/b.ckpt");
    assert_eq!(opts.checkpoint_every, Some(Duration::from_secs(30)));
    assert_eq!(
        opts.checkpoint_path.as_deref(),
        Some("/tmp/a.ckpt".as_ref())
    );
    assert_eq!(opts.resume_from.as_deref(), Some("/tmp/b.ckpt".as_ref()));
    assert_eq!(opts.threads, base.threads);
}

#[test]
fn budget_builders_and_display_pins() {
    let b = Budget::unlimited()
        .deadline(Duration::from_secs(2))
        .states(123)
        .memory_bytes(1 << 20);
    assert_eq!(b.deadline, Some(Duration::from_secs(2)));
    assert_eq!(b.max_states, Some(123));
    assert_eq!(b.max_rss_bytes, Some(1 << 20));
    assert!(Budget::default().is_unlimited());

    // Interrupt reasons and coverage render stably (the CLI prints both).
    assert_eq!(InterruptReason::Cancelled.to_string(), "cancelled");
    assert_eq!(InterruptReason::Deadline.to_string(), "wall-clock deadline");
    assert_eq!(InterruptReason::StateBudget.to_string(), "state budget");
    assert_eq!(InterruptReason::MemoryBudget.to_string(), "memory budget");
    let cov = Coverage {
        explored: 10,
        frontier: 2,
        depth: 3,
    };
    assert_eq!(
        cov.to_string(),
        "10 states explored, 2 in frontier, depth 3"
    );
}

#[test]
fn verify_options_builders_touch_only_their_field() {
    let base = VerifyOptions::new();

    let opts = VerifyOptions::new().threads(8);
    assert_eq!(opts.threads, 8);
    assert_eq!(opts.bfs.max_states, base.bfs.max_states);
    assert_eq!(opts.batch_size, base.batch_size);

    let opts = VerifyOptions::new().max_states(777);
    assert_eq!(opts.bfs.max_states, 777);
    assert_eq!(opts.bfs.max_depth, usize::MAX);
    assert_eq!(opts.threads, 1);

    let opts = VerifyOptions::new().max_depth(5);
    assert_eq!(opts.bfs.max_depth, 5);
    assert_eq!(opts.bfs.max_states, base.bfs.max_states);

    let opts = VerifyOptions::new().bfs(BfsOptions::new());
    assert_eq!(opts.bfs.max_states, 1_000_000);
    assert_eq!(opts.threads, 1);

    let opts = VerifyOptions::new().strategy(SearchStrategy::LevelSync);
    assert!(matches!(opts.strategy, SearchStrategy::LevelSync));
    assert_eq!(opts.threads, 1);

    let opts = VerifyOptions::new().batch_size(64);
    assert_eq!(opts.batch_size, 64);
    assert_eq!(opts.bfs.max_states, base.bfs.max_states);

    let opts = VerifyOptions::new().symmetry(SymmetryMode::Full);
    assert!(matches!(opts.symmetry, SymmetryMode::Full));
    assert_eq!(opts.threads, 1);
}

#[test]
fn builders_chain_in_any_order() {
    let a = VerifyOptions::new()
        .threads(4)
        .max_states(10_000)
        .strategy(SearchStrategy::LevelSync)
        .symmetry(SymmetryMode::Proc)
        .batch_size(32);
    let b = VerifyOptions::new()
        .batch_size(32)
        .symmetry(SymmetryMode::Proc)
        .strategy(SearchStrategy::LevelSync)
        .max_states(10_000)
        .threads(4);
    assert_eq!(a.threads, b.threads);
    assert_eq!(a.bfs.max_states, b.bfs.max_states);
    assert_eq!(a.strategy, b.strategy);
    assert_eq!(a.batch_size, b.batch_size);
    assert!(matches!(b.symmetry, SymmetryMode::Proc));
}
