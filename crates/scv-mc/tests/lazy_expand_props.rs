//! Property battery for the admission-gated lazy expansion path.
//!
//! The gate fingerprints a candidate through `FpParts` (protocol
//! component iff unsealed, then the canonical encoding) *before* the
//! product state exists, and under full symmetry it may take the
//! fingerprint from the per-worker orbit-seal cache instead of
//! re-enumerating the group. Both shortcuts must be invisible: the
//! fingerprint the admission probe saw has to equal the fingerprint of
//! the state the engine then materializes and stores, and a cached
//! orbit-minimum fingerprint has to equal the one a fresh group
//! enumeration would produce.
//!
//! Neither object is directly observable from outside the crate, but a
//! single wrong fingerprint is: it either drops a reachable state
//! (probe says "seen" for a state that isn't) or double-counts one
//! (probe admits a duplicate), so the lazy and eager paths diverge in
//! `(verdict, states, transitions)` on a deterministic search. These
//! properties drive randomly parameterized zoo protocols through both
//! paths and require exact agreement.
//!
//! The vendored proptest is deterministic (cases seeded from the test
//! name), so failures reproduce exactly.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use scv_mc::{verify_protocol, Outcome, SymmetryMode, VerifyOptions};
use scv_protocol::{DirectoryProtocol, LazyCaching, MesiProtocol, MsiProtocol, SerialMemory};
use scv_types::Params;

fn verdict(out: &Outcome) -> &'static str {
    match out {
        Outcome::Verified { .. } => "Verified",
        Outcome::Violation { .. } => "Violation",
        Outcome::Bounded { .. } => "Bounded",
        // No budget/cancel is configured here, so this can't occur.
        Outcome::Inconclusive { .. } => "Inconclusive",
    }
}

/// Run one configuration through both expansion paths and demand exact
/// sequential agreement.
fn assert_parity(
    proto: u8,
    p: u8,
    b: u8,
    v: u8,
    sym: SymmetryMode,
    cap: usize,
) -> Result<(), TestCaseError> {
    let params = Params::new(p, b, v);
    let run = |lazy: bool| {
        let opts = VerifyOptions::new()
            .max_states(cap)
            .symmetry(sym)
            .lazy(lazy);
        match proto {
            0 => verify_protocol(SerialMemory::new(params), opts),
            1 => verify_protocol(MsiProtocol::new(params), opts),
            2 => verify_protocol(MesiProtocol::new(params), opts),
            3 => verify_protocol(DirectoryProtocol::new(params), opts),
            _ => verify_protocol(LazyCaching::new(params, 1, 1), opts),
        }
    };
    let eager = run(false);
    let lazy = run(true);
    prop_assert_eq!(
        verdict(&eager),
        verdict(&lazy),
        "verdict diverged (proto {} {:?} {:?} cap {})",
        proto,
        params,
        sym,
        cap
    );
    prop_assert_eq!(
        (eager.stats().states, eager.stats().transitions),
        (lazy.stats().states, lazy.stats().transitions),
        "counts diverged (proto {} {:?} {:?} cap {})",
        proto,
        params,
        sym,
        cap
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random zoo configurations across every symmetry mode: the lazy
    /// path's pre-materialization fingerprint must never change what the
    /// search explores.
    #[test]
    fn lazy_eager_parity_random_configs(
        proto in 0u8..5,
        p in 1u8..=2,
        b in 1u8..=2,
        v in 1u8..=2,
        sym_pick in 0u8..3,
        cap in 300usize..1500,
    ) {
        let sym = match sym_pick {
            0 => SymmetryMode::Off,
            1 => SymmetryMode::Proc,
            _ => SymmetryMode::Full,
        };
        assert_parity(proto, p, b, v, sym, cap)?;
    }

    /// Full-symmetry configurations with a non-trivial group (p = 2 and
    /// v = 2 gives order >= 4), where the orbit-seal cache engages: a
    /// cached fingerprint that disagreed with a fresh group enumeration
    /// would drop or duplicate an orbit and break the count equality.
    #[test]
    fn seal_cache_never_changes_a_fingerprint(
        proto in 0u8..5,
        b in 1u8..=2,
        cap in 300usize..1500,
    ) {
        assert_parity(proto, 2, b, 2, SymmetryMode::Full, cap)?;
    }
}
