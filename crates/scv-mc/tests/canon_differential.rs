//! Differential battery for the sort-based symmetry canonicalizer.
//!
//! [`SymmetryMode::Full`] computes orbit minima via sort-based refinement,
//! residual-subgroup enumeration, and observer-section key extensions;
//! [`SymmetryMode::FullEnum`] is the brute-force reference that walks the
//! entire capped group. The two must be *byte-identical* on every state —
//! fingerprints, canonical state counts, and checkpoints all hash through
//! the encoding, so a single diverging word silently corrupts the
//! quotient. These tests drive both canonicalizers over reachable states
//! of every zoo protocol (deterministic BFS prefixes and proptest-driven
//! random walks) and demand exact equality via
//! [`VerifySystem::canonical_encoding_of`], which bypasses every seal
//! cache.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use scv_mc::{SymmetryMode, TransitionSystem, VerifySystem};
use scv_protocol::{
    DirectoryProtocol, LazyCaching, MesiProtocol, MsiProtocol, SerialMemory, Symmetry,
};
use scv_types::Params;

/// BFS the `Full` system to a bounded frontier and check every reached
/// state's canonical encoding against the `FullEnum` reference.
fn assert_agreement<P>(mk: impl Fn() -> P, cap: usize, label: &str)
where
    P: Symmetry,
    P::State: Clone + std::hash::Hash + Eq + Send + 'static,
{
    let fast = VerifySystem::with_symmetry(mk(), SymmetryMode::Full);
    let reference = VerifySystem::with_symmetry(mk(), SymmetryMode::FullEnum);
    let mut frontier = vec![fast.initial()];
    let mut seen = std::collections::HashSet::new();
    let mut checked = 0usize;
    while let Some(s) = frontier.pop() {
        let enc_fast = fast.canonical_encoding_of(&s);
        let enc_ref = reference.canonical_encoding_of(&s);
        assert_eq!(
            enc_fast, enc_ref,
            "canonical encodings diverged on {label} after {checked} states"
        );
        checked += 1;
        if checked >= cap {
            break;
        }
        if seen.insert(enc_fast) {
            for (_, next) in fast.successors(&s) {
                frontier.push(next);
            }
        }
    }
    assert!(checked > 1, "walk of {label} explored nothing");
}

#[test]
fn fast_matches_full_enum_on_zoo_bfs_prefixes() {
    // Small params keep the FullEnum reference affordable while still
    // exercising multi-dimension groups (procs x blocks x values).
    let p = Params::new(3, 2, 2);
    assert_agreement(|| SerialMemory::new(p), 150, "serial");
    assert_agreement(|| MsiProtocol::new(p), 150, "msi");
    assert_agreement(|| MesiProtocol::new(p), 150, "mesi");
    assert_agreement(|| DirectoryProtocol::new(p), 150, "directory");
    assert_agreement(|| LazyCaching::new(p, 1, 1), 150, "lazy");
}

#[test]
fn fast_matches_full_enum_under_group_cap_degradation() {
    // p = 6 overflows GROUP_CAP, so the group drops to a single dimension
    // (procs, 720 elements) — the capped plan must still agree with the
    // reference walking the same capped group.
    let p = Params::new(6, 2, 2);
    assert_agreement(|| MsiProtocol::new(p), 60, "msi p=6 (capped group)");
    assert_agreement(|| SerialMemory::new(p), 60, "serial p=6 (capped group)");
}

/// Two *distinct* concrete states in the same orbit must canonicalize to
/// byte-identical encodings under `Full` — this is the property that lets
/// the model checker merge them. Pinned on MSI: walk the unquotiented
/// system, bucket states by their `Full` encoding, and demand a bucket
/// holding at least two states whose identity encodings differ.
#[test]
fn same_orbit_states_encode_identically() {
    let params = Params::new(3, 1, 2);
    let plain = VerifySystem::with_symmetry(MsiProtocol::new(params), SymmetryMode::Off);
    let full = VerifySystem::with_symmetry(MsiProtocol::new(params), SymmetryMode::Full);
    let reference = VerifySystem::with_symmetry(MsiProtocol::new(params), SymmetryMode::FullEnum);
    let mut frontier = std::collections::VecDeque::from([plain.initial()]);
    let mut buckets: std::collections::HashMap<Vec<u64>, Vec<Vec<u64>>> =
        std::collections::HashMap::new();
    let mut visited = std::collections::HashSet::new();
    let mut found = false;
    let protocol = MsiProtocol::new(params);
    // Breadth-first: symmetric siblings (p0 acted vs p1 acted) sit at the
    // same depth, so a pair surfaces within the first few levels.
    while let Some(s) = frontier.pop_front() {
        // Identity key distinguishing concrete states: the injective
        // protocol encoding plus the unquotiented observer/checker
        // encoding (the Off-mode seal alone omits the protocol part — it
        // hashes it natively alongside).
        let mut identity = Vec::new();
        protocol.encode_state(&s.proto, &mut identity);
        identity.extend(plain.canonical_encoding_of(&s));
        if !visited.insert(identity.clone()) || visited.len() > 400 {
            continue;
        }
        let canon = full.canonical_encoding_of(&s);
        assert_eq!(
            canon,
            reference.canonical_encoding_of(&s),
            "fast/reference disagreement inside the orbit probe"
        );
        let bucket = buckets.entry(canon).or_default();
        if !bucket.contains(&identity) {
            bucket.push(identity);
            if bucket.len() >= 2 {
                found = true;
                break;
            }
        }
        for (_, next) in plain.successors(&s) {
            frontier.push_back(next);
        }
    }
    assert!(
        found,
        "no two distinct same-orbit states found in 400 MSI states — \
         the quotient would be vacuous"
    );
}

/// One random walk through the `Full` system, checking the reference at
/// every step. Steps are chosen by index from the successor list, so a
/// failing case shrinks to a minimal reproducing path.
fn assert_walk_agreement(proto: u8, p: u8, b: u8, v: u8, path: &[u8]) -> Result<(), TestCaseError> {
    let params = Params::new(p, b, v);
    macro_rules! drive {
        ($mk:expr) => {{
            let fast = VerifySystem::with_symmetry($mk, SymmetryMode::Full);
            let reference = VerifySystem::with_symmetry($mk, SymmetryMode::FullEnum);
            let mut s = fast.initial();
            for &pick in path {
                let enc_fast = fast.canonical_encoding_of(&s);
                let enc_ref = reference.canonical_encoding_of(&s);
                prop_assert_eq!(
                    enc_fast,
                    enc_ref,
                    "diverged (proto {} {:?} path {:?})",
                    proto,
                    params,
                    path
                );
                let succ = fast.successors(&s);
                if succ.is_empty() {
                    break;
                }
                s = succ[pick as usize % succ.len()].1.clone();
            }
        }};
    }
    match proto {
        0 => drive!(SerialMemory::new(params)),
        1 => drive!(MsiProtocol::new(params)),
        2 => drive!(MesiProtocol::new(params)),
        3 => drive!(DirectoryProtocol::new(params)),
        _ => drive!(LazyCaching::new(params, 1, 1)),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random states of random zoo configurations: the sort-based
    /// canonicalizer and the brute-force reference must agree everywhere,
    /// not just on BFS prefixes (deep states exercise the observer key
    /// extension's heirs/owner gates).
    #[test]
    fn canonical_encodings_agree_on_random_states(
        proto in 0u8..5,
        p in 1u8..=3,
        b in 1u8..=2,
        v in 1u8..=2,
        path in proptest::collection::vec(0u8..=255, 1..24),
    ) {
        assert_walk_agreement(proto, p, b, v, &path)?;
    }
}
