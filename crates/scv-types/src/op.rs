//! LD/ST operations — the action set `A = ST(*,*,*) ∪ LD(*,*,*)` of §2.1.

use crate::ids::{BlockId, Params, ProcId, Value};
use std::fmt;

/// Whether an operation is a load or a store.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum OpKind {
    /// `LD(P,B,V)`: processor `P` loads value `V` from block `B`.
    Load,
    /// `ST(P,B,V)`: processor `P` stores value `V` to block `B`.
    Store,
}

/// A memory operation `LD(P,B,V)` or `ST(P,B,V)`.
///
/// The value recorded on a load is the value the load *returned*; the trace
/// therefore fully determines whether a serial reordering exists.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Op {
    /// Load or store.
    pub kind: OpKind,
    /// The processor that executed the operation.
    pub proc: ProcId,
    /// The memory block operated on.
    pub block: BlockId,
    /// The value stored, or the value the load returned (possibly `⊥`).
    pub value: Value,
}

impl Op {
    /// Construct a load operation `LD(P,B,V)`.
    #[inline]
    pub fn load(proc: ProcId, block: BlockId, value: Value) -> Self {
        Op {
            kind: OpKind::Load,
            proc,
            block,
            value,
        }
    }

    /// Construct a store operation `ST(P,B,V)`.
    ///
    /// Stores never store `⊥`: only the memory system's initial state holds
    /// `⊥` (§2.1 defines the store actions over values `1..=v`).
    #[inline]
    pub fn store(proc: ProcId, block: BlockId, value: Value) -> Self {
        debug_assert!(!value.is_bottom(), "ST operations cannot store ⊥");
        Op {
            kind: OpKind::Store,
            proc,
            block,
            value,
        }
    }

    /// Is this a load?
    #[inline]
    pub fn is_load(&self) -> bool {
        self.kind == OpKind::Load
    }

    /// Is this a store?
    #[inline]
    pub fn is_store(&self) -> bool {
        self.kind == OpKind::Store
    }

    /// Does the operation fall within the given parameter bounds?
    pub fn in_bounds(&self, params: &Params) -> bool {
        self.proc.0 >= 1
            && self.proc.0 <= params.p
            && self.block.0 >= 1
            && self.block.0 <= params.b
            && self.value.0 <= params.v
            && (self.is_load() || !self.value.is_bottom())
    }

    /// A dense integer encoding of the operation, suitable as an automaton
    /// alphabet symbol. Loads additionally admit the value `⊥`, hence the
    /// `v + 1` value alphabet for loads.
    pub fn encode(&self, params: &Params) -> u32 {
        let p = self.proc.idx() as u32;
        let b = self.block.idx() as u32;
        let v = self.value.0 as u32; // 0 = ⊥
        let kind = match self.kind {
            OpKind::Load => 0,
            OpKind::Store => 1,
        };
        ((kind * params.p as u32 + p) * params.b as u32 + b) * (params.v as u32 + 1) + v
    }

    /// Total number of distinct encodings under [`Op::encode`].
    pub fn alphabet_size(params: &Params) -> u32 {
        2 * params.p as u32 * params.b as u32 * (params.v as u32 + 1)
    }

    /// Inverse of [`Op::encode`].
    pub fn decode(code: u32, params: &Params) -> Op {
        let vs = params.v as u32 + 1;
        let v = code % vs;
        let rest = code / vs;
        let b = rest % params.b as u32;
        let rest = rest / params.b as u32;
        let p = rest % params.p as u32;
        let kind = rest / params.p as u32;
        let kind = if kind == 0 {
            OpKind::Load
        } else {
            OpKind::Store
        };
        Op {
            kind,
            proc: ProcId::from_idx(p as usize),
            block: BlockId::from_idx(b as usize),
            value: Value(v as u8),
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            OpKind::Load => "LD",
            OpKind::Store => "ST",
        };
        write!(f, "{}({},{},{})", k, self.proc, self.block, self.value)
    }
}

impl fmt::Debug for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params::new(3, 2, 4)
    }

    #[test]
    fn display_matches_paper() {
        let op = Op::store(ProcId(1), BlockId(2), Value(3));
        assert_eq!(op.to_string(), "ST(P1,B2,3)");
        let op = Op::load(ProcId(2), BlockId(1), Value::BOTTOM);
        assert_eq!(op.to_string(), "LD(P2,B1,⊥)");
    }

    #[test]
    fn encode_decode_roundtrip_exhaustive() {
        let params = params();
        let mut seen = std::collections::HashSet::new();
        for code in 0..Op::alphabet_size(&params) {
            let op = Op::decode(code, &params);
            assert_eq!(op.encode(&params), code);
            assert!(seen.insert(op), "encoding must be injective");
        }
    }

    #[test]
    fn encode_in_alphabet_range() {
        let params = params();
        for p in params.procs() {
            for b in params.blocks() {
                for v in params.values() {
                    for op in [Op::load(p, b, v), Op::store(p, b, v)] {
                        assert!(op.encode(&params) < Op::alphabet_size(&params));
                        assert!(op.in_bounds(&params));
                    }
                }
                let ld_bot = Op::load(p, b, Value::BOTTOM);
                assert!(ld_bot.encode(&params) < Op::alphabet_size(&params));
                assert!(ld_bot.in_bounds(&params));
            }
        }
    }

    #[test]
    fn out_of_bounds_detected() {
        let params = params();
        assert!(!Op::load(ProcId(4), BlockId(1), Value(1)).in_bounds(&params));
        assert!(!Op::load(ProcId(1), BlockId(3), Value(1)).in_bounds(&params));
        assert!(!Op::load(ProcId(1), BlockId(1), Value(5)).in_bounds(&params));
        // A store of ⊥ is never a legal action.
        let st_bot = Op {
            kind: OpKind::Store,
            proc: ProcId(1),
            block: BlockId(1),
            value: Value::BOTTOM,
        };
        assert!(!st_bot.in_bounds(&params));
    }
}
