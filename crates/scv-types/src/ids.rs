//! Identifiers for the protocol parameters `p`, `b`, `v` of section 2.1.
//!
//! The paper indexes processors, blocks, and values from 1; we do the same so
//! that printed operations match the paper's notation (`ST(P1,B2,1)`), and so
//! that [`Value::BOTTOM`] (the initial value `⊥`) can be represented as 0.

use std::fmt;

/// A processor identifier `P` with `1 <= P <= p`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u8);

/// A memory-block identifier `B` with `1 <= B <= b`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u8);

/// A data value `V` with `1 <= V <= v`, or [`Value::BOTTOM`] (`⊥`, encoded
/// as 0), the initial value of every block.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Value(pub u8);

impl ProcId {
    /// Zero-based index, for array addressing.
    #[inline]
    pub fn idx(self) -> usize {
        debug_assert!(self.0 >= 1, "processor ids are 1-based");
        (self.0 - 1) as usize
    }

    /// Construct from a zero-based index.
    #[inline]
    pub fn from_idx(i: usize) -> Self {
        ProcId(i as u8 + 1)
    }
}

impl BlockId {
    /// Zero-based index, for array addressing.
    #[inline]
    pub fn idx(self) -> usize {
        debug_assert!(self.0 >= 1, "block ids are 1-based");
        (self.0 - 1) as usize
    }

    /// Construct from a zero-based index.
    #[inline]
    pub fn from_idx(i: usize) -> Self {
        BlockId(i as u8 + 1)
    }
}

impl Value {
    /// The initial value `⊥` of every memory block.
    pub const BOTTOM: Value = Value(0);

    /// Is this the initial value `⊥`?
    #[inline]
    pub fn is_bottom(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_bottom() {
            write!(f, "⊥")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// The size parameters `(p, b, v)` of a protocol (section 2.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Params {
    /// Number of processors.
    pub p: u8,
    /// Number of memory blocks.
    pub b: u8,
    /// Number of distinct (non-`⊥`) data values per block.
    pub v: u8,
}

impl Params {
    /// Construct parameters; all of `p`, `b`, `v` must be at least 1.
    pub fn new(p: u8, b: u8, v: u8) -> Self {
        assert!(p >= 1 && b >= 1 && v >= 1, "params must be >= 1");
        Params { p, b, v }
    }

    /// Iterator over all processor ids `P1..=Pp`.
    pub fn procs(&self) -> impl Iterator<Item = ProcId> {
        (1..=self.p).map(ProcId)
    }

    /// Iterator over all block ids `B1..=Bb`.
    pub fn blocks(&self) -> impl Iterator<Item = BlockId> {
        (1..=self.b).map(BlockId)
    }

    /// Iterator over all storable (non-`⊥`) values `1..=v`.
    pub fn values(&self) -> impl Iterator<Item = Value> {
        (1..=self.v).map(Value)
    }

    /// `ceil(log2(n))` as used by the paper's size bounds (`lg` in §4.4);
    /// `lg(1) = 0`.
    pub fn lg(n: u64) -> u32 {
        if n <= 1 {
            0
        } else {
            64 - (n - 1).leading_zeros()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_based_index_roundtrip() {
        for i in 0..16 {
            assert_eq!(ProcId::from_idx(i).idx(), i);
            assert_eq!(BlockId::from_idx(i).idx(), i);
        }
    }

    #[test]
    fn bottom_is_zero_and_displays_as_bottom() {
        assert!(Value::BOTTOM.is_bottom());
        assert!(!Value(1).is_bottom());
        assert_eq!(Value::BOTTOM.to_string(), "⊥");
        assert_eq!(Value(3).to_string(), "3");
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(ProcId(1).to_string(), "P1");
        assert_eq!(BlockId(2).to_string(), "B2");
    }

    #[test]
    fn params_iterators_cover_ranges() {
        let p = Params::new(3, 2, 4);
        assert_eq!(p.procs().count(), 3);
        assert_eq!(p.blocks().count(), 2);
        assert_eq!(p.values().count(), 4);
        assert_eq!(p.procs().next(), Some(ProcId(1)));
        assert_eq!(p.values().last(), Some(Value(4)));
    }

    #[test]
    fn lg_is_ceiling_log2() {
        assert_eq!(Params::lg(1), 0);
        assert_eq!(Params::lg(2), 1);
        assert_eq!(Params::lg(3), 2);
        assert_eq!(Params::lg(4), 2);
        assert_eq!(Params::lg(5), 3);
        assert_eq!(Params::lg(8), 3);
        assert_eq!(Params::lg(9), 4);
    }

    #[test]
    #[should_panic(expected = "params must be >= 1")]
    fn zero_params_rejected() {
        let _ = Params::new(0, 1, 1);
    }
}
