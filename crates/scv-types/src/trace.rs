//! Protocol traces and the serial-trace predicate of §2.2.

use crate::ids::{BlockId, Params, ProcId, Value};
use crate::op::Op;
use std::fmt;
use std::ops::Index;

/// A protocol trace: the subsequence of LD/ST actions of a protocol run,
/// in the order they occurred (§2.1).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Trace(Vec<Op>);

impl Trace {
    /// The empty trace.
    pub fn new() -> Self {
        Trace(Vec::new())
    }

    /// Build a trace from a sequence of operations.
    pub fn from_ops(ops: impl IntoIterator<Item = Op>) -> Self {
        Trace(ops.into_iter().collect())
    }

    /// Append an operation.
    pub fn push(&mut self, op: Op) {
        self.0.push(op);
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is the trace empty?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The operations as a slice.
    pub fn ops(&self) -> &[Op] {
        &self.0
    }

    /// Iterate over the operations.
    pub fn iter(&self) -> std::slice::Iter<'_, Op> {
        self.0.iter()
    }

    /// Indices (0-based) of the operations issued by processor `p`,
    /// in trace order — the processor's *program order*.
    pub fn program_order(&self, p: ProcId) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.0[i].proc == p).collect()
    }

    /// Indices (0-based) of the ST operations to block `b`, in trace order.
    pub fn stores_to(&self, b: BlockId) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.0[i].is_store() && self.0[i].block == b)
            .collect()
    }

    /// The serial-trace predicate of §2.2: every `LD(*,B,V)` returns the
    /// value of the most recent prior `ST(*,B,*)`, or `⊥` if there is none.
    pub fn is_serial(&self) -> bool {
        // last[b] = value of the most recent store to block id b+1, if any.
        let mut last: Vec<(BlockId, Value)> = Vec::new();
        for op in &self.0 {
            let cur = last.iter().find(|(b, _)| *b == op.block).map(|(_, v)| *v);
            if op.is_store() {
                match last.iter_mut().find(|(b, _)| *b == op.block) {
                    Some(entry) => entry.1 = op.value,
                    None => last.push((op.block, op.value)),
                }
            } else {
                let expect = cur.unwrap_or(Value::BOTTOM);
                if op.value != expect {
                    return false;
                }
            }
        }
        true
    }

    /// Do all operations fall within the given parameter bounds?
    pub fn in_bounds(&self, params: &Params) -> bool {
        self.0.iter().all(|op| op.in_bounds(params))
    }

    /// The smallest parameters under which every operation is in bounds.
    pub fn min_params(&self) -> Params {
        let mut p = 1u8;
        let mut b = 1u8;
        let mut v = 1u8;
        for op in &self.0 {
            p = p.max(op.proc.0);
            b = b.max(op.block.0);
            v = v.max(op.value.0);
        }
        Params::new(p, b, v)
    }
}

impl Index<usize> for Trace {
    type Output = Op;
    fn index(&self, i: usize) -> &Op {
        &self.0[i]
    }
}

impl FromIterator<Op> for Trace {
    fn from_iter<T: IntoIterator<Item = Op>>(iter: T) -> Self {
        Trace(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Op;
    type IntoIter = std::slice::Iter<'a, Op>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for op in &self.0 {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{op}")?;
            first = false;
        }
        Ok(())
    }
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{self}]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u8) -> ProcId {
        ProcId(i)
    }
    fn b(i: u8) -> BlockId {
        BlockId(i)
    }
    fn v(i: u8) -> Value {
        Value(i)
    }

    #[test]
    fn empty_trace_is_serial() {
        assert!(Trace::new().is_serial());
    }

    #[test]
    fn load_of_bottom_before_any_store_is_serial() {
        let t = Trace::from_ops([Op::load(p(1), b(1), Value::BOTTOM)]);
        assert!(t.is_serial());
    }

    #[test]
    fn load_of_value_before_any_store_is_not_serial() {
        let t = Trace::from_ops([Op::load(p(1), b(1), v(1))]);
        assert!(!t.is_serial());
    }

    #[test]
    fn load_returns_most_recent_store() {
        let t = Trace::from_ops([
            Op::store(p(1), b(1), v(1)),
            Op::store(p(2), b(1), v(2)),
            Op::load(p(1), b(1), v(2)),
        ]);
        assert!(t.is_serial());
        let t = Trace::from_ops([
            Op::store(p(1), b(1), v(1)),
            Op::store(p(2), b(1), v(2)),
            Op::load(p(1), b(1), v(1)), // stale
        ]);
        assert!(!t.is_serial());
    }

    #[test]
    fn blocks_are_independent() {
        let t = Trace::from_ops([
            Op::store(p(1), b(1), v(1)),
            Op::load(p(2), b(2), Value::BOTTOM),
            Op::load(p(2), b(1), v(1)),
        ]);
        assert!(t.is_serial());
    }

    #[test]
    fn load_of_bottom_after_store_is_not_serial() {
        let t = Trace::from_ops([
            Op::store(p(1), b(1), v(1)),
            Op::load(p(2), b(1), Value::BOTTOM),
        ]);
        assert!(!t.is_serial());
    }

    #[test]
    fn program_order_and_stores_to() {
        let t = Trace::from_ops([
            Op::store(p(1), b(1), v(1)), // 0
            Op::store(p(2), b(2), v(2)), // 1
            Op::load(p(1), b(2), v(2)),  // 2
            Op::store(p(1), b(2), v(3)), // 3
        ]);
        assert_eq!(t.program_order(p(1)), vec![0, 2, 3]);
        assert_eq!(t.program_order(p(2)), vec![1]);
        assert_eq!(t.stores_to(b(2)), vec![1, 3]);
        assert_eq!(t.stores_to(b(1)), vec![0]);
    }

    #[test]
    fn min_params_covers_all_ops() {
        let t = Trace::from_ops([Op::store(p(2), b(3), v(1)), Op::load(p(1), b(1), v(4))]);
        let params = t.min_params();
        assert_eq!((params.p, params.b, params.v), (2, 3, 4));
        assert!(t.in_bounds(&params));
    }

    #[test]
    fn display_is_comma_separated() {
        let t = Trace::from_ops([Op::store(p(1), b(1), v(1)), Op::load(p(2), b(1), v(1))]);
        assert_eq!(t.to_string(), "ST(P1,B1,1), LD(P2,B1,1)");
    }
}
