//! Shared vocabulary for sequential-consistency verification.
//!
//! This crate defines the basic objects of Condon & Hu, *Automatable
//! Verification of Sequential Consistency* (SPAA 2001), section 2:
//!
//! * [`ProcId`], [`BlockId`], [`Value`] — the parameters `p`, `b`, `v` of a
//!   protocol, with [`Value::BOTTOM`] playing the role of the initial value
//!   `⊥` of every memory block;
//! * [`Op`] — a `LD(P,B,V)` or `ST(P,B,V)` operation (the action set `A`);
//! * [`Trace`] — a finite sequence of operations (the subsequence of a
//!   protocol run consisting of its LD/ST actions);
//! * [`Reordering`] — a permutation of a trace, together with the two
//!   properties that make it a *serial reordering*: preservation of each
//!   processor's program order, and seriality of the permuted trace.
//!
//! Everything downstream (constraint graphs, descriptors, checkers,
//! observers) is phrased in terms of these types.

pub mod ids;
pub mod op;
pub mod perm;
pub mod trace;

pub use ids::{BlockId, Params, ProcId, Value};
pub use op::{Op, OpKind};
pub use perm::{Reordering, ResidualEnum, SortKeyBuf, SymDim, SymDims, SymPerm};
pub use trace::Trace;
