//! Reorderings (permutations) of traces and the serial-reordering predicate
//! of §2.2.
//!
//! A reordering of a trace of length `k` is a permutation `Π = π(1)..π(k)`;
//! the reordered trace is `t_{π(1)}, ..., t_{π(k)}`. `Π` is a *serial
//! reordering* if it preserves every processor's program order and the
//! reordered trace is serial. A protocol is sequentially consistent iff all
//! of its traces have a serial reordering.

use crate::ids::{BlockId, Params, ProcId, Value};
use crate::op::Op;
use crate::trace::Trace;

/// A permutation of the positions of a trace. `perm[j] = i` means the `j`-th
/// operation of the reordered trace is the `i`-th operation (0-based) of the
/// original trace — i.e. `perm` is the paper's `π` shifted to 0-based
/// indices.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Reordering(Vec<usize>);

impl Reordering {
    /// The identity reordering on `n` elements.
    pub fn identity(n: usize) -> Self {
        Reordering((0..n).collect())
    }

    /// Build from an explicit permutation vector; panics if `perm` is not a
    /// permutation of `0..perm.len()`.
    pub fn new(perm: Vec<usize>) -> Self {
        let n = perm.len();
        let mut seen = vec![false; n];
        for &i in &perm {
            assert!(i < n && !seen[i], "not a permutation of 0..{n}");
            seen[i] = true;
        }
        Reordering(perm)
    }

    /// Length of the underlying trace.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is this the empty reordering?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The permutation as a slice (`perm[j]` = original position of the
    /// `j`-th reordered operation).
    pub fn as_slice(&self) -> &[usize] {
        &self.0
    }

    /// The inverse permutation: `inv[i]` = position of original operation
    /// `i` in the reordered trace (the paper's `π⁻¹`).
    pub fn inverse(&self) -> Vec<usize> {
        let mut inv = vec![0usize; self.0.len()];
        for (j, &i) in self.0.iter().enumerate() {
            inv[i] = j;
        }
        inv
    }

    /// Apply the reordering to a trace, producing `T' = t_{π(1)},...,t_{π(k)}`.
    pub fn apply(&self, trace: &Trace) -> Trace {
        assert_eq!(self.len(), trace.len(), "reordering/trace length mismatch");
        Trace::from_ops(self.0.iter().map(|&i| trace[i]))
    }

    /// Does the reordering preserve per-processor program order? For all
    /// operations `a < b` of the same processor, `π⁻¹(a) < π⁻¹(b)`.
    pub fn preserves_program_order(&self, trace: &Trace) -> bool {
        assert_eq!(self.len(), trace.len(), "reordering/trace length mismatch");
        let inv = self.inverse();
        let mut last_pos: Vec<Option<(usize, usize)>> = Vec::new(); // (orig, reordered) per proc idx
        for i in 0..trace.len() {
            let p = trace[i].proc.idx();
            if last_pos.len() <= p {
                last_pos.resize(p + 1, None);
            }
            if let Some((_, prev_j)) = last_pos[p] {
                if inv[i] < prev_j {
                    return false;
                }
            }
            last_pos[p] = Some((i, inv[i]));
        }
        true
    }

    /// Is this a *serial reordering* of the trace (§2.2): program order is
    /// preserved and the reordered trace is serial?
    pub fn is_serial_reordering(&self, trace: &Trace) -> bool {
        self.preserves_program_order(trace) && self.apply(trace).is_serial()
    }
}

/// Which identity dimensions of a protocol may be permuted without
/// changing its behaviour.
///
/// A protocol whose transition relation treats processor numbers (or block
/// numbers, or data values) interchangeably is *symmetric* in that
/// dimension: renaming the identities maps runs to runs. A [`SymPerm`]
/// drawn from the enabled dimensions then acts on states, operations, and
/// traces, and the model checker may explore one representative per orbit.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SymDims {
    /// Processor identities are interchangeable.
    pub procs: bool,
    /// Memory-block identities are interchangeable.
    pub blocks: bool,
    /// Data values are interchangeable (`⊥` is always a fixed point).
    pub values: bool,
}

impl SymDims {
    /// No symmetric dimension: only the identity permutation.
    pub const NONE: SymDims = SymDims {
        procs: false,
        blocks: false,
        values: false,
    };

    /// All three dimensions are symmetric.
    pub const FULL: SymDims = SymDims {
        procs: true,
        blocks: true,
        values: true,
    };

    /// Only processor identities are symmetric.
    pub const PROCS: SymDims = SymDims {
        procs: true,
        blocks: false,
        values: false,
    };

    /// Dimensions symmetric under both `self` and `other`.
    pub fn intersect(self, other: SymDims) -> SymDims {
        SymDims {
            procs: self.procs && other.procs,
            blocks: self.blocks && other.blocks,
            values: self.values && other.values,
        }
    }

    /// Is any dimension enabled?
    pub fn any(self) -> bool {
        self.procs || self.blocks || self.values
    }

    /// Is `dim` enabled?
    pub fn has(self, dim: SymDim) -> bool {
        match dim {
            SymDim::Procs => self.procs,
            SymDim::Blocks => self.blocks,
            SymDim::Values => self.values,
        }
    }

    /// Return a copy with `dim` set to `on`.
    pub fn with(self, dim: SymDim, on: bool) -> SymDims {
        let mut d = self;
        match dim {
            SymDim::Procs => d.procs = on,
            SymDim::Blocks => d.blocks = on,
            SymDim::Values => d.values = on,
        }
        d
    }
}

/// One of the three symmetric identity dimensions of [`SymDims`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SymDim {
    /// Processor identities.
    Procs,
    /// Memory-block identities.
    Blocks,
    /// Data values (`⊥` is a fixed point).
    Values,
}

impl SymDim {
    /// All three dimensions, in a fixed order.
    pub const ALL: [SymDim; 3] = [SymDim::Procs, SymDim::Blocks, SymDim::Values];

    /// The number of interchangeable elements of this dimension under
    /// `params`.
    pub fn count(self, params: Params) -> u8 {
        match self {
            SymDim::Procs => params.p,
            SymDim::Blocks => params.b,
            SymDim::Values => params.v,
        }
    }
}

/// A simultaneous renaming of processor, block, and value identities —
/// one element of the symmetry group `S_p × S_b × S_v` (or a subgroup of
/// it when some dimensions are disabled).
///
/// Renamings are stored 0-based over the parameter ranges of a fixed
/// [`Params`]; [`Value::BOTTOM`] is always a fixed point. Both the forward
/// and inverse maps are kept so array-reindexing traversals (which need
/// "which old index lands at new position `i`") are O(1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SymPerm {
    proc: Vec<u8>,
    block: Vec<u8>,
    value: Vec<u8>,
    inv_proc: Vec<u8>,
    inv_block: Vec<u8>,
    inv_value: Vec<u8>,
}

fn invert(fwd: &[u8]) -> Vec<u8> {
    let mut inv = vec![0u8; fwd.len()];
    for (i, &j) in fwd.iter().enumerate() {
        inv[j as usize] = i as u8;
    }
    inv
}

/// All permutations of `0..n`, identity first (lexicographic order).
fn all_perms(n: u8) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let mut cur: Vec<u8> = (0..n).collect();
    fn rec(cur: &mut Vec<u8>, k: usize, out: &mut Vec<Vec<u8>>) {
        if k == cur.len() {
            out.push(cur.clone());
            return;
        }
        for i in k..cur.len() {
            cur.swap(k, i);
            rec(cur, k + 1, out);
            cur.swap(k, i);
        }
    }
    rec(&mut cur, 0, &mut out);
    out.sort();
    out
}

fn factorial(n: u8) -> usize {
    (1..=n as usize).product::<usize>().max(1)
}

impl SymPerm {
    /// The identity renaming for `params`.
    pub fn identity(params: Params) -> SymPerm {
        SymPerm::from_parts(
            (0..params.p).collect(),
            (0..params.b).collect(),
            (0..params.v).collect(),
        )
    }

    /// Build from 0-based forward maps; panics if any map is not a
    /// permutation of its index range.
    pub fn from_parts(proc: Vec<u8>, block: Vec<u8>, value: Vec<u8>) -> SymPerm {
        for part in [&proc, &block, &value] {
            let mut seen = vec![false; part.len()];
            for &j in part.iter() {
                assert!(
                    (j as usize) < part.len() && !seen[j as usize],
                    "not a permutation"
                );
                seen[j as usize] = true;
            }
        }
        let inv_proc = invert(&proc);
        let inv_block = invert(&block);
        let inv_value = invert(&value);
        SymPerm {
            proc,
            block,
            value,
            inv_proc,
            inv_block,
            inv_value,
        }
    }

    /// Overwrite this renaming in place from 0-based forward maps,
    /// reusing the existing allocations — the hot-loop counterpart of
    /// [`SymPerm::from_parts`] for canonicalization scratch buffers.
    ///
    /// Permutation validity is only checked under `debug_assertions`;
    /// callers produce the maps from rank arrays that are permutations by
    /// construction.
    pub fn assign_parts(&mut self, proc: &[u8], block: &[u8], value: &[u8]) {
        #[cfg(debug_assertions)]
        for part in [proc, block, value] {
            let mut seen = vec![false; part.len()];
            for &j in part {
                assert!(
                    (j as usize) < part.len() && !seen[j as usize],
                    "not a permutation"
                );
                seen[j as usize] = true;
            }
        }
        fn set(dst: &mut Vec<u8>, inv: &mut Vec<u8>, src: &[u8]) {
            dst.clear();
            dst.extend_from_slice(src);
            inv.clear();
            inv.resize(src.len(), 0);
            for (i, &j) in src.iter().enumerate() {
                inv[j as usize] = i as u8;
            }
        }
        set(&mut self.proc, &mut self.inv_proc, proc);
        set(&mut self.block, &mut self.inv_block, block);
        set(&mut self.value, &mut self.inv_value, value);
    }

    /// Overwrite one dimension of this renaming in place (see
    /// [`SymPerm::assign_parts`]).
    pub fn assign_dim(&mut self, dim: SymDim, fwd: &[u8]) {
        let (dst, inv) = match dim {
            SymDim::Procs => (&mut self.proc, &mut self.inv_proc),
            SymDim::Blocks => (&mut self.block, &mut self.inv_block),
            SymDim::Values => (&mut self.value, &mut self.inv_value),
        };
        dst.clear();
        dst.extend_from_slice(fwd);
        inv.clear();
        inv.resize(fwd.len(), 0);
        for (i, &j) in fwd.iter().enumerate() {
            debug_assert!((j as usize) < fwd.len(), "not a permutation");
            inv[j as usize] = i as u8;
        }
    }

    /// Is this the identity on every dimension?
    pub fn is_identity(&self) -> bool {
        let id = |m: &[u8]| m.iter().enumerate().all(|(i, &j)| i as u8 == j);
        id(&self.proc) && id(&self.block) && id(&self.value)
    }

    /// Rename a processor.
    pub fn proc(&self, p: ProcId) -> ProcId {
        ProcId::from_idx(self.proc[p.idx()] as usize)
    }

    /// Rename a block.
    pub fn block(&self, b: BlockId) -> BlockId {
        BlockId::from_idx(self.block[b.idx()] as usize)
    }

    /// Rename a value (`⊥` is fixed).
    pub fn value(&self, v: Value) -> Value {
        if v.is_bottom() {
            v
        } else {
            Value(self.value[(v.0 - 1) as usize] + 1)
        }
    }

    /// Rename a 0-based processor index.
    pub fn proc_idx(&self, i: usize) -> usize {
        self.proc[i] as usize
    }

    /// Rename a 0-based block index.
    pub fn block_idx(&self, i: usize) -> usize {
        self.block[i] as usize
    }

    /// Rename a 0-based value index.
    pub fn value_idx(&self, i: usize) -> usize {
        self.value[i] as usize
    }

    /// The old processor index that lands at new index `i`.
    pub fn inv_proc_idx(&self, i: usize) -> usize {
        self.inv_proc[i] as usize
    }

    /// The old block index that lands at new index `i`.
    pub fn inv_block_idx(&self, i: usize) -> usize {
        self.inv_block[i] as usize
    }

    /// Rename all identities of an operation.
    pub fn op(&self, op: Op) -> Op {
        let mut out = op;
        out.proc = self.proc(op.proc);
        out.block = self.block(op.block);
        out.value = self.value(op.value);
        out
    }

    /// Composition `self ∘ other` (apply `other` first, then `self`).
    pub fn compose(&self, other: &SymPerm) -> SymPerm {
        let comp = |f: &[u8], g: &[u8]| g.iter().map(|&i| f[i as usize]).collect::<Vec<u8>>();
        SymPerm::from_parts(
            comp(&self.proc, &other.proc),
            comp(&self.block, &other.block),
            comp(&self.value, &other.value),
        )
    }

    /// The order of the group `group(params, dims, cap)` would enumerate
    /// *before* applying the cap.
    pub fn group_order(params: Params, dims: SymDims) -> usize {
        let f = |on: bool, n: u8| if on { factorial(n) } else { 1 };
        f(dims.procs, params.p) * f(dims.blocks, params.b) * f(dims.values, params.v)
    }

    /// Shrink `dims` until the product group fits under `cap` elements.
    ///
    /// Each round drops the *enabled dimension with the smallest
    /// factorial* — the one whose loss degrades the quotient least
    /// (dropping a dimension of `n` elements forfeits an up-to-`n!`-fold
    /// state reduction). Ties break values → blocks → procs, matching the
    /// historical fixed order. The result is always a whole product of
    /// symmetric groups, i.e. a true subgroup of `S_p × S_b × S_v`, which
    /// is what makes orbit-minimum canonicalization sound.
    pub fn capped_dims(params: Params, dims: SymDims, cap: usize) -> SymDims {
        let mut dims = dims;
        while dims.any() && Self::group_order(params, dims) > cap {
            let weakest = [SymDim::Values, SymDim::Blocks, SymDim::Procs]
                .into_iter()
                .filter(|&d| dims.has(d))
                .min_by_key(|&d| factorial(d.count(params)))
                .expect("dims.any() guarantees an enabled dimension");
            dims = dims.with(weakest, false);
        }
        dims
    }

    /// Enumerate the symmetry group over the enabled dimensions, identity
    /// first.
    ///
    /// If the full product group exceeds `cap` elements, whole dimensions
    /// are dropped per [`SymPerm::capped_dims`] until it fits.
    pub fn group(params: Params, dims: SymDims, cap: usize) -> Vec<SymPerm> {
        let dims = Self::capped_dims(params, dims, cap);
        let one = |n: u8| vec![(0..n).collect::<Vec<u8>>()];
        let procs = if dims.procs {
            all_perms(params.p)
        } else {
            one(params.p)
        };
        let blocks = if dims.blocks {
            all_perms(params.b)
        } else {
            one(params.b)
        };
        let values = if dims.values {
            all_perms(params.v)
        } else {
            one(params.v)
        };
        let mut out = Vec::with_capacity(procs.len() * blocks.len() * values.len());
        for pp in &procs {
            for bb in &blocks {
                for vv in &values {
                    out.push(SymPerm::from_parts(pp.clone(), bb.clone(), vv.clone()));
                }
            }
        }
        out
    }
}

/// Reusable buffer of per-element composite sort keys for one symmetric
/// dimension, filled by a protocol's `Symmetry::sort_keys` and consumed by
/// the sort-based canonicalization fast path.
///
/// Key `i` is the sequence of `encode_state` words contributed by element
/// `i` of the dimension, in position order. Keys are stored back-to-back
/// in one arena so refilling allocates nothing in steady state.
#[derive(Debug, Default)]
pub struct SortKeyBuf {
    words: Vec<u64>,
    starts: Vec<u32>,
}

impl SortKeyBuf {
    /// Empty buffer.
    pub fn new() -> SortKeyBuf {
        SortKeyBuf::default()
    }

    /// Drop all keys (allocations are retained).
    pub fn clear(&mut self) {
        self.words.clear();
        self.starts.clear();
    }

    /// Start the key of the next element.
    pub fn begin_key(&mut self) {
        self.starts.push(self.words.len() as u32);
    }

    /// Append one word to the key opened by the last `begin_key`.
    pub fn push(&mut self, w: u64) {
        debug_assert!(!self.starts.is_empty(), "push before begin_key");
        self.words.push(w);
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// Are there no keys?
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// The key of element `i`.
    pub fn key(&self, i: usize) -> &[u64] {
        let lo = self.starts[i] as usize;
        let hi = self
            .starts
            .get(i + 1)
            .map_or(self.words.len(), |&s| s as usize);
        &self.words[lo..hi]
    }
}

/// Enumerator of the *residual subgroup* left over after sort-based
/// refinement: the product of symmetric groups on the tied cells of a
/// sorted element order.
///
/// `reset(order, runs)` takes the refined arrangement (`order[rank]` = the
/// element placed at that rank) and the maximal runs of ranks whose sort
/// keys tied; `next()` then yields every arrangement obtained by permuting
/// elements *within* each tied run — `∏ len(run)!` arrangements in total,
/// the refined one first. Runs advance odometer-style via the classic
/// next-permutation step, so enumeration is allocation-free after `reset`.
#[derive(Debug, Default)]
pub struct ResidualEnum {
    cur: Vec<u8>,
    runs: Vec<(u32, u32)>,
    started: bool,
    done: bool,
}

/// Advance `seg` to its next permutation in lexicographic order; returns
/// false (leaving `seg` sorted ascending, i.e. wrapped around) when `seg`
/// was the last one.
fn next_permutation(seg: &mut [u8]) -> bool {
    if seg.len() < 2 {
        return false;
    }
    let mut i = seg.len() - 1;
    while i > 0 && seg[i - 1] >= seg[i] {
        i -= 1;
    }
    if i == 0 {
        seg.reverse();
        return false;
    }
    let mut j = seg.len() - 1;
    while seg[j] <= seg[i - 1] {
        j -= 1;
    }
    seg.swap(i - 1, j);
    seg[i..].reverse();
    true
}

impl ResidualEnum {
    /// Empty enumerator; call `reset` before use.
    pub fn new() -> ResidualEnum {
        ResidualEnum::default()
    }

    /// Load a refined arrangement and its tied runs (`(start, len)` rank
    /// ranges, each of length ≥ 2). Within each run the elements are
    /// sorted ascending so the odometer starts from each run's first
    /// permutation.
    pub fn reset(&mut self, order: &[u8], runs: &[(u32, u32)]) {
        self.cur.clear();
        self.cur.extend_from_slice(order);
        self.runs.clear();
        self.runs.extend_from_slice(runs);
        for &(s, l) in &self.runs {
            debug_assert!(l >= 2 && (s + l) as usize <= order.len());
            self.cur[s as usize..(s + l) as usize].sort_unstable();
        }
        self.started = false;
        self.done = false;
    }

    /// Total number of arrangements this enumerator will yield.
    pub fn count(&self) -> u64 {
        self.runs
            .iter()
            .map(|&(_, l)| (1..=l as u64).product::<u64>())
            .product()
    }

    /// The next arrangement (`slice[rank]` = element), or `None` when all
    /// `count()` arrangements have been yielded.
    ///
    /// Not an `Iterator`: the yielded slice borrows the enumerator's own
    /// scratch buffer (a lending iterator), which the trait cannot express.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<&[u8]> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(&self.cur);
        }
        for &(s, l) in &self.runs {
            if next_permutation(&mut self.cur[s as usize..(s + l) as usize]) {
                return Some(&self.cur);
            }
            // This run wrapped back to sorted order; carry into the next.
        }
        self.done = true;
        None
    }
}

/// Merge per-processor operation streams into a single trace according to an
/// interleaving choice sequence. `schedule[j]` names the processor (0-based
/// index into `streams`) whose next unconsumed operation appears at position
/// `j`. Useful for constructing traces with known serial reorderings.
pub fn interleave(streams: &[Vec<Op>], schedule: &[usize]) -> Option<Trace> {
    let mut cursors = vec![0usize; streams.len()];
    let mut out = Trace::new();
    for &s in schedule {
        let cur = cursors.get_mut(s)?;
        let op = streams.get(s)?.get(*cur)?;
        out.push(*op);
        *cur += 1;
    }
    if cursors.iter().zip(streams).all(|(c, s)| *c == s.len()) {
        Some(out)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{BlockId, ProcId, Value};

    fn st(p: u8, b: u8, v: u8) -> Op {
        Op::store(ProcId(p), BlockId(b), Value(v))
    }
    fn ld(p: u8, b: u8, v: u8) -> Op {
        Op::load(ProcId(p), BlockId(b), Value(v))
    }

    #[test]
    fn identity_preserves_program_order() {
        let t = Trace::from_ops([st(1, 1, 1), ld(2, 1, 1), st(1, 2, 1)]);
        let r = Reordering::identity(3);
        assert!(r.preserves_program_order(&t));
        assert_eq!(r.apply(&t), t);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn invalid_permutation_rejected() {
        let _ = Reordering::new(vec![0, 0, 2]);
    }

    #[test]
    fn inverse_is_inverse() {
        let r = Reordering::new(vec![2, 0, 3, 1]);
        let inv = r.inverse();
        for (j, &i) in r.as_slice().iter().enumerate() {
            assert_eq!(inv[i], j);
        }
    }

    #[test]
    fn figure1_sc_reordering() {
        // Figure 1 (message-passing litmus): P1: ST x=1; ST y=2.
        // P2: LD y; LD x. The outcome r2=0 (y read as ⊥), r1=1 is SC via
        // the reordering that slots P2's LD y between P1's two stores.
        let t = Trace::from_ops([
            st(1, 1, 1),                                    // P1: ST x=1
            st(1, 2, 2),                                    // P1: ST y=2
            Op::load(ProcId(2), BlockId(2), Value::BOTTOM), // P2: LD y -> ⊥
            ld(2, 1, 1),                                    // P2: LD x -> 1
        ]);
        // Reordered: ST x=1, LD y=⊥, ST y=2, LD x=1.
        let r = Reordering::new(vec![0, 2, 1, 3]);
        assert!(r.preserves_program_order(&t));
        assert!(r.apply(&t).is_serial());
        assert!(r.is_serial_reordering(&t));
        // The trace itself is not serial (LD y returns ⊥ after ST y).
        assert!(!t.is_serial());
    }

    #[test]
    fn program_order_violation_detected() {
        let t = Trace::from_ops([st(1, 1, 1), st(1, 1, 2)]);
        let r = Reordering::new(vec![1, 0]);
        assert!(!r.preserves_program_order(&t));
        assert!(!r.is_serial_reordering(&t));
    }

    #[test]
    fn interleave_round_trip() {
        let p1 = vec![st(1, 1, 1), ld(1, 1, 2)];
        let p2 = vec![st(2, 1, 2)];
        let t = interleave(&[p1, p2], &[0, 1, 0]).unwrap();
        assert_eq!(t.ops(), &[st(1, 1, 1), st(2, 1, 2), ld(1, 1, 2)]);
        assert!(t.is_serial());
    }

    #[test]
    fn sym_group_enumerates_product_of_symmetric_groups() {
        let params = Params::new(3, 2, 2);
        let g = SymPerm::group(params, SymDims::FULL, 1_000_000);
        assert_eq!(g.len(), 6 * 2 * 2);
        assert!(g[0].is_identity(), "identity comes first");
        assert_eq!(g.iter().filter(|p| p.is_identity()).count(), 1);
        // Closure under composition (it is a group).
        for a in &g {
            for b in &g {
                assert!(g.contains(&a.compose(b)));
            }
        }
    }

    #[test]
    fn sym_group_cap_drops_whole_dimensions() {
        let params = Params::new(4, 3, 3);
        // 4!·3!·3! = 864 > 200 → values and blocks tie as weakest (3! each,
        // tie-break prefers values) → drop values → 144; still > 100 →
        // drop blocks → 24.
        let g = SymPerm::group(params, SymDims::FULL, 200);
        assert_eq!(g.len(), 24 * 6);
        let g = SymPerm::group(params, SymDims::FULL, 100);
        assert_eq!(g.len(), 24);
        // Each capped result is still closed under composition.
        for a in g.iter().take(8) {
            for b in g.iter().take(8) {
                assert!(g.contains(&a.compose(b)));
            }
        }
    }

    #[test]
    fn capped_dims_drops_least_valuable_dimension_first() {
        // (p,b,v) = (2,3,3): 2!·3!·3! = 72 > 40. The weakest enabled
        // dimension is procs (2! = 2 < 3!), so the least-reduction policy
        // drops procs and keeps 3!·3! = 36 — the historical fixed
        // values→blocks order would have kept only 2!·3! = 12.
        let params = Params::new(2, 3, 3);
        let d = SymPerm::capped_dims(params, SymDims::FULL, 40);
        assert!(!d.procs && d.blocks && d.values);
        assert_eq!(SymPerm::group_order(params, d), 36);
        // Under the cap nothing is dropped; over any bound everything is.
        assert_eq!(
            SymPerm::capped_dims(params, SymDims::FULL, 72),
            SymDims::FULL
        );
        assert_eq!(
            SymPerm::capped_dims(params, SymDims::FULL, 0),
            SymDims::NONE
        );
    }

    #[test]
    fn residual_enum_yields_product_of_run_factorials() {
        // Arrangement [3,1,2,0,4] with tied runs at ranks 0..2 and 2..5
        // (lengths 2 and 3): 2!·3! = 12 distinct arrangements, each a
        // permutation within its runs only.
        let mut re = ResidualEnum::new();
        re.reset(&[3, 1, 2, 0, 4], &[(0, 2), (2, 3)]);
        assert_eq!(re.count(), 12);
        let mut seen = std::collections::HashSet::new();
        while let Some(a) = re.next() {
            assert_eq!(a.len(), 5);
            let mut r0 = [a[0], a[1]];
            let mut r1 = [a[2], a[3], a[4]];
            r0.sort_unstable();
            r1.sort_unstable();
            assert_eq!(r0, [1, 3], "run 0 permutes only its own elements");
            assert_eq!(r1, [0, 2, 4], "run 1 permutes only its own elements");
            assert!(seen.insert(a.to_vec()), "arrangement repeated");
        }
        assert_eq!(seen.len(), 12);
        // No runs → exactly the input arrangement, once.
        re.reset(&[2, 0, 1], &[]);
        assert_eq!(re.count(), 1);
        assert_eq!(re.next(), Some(&[2, 0, 1][..]));
        assert_eq!(re.next(), None);
    }

    #[test]
    fn assign_parts_matches_from_parts() {
        let mut p = SymPerm::identity(Params::new(3, 2, 2));
        p.assign_parts(&[2, 0, 1], &[1, 0], &[0, 1]);
        assert_eq!(
            p,
            SymPerm::from_parts(vec![2, 0, 1], vec![1, 0], vec![0, 1])
        );
        p.assign_dim(SymDim::Procs, &[1, 2, 0]);
        assert_eq!(
            p,
            SymPerm::from_parts(vec![1, 2, 0], vec![1, 0], vec![0, 1])
        );
        for i in 0..3 {
            assert_eq!(p.inv_proc_idx(p.proc_idx(i)), i);
        }
    }

    #[test]
    fn sort_key_buf_round_trips_keys() {
        let mut kb = SortKeyBuf::new();
        kb.begin_key();
        kb.push(7);
        kb.push(8);
        kb.begin_key();
        kb.begin_key();
        kb.push(9);
        assert_eq!(kb.len(), 3);
        assert_eq!(kb.key(0), &[7, 8]);
        assert_eq!(kb.key(1), &[] as &[u64]);
        assert_eq!(kb.key(2), &[9]);
        kb.clear();
        assert!(kb.is_empty());
    }

    #[test]
    fn sym_perm_renames_ops_and_fixes_bottom() {
        let perm = SymPerm::from_parts(vec![1, 0], vec![0, 1], vec![1, 0]);
        assert_eq!(
            perm.op(st(1, 1, 1)),
            Op::store(ProcId(2), BlockId(1), Value(2))
        );
        let bot = Op::load(ProcId(2), BlockId(2), Value::BOTTOM);
        assert_eq!(perm.op(bot).value, Value::BOTTOM);
        assert_eq!(perm.op(bot).proc, ProcId(1));
    }

    #[test]
    fn sym_perm_inverse_indexing() {
        let perm = SymPerm::from_parts(vec![2, 0, 1], vec![0], vec![0]);
        for i in 0..3 {
            assert_eq!(perm.inv_proc_idx(perm.proc_idx(i)), i);
        }
        assert!(!perm.is_identity());
        assert!(SymPerm::identity(Params::new(3, 1, 1)).is_identity());
    }

    #[test]
    fn sym_dims_intersection() {
        let d = SymDims::FULL.intersect(SymDims::PROCS);
        assert_eq!(d, SymDims::PROCS);
        assert!(d.any());
        assert!(!SymDims::NONE.any());
        assert_eq!(
            SymPerm::group_order(Params::new(3, 2, 2), SymDims::FULL),
            24
        );
    }

    #[test]
    fn interleave_rejects_bad_schedules() {
        let p1 = vec![st(1, 1, 1)];
        assert!(interleave(std::slice::from_ref(&p1), &[0, 0]).is_none()); // too many picks
        assert!(interleave(std::slice::from_ref(&p1), &[1]).is_none()); // unknown stream
        assert!(interleave(&[p1], &[]).is_none()); // stream not drained
    }
}
