//! Reorderings (permutations) of traces and the serial-reordering predicate
//! of §2.2.
//!
//! A reordering of a trace of length `k` is a permutation `Π = π(1)..π(k)`;
//! the reordered trace is `t_{π(1)}, ..., t_{π(k)}`. `Π` is a *serial
//! reordering* if it preserves every processor's program order and the
//! reordered trace is serial. A protocol is sequentially consistent iff all
//! of its traces have a serial reordering.

use crate::op::Op;
use crate::trace::Trace;

/// A permutation of the positions of a trace. `perm[j] = i` means the `j`-th
/// operation of the reordered trace is the `i`-th operation (0-based) of the
/// original trace — i.e. `perm` is the paper's `π` shifted to 0-based
/// indices.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Reordering(Vec<usize>);

impl Reordering {
    /// The identity reordering on `n` elements.
    pub fn identity(n: usize) -> Self {
        Reordering((0..n).collect())
    }

    /// Build from an explicit permutation vector; panics if `perm` is not a
    /// permutation of `0..perm.len()`.
    pub fn new(perm: Vec<usize>) -> Self {
        let n = perm.len();
        let mut seen = vec![false; n];
        for &i in &perm {
            assert!(i < n && !seen[i], "not a permutation of 0..{n}");
            seen[i] = true;
        }
        Reordering(perm)
    }

    /// Length of the underlying trace.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is this the empty reordering?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The permutation as a slice (`perm[j]` = original position of the
    /// `j`-th reordered operation).
    pub fn as_slice(&self) -> &[usize] {
        &self.0
    }

    /// The inverse permutation: `inv[i]` = position of original operation
    /// `i` in the reordered trace (the paper's `π⁻¹`).
    pub fn inverse(&self) -> Vec<usize> {
        let mut inv = vec![0usize; self.0.len()];
        for (j, &i) in self.0.iter().enumerate() {
            inv[i] = j;
        }
        inv
    }

    /// Apply the reordering to a trace, producing `T' = t_{π(1)},...,t_{π(k)}`.
    pub fn apply(&self, trace: &Trace) -> Trace {
        assert_eq!(self.len(), trace.len(), "reordering/trace length mismatch");
        Trace::from_ops(self.0.iter().map(|&i| trace[i]))
    }

    /// Does the reordering preserve per-processor program order? For all
    /// operations `a < b` of the same processor, `π⁻¹(a) < π⁻¹(b)`.
    pub fn preserves_program_order(&self, trace: &Trace) -> bool {
        assert_eq!(self.len(), trace.len(), "reordering/trace length mismatch");
        let inv = self.inverse();
        let mut last_pos: Vec<Option<(usize, usize)>> = Vec::new(); // (orig, reordered) per proc idx
        for i in 0..trace.len() {
            let p = trace[i].proc.idx();
            if last_pos.len() <= p {
                last_pos.resize(p + 1, None);
            }
            if let Some((_, prev_j)) = last_pos[p] {
                if inv[i] < prev_j {
                    return false;
                }
            }
            last_pos[p] = Some((i, inv[i]));
        }
        true
    }

    /// Is this a *serial reordering* of the trace (§2.2): program order is
    /// preserved and the reordered trace is serial?
    pub fn is_serial_reordering(&self, trace: &Trace) -> bool {
        self.preserves_program_order(trace) && self.apply(trace).is_serial()
    }
}

/// Merge per-processor operation streams into a single trace according to an
/// interleaving choice sequence. `schedule[j]` names the processor (0-based
/// index into `streams`) whose next unconsumed operation appears at position
/// `j`. Useful for constructing traces with known serial reorderings.
pub fn interleave(streams: &[Vec<Op>], schedule: &[usize]) -> Option<Trace> {
    let mut cursors = vec![0usize; streams.len()];
    let mut out = Trace::new();
    for &s in schedule {
        let cur = cursors.get_mut(s)?;
        let op = streams.get(s)?.get(*cur)?;
        out.push(*op);
        *cur += 1;
    }
    if cursors.iter().zip(streams).all(|(c, s)| *c == s.len()) {
        Some(out)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{BlockId, ProcId, Value};

    fn st(p: u8, b: u8, v: u8) -> Op {
        Op::store(ProcId(p), BlockId(b), Value(v))
    }
    fn ld(p: u8, b: u8, v: u8) -> Op {
        Op::load(ProcId(p), BlockId(b), Value(v))
    }

    #[test]
    fn identity_preserves_program_order() {
        let t = Trace::from_ops([st(1, 1, 1), ld(2, 1, 1), st(1, 2, 1)]);
        let r = Reordering::identity(3);
        assert!(r.preserves_program_order(&t));
        assert_eq!(r.apply(&t), t);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn invalid_permutation_rejected() {
        let _ = Reordering::new(vec![0, 0, 2]);
    }

    #[test]
    fn inverse_is_inverse() {
        let r = Reordering::new(vec![2, 0, 3, 1]);
        let inv = r.inverse();
        for (j, &i) in r.as_slice().iter().enumerate() {
            assert_eq!(inv[i], j);
        }
    }

    #[test]
    fn figure1_sc_reordering() {
        // Figure 1 (message-passing litmus): P1: ST x=1; ST y=2.
        // P2: LD y; LD x. The outcome r2=0 (y read as ⊥), r1=1 is SC via
        // the reordering that slots P2's LD y between P1's two stores.
        let t = Trace::from_ops([
            st(1, 1, 1),                                    // P1: ST x=1
            st(1, 2, 2),                                    // P1: ST y=2
            Op::load(ProcId(2), BlockId(2), Value::BOTTOM), // P2: LD y -> ⊥
            ld(2, 1, 1),                                    // P2: LD x -> 1
        ]);
        // Reordered: ST x=1, LD y=⊥, ST y=2, LD x=1.
        let r = Reordering::new(vec![0, 2, 1, 3]);
        assert!(r.preserves_program_order(&t));
        assert!(r.apply(&t).is_serial());
        assert!(r.is_serial_reordering(&t));
        // The trace itself is not serial (LD y returns ⊥ after ST y).
        assert!(!t.is_serial());
    }

    #[test]
    fn program_order_violation_detected() {
        let t = Trace::from_ops([st(1, 1, 1), st(1, 1, 2)]);
        let r = Reordering::new(vec![1, 0]);
        assert!(!r.preserves_program_order(&t));
        assert!(!r.is_serial_reordering(&t));
    }

    #[test]
    fn interleave_round_trip() {
        let p1 = vec![st(1, 1, 1), ld(1, 1, 2)];
        let p2 = vec![st(2, 1, 2)];
        let t = interleave(&[p1, p2], &[0, 1, 0]).unwrap();
        assert_eq!(t.ops(), &[st(1, 1, 1), st(2, 1, 2), ld(1, 1, 2)]);
        assert!(t.is_serial());
    }

    #[test]
    fn interleave_rejects_bad_schedules() {
        let p1 = vec![st(1, 1, 1)];
        assert!(interleave(std::slice::from_ref(&p1), &[0, 0]).is_none()); // too many picks
        assert!(interleave(std::slice::from_ref(&p1), &[1]).is_none()); // unknown stream
        assert!(interleave(&[p1], &[]).is_none()); // stream not drained
    }
}
