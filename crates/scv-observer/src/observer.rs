//! The observer construction of Theorem 4.1.

use scv_descriptor::{Descriptor, IdNum, Symbol};
use scv_graph::EdgeSet;
use scv_protocol::{Action, CopySrc, LocId, Protocol, Run, StOrderPolicy, Step};
use scv_types::{Op, Params};
use std::collections::HashMap;

/// Internal node key (monotone counter; never reused).
type Key = u64;

/// Static configuration extracted from a protocol.
#[derive(Clone, Debug)]
pub struct ObserverConfig {
    /// Protocol parameters.
    pub params: Params,
    /// Number of storage locations `L`.
    pub locations: u32,
    /// ST order policy.
    pub policy: StOrderPolicy,
}

impl ObserverConfig {
    /// Extract the configuration from a protocol.
    pub fn from_protocol<P: Protocol>(p: &P) -> Self {
        ObserverConfig {
            params: p.params(),
            locations: p.locations(),
            policy: p.st_order_policy(),
        }
    }
}

/// Streaming statistics, for the §4.4 size experiments.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ObserverStats {
    /// High-water mark of simultaneously used auxiliary IDs.
    pub max_aux_in_use: usize,
    /// High-water mark of live node records.
    pub max_live_nodes: usize,
    /// Total symbols emitted.
    pub symbols: usize,
}

/// Why a node must remain addressable (hold an ID) even after its value
/// left every storage location. A node is released once no reason remains.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
struct Pins {
    /// Latest operation of its processor (program-order anchor).
    po_anchor: bool,
    /// Tail of its block's ST order (next STo edge starts here).
    sto_tail: bool,
    /// Deferred heir: awaiting the ST-order successor of `heir_of`.
    heir_of: Option<Key>,
    /// Latest `⊥` load of its (processor, block), awaiting the block's
    /// first store.
    bot_anchor: bool,
    /// First store of its block in ST order (kept forever for late `⊥`
    /// loads).
    first_st: bool,
    /// ST-order successor of the still-inheritable store `Key`.
    forced_target_of: Option<Key>,
    /// Issued but not yet serialized (serialization policy only).
    pending_serialization: bool,
}

impl Pins {
    fn any(&self) -> bool {
        self.po_anchor
            || self.sto_tail
            || self.heir_of.is_some()
            || self.bot_anchor
            || self.first_st
            || self.forced_target_of.is_some()
            || self.pending_serialization
    }
}

#[derive(Debug)]
struct ObsNode {
    /// The operation labeling this node (kept for diagnostics).
    #[allow(dead_code)]
    op: Op,
    /// Number of storage locations currently holding this node's value
    /// (only STs ever have a positive count).
    loc_count: u32,
    /// Auxiliary ID held, if any.
    aux: Option<IdNum>,
    pins: Pins,
    /// ST-order successor, once known.
    sto_succ: Option<Key>,
    /// Deferred heirs: latest inheriting LD per processor, awaiting this
    /// store's ST-order successor.
    heirs: Vec<(u8, Key)>,
}

// Manual `Clone` so `clone_from` reuses the heir list's allocation when
// the lazy expansion path replays candidates into a scratch observer.
impl Clone for ObsNode {
    fn clone(&self) -> Self {
        ObsNode {
            op: self.op,
            loc_count: self.loc_count,
            aux: self.aux,
            pins: self.pins.clone(),
            sto_succ: self.sto_succ,
            heirs: self.heirs.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.op = source.op;
        self.loc_count = source.loc_count;
        self.aux = source.aux;
        self.pins = source.pins.clone();
        self.sto_succ = source.sto_succ;
        self.heirs.clone_from(&source.heirs);
    }
}

/// The live node store, sorted by key. Keys are allocated monotonically,
/// so insertion is a push; lookup is a binary search over the handful of
/// live nodes, which beats hashing at these sizes. Unlike a `HashMap`,
/// `clone_from` can reuse every node's allocations — the lazy expansion
/// path clones the observer into scratch once per candidate transition —
/// and the canonical encoding walks the entries already in key order.
#[derive(Debug, Default)]
struct NodeMap(Vec<(Key, ObsNode)>);

impl Clone for NodeMap {
    fn clone(&self) -> Self {
        NodeMap(self.0.clone())
    }

    fn clone_from(&mut self, source: &Self) {
        let keep = self.0.len().min(source.0.len());
        self.0.truncate(source.0.len());
        for (dst, src) in self.0.iter_mut().zip(&source.0[..keep]) {
            dst.0 = src.0;
            dst.1.clone_from(&src.1);
        }
        self.0.extend(source.0[keep..].iter().cloned());
    }
}

impl NodeMap {
    fn len(&self) -> usize {
        self.0.len()
    }

    /// The live `(key, node)` entries in ascending key order.
    fn entries(&self) -> &[(Key, ObsNode)] {
        &self.0
    }

    fn idx(&self, key: Key) -> Result<usize, usize> {
        self.0.binary_search_by_key(&key, |e| e.0)
    }

    fn contains_key(&self, key: &Key) -> bool {
        self.idx(*key).is_ok()
    }

    fn get(&self, key: &Key) -> Option<&ObsNode> {
        self.idx(*key).ok().map(|i| &self.0[i].1)
    }

    fn get_mut(&mut self, key: &Key) -> Option<&mut ObsNode> {
        self.idx(*key).ok().map(|i| &mut self.0[i].1)
    }

    fn insert(&mut self, key: Key, node: ObsNode) {
        match self.idx(key) {
            Ok(i) => self.0[i].1 = node,
            Err(i) => self.0.insert(i, (key, node)),
        }
    }

    fn remove(&mut self, key: &Key) -> Option<ObsNode> {
        self.idx(*key).ok().map(|i| self.0.remove(i).1)
    }
}

/// The automatically generated witness observer.
pub struct Observer {
    cfg: ObserverConfig,
    /// Owner (node key) per location ID `1..=L`.
    loc_owner: Vec<Option<Key>>,
    /// Free auxiliary IDs (`L+1 ..= L+A`).
    aux_free: Vec<IdNum>,
    aux_total: usize,
    /// Live node records.
    nodes: NodeMap,
    next_key: Key,
    /// Latest operation node per processor.
    last_op: Vec<Option<Key>>,
    /// ST-order tail per block.
    sto_tail: Vec<Option<Key>>,
    /// First store in ST order per block.
    first_st: Vec<Option<Key>>,
    /// Latest pinned `⊥` load per (processor, block).
    bot_anchor: Vec<Option<Key>>,
    /// Issued but unserialized stores per block, in trace order
    /// (serialization policy only).
    pending: Vec<Vec<Key>>,
    /// Reverse map: location -> block it serializes (serialization policy).
    serialization_of: HashMap<LocId, u8>,
    stats: ObserverStats,
    /// Per-step edge accumulation (merged annotations).
    edges: Vec<((Key, Key), EdgeSet)>,
}

// Manual `Clone` so `clone_from` reuses the target's allocations
// field-by-field. The lazy expansion path replays every candidate
// transition into a scratch observer via `clone_from`; the derived impl
// would drop and reallocate all the maps and vectors on each replay.
impl Clone for Observer {
    fn clone(&self) -> Self {
        Observer {
            cfg: self.cfg.clone(),
            loc_owner: self.loc_owner.clone(),
            aux_free: self.aux_free.clone(),
            aux_total: self.aux_total,
            nodes: self.nodes.clone(),
            next_key: self.next_key,
            last_op: self.last_op.clone(),
            sto_tail: self.sto_tail.clone(),
            first_st: self.first_st.clone(),
            bot_anchor: self.bot_anchor.clone(),
            pending: self.pending.clone(),
            serialization_of: self.serialization_of.clone(),
            stats: self.stats,
            edges: self.edges.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.cfg = source.cfg.clone();
        self.loc_owner.clone_from(&source.loc_owner);
        self.aux_free.clone_from(&source.aux_free);
        self.aux_total = source.aux_total;
        self.nodes.clone_from(&source.nodes);
        self.next_key = source.next_key;
        self.last_op.clone_from(&source.last_op);
        self.sto_tail.clone_from(&source.sto_tail);
        self.first_st.clone_from(&source.first_st);
        self.bot_anchor.clone_from(&source.bot_anchor);
        self.pending.clone_from(&source.pending);
        self.serialization_of.clone_from(&source.serialization_of);
        self.stats = source.stats;
        self.edges.clone_from(&source.edges);
    }
}

impl Observer {
    /// Build an observer for the given configuration.
    pub fn new(cfg: ObserverConfig) -> Self {
        let l = cfg.locations as usize;
        let p = cfg.params.p as usize;
        let b = cfg.params.b as usize;
        // Auxiliary pool, sized for the worst case of the pin analysis in
        // Theorem 4.1 (program-order anchors + ST tails + heirs + ⊥
        // anchors + first/forced-target stores), with slack.
        let aux_total = p + b + p * (b + l) + p * b + 2 * b + l + 8;
        let aux_free: Vec<IdNum> = ((l as u32 + 1)..=(l + aux_total) as u32).rev().collect();
        let serialization_of = match &cfg.policy {
            StOrderPolicy::RealTime => HashMap::new(),
            StOrderPolicy::Serialization { locs } => locs
                .iter()
                .enumerate()
                .map(|(bi, &loc)| (loc, bi as u8))
                .collect(),
        };
        Observer {
            loc_owner: vec![None; l],
            aux_free,
            aux_total,
            nodes: NodeMap::default(),
            next_key: 0,
            last_op: vec![None; p],
            sto_tail: vec![None; b],
            first_st: vec![None; b],
            bot_anchor: vec![None; p * b],
            pending: vec![Vec::new(); b],
            serialization_of,
            stats: ObserverStats::default(),
            edges: Vec::new(),
            cfg,
        }
    }

    /// The bandwidth parameter of the emitted descriptor: IDs range over
    /// `1..=k+1`, with `1..=L` the locations, then the auxiliary pool,
    /// then one reserved never-owned "null" ID used to orphan IDs.
    pub fn k(&self) -> u32 {
        self.cfg.locations + self.aux_total as u32
    }

    /// The reserved never-owned ID (`k+1`).
    fn null_id(&self) -> IdNum {
        self.k() + 1
    }

    /// The number of storage locations `L` (IDs `1..=L` are locations).
    pub fn location_count(&self) -> u32 {
        self.cfg.locations
    }

    /// Streaming statistics.
    pub fn stats(&self) -> ObserverStats {
        self.stats
    }

    /// Observe one protocol step, appending descriptor symbols to `out`.
    pub fn step(&mut self, step: &Step, out: &mut Vec<Symbol>) {
        let _t = scv_telemetry::timer_sampled(scv_telemetry::Phase::ObserverStep);
        let before = out.len();
        match step.action {
            Action::Mem(op) if op.is_store() => self.on_store(op, step, out),
            Action::Mem(op) => self.on_load(op, step, out),
            Action::Internal(..) => self.on_internal(step, out),
        }
        if scv_telemetry::enabled() {
            scv_telemetry::add(scv_telemetry::Metric::ObserverSteps, 1);
            scv_telemetry::add(
                scv_telemetry::Metric::ObserverSymbols,
                (out.len() - before) as u64,
            );
        }
        self.stats.symbols += out.len() - before;
        self.stats.max_live_nodes = self.stats.max_live_nodes.max(self.nodes.len());
        self.stats.max_aux_in_use = self
            .stats
            .max_aux_in_use
            .max(self.aux_total - self.aux_free.len());
    }

    /// Are there stores still awaiting serialization (so that
    /// [`Observer::finish`] would emit trailing symbols)?
    pub fn has_pending(&self) -> bool {
        self.pending.iter().any(|p| !p.is_empty())
    }

    /// End of run: serialize any still-pending stores (emitting their ST
    /// order edges and the forced edges of their waiting heirs).
    pub fn finish(&mut self, out: &mut Vec<Symbol>) {
        let before = out.len();
        for b in 0..self.pending.len() {
            let pend = std::mem::take(&mut self.pending[b]);
            for key in pend {
                if self.nodes.contains_key(&key) {
                    self.nodes
                        .get_mut(&key)
                        .expect("live")
                        .pins
                        .pending_serialization = false;
                    self.serialize_store(b, key);
                }
            }
            self.flush_edges(out);
        }
        scv_telemetry::add(
            scv_telemetry::Metric::ObserverSymbols,
            (out.len() - before) as u64,
        );
        self.stats.symbols += out.len() - before;
    }

    /// Observe a whole run, returning the descriptor.
    pub fn observe_run<P: Protocol>(protocol: &P, run: &Run) -> Descriptor {
        let mut obs = Observer::new(ObserverConfig::from_protocol(protocol));
        let mut d = Descriptor::new(obs.k());
        for s in &run.steps {
            obs.step(s, &mut d.symbols);
        }
        obs.finish(&mut d.symbols);
        d
    }

    // ----- event handlers ---------------------------------------------------

    fn on_store(&mut self, op: Op, step: &Step, out: &mut Vec<Symbol>) {
        let loc = step.tracking.loc.expect("ST carries a location label");
        // The overwritten occupant of `loc` may need rescuing first.
        self.rescue_if_needed(loc, out);
        let key = self.new_node(op);
        self.nodes.get_mut(&key).expect("live").loc_count = 1;
        let old = self.loc_owner[(loc - 1) as usize].replace(key);
        out.push(Symbol::node(loc, op));
        self.drop_loc_ref(old);

        self.take_po_anchor(key, op.proc.idx());
        let b = op.block.idx();
        match self.cfg.policy {
            StOrderPolicy::RealTime => self.serialize_store(b, key),
            StOrderPolicy::Serialization { .. } => {
                self.nodes
                    .get_mut(&key)
                    .expect("live")
                    .pins
                    .pending_serialization = true;
                self.pending[b].push(key);
            }
        }
        self.flush_edges(out);
        self.gc(key);
    }

    fn on_load(&mut self, op: Op, step: &Step, out: &mut Vec<Symbol>) {
        let loc = step.tracking.loc.expect("LD carries a location label");
        let src = self.loc_owner[(loc - 1) as usize];
        let key = self.new_node(op);
        // A LD node holds no storage location; give it an auxiliary ID.
        let aux = self.grab_aux();
        self.nodes.get_mut(&key).expect("live").aux = Some(aux);
        out.push(Symbol::node(aux, op));

        self.take_po_anchor(key, op.proc.idx());

        match src {
            Some(st) if !op.value.is_bottom() => {
                self.queue_edge(st, key, EdgeSet::INH);
                let succ = self.nodes.get(&st).and_then(|n| n.sto_succ);
                match succ {
                    Some(k) => self.queue_edge(key, k, EdgeSet::FORCED),
                    None => {
                        // Pin as the latest heir of (processor, st).
                        let proc = op.proc.0;
                        let prev = {
                            let n = self.nodes.get_mut(&st).expect("inheritable store is live");
                            let prev = n
                                .heirs
                                .iter()
                                .position(|(p, _)| *p == proc)
                                .map(|i| n.heirs.remove(i).1);
                            n.heirs.push((proc, key));
                            prev
                        };
                        self.nodes.get_mut(&key).expect("live").pins.heir_of = Some(st);
                        if let Some(prev) = prev {
                            if let Some(n) = self.nodes.get_mut(&prev) {
                                n.pins.heir_of = None;
                            }
                            self.gc(prev);
                        }
                    }
                }
            }
            _ => {
                // ⊥ load (or a value-less location, which the checker will
                // flag): constraint 5(b) handling.
                let b = op.block.idx();
                match self.first_st[b] {
                    Some(first) => self.queue_edge(key, first, EdgeSet::FORCED),
                    None => {
                        let slot = op.proc.idx() * self.cfg.params.b as usize + b;
                        let prev = self.bot_anchor[slot].replace(key);
                        self.nodes.get_mut(&key).expect("live").pins.bot_anchor = true;
                        if let Some(prev) = prev {
                            if let Some(n) = self.nodes.get_mut(&prev) {
                                n.pins.bot_anchor = false;
                            }
                            self.gc(prev);
                        }
                    }
                }
            }
        }
        self.flush_edges(out);
        self.gc(key);
    }

    fn on_internal(&mut self, step: &Step, out: &mut Vec<Symbol>) {
        for &(dst, src) in &step.tracking.copies {
            match src {
                CopySrc::Loc(srcl) if srcl != dst => {
                    self.rescue_if_needed(dst, out);
                    let old = self.loc_owner[(dst - 1) as usize].take();
                    let gainer = self.loc_owner[(srcl - 1) as usize];
                    self.loc_owner[(dst - 1) as usize] = gainer;
                    out.push(Symbol::AddId { of: srcl, add: dst });
                    if let Some(g) = gainer {
                        self.nodes.get_mut(&g).expect("owner is live").loc_count += 1;
                    }
                    self.drop_loc_ref(old);
                    // Serialization events: a copy into a block's
                    // serialization location serializes the source store.
                    if let (Some(&b), Some(g)) = (self.serialization_of.get(&dst), gainer) {
                        let pending = self
                            .nodes
                            .get(&g)
                            .is_some_and(|n| n.pins.pending_serialization);
                        if pending {
                            let bi = b as usize;
                            self.pending[bi].retain(|&k| k != g);
                            self.nodes
                                .get_mut(&g)
                                .expect("live")
                                .pins
                                .pending_serialization = false;
                            self.serialize_store(bi, g);
                        }
                    }
                }
                CopySrc::Loc(_) => {} // c_l(t) = l: unchanged
                CopySrc::Invalid => {
                    self.rescue_if_needed(dst, out);
                    let old = self.loc_owner[(dst - 1) as usize].take();
                    if old.is_some() {
                        out.push(Symbol::AddId {
                            of: self.null_id(),
                            add: dst,
                        });
                    }
                    self.drop_loc_ref(old);
                }
            }
            self.flush_edges(out);
        }
    }

    // ----- ST order / forced machinery --------------------------------------

    /// `node` becomes the next store of block `b` in ST order.
    fn serialize_store(&mut self, b: usize, node: Key) {
        match self.sto_tail[b] {
            Some(tail) => {
                self.queue_edge(tail, node, EdgeSet::STO);
                // Forced edges for the tail's waiting heirs; they unpin.
                let heirs =
                    std::mem::take(&mut self.nodes.get_mut(&tail).expect("tail is live").heirs);
                for (_, j) in heirs {
                    if self.nodes.contains_key(&j) {
                        self.queue_edge(j, node, EdgeSet::FORCED);
                        self.nodes.get_mut(&j).expect("live").pins.heir_of = None;
                        self.gc(j);
                    }
                }
                self.nodes.get_mut(&tail).expect("live").sto_succ = Some(node);
                // Future loads may still inherit from the tail while its
                // value sits in some location: keep the successor
                // addressable for their forced edges.
                if self.nodes.get(&tail).expect("live").loc_count > 0 {
                    self.nodes
                        .get_mut(&node)
                        .expect("live")
                        .pins
                        .forced_target_of = Some(tail);
                }
                self.nodes.get_mut(&tail).expect("live").pins.sto_tail = false;
                self.gc(tail);
            }
            None => {
                // First store of the block in ST order: discharge the ⊥
                // anchors and stay pinned forever for late ⊥ loads.
                self.first_st[b] = Some(node);
                self.nodes.get_mut(&node).expect("live").pins.first_st = true;
                for p in 0..self.cfg.params.p as usize {
                    let slot = p * self.cfg.params.b as usize + b;
                    if let Some(j) = self.bot_anchor[slot].take() {
                        if self.nodes.contains_key(&j) {
                            self.queue_edge(j, node, EdgeSet::FORCED);
                            self.nodes.get_mut(&j).expect("live").pins.bot_anchor = false;
                            self.gc(j);
                        }
                    }
                }
            }
        }
        self.sto_tail[b] = Some(node);
        self.nodes.get_mut(&node).expect("live").pins.sto_tail = true;
    }

    // ----- plumbing ----------------------------------------------------------

    fn new_node(&mut self, op: Op) -> Key {
        let key = self.next_key;
        self.next_key += 1;
        self.nodes.insert(
            key,
            ObsNode {
                op,
                loc_count: 0,
                aux: None,
                pins: Pins::default(),
                sto_succ: None,
                heirs: Vec::new(),
            },
        );
        key
    }

    /// Make `key` the program-order anchor of processor index `pi`,
    /// emitting the po edge from the previous anchor.
    fn take_po_anchor(&mut self, key: Key, pi: usize) {
        if let Some(prev) = self.last_op[pi].replace(key) {
            self.queue_edge(prev, key, EdgeSet::PO);
            if let Some(n) = self.nodes.get_mut(&prev) {
                n.pins.po_anchor = false;
            }
            self.gc(prev);
        }
        self.nodes.get_mut(&key).expect("live").pins.po_anchor = true;
    }

    /// The occupant of location `loc` is about to lose that ID; if it is
    /// its last ID and the node is pinned, grant an auxiliary ID first.
    fn rescue_if_needed(&mut self, loc: LocId, out: &mut Vec<Symbol>) {
        let Some(key) = self.loc_owner[(loc - 1) as usize] else {
            return;
        };
        let needs = {
            let n = self.nodes.get(&key).expect("owner is live");
            n.loc_count == 1 && n.aux.is_none() && (n.pins.any() || !n.heirs.is_empty())
        };
        if needs {
            let aux = self.grab_aux();
            self.nodes.get_mut(&key).expect("live").aux = Some(aux);
            out.push(Symbol::AddId { of: loc, add: aux });
        }
    }

    /// Decrement the location count of a node that lost a location.
    fn drop_loc_ref(&mut self, old: Option<Key>) {
        let Some(key) = old else { return };
        let n = self.nodes.get_mut(&key).expect("ex-owner is live");
        n.loc_count -= 1;
        if n.loc_count == 0 {
            // The store's value left its last location: it can no longer
            // be inherited from, so its ST-order successor no longer needs
            // pinning on its behalf.
            if let Some(succ) = n.sto_succ {
                if let Some(sn) = self.nodes.get_mut(&succ) {
                    if sn.pins.forced_target_of == Some(key) {
                        sn.pins.forced_target_of = None;
                    }
                }
                self.gc(succ);
            }
        }
        self.gc(key);
    }

    fn grab_aux(&mut self) -> IdNum {
        self.aux_free
            .pop()
            .expect("auxiliary ID pool exhausted (pin-analysis bound violated)")
    }

    /// Queue an edge for emission at the next flush, merging annotations.
    fn queue_edge(&mut self, from: Key, to: Key, ann: EdgeSet) {
        if let Some(e) = self.edges.iter_mut().find(|(pair, _)| *pair == (from, to)) {
            e.1 |= ann;
            return;
        }
        self.edges.push(((from, to), ann));
    }

    /// Emit the queued edges using the nodes' current IDs, then release
    /// any endpoint whose ID was only kept alive for these edges.
    fn flush_edges(&mut self, out: &mut Vec<Symbol>) {
        let edges = std::mem::take(&mut self.edges);
        for &((from, to), ann) in &edges {
            let f = self.id_of(from);
            let t = self.id_of(to);
            out.push(Symbol::edge(f, t, ann));
        }
        for ((from, to), _) in edges {
            self.gc(from);
            self.gc(to);
        }
    }

    /// Any current ID of a live node (auxiliary preferred, else a location
    /// it owns).
    fn id_of(&self, key: Key) -> IdNum {
        let n = self
            .nodes
            .get(&key)
            .expect("node referenced by an edge is live");
        if let Some(aux) = n.aux {
            return aux;
        }
        debug_assert!(n.loc_count > 0);
        (self
            .loc_owner
            .iter()
            .position(|o| *o == Some(key))
            .expect("loc_count > 0") as IdNum)
            + 1
    }

    /// A canonical encoding of the observer state, independent of absolute
    /// node-key values, of statistics/counters, and — through `ids` — of
    /// the arbitrary identities of auxiliary descriptor IDs (the paired
    /// checker must be encoded with the *same* [`IdCanon`] so the renaming
    /// is consistent across the product state). Two observers with the
    /// same encoding behave identically (up to aux-ID renaming of the
    /// descriptor output) on all future inputs; the model checker hashes
    /// product states through this, making the composed state space finite
    /// and collapsing the aux-permutation orbit.
    pub fn canonical_encoding(&self, out: &mut Vec<u64>, ids: &mut scv_descriptor::IdCanon<'_>) {
        self.encode_canonical(out, ids, None);
    }

    /// The location-owner words of the canonical encoding, in identity
    /// location order: for each location, the entry rank of its owning
    /// node (`u64::MAX` when unowned) — exactly the words the encoding's
    /// `loc_owner` section emits. These ranks are independent of any
    /// symmetry renaming (entry order is key-creation order), which makes
    /// them usable as per-element sort-key material during symmetry
    /// canonicalization. Returns `false` without filling `out` when an
    /// owner key is dead (its token number would then depend on traversal
    /// order, so the words are not arrangement-invariant) — callers must
    /// fall back to protocol-only keys. Owners are pinned by their
    /// `loc_count` and thus never gc'd, so this is a defensive guard.
    pub fn owner_words(&self, out: &mut Vec<u64>) -> bool {
        out.clear();
        let entries = self.nodes.entries();
        for k in &self.loc_owner {
            match k {
                None => out.push(u64::MAX),
                Some(k) => match entries.binary_search_by_key(k, |&(ek, _)| ek) {
                    Ok(r) => out.push(r as u64),
                    Err(_) => return false,
                },
            }
        }
        true
    }

    /// Per-processor sort-key material covering the *rest* of the
    /// observer encoding beyond the `loc_owner` section — one key per
    /// processor (old index order): its `last_op` entry rank followed by
    /// its `bot_anchor` row, block-reordered through `block_inv` to match
    /// the renamed emission order of the coset being canonicalized.
    ///
    /// Sound only when every remaining word of the encoding is either in
    /// one of these rows or identical across all processor arrangements.
    /// Returns `false` (keys must be discarded) when that fails: some node
    /// has heirs — their words interleave renamed processor labels — or a
    /// referenced key is dead, making its token number depend on traversal
    /// order. The node sections, `sto_tail`/`first_st`, and `pending` are
    /// emitted in entry/block order and never mention processors, so with
    /// the gates above they are arrangement-invariant.
    pub fn proc_key_ext(
        &self,
        block_inv: &dyn Fn(usize) -> usize,
        keys: &mut scv_types::SortKeyBuf,
    ) -> bool {
        let entries = self.nodes.entries();
        if entries.iter().any(|(_, n)| !n.heirs.is_empty()) {
            return false;
        }
        let rank = |k: Option<Key>| -> Option<u64> {
            match k {
                None => Some(u64::MAX),
                Some(k) => entries
                    .binary_search_by_key(&k, |&(ek, _)| ek)
                    .ok()
                    .map(|r| r as u64),
            }
        };
        let b = self.cfg.params.b as usize;
        for e in 0..self.cfg.params.p as usize {
            keys.begin_key();
            match rank(self.last_op[e]) {
                Some(w) => keys.push(w),
                None => return false,
            }
            for bi in 0..b {
                match rank(self.bot_anchor[e * b + block_inv(bi)]) {
                    Some(w) => keys.push(w),
                    None => return false,
                }
            }
        }
        true
    }

    /// Stream [`Observer::canonical_encoding`] (optionally renamed
    /// through `view`) into an arbitrary [`scv_descriptor::EncSink`] —
    /// e.g. an incremental lexicographic comparator that aborts the walk
    /// at the first losing word during orbit-minimum canonicalization.
    pub fn canonical_encoding_into<S: scv_descriptor::EncSink>(
        &self,
        out: &mut S,
        ids: &mut scv_descriptor::IdCanon<'_>,
        view: Option<&scv_descriptor::SymView<'_>>,
    ) {
        self.encode_canonical(out, ids, view);
    }

    /// [`Observer::canonical_encoding`] as it would read after renaming
    /// every processor/block identity through `view` — the traversal emits
    /// exactly the sequence the renamed observer would emit, without
    /// materialising the rename. `ids` must have been built with
    /// [`scv_descriptor::IdCanon::with_locs`] using the same location map
    /// so location IDs rename consistently, and must be shared with the
    /// paired checker's encoding.
    pub fn canonical_encoding_with(
        &self,
        out: &mut Vec<u64>,
        ids: &mut scv_descriptor::IdCanon<'_>,
        view: &scv_descriptor::SymView<'_>,
    ) {
        self.encode_canonical(out, ids, Some(view));
    }

    fn encode_canonical<S: scv_descriptor::EncSink>(
        &self,
        out: &mut S,
        ids: &mut scv_descriptor::IdCanon<'_>,
        view: Option<&scv_descriptor::SymView<'_>>,
    ) {
        // Abort the walk the moment the sink refuses a word (see
        // `EncSink::word`); partial output is discarded by the sink.
        macro_rules! emit {
            ($w:expr) => {
                if !out.word($w) {
                    return;
                }
            };
        }
        // Rank live keys by creation order (key order). One sorted entry
        // list serves both rank lookups (binary search — no hashing on a
        // path the model checker hits per sealed candidate) and the node
        // walk (no per-key map lookup).
        let entries = self.nodes.entries();
        // Dead tokens (e.g. a gc'd sto_succ) get stable fresh numbers in
        // first-appearance order of this deterministic encoding; there are
        // at most a handful per state, so a linear scan beats a map.
        let mut dead: Vec<(Key, u64)> = Vec::new();
        let tok = |k: Option<Key>, dead: &mut Vec<(Key, u64)>| -> u64 {
            match k {
                None => u64::MAX,
                Some(k) => match entries.binary_search_by_key(&k, |&(ek, _)| ek) {
                    Ok(r) => r as u64,
                    Err(_) => match dead.iter().find(|&&(dk, _)| dk == k) {
                        Some(&(_, n)) => n,
                        None => {
                            let next = 1_000_000 + dead.len() as u64;
                            dead.push((k, next));
                            next
                        }
                    },
                },
            }
        };
        // Under a view, arrays indexed by location / processor / block are
        // walked in *renamed* index order, so position `i` of the output
        // holds what the renamed structure's position `i` would hold.
        let p_count = self.cfg.params.p as usize;
        let b_count = self.cfg.params.b as usize;
        let old_proc = |i: usize| view.map_or(i, |v| v.perm.inv_proc_idx(i));
        let old_block = |i: usize| view.map_or(i, |v| v.perm.inv_block_idx(i));
        emit!(entries.len() as u64);
        for i in 0..self.loc_owner.len() {
            let old = view.map_or(i, |v| v.loc_inv[i + 1] as usize - 1);
            emit!(tok(self.loc_owner[old], &mut dead));
        }
        let mut heirs: Vec<(u8, u64)> = Vec::new();
        for (_, n) in entries {
            // Deliberately NOT encoded: the node's operation label. The
            // observer emits a node's label exactly once, at creation;
            // afterwards its own behaviour depends only on the structural
            // fields below, so label differences between otherwise-equal
            // observers are unobservable and encoding them would block
            // sound state merging.
            emit!(n.loc_count as u64);
            emit!(n.aux.map_or(u64::MAX, |a| ids.canon(a)));
            emit!(
                (n.pins.po_anchor as u64)
                    | (n.pins.sto_tail as u64) << 1
                    | (n.pins.bot_anchor as u64) << 2
                    | (n.pins.first_st as u64) << 3
                    | (n.pins.pending_serialization as u64) << 4
            );
            emit!(tok(n.pins.heir_of, &mut dead));
            emit!(tok(n.pins.forced_target_of, &mut dead));
            emit!(tok(n.sto_succ, &mut dead));
            heirs.clear();
            for &(p, h) in &n.heirs {
                let p = view.map_or(p, |v| v.perm.proc(scv_types::ProcId(p)).0);
                heirs.push((p, tok(Some(h), &mut dead)));
            }
            heirs.sort_unstable();
            emit!(heirs.len() as u64);
            for &(p, h) in &heirs {
                emit!((p as u64) << 32 | h);
            }
        }
        for i in 0..p_count {
            emit!(tok(self.last_op[old_proc(i)], &mut dead));
        }
        for i in 0..b_count {
            emit!(tok(self.sto_tail[old_block(i)], &mut dead));
        }
        for i in 0..b_count {
            emit!(tok(self.first_st[old_block(i)], &mut dead));
        }
        for pi in 0..p_count {
            for bi in 0..b_count {
                let slot = old_proc(pi) * b_count + old_block(bi);
                emit!(tok(self.bot_anchor[slot], &mut dead));
            }
        }
        for bi in 0..b_count {
            let pend = &self.pending[old_block(bi)];
            emit!(pend.len() as u64);
            for &k in pend {
                emit!(tok(Some(k), &mut dead));
            }
        }
        // The free auxiliary pool is deliberately NOT encoded: it is the
        // complement of the in-use set, and free IDs are anonymous — any
        // choice the pool makes later is neutral up to the renaming that
        // `ids` already applies.
    }

    /// Release the node's auxiliary ID / record once nothing references it.
    fn gc(&mut self, key: Key) {
        // Queued edges still reference the node; defer (gc re-runs later).
        if self.edges.iter().any(|((f, t), _)| *f == key || *t == key) {
            return;
        }
        let Some(n) = self.nodes.get(&key) else {
            return;
        };
        if n.pins.any() || !n.heirs.is_empty() {
            return;
        }
        if n.loc_count > 0 {
            // Still inheritable; no aux needed though.
            return;
        }
        if let Some(aux) = n.aux {
            // The ID simply becomes reusable; the checker treats the next
            // use of `aux` as the removal of this node.
            self.aux_free.push(aux);
        }
        self.nodes.remove(&key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use scv_checker::ScChecker;
    use scv_descriptor::decode;
    use scv_graph::{validate_constraint_graph, ConstraintGraph};
    use scv_protocol::{
        DirectoryProtocol, Fig4Protocol, LazyCaching, MsiProtocol, Runner, SerialMemory,
        StoreBufferTso,
    };
    use scv_types::Trace;

    /// The observed descriptor's trace (node labels in order) must equal
    /// the run's trace — property (i) of Definition 3.1.
    fn assert_trace_equal(d: &Descriptor, run: &Run) {
        let ops: Vec<Op> = d
            .symbols
            .iter()
            .filter_map(|s| match s {
                Symbol::Node { label, .. } => *label,
                _ => None,
            })
            .collect();
        assert_eq!(Trace::from_ops(ops), run.trace());
    }

    fn random_run<P: Protocol + Clone>(p: &P, steps: usize, seed: u64) -> Run {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut r = Runner::new(p.clone());
        r.run_random(steps, 0.5, &mut rng);
        r.into_run()
    }

    /// Full pipeline check on one run: the observer output must (a) decode
    /// to a graph satisfying all §3.1 axioms, (b) stream-check to the same
    /// verdict, and (c) carry the run's exact trace.
    fn pipeline_accepts<P: Protocol + Clone>(p: &P, steps: usize, seed: u64) {
        let run = random_run(p, steps, seed);
        let d = Observer::observe_run(p, &run);
        assert_trace_equal(&d, &run);
        let (dg, _) = decode(&d).unwrap_or_else(|e| panic!("{}: decode failed: {e}", p.name()));
        let cg: ConstraintGraph = dg
            .to_constraint_graph()
            .unwrap_or_else(|e| panic!("{}: bad graph: {e}", p.name()));
        let trace = run.trace();
        assert_eq!(
            validate_constraint_graph(&cg, &trace),
            Ok(()),
            "{}: axioms violated (seed {seed})",
            p.name()
        );
        assert!(
            cg.is_acyclic(),
            "{}: witness graph cyclic (seed {seed})",
            p.name()
        );
        assert_eq!(
            ScChecker::check(&d),
            Ok(()),
            "{}: streaming checker rejected (seed {seed})",
            p.name()
        );
    }

    #[test]
    fn serial_memory_runs_verify() {
        let p = SerialMemory::new(Params::new(2, 2, 2));
        for seed in 0..10 {
            pipeline_accepts(&p, 60, seed);
        }
    }

    #[test]
    fn msi_runs_verify() {
        let p = MsiProtocol::new(Params::new(2, 2, 2));
        for seed in 0..10 {
            pipeline_accepts(&p, 60, seed);
        }
        let p = MsiProtocol::new(Params::new(3, 2, 2));
        for seed in 0..5 {
            pipeline_accepts(&p, 80, 100 + seed);
        }
    }

    #[test]
    fn directory_runs_verify() {
        let p = DirectoryProtocol::new(Params::new(2, 2, 2));
        for seed in 0..10 {
            pipeline_accepts(&p, 80, seed);
        }
    }

    #[test]
    fn lazy_caching_runs_verify() {
        let p = LazyCaching::new(Params::new(2, 2, 2), 2, 2);
        for seed in 0..10 {
            pipeline_accepts(&p, 80, seed);
        }
    }

    #[test]
    fn fig4_runs_stay_sound() {
        // The Get-Shared protocol is *not* SC in general — a processor can
        // re-fetch a stale view of its own earlier store — so the pipeline
        // may reject; what must hold is soundness: accept ⇒ the trace has
        // a serial reordering, and every rejected run's trace decodes to a
        // graph that genuinely violates the axioms or is cyclic.
        let p = Fig4Protocol::new(Params::new(2, 2, 2), 1);
        let mut accepted = 0;
        for seed in 0..20 {
            let run = random_run(&p, 30, seed);
            let d = Observer::observe_run(&p, &run);
            assert_trace_equal(&d, &run);
            if ScChecker::check(&d).is_ok() {
                accepted += 1;
                assert!(
                    scv_graph::has_serial_reordering(&run.trace()),
                    "unsound accept (seed {seed}): {}",
                    run.trace()
                );
            }
        }
        assert!(accepted > 0, "some runs should verify");
    }

    #[test]
    fn tso_litmus_rejected() {
        // Drive the SB litmus; the observer emits a witness whose forced
        // edges close a cycle, so the checker rejects.
        let p = StoreBufferTso::new(Params::new(2, 2, 1), 2);
        let mut r = Runner::new(p.clone());
        let take = |r: &mut Runner<StoreBufferTso>, want: &dyn Fn(&Action) -> bool| {
            let t = r
                .enabled()
                .into_iter()
                .find(|t| want(&t.action))
                .expect("enabled");
            r.take(t);
        };
        use scv_types::{BlockId, ProcId, Value};
        take(&mut r, &|a| {
            a.op() == Some(Op::store(ProcId(1), BlockId(1), Value(1)))
        });
        take(&mut r, &|a| {
            a.op() == Some(Op::store(ProcId(2), BlockId(2), Value(1)))
        });
        take(&mut r, &|a| {
            a.op() == Some(Op::load(ProcId(1), BlockId(2), Value::BOTTOM))
        });
        take(&mut r, &|a| {
            a.op() == Some(Op::load(ProcId(2), BlockId(1), Value::BOTTOM))
        });
        // Drain both buffers so the stores serialize.
        take(&mut r, &|a| matches!(a, Action::Internal("Drain", 1)));
        take(&mut r, &|a| matches!(a, Action::Internal("Drain", 2)));
        let run = r.into_run();
        assert!(!scv_graph::has_serial_reordering(&run.trace()));
        let d = Observer::observe_run(&p, &run);
        assert!(
            ScChecker::check(&d).is_err(),
            "checker must reject the SB litmus"
        );
    }

    #[test]
    fn tso_random_runs_agree_with_ground_truth() {
        // On every random TSO run, the checker's verdict must be sound:
        // if it accepts, the trace has a serial reordering.
        let p = StoreBufferTso::new(Params::new(2, 1, 2), 2);
        let mut sc = 0;
        let mut rejected = 0;
        for seed in 0..40 {
            let run = random_run(&p, 16, seed);
            let d = Observer::observe_run(&p, &run);
            let verdict = ScChecker::check(&d);
            let truth = scv_graph::has_serial_reordering(&run.trace());
            if verdict.is_ok() {
                assert!(truth, "unsound accept on seed {seed}: {}", run.trace());
                sc += 1;
            } else {
                rejected += 1;
            }
        }
        assert!(sc > 0, "some runs should verify");
        let _ = rejected; // rejection is allowed even for SC traces
    }

    #[test]
    fn buggy_msi_random_runs_stay_sound() {
        let p = MsiProtocol::buggy(Params::new(2, 2, 1));
        for seed in 0..30 {
            let run = random_run(&p, 25, seed);
            let d = Observer::observe_run(&p, &run);
            if ScChecker::check(&d).is_ok() {
                assert!(
                    scv_graph::has_serial_reordering(&run.trace()),
                    "unsound accept on seed {seed}: {}",
                    run.trace()
                );
            }
        }
    }

    #[test]
    fn lazy_caching_reorders_and_still_verifies() {
        // Construct the reordering scenario by hand: P1 and P2 store to
        // the same block; P2's memory-write runs first.
        use scv_types::{BlockId, ProcId, Value};
        let p = LazyCaching::new(Params::new(2, 1, 2), 2, 2);
        let mut r = Runner::new(p.clone());
        let take = |r: &mut Runner<LazyCaching>, want: &dyn Fn(&Action) -> bool| {
            let t = r
                .enabled()
                .into_iter()
                .find(|t| want(&t.action))
                .expect("enabled");
            r.take(t);
        };
        take(&mut r, &|a| {
            a.op() == Some(Op::store(ProcId(1), BlockId(1), Value(1)))
        });
        take(&mut r, &|a| {
            a.op() == Some(Op::store(ProcId(2), BlockId(1), Value(2)))
        });
        take(&mut r, &|a| matches!(a, Action::Internal("MW", 2)));
        take(&mut r, &|a| matches!(a, Action::Internal("MW", 1)));
        // Both processors consume their updates and read the final value.
        take(&mut r, &|a| matches!(a, Action::Internal("CU", 1)));
        take(&mut r, &|a| matches!(a, Action::Internal("CU", 1)));
        take(&mut r, &|a| {
            a.op() == Some(Op::load(ProcId(1), BlockId(1), Value(1)))
        });
        let run = r.into_run();
        let d = Observer::observe_run(&p, &run);
        // The ST order must be P2's store then P1's store (memory-write
        // order), opposite to trace order — and the descriptor verifies.
        assert_eq!(ScChecker::check(&d), Ok(()));
        let (dg, _) = decode(&d).unwrap();
        let cg = dg.to_constraint_graph().unwrap();
        // Node numbering: 0 = ST(P1), 1 = ST(P2); STo edge 1 -> 0.
        assert!(cg.edge(1, 0).unwrap().contains(EdgeSet::STO));
    }

    #[test]
    fn observer_ids_stay_in_range_and_bounded() {
        let p = MsiProtocol::new(Params::new(2, 2, 2));
        let run = random_run(&p, 120, 7);
        let d = Observer::observe_run(&p, &run);
        assert!(d.ids_in_range());
        let (_, stats) = decode(&d).unwrap();
        // The active node count never exceeds the ID space.
        assert!(stats.max_active <= (d.k + 1) as usize);
    }
}
