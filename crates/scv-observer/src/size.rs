//! Observer size accounting (§4.4 of the paper).
//!
//! The paper bounds the extra state an observer needs beyond the protocol
//! state: with real-time ST ordering, at most `L` ST nodes and `p·b` LD
//! nodes are live, each labeled with `lg p + lg b + lg v + 1` bits, plus
//! `L·lg L` bits of ID bookkeeping:
//!
//! ```text
//! (L + p·b)·(lg p + lg b + lg v + 1) + L·lg L   bits
//! ```
//!
//! [`observer_size_bound`] evaluates the formula; the `tab_size_bounds`
//! experiment compares it against the measured high-water marks of the
//! actual observer ([`crate::ObserverStats`]).

use scv_types::Params;

/// The §4.4 size bound, with its components broken out.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SizeBound {
    /// Bandwidth bound on live constraint-graph nodes: `L + p·b`.
    pub bandwidth: u64,
    /// Bits per node label: `lg p + lg b + lg v + 1`.
    pub label_bits: u64,
    /// ID bookkeeping bits: `L·lg L`.
    pub id_bits: u64,
    /// Total extra observer state in bits.
    pub total_bits: u64,
}

/// Evaluate the §4.4 upper bound for a protocol with parameters `params`
/// and `locations` storage locations.
pub fn observer_size_bound(params: &Params, locations: u32) -> SizeBound {
    let l = locations as u64;
    let p = params.p as u64;
    let b = params.b as u64;
    let v = params.v as u64;
    let bandwidth = l + p * b;
    let label_bits = (Params::lg(p) + Params::lg(b) + Params::lg(v) + 1) as u64;
    let id_bits = l * Params::lg(l) as u64;
    SizeBound {
        bandwidth,
        label_bits,
        id_bits,
        total_bits: bandwidth * label_bits + id_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_matches_hand_computation() {
        // p = 2, b = 2, v = 2, L = 6: bandwidth = 6 + 4 = 10,
        // label bits = 1 + 1 + 1 + 1 = 4, id bits = 6 * 3 = 18.
        let bound = observer_size_bound(&Params::new(2, 2, 2), 6);
        assert_eq!(bound.bandwidth, 10);
        assert_eq!(bound.label_bits, 4);
        assert_eq!(bound.id_bits, 18);
        assert_eq!(bound.total_bits, 58);
    }

    #[test]
    fn grows_monotonically_in_each_parameter() {
        let base = observer_size_bound(&Params::new(2, 2, 2), 8).total_bits;
        assert!(observer_size_bound(&Params::new(4, 2, 2), 8).total_bits > base);
        assert!(observer_size_bound(&Params::new(2, 4, 2), 8).total_bits > base);
        assert!(observer_size_bound(&Params::new(2, 2, 4), 8).total_bits > base);
        assert!(observer_size_bound(&Params::new(2, 2, 2), 16).total_bits > base);
    }

    #[test]
    fn degenerate_parameters() {
        // p = b = v = 1, L = 1: bandwidth 2, label bits 1, id bits 0.
        let bound = observer_size_bound(&Params::new(1, 1, 1), 1);
        assert_eq!(bound.total_bits, 2);
    }
}
