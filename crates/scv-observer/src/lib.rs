//! Automatic finite-state witness observers (§4 of Condon & Hu, SPAA
//! 2001).
//!
//! An [`Observer`] is generated from a protocol's *metadata only* — its
//! parameters, location count, and ST order policy — and runs alongside
//! the protocol, converting each executed step (with its §4.1 tracking
//! labels) into *k*-graph-descriptor symbols describing the witness
//! constraint graph `W(R)`:
//!
//! * **inheritance edges** come from the ST-index machinery of Lemma 4.1:
//!   descriptor IDs `1..=L` *are* the storage locations, a ST node's ID
//!   set is exactly the set of locations holding its value (`add-ID`
//!   symbols mirror the copy tracking labels), and a LD's inheritance
//!   source is the owner of the location named by its tracking label;
//! * **ST order edges** come from the ST order generator of §4.2 — trivial
//!   under the real-time policy, or driven by copies into per-block
//!   *serialization locations* (the memory words, for Lazy Caching and
//!   store buffers);
//! * **program order** and **forced** edges are generated per Theorem 4.1,
//!   with a bounded set of *pinned* nodes (program-order anchors, ST-order
//!   tails, deferred heirs, `⊥`-load anchors, first-store and
//!   forced-target stores) held in a small auxiliary ID pool.
//!
//! Feeding the observer's output to `scv_checker::ScChecker` implements
//! the full §3.4 verification method; `scv-mc` does so over *all* runs via
//! model checking.

pub mod observer;
pub mod size;

pub use observer::{Observer, ObserverConfig, ObserverStats};
pub use size::{observer_size_bound, SizeBound};
